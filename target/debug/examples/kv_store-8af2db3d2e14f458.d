/root/repo/target/debug/examples/kv_store-8af2db3d2e14f458.d: examples/kv_store.rs

/root/repo/target/debug/examples/kv_store-8af2db3d2e14f458: examples/kv_store.rs

examples/kv_store.rs:
