/root/repo/target/debug/examples/kv_store-f6f0e1f2da3ffc50.d: examples/kv_store.rs Cargo.toml

/root/repo/target/debug/examples/libkv_store-f6f0e1f2da3ffc50.rmeta: examples/kv_store.rs Cargo.toml

examples/kv_store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
