/root/repo/target/debug/examples/evaluate_modes-784dabaace32a559.d: examples/evaluate_modes.rs

/root/repo/target/debug/examples/evaluate_modes-784dabaace32a559: examples/evaluate_modes.rs

examples/evaluate_modes.rs:
