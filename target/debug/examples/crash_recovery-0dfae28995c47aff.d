/root/repo/target/debug/examples/crash_recovery-0dfae28995c47aff.d: examples/crash_recovery.rs

/root/repo/target/debug/examples/crash_recovery-0dfae28995c47aff: examples/crash_recovery.rs

examples/crash_recovery.rs:
