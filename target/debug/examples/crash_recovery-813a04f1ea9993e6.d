/root/repo/target/debug/examples/crash_recovery-813a04f1ea9993e6.d: examples/crash_recovery.rs

/root/repo/target/debug/examples/crash_recovery-813a04f1ea9993e6: examples/crash_recovery.rs

examples/crash_recovery.rs:
