/root/repo/target/debug/examples/quickstart-d4566a94e3a4709b.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-d4566a94e3a4709b: examples/quickstart.rs

examples/quickstart.rs:
