/root/repo/target/debug/examples/evaluate_modes-b471464e2c318ae4.d: examples/evaluate_modes.rs

/root/repo/target/debug/examples/evaluate_modes-b471464e2c318ae4: examples/evaluate_modes.rs

examples/evaluate_modes.rs:
