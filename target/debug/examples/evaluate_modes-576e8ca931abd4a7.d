/root/repo/target/debug/examples/evaluate_modes-576e8ca931abd4a7.d: examples/evaluate_modes.rs Cargo.toml

/root/repo/target/debug/examples/libevaluate_modes-576e8ca931abd4a7.rmeta: examples/evaluate_modes.rs Cargo.toml

examples/evaluate_modes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
