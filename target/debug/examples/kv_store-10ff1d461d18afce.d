/root/repo/target/debug/examples/kv_store-10ff1d461d18afce.d: examples/kv_store.rs

/root/repo/target/debug/examples/kv_store-10ff1d461d18afce: examples/kv_store.rs

examples/kv_store.rs:
