/root/repo/target/debug/examples/quickstart-13dca20a7c03a77d.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-13dca20a7c03a77d.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
