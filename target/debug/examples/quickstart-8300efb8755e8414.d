/root/repo/target/debug/examples/quickstart-8300efb8755e8414.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-8300efb8755e8414: examples/quickstart.rs

examples/quickstart.rs:
