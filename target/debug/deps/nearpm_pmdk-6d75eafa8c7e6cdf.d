/root/repo/target/debug/deps/nearpm_pmdk-6d75eafa8c7e6cdf.d: crates/pmdk/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnearpm_pmdk-6d75eafa8c7e6cdf.rmeta: crates/pmdk/src/lib.rs Cargo.toml

crates/pmdk/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
