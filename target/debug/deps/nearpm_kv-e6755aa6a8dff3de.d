/root/repo/target/debug/deps/nearpm_kv-e6755aa6a8dff3de.d: crates/kv/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnearpm_kv-e6755aa6a8dff3de.rmeta: crates/kv/src/lib.rs Cargo.toml

crates/kv/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
