/root/repo/target/debug/deps/fig20_multithread-4255f094c0062e96.d: crates/bench/src/bin/fig20_multithread.rs Cargo.toml

/root/repo/target/debug/deps/libfig20_multithread-4255f094c0062e96.rmeta: crates/bench/src/bin/fig20_multithread.rs Cargo.toml

crates/bench/src/bin/fig20_multithread.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
