/root/repo/target/debug/deps/nearpm_ppo-e47003cb4e89ae7d.d: crates/ppo/src/lib.rs crates/ppo/src/event.rs crates/ppo/src/index.rs crates/ppo/src/invariants.rs crates/ppo/src/statemachine.rs

/root/repo/target/debug/deps/libnearpm_ppo-e47003cb4e89ae7d.rlib: crates/ppo/src/lib.rs crates/ppo/src/event.rs crates/ppo/src/index.rs crates/ppo/src/invariants.rs crates/ppo/src/statemachine.rs

/root/repo/target/debug/deps/libnearpm_ppo-e47003cb4e89ae7d.rmeta: crates/ppo/src/lib.rs crates/ppo/src/event.rs crates/ppo/src/index.rs crates/ppo/src/invariants.rs crates/ppo/src/statemachine.rs

crates/ppo/src/lib.rs:
crates/ppo/src/event.rs:
crates/ppo/src/index.rs:
crates/ppo/src/invariants.rs:
crates/ppo/src/statemachine.rs:
