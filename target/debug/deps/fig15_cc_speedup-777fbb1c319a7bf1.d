/root/repo/target/debug/deps/fig15_cc_speedup-777fbb1c319a7bf1.d: crates/bench/src/bin/fig15_cc_speedup.rs

/root/repo/target/debug/deps/fig15_cc_speedup-777fbb1c319a7bf1: crates/bench/src/bin/fig15_cc_speedup.rs

crates/bench/src/bin/fig15_cc_speedup.rs:
