/root/repo/target/debug/deps/nearpm_device-fc15ca8342816241.d: crates/device/src/lib.rs crates/device/src/address_map.rs crates/device/src/device.rs crates/device/src/fifo.rs crates/device/src/inflight.rs crates/device/src/metadata.rs crates/device/src/request.rs crates/device/src/unit.rs Cargo.toml

/root/repo/target/debug/deps/libnearpm_device-fc15ca8342816241.rmeta: crates/device/src/lib.rs crates/device/src/address_map.rs crates/device/src/device.rs crates/device/src/fifo.rs crates/device/src/inflight.rs crates/device/src/metadata.rs crates/device/src/request.rs crates/device/src/unit.rs Cargo.toml

crates/device/src/lib.rs:
crates/device/src/address_map.rs:
crates/device/src/device.rs:
crates/device/src/fifo.rs:
crates/device/src/inflight.rs:
crates/device/src/metadata.rs:
crates/device/src/request.rs:
crates/device/src/unit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
