/root/repo/target/debug/deps/fig19_units_sweep-9f4f98890d302717.d: crates/bench/src/bin/fig19_units_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libfig19_units_sweep-9f4f98890d302717.rmeta: crates/bench/src/bin/fig19_units_sweep.rs Cargo.toml

crates/bench/src/bin/fig19_units_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
