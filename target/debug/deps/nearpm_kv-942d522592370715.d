/root/repo/target/debug/deps/nearpm_kv-942d522592370715.d: crates/kv/src/lib.rs

/root/repo/target/debug/deps/libnearpm_kv-942d522592370715.rlib: crates/kv/src/lib.rs

/root/repo/target/debug/deps/libnearpm_kv-942d522592370715.rmeta: crates/kv/src/lib.rs

crates/kv/src/lib.rs:
