/root/repo/target/debug/deps/nearpm_kv-40faaafcc58f1d7b.d: crates/kv/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnearpm_kv-40faaafcc58f1d7b.rmeta: crates/kv/src/lib.rs Cargo.toml

crates/kv/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
