/root/repo/target/debug/deps/nearpm_kv-74cac54e5461b767.d: crates/kv/src/lib.rs

/root/repo/target/debug/deps/libnearpm_kv-74cac54e5461b767.rlib: crates/kv/src/lib.rs

/root/repo/target/debug/deps/libnearpm_kv-74cac54e5461b767.rmeta: crates/kv/src/lib.rs

crates/kv/src/lib.rs:
