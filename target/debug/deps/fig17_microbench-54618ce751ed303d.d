/root/repo/target/debug/deps/fig17_microbench-54618ce751ed303d.d: crates/bench/src/bin/fig17_microbench.rs Cargo.toml

/root/repo/target/debug/deps/libfig17_microbench-54618ce751ed303d.rmeta: crates/bench/src/bin/fig17_microbench.rs Cargo.toml

crates/bench/src/bin/fig17_microbench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
