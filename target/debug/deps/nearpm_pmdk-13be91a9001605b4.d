/root/repo/target/debug/deps/nearpm_pmdk-13be91a9001605b4.d: crates/pmdk/src/lib.rs

/root/repo/target/debug/deps/libnearpm_pmdk-13be91a9001605b4.rlib: crates/pmdk/src/lib.rs

/root/repo/target/debug/deps/libnearpm_pmdk-13be91a9001605b4.rmeta: crates/pmdk/src/lib.rs

crates/pmdk/src/lib.rs:
