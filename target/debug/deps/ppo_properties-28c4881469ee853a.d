/root/repo/target/debug/deps/ppo_properties-28c4881469ee853a.d: tests/ppo_properties.rs

/root/repo/target/debug/deps/ppo_properties-28c4881469ee853a: tests/ppo_properties.rs

tests/ppo_properties.rs:
