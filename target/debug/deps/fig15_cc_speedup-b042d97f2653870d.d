/root/repo/target/debug/deps/fig15_cc_speedup-b042d97f2653870d.d: crates/bench/src/bin/fig15_cc_speedup.rs Cargo.toml

/root/repo/target/debug/deps/libfig15_cc_speedup-b042d97f2653870d.rmeta: crates/bench/src/bin/fig15_cc_speedup.rs Cargo.toml

crates/bench/src/bin/fig15_cc_speedup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
