/root/repo/target/debug/deps/nearpm_pm-a5bebff3a0c6ef1f.d: crates/pm/src/lib.rs crates/pm/src/addr.rs crates/pm/src/alloc.rs crates/pm/src/cache.rs crates/pm/src/interleave.rs crates/pm/src/media.rs crates/pm/src/pool.rs crates/pm/src/space.rs

/root/repo/target/debug/deps/nearpm_pm-a5bebff3a0c6ef1f: crates/pm/src/lib.rs crates/pm/src/addr.rs crates/pm/src/alloc.rs crates/pm/src/cache.rs crates/pm/src/interleave.rs crates/pm/src/media.rs crates/pm/src/pool.rs crates/pm/src/space.rs

crates/pm/src/lib.rs:
crates/pm/src/addr.rs:
crates/pm/src/alloc.rs:
crates/pm/src/cache.rs:
crates/pm/src/interleave.rs:
crates/pm/src/media.rs:
crates/pm/src/pool.rs:
crates/pm/src/space.rs:
