/root/repo/target/debug/deps/fig01_overhead-13d5838426350869.d: crates/bench/src/bin/fig01_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libfig01_overhead-13d5838426350869.rmeta: crates/bench/src/bin/fig01_overhead.rs Cargo.toml

crates/bench/src/bin/fig01_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
