/root/repo/target/debug/deps/nearpm_bench-e32d4e8a58fded0c.d: crates/bench/src/lib.rs crates/bench/src/synthetic.rs

/root/repo/target/debug/deps/libnearpm_bench-e32d4e8a58fded0c.rlib: crates/bench/src/lib.rs crates/bench/src/synthetic.rs

/root/repo/target/debug/deps/libnearpm_bench-e32d4e8a58fded0c.rmeta: crates/bench/src/lib.rs crates/bench/src/synthetic.rs

crates/bench/src/lib.rs:
crates/bench/src/synthetic.rs:
