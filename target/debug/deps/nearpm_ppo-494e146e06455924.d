/root/repo/target/debug/deps/nearpm_ppo-494e146e06455924.d: crates/ppo/src/lib.rs crates/ppo/src/differential.rs crates/ppo/src/event.rs crates/ppo/src/index.rs crates/ppo/src/invariants.rs crates/ppo/src/statemachine.rs

/root/repo/target/debug/deps/nearpm_ppo-494e146e06455924: crates/ppo/src/lib.rs crates/ppo/src/differential.rs crates/ppo/src/event.rs crates/ppo/src/index.rs crates/ppo/src/invariants.rs crates/ppo/src/statemachine.rs

crates/ppo/src/lib.rs:
crates/ppo/src/differential.rs:
crates/ppo/src/event.rs:
crates/ppo/src/index.rs:
crates/ppo/src/invariants.rs:
crates/ppo/src/statemachine.rs:
