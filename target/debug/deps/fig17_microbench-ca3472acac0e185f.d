/root/repo/target/debug/deps/fig17_microbench-ca3472acac0e185f.d: crates/bench/src/bin/fig17_microbench.rs

/root/repo/target/debug/deps/fig17_microbench-ca3472acac0e185f: crates/bench/src/bin/fig17_microbench.rs

crates/bench/src/bin/fig17_microbench.rs:
