/root/repo/target/debug/deps/nearpm_sim-1eb3709aeea9639b.d: crates/sim/src/lib.rs crates/sim/src/latency.rs crates/sim/src/resource.rs crates/sim/src/schedule.rs crates/sim/src/stats.rs crates/sim/src/task.rs crates/sim/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libnearpm_sim-1eb3709aeea9639b.rmeta: crates/sim/src/lib.rs crates/sim/src/latency.rs crates/sim/src/resource.rs crates/sim/src/schedule.rs crates/sim/src/stats.rs crates/sim/src/task.rs crates/sim/src/time.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/latency.rs:
crates/sim/src/resource.rs:
crates/sim/src/schedule.rs:
crates/sim/src/stats.rs:
crates/sim/src/task.rs:
crates/sim/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
