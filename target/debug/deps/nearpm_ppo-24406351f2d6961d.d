/root/repo/target/debug/deps/nearpm_ppo-24406351f2d6961d.d: crates/ppo/src/lib.rs crates/ppo/src/event.rs crates/ppo/src/index.rs crates/ppo/src/invariants.rs crates/ppo/src/statemachine.rs Cargo.toml

/root/repo/target/debug/deps/libnearpm_ppo-24406351f2d6961d.rmeta: crates/ppo/src/lib.rs crates/ppo/src/event.rs crates/ppo/src/index.rs crates/ppo/src/invariants.rs crates/ppo/src/statemachine.rs Cargo.toml

crates/ppo/src/lib.rs:
crates/ppo/src/event.rs:
crates/ppo/src/index.rs:
crates/ppo/src/invariants.rs:
crates/ppo/src/statemachine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
