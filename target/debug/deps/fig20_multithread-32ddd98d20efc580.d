/root/repo/target/debug/deps/fig20_multithread-32ddd98d20efc580.d: crates/bench/src/bin/fig20_multithread.rs

/root/repo/target/debug/deps/fig20_multithread-32ddd98d20efc580: crates/bench/src/bin/fig20_multithread.rs

crates/bench/src/bin/fig20_multithread.rs:
