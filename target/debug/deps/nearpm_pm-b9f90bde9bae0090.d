/root/repo/target/debug/deps/nearpm_pm-b9f90bde9bae0090.d: crates/pm/src/lib.rs crates/pm/src/addr.rs crates/pm/src/alloc.rs crates/pm/src/cache.rs crates/pm/src/interleave.rs crates/pm/src/media.rs crates/pm/src/pool.rs crates/pm/src/space.rs Cargo.toml

/root/repo/target/debug/deps/libnearpm_pm-b9f90bde9bae0090.rmeta: crates/pm/src/lib.rs crates/pm/src/addr.rs crates/pm/src/alloc.rs crates/pm/src/cache.rs crates/pm/src/interleave.rs crates/pm/src/media.rs crates/pm/src/pool.rs crates/pm/src/space.rs Cargo.toml

crates/pm/src/lib.rs:
crates/pm/src/addr.rs:
crates/pm/src/alloc.rs:
crates/pm/src/cache.rs:
crates/pm/src/interleave.rs:
crates/pm/src/media.rs:
crates/pm/src/pool.rs:
crates/pm/src/space.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
