/root/repo/target/debug/deps/nearpm-b2ef11c0723be9e5.d: src/lib.rs

/root/repo/target/debug/deps/libnearpm-b2ef11c0723be9e5.rlib: src/lib.rs

/root/repo/target/debug/deps/libnearpm-b2ef11c0723be9e5.rmeta: src/lib.rs

src/lib.rs:
