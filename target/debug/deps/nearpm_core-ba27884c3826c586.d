/root/repo/target/debug/deps/nearpm_core-ba27884c3826c586.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/system.rs crates/core/src/trace.rs

/root/repo/target/debug/deps/libnearpm_core-ba27884c3826c586.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/system.rs crates/core/src/trace.rs

/root/repo/target/debug/deps/libnearpm_core-ba27884c3826c586.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/system.rs crates/core/src/trace.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/error.rs:
crates/core/src/system.rs:
crates/core/src/trace.rs:
