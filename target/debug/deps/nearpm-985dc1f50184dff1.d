/root/repo/target/debug/deps/nearpm-985dc1f50184dff1.d: src/lib.rs

/root/repo/target/debug/deps/nearpm-985dc1f50184dff1: src/lib.rs

src/lib.rs:
