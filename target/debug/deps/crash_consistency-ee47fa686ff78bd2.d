/root/repo/target/debug/deps/crash_consistency-ee47fa686ff78bd2.d: tests/crash_consistency.rs

/root/repo/target/debug/deps/crash_consistency-ee47fa686ff78bd2: tests/crash_consistency.rs

tests/crash_consistency.rs:
