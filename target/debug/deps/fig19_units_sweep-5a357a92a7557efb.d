/root/repo/target/debug/deps/fig19_units_sweep-5a357a92a7557efb.d: crates/bench/src/bin/fig19_units_sweep.rs

/root/repo/target/debug/deps/fig19_units_sweep-5a357a92a7557efb: crates/bench/src/bin/fig19_units_sweep.rs

crates/bench/src/bin/fig19_units_sweep.rs:
