/root/repo/target/debug/deps/nearpm_pmdk-f1976794f6f4f998.d: crates/pmdk/src/lib.rs

/root/repo/target/debug/deps/libnearpm_pmdk-f1976794f6f4f998.rlib: crates/pmdk/src/lib.rs

/root/repo/target/debug/deps/libnearpm_pmdk-f1976794f6f4f998.rmeta: crates/pmdk/src/lib.rs

crates/pmdk/src/lib.rs:
