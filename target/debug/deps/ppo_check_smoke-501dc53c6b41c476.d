/root/repo/target/debug/deps/ppo_check_smoke-501dc53c6b41c476.d: crates/bench/src/bin/ppo_check_smoke.rs

/root/repo/target/debug/deps/ppo_check_smoke-501dc53c6b41c476: crates/bench/src/bin/ppo_check_smoke.rs

crates/bench/src/bin/ppo_check_smoke.rs:
