/root/repo/target/debug/deps/ppo_check_smoke-030795ff31974a15.d: crates/bench/src/bin/ppo_check_smoke.rs Cargo.toml

/root/repo/target/debug/deps/libppo_check_smoke-030795ff31974a15.rmeta: crates/bench/src/bin/ppo_check_smoke.rs Cargo.toml

crates/bench/src/bin/ppo_check_smoke.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
