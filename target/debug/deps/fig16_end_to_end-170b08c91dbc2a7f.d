/root/repo/target/debug/deps/fig16_end_to_end-170b08c91dbc2a7f.d: crates/bench/src/bin/fig16_end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libfig16_end_to_end-170b08c91dbc2a7f.rmeta: crates/bench/src/bin/fig16_end_to_end.rs Cargo.toml

crates/bench/src/bin/fig16_end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
