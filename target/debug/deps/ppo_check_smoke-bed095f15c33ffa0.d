/root/repo/target/debug/deps/ppo_check_smoke-bed095f15c33ffa0.d: crates/bench/src/bin/ppo_check_smoke.rs Cargo.toml

/root/repo/target/debug/deps/libppo_check_smoke-bed095f15c33ffa0.rmeta: crates/bench/src/bin/ppo_check_smoke.rs Cargo.toml

crates/bench/src/bin/ppo_check_smoke.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
