/root/repo/target/debug/deps/nearpm_sim-cb39ffbdece8392e.d: crates/sim/src/lib.rs crates/sim/src/latency.rs crates/sim/src/resource.rs crates/sim/src/schedule.rs crates/sim/src/stats.rs crates/sim/src/task.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/nearpm_sim-cb39ffbdece8392e: crates/sim/src/lib.rs crates/sim/src/latency.rs crates/sim/src/resource.rs crates/sim/src/schedule.rs crates/sim/src/stats.rs crates/sim/src/task.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/latency.rs:
crates/sim/src/resource.rs:
crates/sim/src/schedule.rs:
crates/sim/src/stats.rs:
crates/sim/src/task.rs:
crates/sim/src/time.rs:
