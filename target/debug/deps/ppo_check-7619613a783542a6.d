/root/repo/target/debug/deps/ppo_check-7619613a783542a6.d: crates/bench/benches/ppo_check.rs Cargo.toml

/root/repo/target/debug/deps/libppo_check-7619613a783542a6.rmeta: crates/bench/benches/ppo_check.rs Cargo.toml

crates/bench/benches/ppo_check.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
