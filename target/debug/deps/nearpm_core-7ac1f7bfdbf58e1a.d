/root/repo/target/debug/deps/nearpm_core-7ac1f7bfdbf58e1a.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/system.rs crates/core/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libnearpm_core-7ac1f7bfdbf58e1a.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/system.rs crates/core/src/trace.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/error.rs:
crates/core/src/system.rs:
crates/core/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
