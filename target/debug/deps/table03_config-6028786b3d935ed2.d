/root/repo/target/debug/deps/table03_config-6028786b3d935ed2.d: crates/bench/src/bin/table03_config.rs Cargo.toml

/root/repo/target/debug/deps/libtable03_config-6028786b3d935ed2.rmeta: crates/bench/src/bin/table03_config.rs Cargo.toml

crates/bench/src/bin/table03_config.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
