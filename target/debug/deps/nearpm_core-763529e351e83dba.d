/root/repo/target/debug/deps/nearpm_core-763529e351e83dba.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/system.rs crates/core/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libnearpm_core-763529e351e83dba.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/system.rs crates/core/src/trace.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/error.rs:
crates/core/src/system.rs:
crates/core/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
