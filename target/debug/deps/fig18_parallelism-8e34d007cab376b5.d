/root/repo/target/debug/deps/fig18_parallelism-8e34d007cab376b5.d: crates/bench/src/bin/fig18_parallelism.rs Cargo.toml

/root/repo/target/debug/deps/libfig18_parallelism-8e34d007cab376b5.rmeta: crates/bench/src/bin/fig18_parallelism.rs Cargo.toml

crates/bench/src/bin/fig18_parallelism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
