/root/repo/target/debug/deps/nearpm_bench-b79c45ba3fe3abe7.d: crates/bench/src/lib.rs crates/bench/src/synthetic.rs Cargo.toml

/root/repo/target/debug/deps/libnearpm_bench-b79c45ba3fe3abe7.rmeta: crates/bench/src/lib.rs crates/bench/src/synthetic.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/synthetic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
