/root/repo/target/debug/deps/nearpm-7c5be4a340c7cbca.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnearpm-7c5be4a340c7cbca.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
