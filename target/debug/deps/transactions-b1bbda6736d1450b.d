/root/repo/target/debug/deps/transactions-b1bbda6736d1450b.d: crates/bench/benches/transactions.rs Cargo.toml

/root/repo/target/debug/deps/libtransactions-b1bbda6736d1450b.rmeta: crates/bench/benches/transactions.rs Cargo.toml

crates/bench/benches/transactions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
