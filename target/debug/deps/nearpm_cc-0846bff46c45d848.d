/root/repo/target/debug/deps/nearpm_cc-0846bff46c45d848.d: crates/cc/src/lib.rs crates/cc/src/arena.rs crates/cc/src/logging.rs crates/cc/src/pages.rs

/root/repo/target/debug/deps/libnearpm_cc-0846bff46c45d848.rlib: crates/cc/src/lib.rs crates/cc/src/arena.rs crates/cc/src/logging.rs crates/cc/src/pages.rs

/root/repo/target/debug/deps/libnearpm_cc-0846bff46c45d848.rmeta: crates/cc/src/lib.rs crates/cc/src/arena.rs crates/cc/src/logging.rs crates/cc/src/pages.rs

crates/cc/src/lib.rs:
crates/cc/src/arena.rs:
crates/cc/src/logging.rs:
crates/cc/src/pages.rs:
