/root/repo/target/debug/deps/nearpm_core-aa51179b35892db4.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/system.rs crates/core/src/trace.rs

/root/repo/target/debug/deps/nearpm_core-aa51179b35892db4: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/system.rs crates/core/src/trace.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/error.rs:
crates/core/src/system.rs:
crates/core/src/trace.rs:
