/root/repo/target/debug/deps/system_integration-dc5a8a94a55721d9.d: tests/system_integration.rs

/root/repo/target/debug/deps/system_integration-dc5a8a94a55721d9: tests/system_integration.rs

tests/system_integration.rs:
