/root/repo/target/debug/deps/proptest-f75f74bde6699b8c.d: crates/shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-f75f74bde6699b8c.rlib: crates/shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-f75f74bde6699b8c.rmeta: crates/shims/proptest/src/lib.rs

crates/shims/proptest/src/lib.rs:
