/root/repo/target/debug/deps/nearpm_sim-721592927a8e53b9.d: crates/sim/src/lib.rs crates/sim/src/latency.rs crates/sim/src/resource.rs crates/sim/src/schedule.rs crates/sim/src/stats.rs crates/sim/src/task.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/libnearpm_sim-721592927a8e53b9.rlib: crates/sim/src/lib.rs crates/sim/src/latency.rs crates/sim/src/resource.rs crates/sim/src/schedule.rs crates/sim/src/stats.rs crates/sim/src/task.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/libnearpm_sim-721592927a8e53b9.rmeta: crates/sim/src/lib.rs crates/sim/src/latency.rs crates/sim/src/resource.rs crates/sim/src/schedule.rs crates/sim/src/stats.rs crates/sim/src/task.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/latency.rs:
crates/sim/src/resource.rs:
crates/sim/src/schedule.rs:
crates/sim/src/stats.rs:
crates/sim/src/task.rs:
crates/sim/src/time.rs:
