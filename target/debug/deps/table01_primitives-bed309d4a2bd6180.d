/root/repo/target/debug/deps/table01_primitives-bed309d4a2bd6180.d: crates/bench/src/bin/table01_primitives.rs Cargo.toml

/root/repo/target/debug/deps/libtable01_primitives-bed309d4a2bd6180.rmeta: crates/bench/src/bin/table01_primitives.rs Cargo.toml

crates/bench/src/bin/table01_primitives.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
