/root/repo/target/debug/deps/nearpm_workloads-92b49a5dfa3e5ec5.d: crates/workloads/src/lib.rs crates/workloads/src/gen.rs crates/workloads/src/runner.rs Cargo.toml

/root/repo/target/debug/deps/libnearpm_workloads-92b49a5dfa3e5ec5.rmeta: crates/workloads/src/lib.rs crates/workloads/src/gen.rs crates/workloads/src/runner.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/gen.rs:
crates/workloads/src/runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
