/root/repo/target/debug/deps/table03_config-0d6e7bbabc317c20.d: crates/bench/src/bin/table03_config.rs

/root/repo/target/debug/deps/table03_config-0d6e7bbabc317c20: crates/bench/src/bin/table03_config.rs

crates/bench/src/bin/table03_config.rs:
