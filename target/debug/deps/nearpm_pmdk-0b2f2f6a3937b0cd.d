/root/repo/target/debug/deps/nearpm_pmdk-0b2f2f6a3937b0cd.d: crates/pmdk/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnearpm_pmdk-0b2f2f6a3937b0cd.rmeta: crates/pmdk/src/lib.rs Cargo.toml

crates/pmdk/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
