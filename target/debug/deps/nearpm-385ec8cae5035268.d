/root/repo/target/debug/deps/nearpm-385ec8cae5035268.d: src/lib.rs

/root/repo/target/debug/deps/libnearpm-385ec8cae5035268.rlib: src/lib.rs

/root/repo/target/debug/deps/libnearpm-385ec8cae5035268.rmeta: src/lib.rs

src/lib.rs:
