/root/repo/target/debug/deps/nearpm_workloads-ee99f294bfad457f.d: crates/workloads/src/lib.rs crates/workloads/src/gen.rs crates/workloads/src/runner.rs

/root/repo/target/debug/deps/libnearpm_workloads-ee99f294bfad457f.rlib: crates/workloads/src/lib.rs crates/workloads/src/gen.rs crates/workloads/src/runner.rs

/root/repo/target/debug/deps/libnearpm_workloads-ee99f294bfad457f.rmeta: crates/workloads/src/lib.rs crates/workloads/src/gen.rs crates/workloads/src/runner.rs

crates/workloads/src/lib.rs:
crates/workloads/src/gen.rs:
crates/workloads/src/runner.rs:
