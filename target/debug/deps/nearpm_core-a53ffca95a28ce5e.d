/root/repo/target/debug/deps/nearpm_core-a53ffca95a28ce5e.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/system.rs crates/core/src/trace.rs

/root/repo/target/debug/deps/libnearpm_core-a53ffca95a28ce5e.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/system.rs crates/core/src/trace.rs

/root/repo/target/debug/deps/libnearpm_core-a53ffca95a28ce5e.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/system.rs crates/core/src/trace.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/error.rs:
crates/core/src/system.rs:
crates/core/src/trace.rs:
