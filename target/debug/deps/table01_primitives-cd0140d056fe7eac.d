/root/repo/target/debug/deps/table01_primitives-cd0140d056fe7eac.d: crates/bench/src/bin/table01_primitives.rs Cargo.toml

/root/repo/target/debug/deps/libtable01_primitives-cd0140d056fe7eac.rmeta: crates/bench/src/bin/table01_primitives.rs Cargo.toml

crates/bench/src/bin/table01_primitives.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
