/root/repo/target/debug/deps/fig19_units_sweep-c4e685862bce9fef.d: crates/bench/src/bin/fig19_units_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libfig19_units_sweep-c4e685862bce9fef.rmeta: crates/bench/src/bin/fig19_units_sweep.rs Cargo.toml

crates/bench/src/bin/fig19_units_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
