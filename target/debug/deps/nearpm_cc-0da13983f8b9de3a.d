/root/repo/target/debug/deps/nearpm_cc-0da13983f8b9de3a.d: crates/cc/src/lib.rs crates/cc/src/arena.rs crates/cc/src/logging.rs crates/cc/src/pages.rs Cargo.toml

/root/repo/target/debug/deps/libnearpm_cc-0da13983f8b9de3a.rmeta: crates/cc/src/lib.rs crates/cc/src/arena.rs crates/cc/src/logging.rs crates/cc/src/pages.rs Cargo.toml

crates/cc/src/lib.rs:
crates/cc/src/arena.rs:
crates/cc/src/logging.rs:
crates/cc/src/pages.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
