/root/repo/target/debug/deps/fig16_end_to_end-83d2b66ebc9b70b6.d: crates/bench/src/bin/fig16_end_to_end.rs

/root/repo/target/debug/deps/fig16_end_to_end-83d2b66ebc9b70b6: crates/bench/src/bin/fig16_end_to_end.rs

crates/bench/src/bin/fig16_end_to_end.rs:
