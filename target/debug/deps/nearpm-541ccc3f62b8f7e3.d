/root/repo/target/debug/deps/nearpm-541ccc3f62b8f7e3.d: src/lib.rs

/root/repo/target/debug/deps/nearpm-541ccc3f62b8f7e3: src/lib.rs

src/lib.rs:
