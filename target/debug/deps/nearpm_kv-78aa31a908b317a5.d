/root/repo/target/debug/deps/nearpm_kv-78aa31a908b317a5.d: crates/kv/src/lib.rs

/root/repo/target/debug/deps/nearpm_kv-78aa31a908b317a5: crates/kv/src/lib.rs

crates/kv/src/lib.rs:
