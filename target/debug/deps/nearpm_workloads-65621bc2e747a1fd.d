/root/repo/target/debug/deps/nearpm_workloads-65621bc2e747a1fd.d: crates/workloads/src/lib.rs crates/workloads/src/gen.rs crates/workloads/src/runner.rs Cargo.toml

/root/repo/target/debug/deps/libnearpm_workloads-65621bc2e747a1fd.rmeta: crates/workloads/src/lib.rs crates/workloads/src/gen.rs crates/workloads/src/runner.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/gen.rs:
crates/workloads/src/runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
