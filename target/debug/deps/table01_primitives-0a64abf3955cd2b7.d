/root/repo/target/debug/deps/table01_primitives-0a64abf3955cd2b7.d: crates/bench/src/bin/table01_primitives.rs

/root/repo/target/debug/deps/table01_primitives-0a64abf3955cd2b7: crates/bench/src/bin/table01_primitives.rs

crates/bench/src/bin/table01_primitives.rs:
