/root/repo/target/debug/deps/crash_consistency-26e75d66ab320f10.d: tests/crash_consistency.rs

/root/repo/target/debug/deps/crash_consistency-26e75d66ab320f10: tests/crash_consistency.rs

tests/crash_consistency.rs:
