/root/repo/target/debug/deps/nearpm_pmdk-77696277fa34f60b.d: crates/pmdk/src/lib.rs

/root/repo/target/debug/deps/nearpm_pmdk-77696277fa34f60b: crates/pmdk/src/lib.rs

crates/pmdk/src/lib.rs:
