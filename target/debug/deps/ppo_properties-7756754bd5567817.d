/root/repo/target/debug/deps/ppo_properties-7756754bd5567817.d: tests/ppo_properties.rs

/root/repo/target/debug/deps/ppo_properties-7756754bd5567817: tests/ppo_properties.rs

tests/ppo_properties.rs:
