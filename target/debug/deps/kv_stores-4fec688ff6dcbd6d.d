/root/repo/target/debug/deps/kv_stores-4fec688ff6dcbd6d.d: crates/bench/benches/kv_stores.rs Cargo.toml

/root/repo/target/debug/deps/libkv_stores-4fec688ff6dcbd6d.rmeta: crates/bench/benches/kv_stores.rs Cargo.toml

crates/bench/benches/kv_stores.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
