/root/repo/target/debug/deps/nearpm_core-0193e938cbe8394c.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/system.rs crates/core/src/trace.rs

/root/repo/target/debug/deps/nearpm_core-0193e938cbe8394c: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/system.rs crates/core/src/trace.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/error.rs:
crates/core/src/system.rs:
crates/core/src/trace.rs:
