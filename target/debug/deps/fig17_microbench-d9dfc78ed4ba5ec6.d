/root/repo/target/debug/deps/fig17_microbench-d9dfc78ed4ba5ec6.d: crates/bench/src/bin/fig17_microbench.rs Cargo.toml

/root/repo/target/debug/deps/libfig17_microbench-d9dfc78ed4ba5ec6.rmeta: crates/bench/src/bin/fig17_microbench.rs Cargo.toml

crates/bench/src/bin/fig17_microbench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
