/root/repo/target/debug/deps/nearpm_workloads-b928d662c51abe3e.d: crates/workloads/src/lib.rs crates/workloads/src/gen.rs crates/workloads/src/runner.rs

/root/repo/target/debug/deps/libnearpm_workloads-b928d662c51abe3e.rlib: crates/workloads/src/lib.rs crates/workloads/src/gen.rs crates/workloads/src/runner.rs

/root/repo/target/debug/deps/libnearpm_workloads-b928d662c51abe3e.rmeta: crates/workloads/src/lib.rs crates/workloads/src/gen.rs crates/workloads/src/runner.rs

crates/workloads/src/lib.rs:
crates/workloads/src/gen.rs:
crates/workloads/src/runner.rs:
