/root/repo/target/debug/deps/system_integration-34194c4476ec5a61.d: tests/system_integration.rs

/root/repo/target/debug/deps/system_integration-34194c4476ec5a61: tests/system_integration.rs

tests/system_integration.rs:
