/root/repo/target/debug/deps/nearpm_device-baa515bbfb5f4d1b.d: crates/device/src/lib.rs crates/device/src/address_map.rs crates/device/src/device.rs crates/device/src/fifo.rs crates/device/src/inflight.rs crates/device/src/metadata.rs crates/device/src/request.rs crates/device/src/unit.rs

/root/repo/target/debug/deps/nearpm_device-baa515bbfb5f4d1b: crates/device/src/lib.rs crates/device/src/address_map.rs crates/device/src/device.rs crates/device/src/fifo.rs crates/device/src/inflight.rs crates/device/src/metadata.rs crates/device/src/request.rs crates/device/src/unit.rs

crates/device/src/lib.rs:
crates/device/src/address_map.rs:
crates/device/src/device.rs:
crates/device/src/fifo.rs:
crates/device/src/inflight.rs:
crates/device/src/metadata.rs:
crates/device/src/request.rs:
crates/device/src/unit.rs:
