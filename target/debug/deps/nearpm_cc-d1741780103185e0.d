/root/repo/target/debug/deps/nearpm_cc-d1741780103185e0.d: crates/cc/src/lib.rs crates/cc/src/arena.rs crates/cc/src/logging.rs crates/cc/src/pages.rs

/root/repo/target/debug/deps/libnearpm_cc-d1741780103185e0.rlib: crates/cc/src/lib.rs crates/cc/src/arena.rs crates/cc/src/logging.rs crates/cc/src/pages.rs

/root/repo/target/debug/deps/libnearpm_cc-d1741780103185e0.rmeta: crates/cc/src/lib.rs crates/cc/src/arena.rs crates/cc/src/logging.rs crates/cc/src/pages.rs

crates/cc/src/lib.rs:
crates/cc/src/arena.rs:
crates/cc/src/logging.rs:
crates/cc/src/pages.rs:
