/root/repo/target/debug/deps/nearpm_bench-a13d13d44070f1b9.d: crates/bench/src/lib.rs crates/bench/src/synthetic.rs

/root/repo/target/debug/deps/nearpm_bench-a13d13d44070f1b9: crates/bench/src/lib.rs crates/bench/src/synthetic.rs

crates/bench/src/lib.rs:
crates/bench/src/synthetic.rs:
