/root/repo/target/debug/deps/copy_primitive-9072993ea8f539b5.d: crates/bench/benches/copy_primitive.rs Cargo.toml

/root/repo/target/debug/deps/libcopy_primitive-9072993ea8f539b5.rmeta: crates/bench/benches/copy_primitive.rs Cargo.toml

crates/bench/benches/copy_primitive.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
