/root/repo/target/debug/deps/nearpm_pm-53aaef50a9b066d1.d: crates/pm/src/lib.rs crates/pm/src/addr.rs crates/pm/src/alloc.rs crates/pm/src/cache.rs crates/pm/src/interleave.rs crates/pm/src/media.rs crates/pm/src/pool.rs crates/pm/src/space.rs

/root/repo/target/debug/deps/libnearpm_pm-53aaef50a9b066d1.rlib: crates/pm/src/lib.rs crates/pm/src/addr.rs crates/pm/src/alloc.rs crates/pm/src/cache.rs crates/pm/src/interleave.rs crates/pm/src/media.rs crates/pm/src/pool.rs crates/pm/src/space.rs

/root/repo/target/debug/deps/libnearpm_pm-53aaef50a9b066d1.rmeta: crates/pm/src/lib.rs crates/pm/src/addr.rs crates/pm/src/alloc.rs crates/pm/src/cache.rs crates/pm/src/interleave.rs crates/pm/src/media.rs crates/pm/src/pool.rs crates/pm/src/space.rs

crates/pm/src/lib.rs:
crates/pm/src/addr.rs:
crates/pm/src/alloc.rs:
crates/pm/src/cache.rs:
crates/pm/src/interleave.rs:
crates/pm/src/media.rs:
crates/pm/src/pool.rs:
crates/pm/src/space.rs:
