/root/repo/target/debug/deps/fig18_parallelism-bbacaf1d559ca20a.d: crates/bench/src/bin/fig18_parallelism.rs Cargo.toml

/root/repo/target/debug/deps/libfig18_parallelism-bbacaf1d559ca20a.rmeta: crates/bench/src/bin/fig18_parallelism.rs Cargo.toml

crates/bench/src/bin/fig18_parallelism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
