/root/repo/target/debug/deps/nearpm_ppo-917a064b91655ac7.d: crates/ppo/src/lib.rs crates/ppo/src/event.rs crates/ppo/src/index.rs crates/ppo/src/invariants.rs crates/ppo/src/statemachine.rs

/root/repo/target/debug/deps/libnearpm_ppo-917a064b91655ac7.rlib: crates/ppo/src/lib.rs crates/ppo/src/event.rs crates/ppo/src/index.rs crates/ppo/src/invariants.rs crates/ppo/src/statemachine.rs

/root/repo/target/debug/deps/libnearpm_ppo-917a064b91655ac7.rmeta: crates/ppo/src/lib.rs crates/ppo/src/event.rs crates/ppo/src/index.rs crates/ppo/src/invariants.rs crates/ppo/src/statemachine.rs

crates/ppo/src/lib.rs:
crates/ppo/src/event.rs:
crates/ppo/src/index.rs:
crates/ppo/src/invariants.rs:
crates/ppo/src/statemachine.rs:
