/root/repo/target/debug/deps/fig18_parallelism-b1ce6c052d437c11.d: crates/bench/src/bin/fig18_parallelism.rs

/root/repo/target/debug/deps/fig18_parallelism-b1ce6c052d437c11: crates/bench/src/bin/fig18_parallelism.rs

crates/bench/src/bin/fig18_parallelism.rs:
