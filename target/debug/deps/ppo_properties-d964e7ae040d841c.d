/root/repo/target/debug/deps/ppo_properties-d964e7ae040d841c.d: tests/ppo_properties.rs Cargo.toml

/root/repo/target/debug/deps/libppo_properties-d964e7ae040d841c.rmeta: tests/ppo_properties.rs Cargo.toml

tests/ppo_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
