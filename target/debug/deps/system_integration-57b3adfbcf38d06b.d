/root/repo/target/debug/deps/system_integration-57b3adfbcf38d06b.d: tests/system_integration.rs Cargo.toml

/root/repo/target/debug/deps/libsystem_integration-57b3adfbcf38d06b.rmeta: tests/system_integration.rs Cargo.toml

tests/system_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
