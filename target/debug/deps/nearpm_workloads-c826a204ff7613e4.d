/root/repo/target/debug/deps/nearpm_workloads-c826a204ff7613e4.d: crates/workloads/src/lib.rs crates/workloads/src/gen.rs crates/workloads/src/runner.rs

/root/repo/target/debug/deps/nearpm_workloads-c826a204ff7613e4: crates/workloads/src/lib.rs crates/workloads/src/gen.rs crates/workloads/src/runner.rs

crates/workloads/src/lib.rs:
crates/workloads/src/gen.rs:
crates/workloads/src/runner.rs:
