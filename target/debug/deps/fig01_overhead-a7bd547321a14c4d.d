/root/repo/target/debug/deps/fig01_overhead-a7bd547321a14c4d.d: crates/bench/src/bin/fig01_overhead.rs

/root/repo/target/debug/deps/fig01_overhead-a7bd547321a14c4d: crates/bench/src/bin/fig01_overhead.rs

crates/bench/src/bin/fig01_overhead.rs:
