/root/repo/target/debug/deps/nearpm_cc-b2fa953cb6e2772b.d: crates/cc/src/lib.rs crates/cc/src/arena.rs crates/cc/src/logging.rs crates/cc/src/pages.rs

/root/repo/target/debug/deps/nearpm_cc-b2fa953cb6e2772b: crates/cc/src/lib.rs crates/cc/src/arena.rs crates/cc/src/logging.rs crates/cc/src/pages.rs

crates/cc/src/lib.rs:
crates/cc/src/arena.rs:
crates/cc/src/logging.rs:
crates/cc/src/pages.rs:
