/root/repo/target/release/examples/crash_recovery-b472a1a2ce5123bc.d: examples/crash_recovery.rs

/root/repo/target/release/examples/crash_recovery-b472a1a2ce5123bc: examples/crash_recovery.rs

examples/crash_recovery.rs:
