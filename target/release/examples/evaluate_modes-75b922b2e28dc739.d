/root/repo/target/release/examples/evaluate_modes-75b922b2e28dc739.d: examples/evaluate_modes.rs

/root/repo/target/release/examples/evaluate_modes-75b922b2e28dc739: examples/evaluate_modes.rs

examples/evaluate_modes.rs:
