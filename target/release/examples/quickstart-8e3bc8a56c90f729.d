/root/repo/target/release/examples/quickstart-8e3bc8a56c90f729.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-8e3bc8a56c90f729: examples/quickstart.rs

examples/quickstart.rs:
