/root/repo/target/release/deps/transactions-04f0095195f977c9.d: crates/bench/benches/transactions.rs

/root/repo/target/release/deps/transactions-04f0095195f977c9: crates/bench/benches/transactions.rs

crates/bench/benches/transactions.rs:
