/root/repo/target/release/deps/kv_stores-a1bfa01c6e3d0be8.d: crates/bench/benches/kv_stores.rs

/root/repo/target/release/deps/kv_stores-a1bfa01c6e3d0be8: crates/bench/benches/kv_stores.rs

crates/bench/benches/kv_stores.rs:
