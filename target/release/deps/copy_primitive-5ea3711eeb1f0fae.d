/root/repo/target/release/deps/copy_primitive-5ea3711eeb1f0fae.d: crates/bench/benches/copy_primitive.rs

/root/repo/target/release/deps/copy_primitive-5ea3711eeb1f0fae: crates/bench/benches/copy_primitive.rs

crates/bench/benches/copy_primitive.rs:
