/root/repo/target/release/deps/nearpm_bench-6b5620aaecc2c88c.d: crates/bench/src/lib.rs crates/bench/src/synthetic.rs

/root/repo/target/release/deps/nearpm_bench-6b5620aaecc2c88c: crates/bench/src/lib.rs crates/bench/src/synthetic.rs

crates/bench/src/lib.rs:
crates/bench/src/synthetic.rs:
