/root/repo/target/release/deps/nearpm_kv-b6145eb102e2be0a.d: crates/kv/src/lib.rs

/root/repo/target/release/deps/nearpm_kv-b6145eb102e2be0a: crates/kv/src/lib.rs

crates/kv/src/lib.rs:
