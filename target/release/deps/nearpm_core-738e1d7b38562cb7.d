/root/repo/target/release/deps/nearpm_core-738e1d7b38562cb7.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/system.rs crates/core/src/trace.rs

/root/repo/target/release/deps/libnearpm_core-738e1d7b38562cb7.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/system.rs crates/core/src/trace.rs

/root/repo/target/release/deps/libnearpm_core-738e1d7b38562cb7.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/system.rs crates/core/src/trace.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/error.rs:
crates/core/src/system.rs:
crates/core/src/trace.rs:
