/root/repo/target/release/deps/nearpm_device-b23d330d129c8de7.d: crates/device/src/lib.rs crates/device/src/address_map.rs crates/device/src/device.rs crates/device/src/fifo.rs crates/device/src/inflight.rs crates/device/src/metadata.rs crates/device/src/request.rs crates/device/src/unit.rs

/root/repo/target/release/deps/nearpm_device-b23d330d129c8de7: crates/device/src/lib.rs crates/device/src/address_map.rs crates/device/src/device.rs crates/device/src/fifo.rs crates/device/src/inflight.rs crates/device/src/metadata.rs crates/device/src/request.rs crates/device/src/unit.rs

crates/device/src/lib.rs:
crates/device/src/address_map.rs:
crates/device/src/device.rs:
crates/device/src/fifo.rs:
crates/device/src/inflight.rs:
crates/device/src/metadata.rs:
crates/device/src/request.rs:
crates/device/src/unit.rs:
