/root/repo/target/release/deps/nearpm_core-f66923c00adc9f06.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/system.rs crates/core/src/trace.rs

/root/repo/target/release/deps/nearpm_core-f66923c00adc9f06: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/system.rs crates/core/src/trace.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/error.rs:
crates/core/src/system.rs:
crates/core/src/trace.rs:
