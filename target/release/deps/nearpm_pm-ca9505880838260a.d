/root/repo/target/release/deps/nearpm_pm-ca9505880838260a.d: crates/pm/src/lib.rs crates/pm/src/addr.rs crates/pm/src/alloc.rs crates/pm/src/cache.rs crates/pm/src/interleave.rs crates/pm/src/media.rs crates/pm/src/pool.rs crates/pm/src/space.rs

/root/repo/target/release/deps/libnearpm_pm-ca9505880838260a.rlib: crates/pm/src/lib.rs crates/pm/src/addr.rs crates/pm/src/alloc.rs crates/pm/src/cache.rs crates/pm/src/interleave.rs crates/pm/src/media.rs crates/pm/src/pool.rs crates/pm/src/space.rs

/root/repo/target/release/deps/libnearpm_pm-ca9505880838260a.rmeta: crates/pm/src/lib.rs crates/pm/src/addr.rs crates/pm/src/alloc.rs crates/pm/src/cache.rs crates/pm/src/interleave.rs crates/pm/src/media.rs crates/pm/src/pool.rs crates/pm/src/space.rs

crates/pm/src/lib.rs:
crates/pm/src/addr.rs:
crates/pm/src/alloc.rs:
crates/pm/src/cache.rs:
crates/pm/src/interleave.rs:
crates/pm/src/media.rs:
crates/pm/src/pool.rs:
crates/pm/src/space.rs:
