/root/repo/target/release/deps/fig01_overhead-43b585c611cfdfc5.d: crates/bench/src/bin/fig01_overhead.rs

/root/repo/target/release/deps/fig01_overhead-43b585c611cfdfc5: crates/bench/src/bin/fig01_overhead.rs

crates/bench/src/bin/fig01_overhead.rs:
