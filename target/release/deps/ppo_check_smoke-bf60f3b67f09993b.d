/root/repo/target/release/deps/ppo_check_smoke-bf60f3b67f09993b.d: crates/bench/src/bin/ppo_check_smoke.rs

/root/repo/target/release/deps/ppo_check_smoke-bf60f3b67f09993b: crates/bench/src/bin/ppo_check_smoke.rs

crates/bench/src/bin/ppo_check_smoke.rs:
