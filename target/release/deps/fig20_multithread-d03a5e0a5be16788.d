/root/repo/target/release/deps/fig20_multithread-d03a5e0a5be16788.d: crates/bench/src/bin/fig20_multithread.rs

/root/repo/target/release/deps/fig20_multithread-d03a5e0a5be16788: crates/bench/src/bin/fig20_multithread.rs

crates/bench/src/bin/fig20_multithread.rs:
