/root/repo/target/release/deps/nearpm_workloads-cd2115922f5f4522.d: crates/workloads/src/lib.rs crates/workloads/src/gen.rs crates/workloads/src/runner.rs

/root/repo/target/release/deps/libnearpm_workloads-cd2115922f5f4522.rlib: crates/workloads/src/lib.rs crates/workloads/src/gen.rs crates/workloads/src/runner.rs

/root/repo/target/release/deps/libnearpm_workloads-cd2115922f5f4522.rmeta: crates/workloads/src/lib.rs crates/workloads/src/gen.rs crates/workloads/src/runner.rs

crates/workloads/src/lib.rs:
crates/workloads/src/gen.rs:
crates/workloads/src/runner.rs:
