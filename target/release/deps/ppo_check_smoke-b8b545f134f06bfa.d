/root/repo/target/release/deps/ppo_check_smoke-b8b545f134f06bfa.d: crates/bench/src/bin/ppo_check_smoke.rs

/root/repo/target/release/deps/ppo_check_smoke-b8b545f134f06bfa: crates/bench/src/bin/ppo_check_smoke.rs

crates/bench/src/bin/ppo_check_smoke.rs:
