/root/repo/target/release/deps/nearpm_pmdk-1ce5f0f978f26ace.d: crates/pmdk/src/lib.rs

/root/repo/target/release/deps/nearpm_pmdk-1ce5f0f978f26ace: crates/pmdk/src/lib.rs

crates/pmdk/src/lib.rs:
