/root/repo/target/release/deps/fig17_microbench-b3d6b3d83e294362.d: crates/bench/src/bin/fig17_microbench.rs

/root/repo/target/release/deps/fig17_microbench-b3d6b3d83e294362: crates/bench/src/bin/fig17_microbench.rs

crates/bench/src/bin/fig17_microbench.rs:
