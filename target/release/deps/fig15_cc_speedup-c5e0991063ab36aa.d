/root/repo/target/release/deps/fig15_cc_speedup-c5e0991063ab36aa.d: crates/bench/src/bin/fig15_cc_speedup.rs

/root/repo/target/release/deps/fig15_cc_speedup-c5e0991063ab36aa: crates/bench/src/bin/fig15_cc_speedup.rs

crates/bench/src/bin/fig15_cc_speedup.rs:
