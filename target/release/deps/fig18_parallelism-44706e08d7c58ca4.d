/root/repo/target/release/deps/fig18_parallelism-44706e08d7c58ca4.d: crates/bench/src/bin/fig18_parallelism.rs

/root/repo/target/release/deps/fig18_parallelism-44706e08d7c58ca4: crates/bench/src/bin/fig18_parallelism.rs

crates/bench/src/bin/fig18_parallelism.rs:
