/root/repo/target/release/deps/nearpm_pmdk-e3c5a535e3f27b82.d: crates/pmdk/src/lib.rs

/root/repo/target/release/deps/libnearpm_pmdk-e3c5a535e3f27b82.rlib: crates/pmdk/src/lib.rs

/root/repo/target/release/deps/libnearpm_pmdk-e3c5a535e3f27b82.rmeta: crates/pmdk/src/lib.rs

crates/pmdk/src/lib.rs:
