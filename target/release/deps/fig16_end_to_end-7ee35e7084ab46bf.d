/root/repo/target/release/deps/fig16_end_to_end-7ee35e7084ab46bf.d: crates/bench/src/bin/fig16_end_to_end.rs

/root/repo/target/release/deps/fig16_end_to_end-7ee35e7084ab46bf: crates/bench/src/bin/fig16_end_to_end.rs

crates/bench/src/bin/fig16_end_to_end.rs:
