/root/repo/target/release/deps/fig15_cc_speedup-0f1c8171066f9ff2.d: crates/bench/src/bin/fig15_cc_speedup.rs

/root/repo/target/release/deps/fig15_cc_speedup-0f1c8171066f9ff2: crates/bench/src/bin/fig15_cc_speedup.rs

crates/bench/src/bin/fig15_cc_speedup.rs:
