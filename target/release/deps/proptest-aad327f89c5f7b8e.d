/root/repo/target/release/deps/proptest-aad327f89c5f7b8e.d: crates/shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-aad327f89c5f7b8e.rlib: crates/shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-aad327f89c5f7b8e.rmeta: crates/shims/proptest/src/lib.rs

crates/shims/proptest/src/lib.rs:
