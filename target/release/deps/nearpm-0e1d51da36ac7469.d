/root/repo/target/release/deps/nearpm-0e1d51da36ac7469.d: src/lib.rs

/root/repo/target/release/deps/nearpm-0e1d51da36ac7469: src/lib.rs

src/lib.rs:
