/root/repo/target/release/deps/nearpm_kv-f2d9842e9d08e086.d: crates/kv/src/lib.rs

/root/repo/target/release/deps/libnearpm_kv-f2d9842e9d08e086.rlib: crates/kv/src/lib.rs

/root/repo/target/release/deps/libnearpm_kv-f2d9842e9d08e086.rmeta: crates/kv/src/lib.rs

crates/kv/src/lib.rs:
