/root/repo/target/release/deps/nearpm_bench-d3f5e0e22f345572.d: crates/bench/src/lib.rs crates/bench/src/synthetic.rs

/root/repo/target/release/deps/libnearpm_bench-d3f5e0e22f345572.rlib: crates/bench/src/lib.rs crates/bench/src/synthetic.rs

/root/repo/target/release/deps/libnearpm_bench-d3f5e0e22f345572.rmeta: crates/bench/src/lib.rs crates/bench/src/synthetic.rs

crates/bench/src/lib.rs:
crates/bench/src/synthetic.rs:
