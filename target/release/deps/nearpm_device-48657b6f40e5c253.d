/root/repo/target/release/deps/nearpm_device-48657b6f40e5c253.d: crates/device/src/lib.rs crates/device/src/address_map.rs crates/device/src/device.rs crates/device/src/fifo.rs crates/device/src/inflight.rs crates/device/src/metadata.rs crates/device/src/request.rs crates/device/src/unit.rs

/root/repo/target/release/deps/libnearpm_device-48657b6f40e5c253.rlib: crates/device/src/lib.rs crates/device/src/address_map.rs crates/device/src/device.rs crates/device/src/fifo.rs crates/device/src/inflight.rs crates/device/src/metadata.rs crates/device/src/request.rs crates/device/src/unit.rs

/root/repo/target/release/deps/libnearpm_device-48657b6f40e5c253.rmeta: crates/device/src/lib.rs crates/device/src/address_map.rs crates/device/src/device.rs crates/device/src/fifo.rs crates/device/src/inflight.rs crates/device/src/metadata.rs crates/device/src/request.rs crates/device/src/unit.rs

crates/device/src/lib.rs:
crates/device/src/address_map.rs:
crates/device/src/device.rs:
crates/device/src/fifo.rs:
crates/device/src/inflight.rs:
crates/device/src/metadata.rs:
crates/device/src/request.rs:
crates/device/src/unit.rs:
