/root/repo/target/release/deps/ppo_check-c2c1d91cfcb2bc11.d: crates/bench/benches/ppo_check.rs

/root/repo/target/release/deps/ppo_check-c2c1d91cfcb2bc11: crates/bench/benches/ppo_check.rs

crates/bench/benches/ppo_check.rs:
