/root/repo/target/release/deps/nearpm_sim-b045103a32611935.d: crates/sim/src/lib.rs crates/sim/src/latency.rs crates/sim/src/resource.rs crates/sim/src/schedule.rs crates/sim/src/stats.rs crates/sim/src/task.rs crates/sim/src/time.rs

/root/repo/target/release/deps/libnearpm_sim-b045103a32611935.rlib: crates/sim/src/lib.rs crates/sim/src/latency.rs crates/sim/src/resource.rs crates/sim/src/schedule.rs crates/sim/src/stats.rs crates/sim/src/task.rs crates/sim/src/time.rs

/root/repo/target/release/deps/libnearpm_sim-b045103a32611935.rmeta: crates/sim/src/lib.rs crates/sim/src/latency.rs crates/sim/src/resource.rs crates/sim/src/schedule.rs crates/sim/src/stats.rs crates/sim/src/task.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/latency.rs:
crates/sim/src/resource.rs:
crates/sim/src/schedule.rs:
crates/sim/src/stats.rs:
crates/sim/src/task.rs:
crates/sim/src/time.rs:
