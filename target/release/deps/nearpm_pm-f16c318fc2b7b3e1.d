/root/repo/target/release/deps/nearpm_pm-f16c318fc2b7b3e1.d: crates/pm/src/lib.rs crates/pm/src/addr.rs crates/pm/src/alloc.rs crates/pm/src/cache.rs crates/pm/src/interleave.rs crates/pm/src/media.rs crates/pm/src/pool.rs crates/pm/src/space.rs

/root/repo/target/release/deps/nearpm_pm-f16c318fc2b7b3e1: crates/pm/src/lib.rs crates/pm/src/addr.rs crates/pm/src/alloc.rs crates/pm/src/cache.rs crates/pm/src/interleave.rs crates/pm/src/media.rs crates/pm/src/pool.rs crates/pm/src/space.rs

crates/pm/src/lib.rs:
crates/pm/src/addr.rs:
crates/pm/src/alloc.rs:
crates/pm/src/cache.rs:
crates/pm/src/interleave.rs:
crates/pm/src/media.rs:
crates/pm/src/pool.rs:
crates/pm/src/space.rs:
