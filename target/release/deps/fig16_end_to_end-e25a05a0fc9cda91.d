/root/repo/target/release/deps/fig16_end_to_end-e25a05a0fc9cda91.d: crates/bench/src/bin/fig16_end_to_end.rs

/root/repo/target/release/deps/fig16_end_to_end-e25a05a0fc9cda91: crates/bench/src/bin/fig16_end_to_end.rs

crates/bench/src/bin/fig16_end_to_end.rs:
