/root/repo/target/release/deps/nearpm_cc-c25f47b47c381159.d: crates/cc/src/lib.rs crates/cc/src/arena.rs crates/cc/src/logging.rs crates/cc/src/pages.rs

/root/repo/target/release/deps/nearpm_cc-c25f47b47c381159: crates/cc/src/lib.rs crates/cc/src/arena.rs crates/cc/src/logging.rs crates/cc/src/pages.rs

crates/cc/src/lib.rs:
crates/cc/src/arena.rs:
crates/cc/src/logging.rs:
crates/cc/src/pages.rs:
