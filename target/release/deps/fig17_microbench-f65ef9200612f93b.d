/root/repo/target/release/deps/fig17_microbench-f65ef9200612f93b.d: crates/bench/src/bin/fig17_microbench.rs

/root/repo/target/release/deps/fig17_microbench-f65ef9200612f93b: crates/bench/src/bin/fig17_microbench.rs

crates/bench/src/bin/fig17_microbench.rs:
