/root/repo/target/release/deps/fig18_parallelism-f2b7b00e1a364a98.d: crates/bench/src/bin/fig18_parallelism.rs

/root/repo/target/release/deps/fig18_parallelism-f2b7b00e1a364a98: crates/bench/src/bin/fig18_parallelism.rs

crates/bench/src/bin/fig18_parallelism.rs:
