/root/repo/target/release/deps/table03_config-dac32b8a86a8c72b.d: crates/bench/src/bin/table03_config.rs

/root/repo/target/release/deps/table03_config-dac32b8a86a8c72b: crates/bench/src/bin/table03_config.rs

crates/bench/src/bin/table03_config.rs:
