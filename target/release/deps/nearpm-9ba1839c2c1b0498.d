/root/repo/target/release/deps/nearpm-9ba1839c2c1b0498.d: src/lib.rs

/root/repo/target/release/deps/libnearpm-9ba1839c2c1b0498.rlib: src/lib.rs

/root/repo/target/release/deps/libnearpm-9ba1839c2c1b0498.rmeta: src/lib.rs

src/lib.rs:
