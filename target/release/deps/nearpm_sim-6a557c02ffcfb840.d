/root/repo/target/release/deps/nearpm_sim-6a557c02ffcfb840.d: crates/sim/src/lib.rs crates/sim/src/latency.rs crates/sim/src/resource.rs crates/sim/src/schedule.rs crates/sim/src/stats.rs crates/sim/src/task.rs crates/sim/src/time.rs

/root/repo/target/release/deps/nearpm_sim-6a557c02ffcfb840: crates/sim/src/lib.rs crates/sim/src/latency.rs crates/sim/src/resource.rs crates/sim/src/schedule.rs crates/sim/src/stats.rs crates/sim/src/task.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/latency.rs:
crates/sim/src/resource.rs:
crates/sim/src/schedule.rs:
crates/sim/src/stats.rs:
crates/sim/src/task.rs:
crates/sim/src/time.rs:
