/root/repo/target/release/deps/nearpm_ppo-bacdf19262c20b3d.d: crates/ppo/src/lib.rs crates/ppo/src/event.rs crates/ppo/src/index.rs crates/ppo/src/invariants.rs crates/ppo/src/statemachine.rs

/root/repo/target/release/deps/libnearpm_ppo-bacdf19262c20b3d.rlib: crates/ppo/src/lib.rs crates/ppo/src/event.rs crates/ppo/src/index.rs crates/ppo/src/invariants.rs crates/ppo/src/statemachine.rs

/root/repo/target/release/deps/libnearpm_ppo-bacdf19262c20b3d.rmeta: crates/ppo/src/lib.rs crates/ppo/src/event.rs crates/ppo/src/index.rs crates/ppo/src/invariants.rs crates/ppo/src/statemachine.rs

crates/ppo/src/lib.rs:
crates/ppo/src/event.rs:
crates/ppo/src/index.rs:
crates/ppo/src/invariants.rs:
crates/ppo/src/statemachine.rs:
