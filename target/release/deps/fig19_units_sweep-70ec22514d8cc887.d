/root/repo/target/release/deps/fig19_units_sweep-70ec22514d8cc887.d: crates/bench/src/bin/fig19_units_sweep.rs

/root/repo/target/release/deps/fig19_units_sweep-70ec22514d8cc887: crates/bench/src/bin/fig19_units_sweep.rs

crates/bench/src/bin/fig19_units_sweep.rs:
