/root/repo/target/release/deps/fig01_overhead-41420ea7ac4e892b.d: crates/bench/src/bin/fig01_overhead.rs

/root/repo/target/release/deps/fig01_overhead-41420ea7ac4e892b: crates/bench/src/bin/fig01_overhead.rs

crates/bench/src/bin/fig01_overhead.rs:
