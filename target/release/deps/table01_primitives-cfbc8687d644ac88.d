/root/repo/target/release/deps/table01_primitives-cfbc8687d644ac88.d: crates/bench/src/bin/table01_primitives.rs

/root/repo/target/release/deps/table01_primitives-cfbc8687d644ac88: crates/bench/src/bin/table01_primitives.rs

crates/bench/src/bin/table01_primitives.rs:
