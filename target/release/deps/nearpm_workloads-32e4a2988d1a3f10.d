/root/repo/target/release/deps/nearpm_workloads-32e4a2988d1a3f10.d: crates/workloads/src/lib.rs crates/workloads/src/gen.rs crates/workloads/src/runner.rs

/root/repo/target/release/deps/nearpm_workloads-32e4a2988d1a3f10: crates/workloads/src/lib.rs crates/workloads/src/gen.rs crates/workloads/src/runner.rs

crates/workloads/src/lib.rs:
crates/workloads/src/gen.rs:
crates/workloads/src/runner.rs:
