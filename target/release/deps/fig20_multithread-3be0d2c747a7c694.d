/root/repo/target/release/deps/fig20_multithread-3be0d2c747a7c694.d: crates/bench/src/bin/fig20_multithread.rs

/root/repo/target/release/deps/fig20_multithread-3be0d2c747a7c694: crates/bench/src/bin/fig20_multithread.rs

crates/bench/src/bin/fig20_multithread.rs:
