/root/repo/target/release/deps/criterion-6b02cf13a263e5f3.d: crates/shims/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-6b02cf13a263e5f3.rlib: crates/shims/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-6b02cf13a263e5f3.rmeta: crates/shims/criterion/src/lib.rs

crates/shims/criterion/src/lib.rs:
