/root/repo/target/release/deps/table01_primitives-7c8651156e51c008.d: crates/bench/src/bin/table01_primitives.rs

/root/repo/target/release/deps/table01_primitives-7c8651156e51c008: crates/bench/src/bin/table01_primitives.rs

crates/bench/src/bin/table01_primitives.rs:
