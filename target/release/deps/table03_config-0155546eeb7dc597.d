/root/repo/target/release/deps/table03_config-0155546eeb7dc597.d: crates/bench/src/bin/table03_config.rs

/root/repo/target/release/deps/table03_config-0155546eeb7dc597: crates/bench/src/bin/table03_config.rs

crates/bench/src/bin/table03_config.rs:
