/root/repo/target/release/deps/nearpm_cc-927fec21d6e38054.d: crates/cc/src/lib.rs crates/cc/src/arena.rs crates/cc/src/logging.rs crates/cc/src/pages.rs

/root/repo/target/release/deps/libnearpm_cc-927fec21d6e38054.rlib: crates/cc/src/lib.rs crates/cc/src/arena.rs crates/cc/src/logging.rs crates/cc/src/pages.rs

/root/repo/target/release/deps/libnearpm_cc-927fec21d6e38054.rmeta: crates/cc/src/lib.rs crates/cc/src/arena.rs crates/cc/src/logging.rs crates/cc/src/pages.rs

crates/cc/src/lib.rs:
crates/cc/src/arena.rs:
crates/cc/src/logging.rs:
crates/cc/src/pages.rs:
