/root/repo/target/release/deps/proptest-a97552478fb4b647.d: crates/shims/proptest/src/lib.rs

/root/repo/target/release/deps/proptest-a97552478fb4b647: crates/shims/proptest/src/lib.rs

crates/shims/proptest/src/lib.rs:
