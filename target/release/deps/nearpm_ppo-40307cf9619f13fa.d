/root/repo/target/release/deps/nearpm_ppo-40307cf9619f13fa.d: crates/ppo/src/lib.rs crates/ppo/src/differential.rs crates/ppo/src/event.rs crates/ppo/src/index.rs crates/ppo/src/invariants.rs crates/ppo/src/statemachine.rs

/root/repo/target/release/deps/nearpm_ppo-40307cf9619f13fa: crates/ppo/src/lib.rs crates/ppo/src/differential.rs crates/ppo/src/event.rs crates/ppo/src/index.rs crates/ppo/src/invariants.rs crates/ppo/src/statemachine.rs

crates/ppo/src/lib.rs:
crates/ppo/src/differential.rs:
crates/ppo/src/event.rs:
crates/ppo/src/index.rs:
crates/ppo/src/invariants.rs:
crates/ppo/src/statemachine.rs:
