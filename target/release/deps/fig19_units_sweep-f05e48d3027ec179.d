/root/repo/target/release/deps/fig19_units_sweep-f05e48d3027ec179.d: crates/bench/src/bin/fig19_units_sweep.rs

/root/repo/target/release/deps/fig19_units_sweep-f05e48d3027ec179: crates/bench/src/bin/fig19_units_sweep.rs

crates/bench/src/bin/fig19_units_sweep.rs:
