//! # nearpm — near-data processing for storage-class applications
//!
//! Facade crate of the NearPM reproduction (EuroSys 2023). It re-exports the
//! workspace crates so that applications can depend on a single crate:
//!
//! * [`core`](nearpm_core) — the [`NearPmSystem`](nearpm_core::NearPmSystem)
//!   facade: configuration, CPU model, offload path, PPO trace, run reports.
//! * [`cc`](nearpm_cc) — crash-consistency mechanisms (undo/redo logging,
//!   checkpointing, shadow paging) with CPU and NearPM backends.
//! * [`pmdk`](nearpm_pmdk) — a PMDK-like transactional object layer.
//! * [`kv`](nearpm_kv) — crash-consistent key-value structures.
//! * [`workloads`](nearpm_workloads) — the nine evaluation workloads and
//!   their generators.
//! * [`sim`](nearpm_sim), [`pm`](nearpm_pm), [`ppo`](nearpm_ppo),
//!   [`device`](nearpm_device) — the simulation, emulated-PM, ordering-model,
//!   and hardware-model substrates.
//!
//! See `examples/` for runnable end-to-end programs and `crates/bench` for
//! the binaries that regenerate every figure of the paper's evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use nearpm_cc as cc;
pub use nearpm_core as core;
pub use nearpm_device as device;
pub use nearpm_kv as kv;
pub use nearpm_pm as pm;
pub use nearpm_pmdk as pmdk;
pub use nearpm_ppo as ppo;
pub use nearpm_sim as sim;
pub use nearpm_workloads as workloads;

// Convenience re-exports of the most common entry points.
pub use nearpm_cc::{Checkpoint, Mechanism, RedoLog, ShadowPaging, UndoLog};
pub use nearpm_core::{ExecMode, NearPmSystem, RunReport, SystemConfig};
pub use nearpm_workloads::{RunOptions, Runner, Workload};
