//! Randomized differential tests of the pluggable media backends: for any
//! interleaved multi-device geometry and any operation sequence, the three
//! storage engines (`HeapMedia`, `FileMedia`, `SparseMedia`) must be
//! indistinguishable through the `PmSpace` API — byte-identical device
//! images, identical traffic stats, and identical write-log replays. The
//! heap engine is the oracle; the others must never diverge from it.

use nearpm::pm::{InterleaveConfig, MediaConfig, MediaKind, PhysAddr, PmSpace};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;

fn temp_dir(tag: &str, case: u64) -> PathBuf {
    std::env::temp_dir().join(format!(
        "nearpm-media-prop-{tag}-{}-{case}",
        std::process::id()
    ))
}

/// One randomized op applied identically to every backend.
#[derive(Debug, Clone)]
enum Op {
    Write { addr: u64, data: Vec<u8> },
    Fill { addr: u64, len: u64, byte: u8 },
    CopyWithin { src: u64, dst: u64, len: u64 },
    Read { addr: u64, len: u64 },
}

/// Draws an op sequence confined to `capacity` bytes.
fn gen_ops(rng: &mut StdRng, capacity: u64, count: usize) -> Vec<Op> {
    (0..count)
        .map(|_| {
            let len = rng.gen_range(1..=(capacity / 4).min(9000));
            let addr = rng.gen_range(0..=capacity - len);
            match rng.gen_range(0..4u32) {
                0 => Op::Write {
                    addr,
                    data: (0..len).map(|_| rng.gen()).collect(),
                },
                1 => Op::Fill {
                    addr,
                    len,
                    byte: rng.gen(),
                },
                2 => {
                    let dst = rng.gen_range(0..=capacity - len);
                    Op::CopyWithin {
                        src: addr,
                        dst,
                        len,
                    }
                }
                _ => Op::Read { addr, len },
            }
        })
        .collect()
}

fn apply(space: &mut PmSpace, ops: &[Op]) {
    for op in ops {
        match op {
            Op::Write { addr, data } => space.write(PhysAddr(*addr), data),
            Op::Fill { addr, len, byte } => space.fill(PhysAddr(*addr), *len as usize, *byte),
            Op::CopyWithin { src, dst, len } => {
                space.copy(PhysAddr(*src), PhysAddr(*dst), *len as usize)
            }
            Op::Read { addr, len } => {
                let _ = space.read_vec(PhysAddr(*addr), *len as usize);
            }
        }
    }
}

fn images(space: &PmSpace) -> Vec<Vec<u8>> {
    (0..space.interleave().devices)
        .map(|d| space.device_image(d))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Heap == File == Sparse: images, traffic, and write-log replay agree
    /// on random op sequences over random interleaved geometries.
    #[test]
    fn backends_are_indistinguishable(
        seed in 0u64..u32::MAX as u64,
        devices in 1usize..5,
        gran_exp in 6u32..13,
        op_count in 4usize..24,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let granularity = 1u64 << gran_exp;
        let capacity = devices as u64 * granularity * rng.gen_range(2u64..6);
        let il = InterleaveConfig::new(devices, granularity);
        let ops = gen_ops(&mut rng, capacity, op_count);
        let dir = temp_dir("indist", seed);

        let mut spaces = vec![
            PmSpace::with_media(capacity, il, &MediaConfig::Heap).unwrap(),
            PmSpace::with_media(capacity, il, &MediaConfig::File { dir: dir.clone() }).unwrap(),
            PmSpace::with_media(capacity, il, &MediaConfig::Sparse).unwrap(),
        ];
        for space in &mut spaces {
            space.enable_write_log();
            apply(space, &ops);
        }

        let heap_images = images(&spaces[0]);
        let heap_traffic = spaces[0].traffic();
        let heap_replay = spaces[0].replay_write_log();
        prop_assert!(heap_replay.is_some());
        for space in &spaces[1..] {
            prop_assert_eq!(images(space), heap_images.clone(), "images diverged ({})", space.media_kind());
            prop_assert_eq!(space.traffic(), heap_traffic, "traffic diverged ({})", space.media_kind());
            prop_assert_eq!(
                space.replay_write_log(),
                heap_replay.clone(),
                "write-log replay diverged ({})",
                space.media_kind()
            );
            prop_assert!(space.replay_matches());
        }
        drop(spaces);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A file-backed space reopened from disk is byte-identical to the
    /// space that wrote it, for random geometries and op sequences.
    #[test]
    fn file_backend_reopens_byte_identical(
        seed in 0u64..u32::MAX as u64,
        devices in 1usize..4,
        op_count in 3usize..16,
    ) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD1CE);
        let granularity = 4096u64;
        let capacity = devices as u64 * granularity * 3;
        let il = InterleaveConfig::new(devices, granularity);
        let ops = gen_ops(&mut rng, capacity, op_count);
        let dir = temp_dir("reopen", seed);

        let before = {
            let mut space =
                PmSpace::with_media(capacity, il, &MediaConfig::File { dir: dir.clone() }).unwrap();
            apply(&mut space, &ops);
            space.sync_all().unwrap();
            images(&space)
        };
        let reopened =
            PmSpace::reopen(capacity, il, &MediaConfig::File { dir: dir.clone() }).unwrap();
        prop_assert_eq!(reopened.media_kind(), MediaKind::File);
        prop_assert_eq!(images(&reopened), before);
        drop(reopened);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Sparse residency never exceeds the bytes actually touched (rounded
    /// up to pages) and untouched space reads as zeros.
    #[test]
    fn sparse_residency_tracks_touched_pages(
        seed in 0u64..u32::MAX as u64,
        devices in 1usize..4,
        op_count in 2usize..10,
    ) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5BA2);
        let granularity = 4096u64;
        let capacity = devices as u64 * granularity * 64;
        let il = InterleaveConfig::new(devices, granularity);
        let ops = gen_ops(&mut rng, capacity, op_count);

        let mut sparse = PmSpace::with_media(capacity, il, &MediaConfig::Sparse).unwrap();
        let mut heap = PmSpace::with_media(capacity, il, &MediaConfig::Heap).unwrap();
        apply(&mut sparse, &ops);
        apply(&mut heap, &ops);

        // Upper bound: every op touches at most len bytes spanning at most
        // len/4096 + 2 pages per device span; just bound by total op bytes
        // rounded generously.
        let touched: u64 = ops
            .iter()
            .map(|op| match op {
                Op::Write { data, .. } => data.len() as u64,
                Op::Fill { len, .. } | Op::CopyWithin { len, .. } => *len,
                Op::Read { .. } => 0,
            })
            .sum();
        let bound = (2 * touched / 4096 + 4 * op_count as u64 + devices as u64) * 4096;
        prop_assert!(
            (sparse.resident_bytes() as u64) <= bound,
            "resident {} exceeds touched-page bound {}",
            sparse.resident_bytes(),
            bound
        );
        prop_assert_eq!(images(&sparse), images(&heap));
    }
}
