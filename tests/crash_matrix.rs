//! Exhaustive crash-point matrix: every boundary of every mechanism ×
//! pipeline shape × device configuration recovers with all three explorer
//! invariants (committed-prefix image, PPO-clean trace, idempotent second
//! recovery). The deeper release-mode sweep runs in CI as
//! `crash_matrix_smoke`; this keeps a 1-unit version in the tier-1 suite.

use nearpm::core::ExecMode;
use nearpm::pm::MediaConfig;
use nearpm::workloads::{explore, CcMech, ExplorerConfig, PipelineMode};

fn assert_cell(mech: CcMech) {
    for pipeline in PipelineMode::ALL {
        for mode in [ExecMode::NearPmSd, ExecMode::NearPmMd] {
            let cfg = ExplorerConfig {
                mech,
                pipeline,
                mode,
                units: 1,
                prune: false,
                media: MediaConfig::Heap,
            };
            let r = explore(&cfg).unwrap();
            assert!(
                r.ok(),
                "{mech}/{pipeline}/{}: {:?}",
                mode.label(),
                r.failures
            );
            assert!(r.boundaries > 0, "{mech}/{pipeline}: no boundaries found");
            assert_eq!(r.explored, r.boundaries);
            assert_eq!(r.verified, r.boundaries);
            assert!(r.classes > 0 && r.classes <= r.boundaries);
        }
    }
}

#[test]
fn undo_log_matrix_recovers_at_every_boundary() {
    assert_cell(CcMech::UndoLog);
}

#[test]
fn redo_log_matrix_recovers_at_every_boundary() {
    assert_cell(CcMech::RedoLog);
}

#[test]
fn checkpoint_matrix_recovers_at_every_boundary() {
    assert_cell(CcMech::Checkpoint);
}

#[test]
fn shadow_paging_matrix_recovers_at_every_boundary() {
    assert_cell(CcMech::ShadowPaging);
}
