//! Cross-crate integration tests: every workload × mechanism × mode smoke
//! run, end-to-end speedup shape, and PPO validity of every run.

use nearpm::cc::Mechanism;
use nearpm::core::ExecMode;
use nearpm::workloads::{run, Workload};

#[test]
fn all_workloads_all_mechanisms_all_modes_are_ppo_clean() {
    for w in Workload::all() {
        for m in Mechanism::all() {
            for mode in ExecMode::all() {
                let r = run(w, m, mode, 6).expect("run");
                assert!(
                    r.ppo_violations.is_empty(),
                    "{w:?}/{m:?}/{mode:?}: {:?}",
                    r.ppo_violations
                );
                assert!(r.makespan.as_ns() > 0.0);
            }
        }
    }
}

#[test]
fn nearpm_md_end_to_end_speedup_shape_matches_paper() {
    // The paper reports 1.2x-1.35x end-to-end; accept a generous band but
    // require NearPM MD to beat the baseline on average for every mechanism.
    for m in Mechanism::all() {
        let mut speedups = Vec::new();
        for w in [
            Workload::Tpcc,
            Workload::Btree,
            Workload::Hashmap,
            Workload::Redis,
        ] {
            let base = run(w, m, ExecMode::CpuBaseline, 24).unwrap();
            let md = run(w, m, ExecMode::NearPmMd, 24).unwrap();
            speedups.push(md.speedup_over(&base));
        }
        let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
        assert!(avg > 1.05, "{m:?}: average speedup {avg}");
        assert!(avg < 3.0, "{m:?}: implausibly large speedup {avg}");
    }
}

#[test]
fn delayed_sync_beats_software_sync() {
    // NearPM MD (delayed near-memory sync) must not be slower than
    // MD SW-sync on logging workloads, matching Figure 16.
    let mut wins = 0;
    let workloads = [
        Workload::Tpcc,
        Workload::Btree,
        Workload::Memcached,
        Workload::Redis,
    ];
    for w in workloads {
        let sync = run(w, Mechanism::Logging, ExecMode::NearPmMdSync, 24).unwrap();
        let md = run(w, Mechanism::Logging, ExecMode::NearPmMd, 24).unwrap();
        if md.makespan <= sync.makespan {
            wins += 1;
        }
    }
    assert!(wins >= 3, "delayed sync won only {wins}/4");
}

#[test]
fn tatp_logging_speedup_is_the_smallest() {
    // The paper singles out TATP's low logging speedup (one tiny log per
    // transaction leaves no parallelism to exploit).
    let base_tatp = run(
        Workload::Tatp,
        Mechanism::Logging,
        ExecMode::CpuBaseline,
        32,
    )
    .unwrap();
    let md_tatp = run(Workload::Tatp, Mechanism::Logging, ExecMode::NearPmMd, 32).unwrap();
    let base_tpcc = run(
        Workload::Tpcc,
        Mechanism::Logging,
        ExecMode::CpuBaseline,
        32,
    )
    .unwrap();
    let md_tpcc = run(Workload::Tpcc, Mechanism::Logging, ExecMode::NearPmMd, 32).unwrap();
    let tatp = md_tatp.cc_speedup_over(&base_tatp);
    let tpcc = md_tpcc.cc_speedup_over(&base_tpcc);
    assert!(
        tatp < tpcc,
        "TATP ({tatp:.2}x) should speed up less than TPCC ({tpcc:.2}x)"
    );
}
