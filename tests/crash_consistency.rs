//! Crash-injection integration tests across mechanisms and device counts.

use nearpm::cc::{Checkpoint, ShadowPaging, UndoLog};
use nearpm::core::{ExecMode, NearPmSystem, Region, SystemConfig};

fn system(mode: ExecMode) -> NearPmSystem {
    NearPmSystem::new(SystemConfig::for_mode(mode).with_capacity(32 << 20))
}

#[test]
fn undo_logging_recovers_across_two_devices() {
    let mut sys = system(ExecMode::NearPmMd);
    let pool = sys.create_pool("p", 16 << 20).unwrap();
    let obj = sys.alloc(pool, 8192, 4096).unwrap();
    sys.cpu_write_persist(0, obj, &vec![1u8; 8192], Region::AppPersist)
        .unwrap();

    let mut undo = UndoLog::new(&mut sys, pool, 0, 16).unwrap();
    // Commit one transaction, then crash in the middle of a second one.
    undo.begin(&mut sys).unwrap();
    undo.log_range(&mut sys, obj, 8192).unwrap();
    undo.update(&mut sys, obj, &vec![2u8; 8192]).unwrap();
    undo.commit(&mut sys).unwrap();

    undo.begin(&mut sys).unwrap();
    undo.log_range(&mut sys, obj, 8192).unwrap();
    undo.update(&mut sys, obj, &vec![3u8; 8192]).unwrap();
    sys.crash();
    undo.recover(&mut sys).unwrap();

    // The committed value (2) survives; the interrupted update (3) is gone.
    assert_eq!(sys.persistent_read(obj, 8192).unwrap(), vec![2u8; 8192]);
}

#[test]
fn checkpointing_restores_interrupted_epoch() {
    let mut sys = system(ExecMode::NearPmMd);
    let pool = sys.create_pool("p", 16 << 20).unwrap();
    let page = sys.alloc(pool, 4096, 4096).unwrap();
    sys.cpu_write_persist(0, page, &vec![9u8; 4096], Region::AppPersist)
        .unwrap();
    let mut ckpt = Checkpoint::new(&mut sys, pool, 0, 8).unwrap();
    ckpt.touch(&mut sys, page).unwrap();
    ckpt.update(&mut sys, page, &[7u8; 512]).unwrap();
    sys.crash();
    assert_eq!(ckpt.recover(&mut sys).unwrap(), 1);
    assert_eq!(sys.persistent_read(page, 512).unwrap(), vec![9u8; 512]);
}

#[test]
fn shadow_paging_page_table_is_always_consistent() {
    let mut sys = system(ExecMode::NearPmSd);
    let pool = sys.create_pool("p", 16 << 20).unwrap();
    let mut shadow = ShadowPaging::new(&mut sys, pool, 0, 2, 8).unwrap();
    let initial = vec![4u8; 4096];
    let p0 = shadow.page_addr(&mut sys, 0).unwrap();
    sys.cpu_write_persist(0, p0, &initial, Region::AppPersist)
        .unwrap();
    shadow.update(&mut sys, 0, 0, &[5u8; 64]).unwrap();
    sys.crash();
    let mapping = shadow.recover(&mut sys).unwrap();
    let page = sys.persistent_read(mapping[0], 4096).unwrap();
    // Committed update visible, rest of the page intact.
    assert_eq!(&page[..64], &[5u8; 64]);
    assert_eq!(&page[64..], &initial[64..]);
}

#[test]
fn recovery_is_idempotent() {
    let mut sys = system(ExecMode::NearPmMd);
    let pool = sys.create_pool("p", 16 << 20).unwrap();
    let obj = sys.alloc(pool, 256, 64).unwrap();
    sys.cpu_write_persist(0, obj, &[1u8; 256], Region::AppPersist)
        .unwrap();
    let mut undo = UndoLog::new(&mut sys, pool, 0, 8).unwrap();
    undo.begin(&mut sys).unwrap();
    undo.log_range(&mut sys, obj, 256).unwrap();
    undo.update(&mut sys, obj, &[2u8; 256]).unwrap();
    sys.crash();
    let first = undo.recover(&mut sys).unwrap();
    assert!(first >= 1);
    // Recovery heals the system, so a second pass only makes sense after
    // another crash (recover() on a healthy system is a typed error).
    sys.crash();
    let second = undo.recover(&mut sys).unwrap();
    assert_eq!(second, 0, "second recovery pass must find nothing to do");
    assert_eq!(sys.persistent_read(obj, 256).unwrap(), vec![1u8; 256]);
}
