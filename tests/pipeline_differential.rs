//! Differential tests for the split-phase transaction pipeline: under every
//! crash-consistency mechanism and execution mode, the pipelined
//! (post-all / complete-later) path and the serial one-site-at-a-time oracle
//! must produce **byte-identical PM images** and **equal PPO violation
//! lists** (both empty) — only the modeled overlap may differ. This is the
//! same differential pattern as `schedule::oracle` and
//! `submit_single_stage`: the refactor changes when work is in flight, never
//! what it computes.

use nearpm_cc::Mechanism;
use nearpm_core::{ExecMode, NearPmSystem};
use nearpm_workloads::{RunOptions, Runner, TxnPipeline, Workload};

fn media_images(sys: &NearPmSystem) -> Vec<Vec<u8>> {
    (0..sys.media_count())
        .map(|d| sys.device_media(d).to_vec())
        .collect()
}

#[test]
fn pipelined_and_serial_oracle_agree_across_mechanisms_and_modes() {
    // TPC-C issues multi-site transactions (up to nine update sites per
    // operation, with Zipfian-repeated pages), which exercises the batched
    // posting, the per-round duplicate-page chaining of shadow paging, and
    // the grouped commit synchronization.
    for mechanism in Mechanism::all() {
        for mode in ExecMode::all() {
            let run = |pipeline: TxnPipeline| {
                let options = RunOptions::new(mode, mechanism, 24)
                    .with_threads(2)
                    .with_pipeline(pipeline)
                    .with_seed(7);
                Runner::new(Workload::Tpcc, options)
                    .run_with_system()
                    .expect("differential run failed")
            };
            let (pipe_report, pipe_sys) = run(TxnPipeline::SplitPhase);
            let (serial_report, serial_sys) = run(TxnPipeline::SerialOracle);

            assert!(
                pipe_report.ppo_violations.is_empty(),
                "{mechanism:?}/{mode:?}: pipelined path has violations: {:?}",
                pipe_report.ppo_violations
            );
            assert_eq!(
                pipe_report.ppo_violations, serial_report.ppo_violations,
                "{mechanism:?}/{mode:?}: violation lists diverged"
            );
            // Raw media equality holds for every mechanism: logging and
            // checkpointing acquire/release their slots in identical order
            // on both paths, and shadow paging binds one spare per logical
            // page (flip-flop placement) so the first update of each page
            // acquires in the same order serially and pipelined — physical
            // placement is pipeline-independent, no logical-page fallback
            // needed.
            let pipe_images = media_images(&pipe_sys);
            let serial_images = media_images(&serial_sys);
            assert_eq!(pipe_images.len(), serial_images.len());
            for (d, (p, s)) in pipe_images.iter().zip(&serial_images).enumerate() {
                assert!(
                    p == s,
                    "{mechanism:?}/{mode:?}: PM image of device {d} diverged"
                );
            }
            // Identical work on both paths.
            assert!(pipe_report.trace_events > 0);
            assert_eq!(pipe_report.pm_traffic, serial_report.pm_traffic);
        }
    }
}

/// The pipeline must never slow a NearPM-offloaded run down: batched posting
/// only increases overlap. (Equal for mechanisms whose phases were already
/// contiguous, strictly faster for shadow paging's multi-site operations.)
#[test]
fn pipelined_path_is_never_slower() {
    for mechanism in Mechanism::all() {
        for mode in [
            ExecMode::NearPmSd,
            ExecMode::NearPmMdSync,
            ExecMode::NearPmMd,
        ] {
            let run = |pipeline: TxnPipeline| {
                let options = RunOptions::new(mode, mechanism, 24)
                    .with_threads(2)
                    .with_pipeline(pipeline)
                    .with_seed(11);
                Runner::new(Workload::Tpcc, options)
                    .run()
                    .expect("differential run failed")
            };
            let pipe = run(TxnPipeline::SplitPhase);
            let serial = run(TxnPipeline::SerialOracle);
            assert!(
                pipe.makespan <= serial.makespan,
                "{mechanism:?}/{mode:?}: pipelined {} > serial {}",
                pipe.makespan,
                serial.makespan
            );
        }
    }
}
