//! Property-based tests of the PPO checker and the persistent data
//! structures under random operation sequences.

use nearpm::core::{ExecMode, NearPmSystem, SystemConfig};
use nearpm::kv::{PersistentHashMap, VALUE_SIZE};
use nearpm::pmdk::ObjPool;
use nearpm::ppo::{check_all, Agent, EventKind, Interval, Sharing, Trace};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any execution the real system produces is accepted by the PPO checker,
    /// for random transaction shapes and all modes.
    #[test]
    fn system_runs_are_always_ppo_clean(
        ops in 1usize..12,
        sizes in proptest::collection::vec(1u64..2048, 1..6),
        mode_idx in 0usize..4,
    ) {
        let mode = ExecMode::all()[mode_idx];
        let mut sys = NearPmSystem::new(SystemConfig::for_mode(mode).with_capacity(32 << 20));
        let mut pool = ObjPool::create(&mut sys, "prop", 16 << 20).unwrap();
        let objs: Vec<_> = sizes.iter().map(|s| pool.alloc(&mut sys, *s).unwrap()).collect();
        for i in 0..ops {
            let obj = objs[i % objs.len()];
            let len = sizes[i % sizes.len()] as usize;
            pool.tx(&mut sys, |tx, sys| tx.write(sys, obj, &vec![i as u8; len])).unwrap();
        }
        let report = sys.report();
        prop_assert!(report.ppo_violations.is_empty());
    }

    /// A synthetic trace where the CPU's in-place update is timestamped
    /// before the NDP log read is always rejected.
    #[test]
    fn checker_rejects_reordered_update(gap in 1u64..10_000) {
        let mut t = Trace::new(1);
        let p = t.new_proc();
        let obj = Interval::new(0x1000, 64);
        t.record(Agent::Cpu, EventKind::Offload, Interval::new(0, 0), Sharing::Shared, Some(p), None, 1_000);
        t.record(Agent::Ndp(0), EventKind::Read, obj, Sharing::Shared, Some(p), None, 2_000 + gap);
        // CPU overwrite lands *before* the NDP read despite following the offload.
        t.record(Agent::Cpu, EventKind::Write, obj, Sharing::Shared, None, None, 1_500);
        prop_assert!(!check_all(&t).is_empty());
    }

    /// The persistent hash map always matches an in-memory model.
    #[test]
    fn hashmap_matches_model(keys in proptest::collection::vec(0u64..64, 1..40)) {
        let mut sys = NearPmSystem::new(SystemConfig::nearpm_sd().with_capacity(32 << 20));
        let mut pool = ObjPool::create(&mut sys, "prop-kv", 16 << 20).unwrap();
        let mut map = PersistentHashMap::create(&mut sys, &mut pool, 256).unwrap();
        let mut model = std::collections::HashMap::new();
        for (i, k) in keys.iter().enumerate() {
            let v = vec![(i % 251) as u8; VALUE_SIZE];
            map.put(&mut sys, &mut pool, *k, &v).unwrap();
            model.insert(*k, v);
        }
        for (k, v) in &model {
            prop_assert_eq!(map.get(&mut sys, &mut pool, *k).unwrap(), Some(v.clone()));
        }
        prop_assert_eq!(map.len(), model.len());
    }
}
