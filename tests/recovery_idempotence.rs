//! Property tests of recovery idempotence: for random crash points —
//! including crashes *during recovery itself* — a completed recovery pass
//! leaves the image in a legal committed-prefix state, and a second pass
//! finds nothing to do and changes nothing.

use nearpm::cc::{Checkpoint, RedoLog, ShadowPaging, UndoLog};
use nearpm::core::{
    CrashPlan, ExecMode, NearPmSystem, Region, SystemConfig, SystemError, VirtAddr,
};
use proptest::prelude::*;

const LEN: usize = 4096;

fn system(mode: ExecMode) -> NearPmSystem {
    NearPmSystem::new(SystemConfig::for_mode(mode).with_capacity(32 << 20))
}

/// The image after `u` committed single-site units: `0xA5` initially, then
/// the unit index + 1 as the fill byte.
fn expected(u: usize) -> Vec<u8> {
    if u == 0 {
        vec![0xA5; LEN]
    } else {
        vec![u as u8; LEN]
    }
}

fn prop_image_is_committed_prefix(image: &[u8], u_ok: usize, units: usize) -> bool {
    let hi = (u_ok + 1).min(units);
    (u_ok..=hi).any(|u| image == expected(u).as_slice())
}

/// Runs `units` redo transactions with a crash armed at boundary `pick % B`
/// (enumerated first), returning the system, the log, and the certain
/// committed-unit count.
fn redo_run_until_crash(
    mode: ExecMode,
    units: usize,
    pick: u64,
) -> (NearPmSystem, RedoLog, VirtAddr, usize) {
    // Counting pass.
    let mut sys = system(mode);
    let pool = sys.create_pool("p", 16 << 20).unwrap();
    let obj = sys.alloc(pool, LEN as u64, LEN as u64).unwrap();
    sys.cpu_write_persist(0, obj, &[0xA5; LEN], Region::AppPersist)
        .unwrap();
    let mut redo = RedoLog::new(&mut sys, pool, 0, 8).unwrap();
    sys.arm_crash_plan(CrashPlan::count_only());
    for u in 0..units {
        redo.begin(&mut sys).unwrap();
        redo.stage(&mut sys, obj, &vec![(u + 1) as u8; LEN])
            .unwrap();
        redo.commit(&mut sys).unwrap();
    }
    let boundaries = sys.disarm_crash_plan().unwrap().observed_total();

    // Crashing pass.
    let mut sys = system(mode);
    let pool = sys.create_pool("p", 16 << 20).unwrap();
    let obj = sys.alloc(pool, LEN as u64, LEN as u64).unwrap();
    sys.cpu_write_persist(0, obj, &[0xA5; LEN], Region::AppPersist)
        .unwrap();
    let mut redo = RedoLog::new(&mut sys, pool, 0, 8).unwrap();
    sys.arm_crash_plan(CrashPlan::at_boundary(pick % boundaries));
    let mut u_ok = 0;
    for u in 0..units {
        let r = redo
            .begin(&mut sys)
            .and_then(|_| redo.stage(&mut sys, obj, &vec![(u + 1) as u8; LEN]))
            .and_then(|_| redo.commit(&mut sys));
        match r {
            Ok(()) => {
                u_ok = u + 1;
                if sys.is_crashed() {
                    break;
                }
            }
            Err(SystemError::Crashed) => break,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(sys.is_crashed(), "plan must fire within the enumerated run");
    (sys, redo, obj, u_ok)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Redo logging: recovery from any boundary is idempotent and lands on
    /// a committed prefix.
    #[test]
    fn redo_recovery_is_idempotent(units in 1usize..4, pick in 0u64..10_000, md in 0usize..2) {
        let mode = if md == 1 { ExecMode::NearPmMd } else { ExecMode::NearPmSd };
        let (mut sys, mut redo, obj, u_ok) = redo_run_until_crash(mode, units, pick);
        redo.recover(&mut sys).unwrap();
        let image = sys.persistent_read(obj, LEN).unwrap();
        prop_assert!(prop_image_is_committed_prefix(&image, u_ok, units));
        sys.crash();
        prop_assert_eq!(redo.recover(&mut sys).unwrap(), 0);
        prop_assert_eq!(sys.persistent_read(obj, LEN).unwrap(), image);
    }

    /// Redo logging survives a crash in the middle of recovery: the re-run
    /// completes the roll-forward/discard and is itself idempotent.
    #[test]
    fn redo_recovery_survives_crash_during_recovery(
        units in 1usize..3,
        pick in 0u64..10_000,
        k in 0u64..6,
    ) {
        let (mut sys, mut redo, obj, u_ok) = redo_run_until_crash(ExecMode::NearPmMd, units, pick);
        sys.arm_crash_plan(CrashPlan::at_persist(k));
        match redo.recover(&mut sys) {
            Ok(_) => {}
            Err(SystemError::Crashed) => {
                // Recovery was cut down mid-flight; a second attempt must
                // finish the job from the persistent state alone.
                redo.recover(&mut sys).unwrap();
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
        sys.disarm_crash_plan();
        let image = sys.persistent_read(obj, LEN).unwrap();
        prop_assert!(prop_image_is_committed_prefix(&image, u_ok, units));
        sys.crash();
        prop_assert_eq!(redo.recover(&mut sys).unwrap(), 0);
        prop_assert_eq!(sys.persistent_read(obj, LEN).unwrap(), image);
    }

    /// Checkpointing: recovery from a crash mid-epoch rolls the epoch back,
    /// idempotently.
    #[test]
    fn checkpoint_recovery_is_idempotent(epochs in 1usize..4, cut in 0usize..2) {
        let mut sys = system(ExecMode::NearPmMd);
        let pool = sys.create_pool("p", 16 << 20).unwrap();
        let page = sys.alloc(pool, LEN as u64, LEN as u64).unwrap();
        sys.cpu_write_persist(0, page, &[0xA5; LEN], Region::AppPersist).unwrap();
        let mut ck = Checkpoint::new(&mut sys, pool, 0, 8).unwrap();
        for e in 0..epochs {
            ck.touch(&mut sys, page).unwrap();
            ck.update(&mut sys, page, &vec![(e + 1) as u8; LEN]).unwrap();
            ck.advance_epoch(&mut sys).unwrap();
        }
        // Optionally leave a half-done epoch behind before the crash.
        if cut == 1 {
            ck.touch(&mut sys, page).unwrap();
            ck.update(&mut sys, page, &[0xEE; LEN]).unwrap();
        }
        sys.crash();
        let restored = ck.recover(&mut sys).unwrap();
        prop_assert_eq!(restored, cut);
        let image = sys.persistent_read(page, LEN).unwrap();
        prop_assert_eq!(image.clone(), expected(epochs));
        sys.crash();
        prop_assert_eq!(ck.recover(&mut sys).unwrap(), 0);
        prop_assert_eq!(sys.persistent_read(page, LEN).unwrap(), image);
    }

    /// Checkpointing survives a crash during the recovery restore: the
    /// restore-then-reset order re-restores the same snapshot on the next
    /// pass — a no-op.
    #[test]
    fn checkpoint_recovery_survives_crash_during_recovery(k in 0u64..4) {
        let mut sys = system(ExecMode::NearPmSd);
        let pool = sys.create_pool("p", 16 << 20).unwrap();
        let page = sys.alloc(pool, LEN as u64, LEN as u64).unwrap();
        sys.cpu_write_persist(0, page, &[0xA5; LEN], Region::AppPersist).unwrap();
        let mut ck = Checkpoint::new(&mut sys, pool, 0, 8).unwrap();
        ck.touch(&mut sys, page).unwrap();
        ck.update(&mut sys, page, &[0xEE; LEN]).unwrap();
        sys.crash();
        sys.arm_crash_plan(CrashPlan::at_persist(k));
        match ck.recover(&mut sys) {
            Ok(_) => {}
            Err(SystemError::Crashed) => {
                ck.recover(&mut sys).unwrap();
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
        sys.disarm_crash_plan();
        let image = sys.persistent_read(page, LEN).unwrap();
        prop_assert_eq!(image.clone(), vec![0xA5; LEN]);
        sys.crash();
        prop_assert_eq!(ck.recover(&mut sys).unwrap(), 0);
        prop_assert_eq!(sys.persistent_read(page, LEN).unwrap(), image);
    }

    /// Shadow paging: the persistent page table is consistent at every
    /// boundary, and recovery (re-reading it) is trivially idempotent.
    #[test]
    fn shadow_recovery_is_idempotent(updates in 1usize..4, pick in 0u64..10_000) {
        // Counting pass.
        let mut sys = system(ExecMode::NearPmMd);
        let pool = sys.create_pool("p", 16 << 20).unwrap();
        let mut sp = ShadowPaging::new(&mut sys, pool, 0, 1, 8).unwrap();
        let p0 = sp.page_addr(&mut sys, 0).unwrap();
        sys.cpu_write_persist(0, p0, &[0xA5; LEN], Region::AppPersist).unwrap();
        sys.arm_crash_plan(CrashPlan::count_only());
        for u in 0..updates {
            sp.update(&mut sys, 0, 0, &[(u + 1) as u8; 64]).unwrap();
        }
        let boundaries = sys.disarm_crash_plan().unwrap().observed_total();

        // Crashing pass.
        let mut sys = system(ExecMode::NearPmMd);
        let pool = sys.create_pool("p", 16 << 20).unwrap();
        let mut sp = ShadowPaging::new(&mut sys, pool, 0, 1, 8).unwrap();
        let p0 = sp.page_addr(&mut sys, 0).unwrap();
        sys.cpu_write_persist(0, p0, &[0xA5; LEN], Region::AppPersist).unwrap();
        sys.arm_crash_plan(CrashPlan::at_boundary(pick % boundaries));
        let mut u_ok = 0;
        for u in 0..updates {
            match sp.update(&mut sys, 0, 0, &[(u + 1) as u8; 64]) {
                Ok(()) => {
                    u_ok = u + 1;
                    if sys.is_crashed() {
                        break;
                    }
                }
                Err(SystemError::Crashed) => break,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        prop_assert!(sys.is_crashed());
        let mapping = sp.recover(&mut sys).unwrap();
        let head = sys.persistent_read(mapping[0], 64).unwrap();
        let hi = (u_ok + 1).min(updates);
        prop_assert!((u_ok..=hi).any(|u| {
            let byte = if u == 0 { 0xA5 } else { u as u8 };
            head == vec![byte; 64]
        }));
        sys.crash();
        let mapping2 = sp.recover(&mut sys).unwrap();
        prop_assert_eq!(mapping, mapping2);
        prop_assert_eq!(sys.persistent_read(mapping2[0], 64).unwrap(), head);
    }

    /// Undo logging survives a crash during the recovery rollback: home
    /// writes and header resets re-run idempotently.
    #[test]
    fn undo_recovery_survives_crash_during_recovery(k in 0u64..6, md in 0usize..2) {
        let mode = if md == 1 { ExecMode::NearPmMd } else { ExecMode::NearPmSd };
        let mut sys = system(mode);
        let pool = sys.create_pool("p", 16 << 20).unwrap();
        let obj = sys.alloc(pool, LEN as u64, LEN as u64).unwrap();
        sys.cpu_write_persist(0, obj, &[0xA5; LEN], Region::AppPersist).unwrap();
        let mut undo = UndoLog::new(&mut sys, pool, 0, 8).unwrap();
        undo.begin(&mut sys).unwrap();
        undo.log_range(&mut sys, obj, LEN as u64).unwrap();
        undo.update(&mut sys, obj, &[0xEE; LEN]).unwrap();
        sys.crash();
        sys.arm_crash_plan(CrashPlan::at_persist(k));
        match undo.recover(&mut sys) {
            Ok(_) => {}
            Err(SystemError::Crashed) => {
                undo.recover(&mut sys).unwrap();
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
        sys.disarm_crash_plan();
        let image = sys.persistent_read(obj, LEN).unwrap();
        prop_assert_eq!(image.clone(), vec![0xA5; LEN]);
        sys.crash();
        prop_assert_eq!(undo.recover(&mut sys).unwrap(), 0);
        prop_assert_eq!(sys.persistent_read(obj, LEN).unwrap(), image);
    }
}
