//! End-to-end differential tests of the incremental observe path.
//!
//! At every step of a run, the incremental `report()`/`sample()` — graph
//! aggregates maintained as tasks are added, timeline merged on the fly,
//! violation-level cached checking — must produce a [`RunReport`] equal
//! **field for field** to `report_oracle()`, the retained O(n) recompute
//! path (full schedule re-aggregation + from-scratch trace check). Covered
//! here: all four crash-consistency mechanisms (undo logging, redo logging,
//! checkpointing, shadow paging) across execution modes, multi-`sample()`
//! interleavings (a sampled run's final report is identical to an unsampled
//! one's), crash/recovery (a failure event arriving after the writes it
//! bounds), and a mid-run trace reset rebuilding the cached checker.

use nearpm::cc::{Checkpoint, Mechanism, RedoLog, ShadowPaging, UndoLog};
use nearpm::core::{ExecMode, NearPmSystem, SystemConfig, TraceBuilder};
use nearpm::ppo;
use nearpm::sim::Region;
use nearpm::workloads::{RunOptions, Runner, Workload};

/// Asserts the incremental report equals the oracle recompute, field for
/// field (the oracle is taken first; it reads no caches).
fn assert_matches_oracle(sys: &mut NearPmSystem, ctx: &str) {
    let oracle = sys.report_oracle();
    let sample = sys.sample();
    assert_eq!(
        sample, oracle,
        "incremental vs oracle report diverged: {ctx}"
    );
}

fn setup(mode: ExecMode) -> (NearPmSystem, nearpm::core::PoolId, nearpm::core::VirtAddr) {
    let mut sys = NearPmSystem::new(SystemConfig::for_mode(mode).with_capacity(32 << 20));
    let pool = sys.create_pool("obs", 16 << 20).unwrap();
    let obj = sys.alloc(pool, 16384, 4096).unwrap();
    sys.cpu_write_persist(0, obj, &vec![0x5A; 16384], Region::AppPersist)
        .unwrap();
    (sys, pool, obj)
}

/// Prefix replay over all four CC mechanisms: after **every** transaction
/// (and at the empty prefix) the snapshot equals the recompute.
#[test]
fn all_four_mechanisms_report_incrementally_equal_to_oracle() {
    for mode in [
        ExecMode::CpuBaseline,
        ExecMode::NearPmSd,
        ExecMode::NearPmMd,
    ] {
        // Undo logging.
        let (mut sys, pool, obj) = setup(mode);
        assert_matches_oracle(&mut sys, "empty prefix");
        let mut undo = UndoLog::new(&mut sys, pool, 0, 8).unwrap();
        for i in 0..6u64 {
            undo.begin(&mut sys).unwrap();
            let site = obj.offset((i % 3) * 4096);
            undo.log_range(&mut sys, site, 512).unwrap();
            sys.cpu_compute(0, 250.0).unwrap();
            undo.update(&mut sys, site, &[i as u8; 512]).unwrap();
            undo.commit(&mut sys).unwrap();
            assert_matches_oracle(&mut sys, &format!("{mode:?} undo txn {i}"));
        }

        // Redo logging.
        let (mut sys, pool, obj) = setup(mode);
        let mut redo = RedoLog::new(&mut sys, pool, 0, 8).unwrap();
        for i in 0..6u64 {
            redo.begin(&mut sys).unwrap();
            redo.stage(&mut sys, obj.offset((i % 3) * 4096), &[i as u8; 128])
                .unwrap();
            redo.commit(&mut sys).unwrap();
            assert_matches_oracle(&mut sys, &format!("{mode:?} redo txn {i}"));
        }

        // Checkpointing.
        let (mut sys, pool, obj) = setup(mode);
        let mut ckpt = Checkpoint::new(&mut sys, pool, 0, 8).unwrap();
        for i in 0..6u64 {
            let site = obj.offset((i % 3) * 4096);
            ckpt.touch_many(&mut sys, &[site]).unwrap();
            ckpt.update(&mut sys, site, &[i as u8; 256]).unwrap();
            if i % 2 == 1 {
                ckpt.advance_epoch(&mut sys).unwrap();
            }
            assert_matches_oracle(&mut sys, &format!("{mode:?} ckpt op {i}"));
        }

        // Shadow paging.
        let (mut sys, pool, _obj) = setup(mode);
        let mut shadow = ShadowPaging::new(&mut sys, pool, 0, 4, 8).unwrap();
        for i in 0..6u64 {
            shadow
                .update_many(
                    &mut sys,
                    &[((i % 4) as usize, (i % 8) * 64, vec![i as u8; 64])],
                )
                .unwrap();
            assert_matches_oracle(&mut sys, &format!("{mode:?} shadow op {i}"));
        }
    }
}

/// A run that samples itself produces the same final report as one that
/// never does — sampling is pure observation — and the in-run series is
/// monotone.
#[test]
fn sampled_run_matches_unsampled_run_field_for_field() {
    for m in Mechanism::all() {
        let runner = Runner::new(
            Workload::Hashmap,
            RunOptions::new(ExecMode::NearPmMd, m, 24)
                .with_threads(2)
                .with_seed(9),
        );
        let (samples, sampled_final, _sys) = runner.run_sampled(5).unwrap();
        let plain = runner.run().unwrap();
        assert_eq!(sampled_final, plain, "{m:?}: sampling perturbed the run");
        assert!(samples.len() >= 4);
        for w in samples.windows(2) {
            assert!(
                w[1].makespan >= w[0].makespan && w[1].trace_events >= w[0].trace_events,
                "{m:?}: in-run sample series must be monotone"
            );
        }
        assert!(sampled_final.ppo_violations.is_empty());
    }
}

/// Streaming trace compaction is pure memory management: a run that evicts
/// retired events at every sample must produce the same in-run series and
/// the same final report, field for field, as a run that retains its whole
/// trace — while actually holding fewer events resident. The compacting run
/// also engages the checker's worker pool, so the parallel incremental fold
/// is exercised inside a live sampled run, not just on detached traces.
#[test]
fn compacting_run_report_is_byte_equal_to_retaining_runs() {
    for m in Mechanism::all() {
        let options = RunOptions::new(ExecMode::NearPmMd, m, 24)
            .with_threads(2)
            .with_seed(9);
        let retaining = Runner::new(Workload::Hashmap, options.clone());
        let compacting = Runner::new(
            Workload::Hashmap,
            options.with_trace_compaction(true).with_checker_workers(2),
        );
        let (plain_samples, plain_final, _) = retaining.run_sampled(5).unwrap();
        let (samples, fin, sys) = compacting.run_sampled(5).unwrap();
        assert_eq!(fin, plain_final, "{m:?}: compaction changed the report");
        assert_eq!(samples, plain_samples, "{m:?}: compaction changed a sample");
        assert!(
            sys.retired_trace_events() > 0,
            "{m:?}: compaction never evicted anything"
        );
        assert!(
            sys.resident_trace_events() < sys.trace_events(),
            "{m:?}: resident trace not below the full event count"
        );
        assert_eq!(
            sys.resident_trace_events() + sys.retired_trace_events(),
            sys.trace_events(),
            "{m:?}: compaction lost events"
        );
    }
}

/// The checker worker pool is pure parallelism: every worker count produces
/// the identical report.
#[test]
fn checker_worker_counts_leave_reports_unchanged() {
    let base = Runner::new(
        Workload::Btree,
        RunOptions::new(ExecMode::NearPmMd, Mechanism::Logging, 24).with_threads(2),
    )
    .run()
    .unwrap();
    for workers in [2usize, 4, 8] {
        let report = Runner::new(
            Workload::Btree,
            RunOptions::new(ExecMode::NearPmMd, Mechanism::Logging, 24)
                .with_threads(2)
                .with_checker_workers(workers),
        )
        .run()
        .unwrap();
        assert_eq!(report, base, "{workers} workers changed the report");
    }
}

/// Crash and recovery: the failure event and the recovery reads arrive long
/// after the writes they judge; incremental and oracle reports must agree
/// before the crash, right after it, during recovery, and on the next
/// transaction after recovery.
#[test]
fn crash_recovery_reports_match_oracle() {
    for mode in [ExecMode::NearPmSd, ExecMode::NearPmMd] {
        let (mut sys, pool, obj) = setup(mode);
        let mut undo = UndoLog::new(&mut sys, pool, 0, 8).unwrap();
        undo.begin(&mut sys).unwrap();
        undo.log_range(&mut sys, obj, 256).unwrap();
        undo.update(&mut sys, obj, &[0xEE; 256]).unwrap();
        assert_matches_oracle(&mut sys, &format!("{mode:?} pre-crash"));
        sys.crash();
        assert_matches_oracle(&mut sys, &format!("{mode:?} post-crash"));
        let rolled = undo.recover(&mut sys).unwrap();
        assert!(rolled >= 1);
        assert_matches_oracle(&mut sys, &format!("{mode:?} post-recovery"));
        undo.begin(&mut sys).unwrap();
        undo.log_range(&mut sys, obj, 128).unwrap();
        undo.update(&mut sys, obj, &[0x11; 128]).unwrap();
        undo.commit(&mut sys).unwrap();
        assert_matches_oracle(&mut sys, &format!("{mode:?} post-recovery txn"));
    }
}

/// A mid-run trace reset invalidates the cached checker; subsequent checks
/// match a from-scratch check of the regrown trace.
#[test]
fn trace_reset_interleaved_with_checks_rebuilds_cleanly() {
    use nearpm::ppo::{Agent, EventKind, Interval, Sharing};
    use nearpm::sim::{LatencyModel, Resource, TaskGraph};
    let model = LatencyModel::default();
    let mut graph = TaskGraph::new();
    let mut tb = TraceBuilder::new(1);
    for round in 0..3 {
        for i in 0..20u64 {
            let t = graph.add(
                "w",
                Resource::Cpu(0),
                model.cpu_compute(50.0),
                Region::Application,
                &[],
            );
            let p = tb.new_proc();
            tb.record(
                &graph,
                Agent::Cpu,
                EventKind::Offload,
                Interval::new(0, 0),
                Sharing::Shared,
                Some(p),
                None,
                Some(t),
            );
            tb.record(
                &graph,
                Agent::Ndp(0),
                EventKind::Read,
                Interval::new(0x1000 + (i % 4) * 64, 64),
                Sharing::Shared,
                Some(p),
                None,
                Some(t),
            );
            if i % 5 == 4 {
                assert_eq!(
                    tb.check(),
                    ppo::check_all(tb.trace()),
                    "round {round} event {i}"
                );
            }
        }
        tb.reset();
        assert!(tb.is_empty());
        assert_eq!(tb.indexed_events(), 0);
        assert!(tb.check().is_empty());
    }
}
