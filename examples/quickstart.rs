//! Quickstart: open a pool, run a failure-atomic transaction on NearPM, and
//! print the run report.

use nearpm::core::{NearPmSystem, SystemConfig};
use nearpm::pmdk::ObjPool;

fn main() {
    // A system with one NearPM device (the "NearPM SD" configuration).
    let mut sys = NearPmSystem::new(SystemConfig::nearpm_sd().with_capacity(16 << 20));
    let mut pool = ObjPool::create(&mut sys, "quickstart", 8 << 20).expect("pool");

    let account_a = pool.alloc(&mut sys, 64).expect("alloc");
    let account_b = pool.alloc(&mut sys, 64).expect("alloc");
    pool.write_persist(&mut sys, account_a, &100u64.to_le_bytes())
        .unwrap();
    pool.write_persist(&mut sys, account_b, &0u64.to_le_bytes())
        .unwrap();

    // Failure-atomic transfer: both balances change or neither does. The
    // undo-logging primitives execute on the NearPM device.
    pool.tx(&mut sys, |tx, sys| {
        tx.write(sys, account_a, &40u64.to_le_bytes())?;
        tx.write(sys, account_b, &60u64.to_le_bytes())?;
        Ok(())
    })
    .expect("transaction");

    let a = u64::from_le_bytes(
        pool.read(&mut sys, account_a, 8)
            .unwrap()
            .try_into()
            .unwrap(),
    );
    let b = u64::from_le_bytes(
        pool.read(&mut sys, account_b, 8)
            .unwrap()
            .try_into()
            .unwrap(),
    );
    println!("balances after transfer: a={a} b={b}");

    let report = sys.report();
    println!("end-to-end simulated time: {}", report.makespan);
    println!("crash-consistency time:    {}", report.cc_time);
    println!("offloaded requests:        {}", report.ndp_requests);
    println!("PPO violations:            {}", report.ppo_violations.len());
    assert!(report.ppo_violations.is_empty());
}
