//! A crash-consistent key-value store (the `hashmap` workload shape) running
//! on NearPM, with a crash in the middle of the request stream.

use nearpm::core::{NearPmSystem, SystemConfig};
use nearpm::kv::{PersistentHashMap, VALUE_SIZE};
use nearpm::pmdk::ObjPool;

fn main() {
    let mut sys = NearPmSystem::new(SystemConfig::nearpm_md().with_capacity(64 << 20));
    let mut pool = ObjPool::create(&mut sys, "kv", 32 << 20).unwrap();
    let mut map = PersistentHashMap::create(&mut sys, &mut pool, 256).unwrap();

    for k in 0..64u64 {
        map.put(&mut sys, &mut pool, k, &[k as u8; VALUE_SIZE])
            .unwrap();
    }
    println!("inserted {} keys", map.len());

    // Crash and recover: every committed insert is still there.
    sys.crash();
    pool.recover(&mut sys).unwrap();
    let mut survived = 0;
    for k in 0..64u64 {
        if map.get_persistent(&mut sys, k).unwrap() == Some(vec![k as u8; VALUE_SIZE]) {
            survived += 1;
        }
    }
    println!("{survived}/64 committed inserts survived the crash");
    assert_eq!(survived, 64);

    let report = sys.report();
    println!("offloaded bytes: {}", report.ndp_bytes_moved);
    assert!(report.ppo_violations.is_empty());
}
