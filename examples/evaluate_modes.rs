//! Runs one workload under all four configurations of the paper and prints
//! the end-to-end and crash-consistency-region speedups (a single row of
//! Figures 15 and 16).

use nearpm::cc::Mechanism;
use nearpm::core::ExecMode;
use nearpm::workloads::{RunOptions, Runner, Workload};

fn main() {
    let workload = Workload::Btree;
    let mechanism = Mechanism::Logging;
    let ops = 48;

    let run = |mode: ExecMode| {
        Runner::new(workload, RunOptions::new(mode, mechanism, ops))
            .run()
            .expect("run")
    };
    let base = run(ExecMode::CpuBaseline);
    println!(
        "workload={} mechanism={}",
        workload.name(),
        mechanism.label()
    );
    println!(
        "{:<22} {:>12} {:>10} {:>10}",
        "configuration", "makespan", "e2e_x", "cc_x"
    );
    for mode in ExecMode::all() {
        let r = run(mode);
        println!(
            "{:<22} {:>12} {:>10.3} {:>10.2}",
            mode.label(),
            format!("{}", r.makespan),
            r.speedup_over(&base),
            r.cc_speedup_over(&base)
        );
        assert!(r.ppo_violations.is_empty());
    }
}
