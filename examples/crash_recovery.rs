//! Crash-recovery demo: a transaction is interrupted by a power failure on a
//! two-device (NearPM MD) system; recovery rolls the partial update back.

use nearpm::cc::UndoLog;
use nearpm::core::{NearPmSystem, Region, SystemConfig};

fn main() {
    let mut sys = NearPmSystem::new(SystemConfig::nearpm_md().with_capacity(32 << 20));
    let pool = sys.create_pool("bank", 16 << 20).unwrap();
    // An 8 kB record interleaved across both NearPM devices.
    let record = sys.alloc(pool, 8192, 4096).unwrap();
    sys.cpu_write_persist(0, record, &vec![0xAA; 8192], Region::AppPersist)
        .unwrap();

    let mut undo = UndoLog::new(&mut sys, pool, 0, 16).unwrap();
    undo.begin(&mut sys).unwrap();
    undo.log_range(&mut sys, record, 8192).unwrap();
    undo.update(&mut sys, record, &vec![0xBB; 8192]).unwrap();

    // Power failure before commit: the in-place update must not survive.
    println!("simulating a failure before commit ...");
    sys.crash();

    let rolled_back = undo.recover(&mut sys).unwrap();
    println!("recovery rolled back {rolled_back} log entries");
    let recovered = sys.persistent_read(record, 8192).unwrap();
    assert!(recovered.iter().all(|b| *b == 0xAA), "old value restored");
    println!("record restored to its pre-transaction contents on both devices");

    let report = sys.report();
    println!("PPO violations: {}", report.ppo_violations.len());
    assert!(report.ppo_violations.is_empty());
}
