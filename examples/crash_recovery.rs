//! Crash-recovery demo: a transaction on a two-device (NearPM MD) system is
//! interrupted by a deterministic fault-injection plan — the crash fires at
//! a chosen persist boundary instead of a hand-placed `crash()` call —
//! and recovery rolls the partial update back.

use nearpm::cc::UndoLog;
use nearpm::core::{CrashPlan, NearPmSystem, Region, SystemConfig, SystemError};

fn main() {
    let mut sys = NearPmSystem::new(SystemConfig::nearpm_md().with_capacity(32 << 20));
    let pool = sys.create_pool("bank", 16 << 20).unwrap();
    // An 8 kB record interleaved across both NearPM devices.
    let record = sys.alloc(pool, 8192, 4096).unwrap();
    sys.cpu_write_persist(0, record, &vec![0xAA; 8192], Region::AppPersist)
        .unwrap();

    let mut undo = UndoLog::new(&mut sys, pool, 0, 16).unwrap();

    // Arm a crash plan: the power failure fires at the transaction's first
    // persist boundary — the in-place update itself, after the undo logs
    // are posted but before the commit marker becomes durable.
    sys.arm_crash_plan(CrashPlan::at_persist(0));

    let txn = undo.begin(&mut sys).and_then(|_| {
        undo.log_range(&mut sys, record, 8192)?;
        undo.update(&mut sys, record, &vec![0xBB; 8192])?;
        undo.commit(&mut sys)
    });
    match txn {
        Err(SystemError::Crashed) => println!("power failed mid-transaction, as planned"),
        Ok(()) if sys.is_crashed() => println!("power failed at the final boundary"),
        other => panic!("the crash plan should have fired: {other:?}"),
    }
    let plan = sys.disarm_crash_plan().unwrap();
    println!(
        "crash injected at persist #0 ({} boundaries seen before the lights went out)",
        plan.observed_total()
    );

    // Recovery on a healthy system is a typed error, not a silent no-op.
    // (This system *is* crashed, so recovery proceeds.)
    let rolled_back = undo.recover(&mut sys).unwrap();
    println!("recovery rolled back {rolled_back} log entries");
    let recovered = sys.persistent_read(record, 8192).unwrap();
    assert!(recovered.iter().all(|b| *b == 0xAA), "old value restored");
    println!("record restored to its pre-transaction contents on both devices");

    let report = sys.report();
    println!("PPO violations: {}", report.ppo_violations.len());
    assert!(report.ppo_violations.is_empty());
}
