//! A minimal scoped worker pool for fork/join parallelism.
//!
//! crates.io is unreachable from this environment, so instead of `rayon`
//! this crate carries its own tiny fork/join primitive (the `shims` crates
//! are the precedent for vendoring what the toolchain lacks). The pool is
//! intentionally small: a list of independent jobs is executed by a fixed
//! number of scoped threads pulling indices off a shared atomic counter,
//! and the results come back **in job order** — so callers that concatenate
//! per-job outputs get exactly the order a serial loop would have produced,
//! which is what lets the parallel PPO checker promise violation lists
//! identical to the serial one.
//!
//! The crate forbids `unsafe`, so jobs are parked in `Mutex<Option<_>>`
//! slots (taken exactly once each) rather than handed out through raw
//! pointers. The per-job locking cost is irrelevant at the granularity this
//! pool is used for (whole invariant passes and whole index builds, each
//! thousands to millions of events).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A fixed-width fork/join worker pool. `WorkerPool::new(1)` (or a
/// single-job input) degrades to a plain serial loop on the calling thread,
/// which keeps the "parallel" entry points usable as drop-in replacements
/// at every worker count.
#[derive(Debug, Clone, Copy)]
pub struct WorkerPool {
    workers: usize,
}

impl WorkerPool {
    /// Creates a pool that runs jobs on up to `workers` scoped threads
    /// (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        WorkerPool {
            workers: workers.max(1),
        }
    }

    /// A pool sized to the machine: `std::thread::available_parallelism`,
    /// or 1 if that cannot be determined.
    pub fn default_for_host() -> Self {
        WorkerPool::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// Number of worker threads this pool uses.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs every job and returns their outputs **in job order**.
    ///
    /// Jobs must be independent; they are claimed by index from a shared
    /// counter, so the assignment of jobs to threads is nondeterministic but
    /// the returned `Vec` is not. With one worker (or fewer than two jobs)
    /// everything runs on the calling thread.
    pub fn scoped_map<T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let n = jobs.len();
        if self.workers == 1 || n <= 1 {
            return jobs.into_iter().map(|f| f()).collect();
        }
        let slots: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|f| Mutex::new(Some(f))).collect();
        let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..self.workers.min(n) {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let job = slots[i].lock().expect("pool slot poisoned").take();
                    if let Some(f) = job {
                        let out = f();
                        *results[i].lock().expect("pool result poisoned") = Some(out);
                    }
                });
            }
        });
        results
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("pool result poisoned")
                    .expect("every job slot is claimed exactly once")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_job_order() {
        for workers in [1, 2, 3, 8] {
            let pool = WorkerPool::new(workers);
            let jobs: Vec<_> = (0..37).map(|i| move || i * i).collect();
            let got = pool.scoped_map(jobs);
            let want: Vec<usize> = (0..37).map(|i| i * i).collect();
            assert_eq!(got, want, "workers={workers}");
        }
    }

    #[test]
    fn empty_and_single_job_inputs() {
        let pool = WorkerPool::new(4);
        let empty: Vec<fn() -> u32> = Vec::new();
        assert!(pool.scoped_map(empty).is_empty());
        assert_eq!(pool.scoped_map(vec![|| 7u32]), vec![7]);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 1);
        assert_eq!(pool.scoped_map(vec![|| 1u8, || 2u8]), vec![1, 2]);
        assert!(WorkerPool::default_for_host().workers() >= 1);
    }
}
