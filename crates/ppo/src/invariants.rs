//! Trace-level checkers for the four PPO invariants (paper Section 4).
//!
//! The checkers are conservative: they operate on the recorded [`Trace`] and
//! flag orderings that a PPO-compliant NearPM system must never produce. The
//! system-level tests run every workload/mechanism combination, collect the
//! trace, and assert that no violations are reported; mutation tests flip
//! timestamps to confirm the checkers actually detect broken orderings.
//!
//! ## Implementation
//!
//! All checkers are single-pass queries against a [`TraceIndex`] built once
//! per trace in O(n log n): shared CPU accesses live in per-kind interval
//! indexes, per-agent persists in an interval index with earliest-timestamp
//! augmentation, and the failure window in write/persist existence indexes.
//! The original quadratic scans are preserved verbatim in [`oracle`]
//! (compiled under `cfg(test)` or the `oracle` feature) and differential
//! tests assert that both implementations report identical violation lists
//! on randomized traces.

use std::collections::{BTreeSet, HashMap};
use std::ops::Bound;

use crate::event::{Agent, EventKind, Interval, ProcId, Sharing, Trace};
use crate::incremental::IncrementalChecker;
use crate::index::{IncrementalTraceIndex, PpoIndexQueries, TraceIndex};
use crate::pool::WorkerPool;

/// A detected violation of a PPO invariant.
#[derive(Debug, Clone, PartialEq)]
pub enum PpoViolation {
    /// Invariant 1/2: a CPU access and an NDP access to overlapping *shared*
    /// addresses persisted (or became visible) out of program order relative
    /// to the offload point.
    SharedOrderViolation {
        /// The NDP procedure involved.
        proc: ProcId,
        /// Interval of the CPU access.
        cpu_interval: Interval,
        /// Interval of the NDP access.
        ndp_interval: Interval,
        /// Timestamp of the CPU event (ps).
        cpu_ts: u64,
        /// Timestamp of the NDP event (ps).
        ndp_ts: u64,
        /// True if the CPU access preceded the offload in program order.
        cpu_before_offload: bool,
    },
    /// Invariant 3: an NDP write issued before a synchronization event had
    /// not persisted when the synchronization completed.
    UnpersistedBeforeSync {
        /// Agent that issued the write.
        agent: Agent,
        /// The write interval.
        interval: Interval,
        /// Timestamp of the synchronization event (ps).
        sync_ts: u64,
    },
    /// Invariant 4: the recovery procedure read data that had never persisted
    /// before the failure.
    RecoveryReadUnpersisted {
        /// Agent performing the recovery read.
        agent: Agent,
        /// Interval read during recovery.
        interval: Interval,
    },
    /// An NDP procedure accessed a shared address but the trace contains no
    /// offload event for it, so ordering with the CPU cannot be established.
    MissingOffload {
        /// The procedure with no offload record.
        proc: ProcId,
    },
}

impl std::fmt::Display for PpoViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PpoViolation::SharedOrderViolation {
                proc,
                cpu_ts,
                ndp_ts,
                cpu_before_offload,
                ..
            } => write!(
                f,
                "shared-address order violation for proc {proc:?}: cpu@{cpu_ts} vs ndp@{ndp_ts} (cpu before offload: {cpu_before_offload})"
            ),
            PpoViolation::UnpersistedBeforeSync { agent, sync_ts, .. } => write!(
                f,
                "write by {agent} not persisted before synchronization at {sync_ts}"
            ),
            PpoViolation::RecoveryReadUnpersisted { agent, interval } => write!(
                f,
                "recovery read by {agent} of [{}..{}) that never persisted before failure",
                interval.start,
                interval.end()
            ),
            PpoViolation::MissingOffload { proc } => {
                write!(f, "NDP procedure {proc:?} has no offload event")
            }
        }
    }
}

/// Runs every invariant checker over one shared [`TraceIndex`] and returns
/// all violations found.
pub fn check_all(trace: &Trace) -> Vec<PpoViolation> {
    let idx = TraceIndex::new(trace);
    check_all_indexed(&idx)
}

/// [`check_all`] against a pre-built index (lets callers amortize the build
/// across checkers or reuse the index for their own queries).
pub fn check_all_indexed(idx: &TraceIndex<'_>) -> Vec<PpoViolation> {
    let mut v = check_cpu_ndp_ordering_indexed(idx);
    v.extend(check_sync_persistence_indexed(idx));
    v.extend(check_recovery_reads_indexed(idx));
    v
}

/// [`check_all`] on a scoped worker pool: the per-category/per-agent index
/// builds run in parallel ([`TraceIndex::new_parallel`]), then the invariant
/// passes — Invariants 1/2 (ordering, including `MissingOffload`),
/// Invariant 3 (persist-before-sync), Invariant 4 (recovery reads) — run as
/// independent jobs. Each pass is internally unchanged and the pool returns
/// outputs in job order, so the concatenated list is **element-for-element
/// equal** to [`check_all`] at every worker count (including 1, where this
/// degrades to the serial path on the calling thread). The serial checker is
/// retained as the differential oracle.
pub fn check_all_parallel(trace: &Trace, workers: usize) -> Vec<PpoViolation> {
    let pool = WorkerPool::new(workers);
    let idx = TraceIndex::new_parallel(trace, &pool);
    check_all_indexed_parallel(&idx, &pool)
}

/// [`check_all_parallel`] against a pre-built index: the three invariant
/// passes run as pool jobs, concatenated in the serial order
/// (ordering ++ sync ++ recovery).
pub fn check_all_indexed_parallel(idx: &TraceIndex<'_>, pool: &WorkerPool) -> Vec<PpoViolation> {
    type Pass<'j> = Box<dyn FnOnce() -> Vec<PpoViolation> + Send + 'j>;
    let passes: Vec<Pass<'_>> = vec![
        Box::new(|| check_cpu_ndp_ordering_indexed(idx)),
        Box::new(|| check_sync_persistence_indexed(idx)),
        Box::new(|| check_recovery_reads_indexed(idx)),
    ];
    pool.scoped_map(passes).into_iter().flatten().collect()
}

/// [`check_all`] against a cached [`IncrementalChecker`]: only the events
/// appended to `trace` since the previous call are folded — the checker
/// tracks which (event × event) pairs every invariant already compared, in
/// both directions — so a repeated clean check of a growing trace
/// (multi-`report()`/`sample()` sweeps) costs O(new events · log n) end to
/// end instead of a full re-walk over a cached index.
pub fn check_all_cached(trace: &Trace, cache: &mut IncrementalChecker) -> Vec<PpoViolation> {
    cache.check(trace)
}

/// [`check_all`] against a cached [`IncrementalTraceIndex`] — the PR 2
/// path: the *index* is extended incrementally but every checker still
/// re-walks the full trace per call. Retained as the index-layer
/// differential baseline and the oracle-side recompute the `report_smoke`
/// gate and `report_incremental` bench measure the violation-level
/// incremental checker against.
pub fn check_all_with_index_cache(
    trace: &Trace,
    cache: &mut IncrementalTraceIndex,
) -> Vec<PpoViolation> {
    cache.extend_from(trace);
    let mut v = check_cpu_ndp_ordering_with(trace, cache);
    v.extend(check_sync_persistence_with(trace, cache));
    v.extend(check_recovery_reads_with(trace, cache));
    v
}

/// Invariants 1 and 2: ordering between CPU and NDP accesses to shared
/// addresses must follow program order around the offload point.
pub fn check_cpu_ndp_ordering(trace: &Trace) -> Vec<PpoViolation> {
    check_cpu_ndp_ordering_indexed(&TraceIndex::new(trace))
}

/// Indexed implementation of [`check_cpu_ndp_ordering`]: one pass over the
/// NDP accesses, each resolved against the per-kind CPU interval indexes.
pub fn check_cpu_ndp_ordering_indexed(idx: &TraceIndex<'_>) -> Vec<PpoViolation> {
    check_cpu_ndp_ordering_with(idx.trace(), idx)
}

/// [`check_cpu_ndp_ordering`] against any index implementation.
fn check_cpu_ndp_ordering_with<I: PpoIndexQueries>(trace: &Trace, idx: &I) -> Vec<PpoViolation> {
    let events = trace.events();
    let mut violations = Vec::new();
    for ndp in events.iter().filter(|e| {
        e.agent.is_ndp()
            && e.sharing == Sharing::Shared
            && matches!(
                e.kind,
                EventKind::Write | EventKind::Persist | EventKind::Read
            )
            && e.interval.len > 0
    }) {
        let proc = match ndp.proc {
            Some(p) => p,
            None => continue,
        };
        let Some(off_po) = idx.offload_po(proc) else {
            violations.push(PpoViolation::MissingOffload { proc });
            continue;
        };
        idx.for_each_comparable_cpu_access(events, ndp.kind, ndp.interval, |cpu| {
            let cpu_before_offload = cpu.program_order < off_po;
            let ok = if cpu_before_offload {
                cpu.timestamp_ps <= ndp.timestamp_ps
            } else {
                ndp.timestamp_ps <= cpu.timestamp_ps
            };
            if !ok {
                violations.push(PpoViolation::SharedOrderViolation {
                    proc,
                    cpu_interval: cpu.interval,
                    ndp_interval: ndp.interval,
                    cpu_ts: cpu.timestamp_ps,
                    ndp_ts: ndp.timestamp_ps,
                    cpu_before_offload,
                });
            }
        });
    }
    violations
}

/// Invariant 3: writes covered by a synchronization event on the same
/// device must have persisted no later than the synchronization completes.
///
/// Which writes a sync covers depends on whether the sync event names a
/// procedure:
///
/// * **Proc-scoped sync** (`sync.proc == Some(p)`) — the sync guarantees
///   exactly the writes of procedure `p` recorded before it, *regardless of
///   their recorded timestamps*: the procedure's handles participated in
///   the synchronization, so a p-write that persists only after the sync
///   completes is a genuine violation (a "late write" the old temporal rule
///   silently cleared), while another procedure's late write is simply out
///   of scope (no false positive). The system records one sync event per
///   participating (device, procedure) pair.
/// * **Unscoped sync** (`sync.proc == None`) — the legacy conservative
///   form: every prior-in-trace write of the agent whose timestamp is no
///   later than the sync. The temporal condition is the deliberate
///   under-approximation that avoids false positives when multiple
///   application threads interleave in the trace — a sync never guarantees
///   work that had not happened yet.
pub fn check_sync_persistence(trace: &Trace) -> Vec<PpoViolation> {
    check_sync_persistence_indexed(&TraceIndex::new(trace))
}

/// Indexed implementation of [`check_sync_persistence`].
///
/// One pass over the trace: each NDP write is resolved once to the earliest
/// timestamp at which a persist of the same agent covered it (u64::MAX if
/// never), and parked in a per-agent ordered set keyed by that timestamp.
/// A sync event then reports exactly the parked writes whose earliest
/// covering persist lands after the sync — an O(log n + violations) range
/// read instead of a rescan of every prior write.
pub fn check_sync_persistence_indexed(idx: &TraceIndex<'_>) -> Vec<PpoViolation> {
    check_sync_persistence_with(idx.trace(), idx)
}

/// [`check_sync_persistence`] against any index implementation.
fn check_sync_persistence_with<I: PpoIndexQueries>(trace: &Trace, idx: &I) -> Vec<PpoViolation> {
    let mut violations = Vec::new();
    let events = trace.events();
    // Writes seen so far per agent, keyed by (earliest covering persist
    // timestamp, event index).
    let mut pending: HashMap<Agent, BTreeSet<(u64, u32)>> = HashMap::new();
    for (i, e) in events.iter().enumerate() {
        if !e.agent.is_ndp() {
            continue;
        }
        match e.kind {
            EventKind::Write if e.interval.len > 0 => {
                let ts = idx
                    .earliest_persist_by(e.agent, e.interval)
                    .unwrap_or(u64::MAX);
                pending.entry(e.agent).or_default().insert((ts, i as u32));
            }
            EventKind::Sync => {
                if let Some(parked) = pending.get(&e.agent) {
                    let mut failing: Vec<u32> = parked
                        .range((
                            Bound::Excluded((e.timestamp_ps, u32::MAX)),
                            Bound::Unbounded,
                        ))
                        .map(|&(_, id)| id)
                        .collect();
                    failing.sort_unstable();
                    for id in failing {
                        let w = &events[id as usize];
                        let in_scope = match e.proc {
                            // Proc-scoped sync: exactly the procedure's
                            // writes, wherever their timestamps landed.
                            Some(p) => w.proc == Some(p),
                            // Unscoped sync: writes that happen after it (in
                            // time) are not covered, wherever they sit in
                            // the trace.
                            None => w.timestamp_ps <= e.timestamp_ps,
                        };
                        if !in_scope {
                            continue;
                        }
                        violations.push(PpoViolation::UnpersistedBeforeSync {
                            agent: w.agent,
                            interval: w.interval,
                            sync_ts: e.timestamp_ps,
                        });
                    }
                }
            }
            _ => {}
        }
    }
    violations
}

/// Invariant 4: recovery reads only data that persisted before the failure.
pub fn check_recovery_reads(trace: &Trace) -> Vec<PpoViolation> {
    check_recovery_reads_indexed(&TraceIndex::new(trace))
}

/// Indexed implementation of [`check_recovery_reads`]: each recovery read is
/// two existence queries against the failure-window write/persist indexes.
pub fn check_recovery_reads_indexed(idx: &TraceIndex<'_>) -> Vec<PpoViolation> {
    check_recovery_reads_with(idx.trace(), idx)
}

/// [`check_recovery_reads`] against any index implementation.
fn check_recovery_reads_with<I: PpoIndexQueries>(trace: &Trace, idx: &I) -> Vec<PpoViolation> {
    let mut violations = Vec::new();
    if idx.failure_ts().is_none() {
        return violations;
    }
    for r in trace
        .events()
        .iter()
        .filter(|e| e.kind == EventKind::RecoveryRead && e.interval.len > 0)
    {
        // The recovery read must be backed by *some* persist of an overlapping
        // interval that completed before the failure, or the data must have
        // never been written at all since the start of the trace (reading the
        // initial image is always safe).
        if idx.written_before_failure(r.interval) && !idx.persisted_before_failure(r.interval) {
            violations.push(PpoViolation::RecoveryReadUnpersisted {
                agent: r.agent,
                interval: r.interval,
            });
        }
    }
    violations
}

/// Counts NDP persists to NDP-managed addresses that were *delayed* past a
/// later CPU access — the relaxation PPO explicitly allows. Benchmarks use
/// this to confirm the relaxed mode actually exercises the relaxation.
///
/// Two O(n) passes: the earliest CPU access timestamp (program order > 0)
/// bounds the comparison for every NDP-managed persist.
pub fn relaxed_persist_count(trace: &Trace) -> usize {
    let events = trace.events();
    let min_cpu_ts = events
        .iter()
        .filter(|e| {
            e.agent == Agent::Cpu
                && matches!(e.kind, EventKind::Write | EventKind::Read)
                && e.program_order > 0
        })
        .map(|e| e.timestamp_ps)
        .min();
    let Some(min_cpu_ts) = min_cpu_ts else {
        return 0;
    };
    events
        .iter()
        .filter(|e| {
            e.agent.is_ndp()
                && e.kind == EventKind::Persist
                && e.sharing == Sharing::NdpManaged
                && min_cpu_ts < e.timestamp_ps
        })
        .count()
}

/// The original nested-scan checkers, kept verbatim as reference oracles.
///
/// These are O(n²)–O(n³) in the trace length and exist only so that
/// differential tests and the `ppo_check` benchmarks can compare the indexed
/// implementations against the original semantics. Compiled under
/// `cfg(test)` or the `oracle` cargo feature.
#[cfg(any(test, feature = "oracle"))]
pub mod oracle {
    use super::PpoViolation;
    use crate::event::{Agent, EventKind, PpoEvent, ProcId, Sharing, Trace};

    /// Naive [`super::check_all`]: runs every naive checker.
    pub fn check_all(trace: &Trace) -> Vec<PpoViolation> {
        let mut v = check_cpu_ndp_ordering(trace);
        v.extend(check_sync_persistence(trace));
        v.extend(check_recovery_reads(trace));
        v
    }

    /// Naive [`super::check_cpu_ndp_ordering`]: all-pairs CPU×NDP scan.
    pub fn check_cpu_ndp_ordering(trace: &Trace) -> Vec<PpoViolation> {
        let mut violations = Vec::new();
        let events = trace.events();

        // Offload program-order index (on the CPU) and timestamp per procedure.
        let mut offload_po: std::collections::HashMap<ProcId, u64> =
            std::collections::HashMap::new();
        for e in events {
            if e.kind == EventKind::Offload && e.agent == Agent::Cpu {
                if let Some(p) = e.proc {
                    offload_po.entry(p).or_insert(e.program_order);
                }
            }
        }

        // NDP accesses to shared intervals, grouped by procedure.
        let ndp_shared: Vec<&PpoEvent> = events
            .iter()
            .filter(|e| {
                e.agent.is_ndp()
                    && e.sharing == Sharing::Shared
                    && matches!(
                        e.kind,
                        EventKind::Write | EventKind::Persist | EventKind::Read
                    )
                    && e.interval.len > 0
            })
            .collect();

        // CPU accesses to shared intervals.
        let cpu_shared: Vec<&PpoEvent> = events
            .iter()
            .filter(|e| {
                e.agent == Agent::Cpu
                    && e.sharing == Sharing::Shared
                    && matches!(
                        e.kind,
                        EventKind::Write | EventKind::Persist | EventKind::Read
                    )
                    && e.interval.len > 0
            })
            .collect();

        for ndp in &ndp_shared {
            let proc = match ndp.proc {
                Some(p) => p,
                None => continue,
            };
            let Some(&off_po) = offload_po.get(&proc) else {
                violations.push(PpoViolation::MissingOffload { proc });
                continue;
            };
            for cpu in &cpu_shared {
                if !cpu.interval.overlaps(&ndp.interval) {
                    continue;
                }
                // Only compare like kinds for persistence (Invariant 2) and
                // visibility (Invariant 1): persist-vs-persist and
                // write/read-vs-write/read.
                let comparable = matches!(
                    (cpu.kind, ndp.kind),
                    (EventKind::Persist, EventKind::Persist)
                        | (EventKind::Write, EventKind::Write)
                        | (EventKind::Write, EventKind::Read)
                        | (EventKind::Read, EventKind::Write)
                );
                if !comparable {
                    continue;
                }
                let cpu_before_offload = cpu.program_order < off_po;
                let ok = if cpu_before_offload {
                    cpu.timestamp_ps <= ndp.timestamp_ps
                } else {
                    ndp.timestamp_ps <= cpu.timestamp_ps
                };
                if !ok {
                    violations.push(PpoViolation::SharedOrderViolation {
                        proc,
                        cpu_interval: cpu.interval,
                        ndp_interval: ndp.interval,
                        cpu_ts: cpu.timestamp_ps,
                        ndp_ts: ndp.timestamp_ps,
                        cpu_before_offload,
                    });
                }
            }
        }
        violations
    }

    /// Naive [`super::check_sync_persistence`]: per sync, rescan every prior
    /// write and, per write, rescan every event for a covering persist.
    pub fn check_sync_persistence(trace: &Trace) -> Vec<PpoViolation> {
        let mut violations = Vec::new();
        let events = trace.events();

        for sync in events
            .iter()
            .filter(|e| e.kind == EventKind::Sync && e.agent.is_ndp())
        {
            for w in events.iter().filter(|e| {
                e.agent == sync.agent
                    && e.kind == EventKind::Write
                    && e.interval.len > 0
                    && e.program_order < sync.program_order
                    && match sync.proc {
                        // Proc-scoped sync: exactly the procedure's writes,
                        // regardless of recorded timestamps.
                        Some(p) => e.proc == Some(p),
                        // Unscoped sync — temporal, not trace-positional: a
                        // write that happens after the sync is not covered.
                        None => e.timestamp_ps <= sync.timestamp_ps,
                    }
            }) {
                // Find a persist of the same agent covering (overlapping) the
                // write interval, no later than the sync.
                let persisted = events.iter().any(|p| {
                    p.agent == w.agent
                        && p.kind == EventKind::Persist
                        && p.interval.overlaps(&w.interval)
                        && p.timestamp_ps <= sync.timestamp_ps
                });
                if !persisted {
                    violations.push(PpoViolation::UnpersistedBeforeSync {
                        agent: w.agent,
                        interval: w.interval,
                        sync_ts: sync.timestamp_ps,
                    });
                }
            }
        }
        violations
    }

    /// Naive [`super::check_recovery_reads`]: per recovery read, rescan the
    /// whole trace for pre-failure writes and persists.
    pub fn check_recovery_reads(trace: &Trace) -> Vec<PpoViolation> {
        let mut violations = Vec::new();
        let Some(failure_ts) = trace.failure_time() else {
            return violations;
        };
        let events = trace.events();
        for r in events
            .iter()
            .filter(|e| e.kind == EventKind::RecoveryRead && e.interval.len > 0)
        {
            let written = events.iter().any(|w| {
                w.kind == EventKind::Write
                    && w.interval.overlaps(&r.interval)
                    && w.timestamp_ps <= failure_ts
            });
            if !written {
                continue;
            }
            let persisted_before_failure = events.iter().any(|p| {
                p.kind == EventKind::Persist
                    && p.interval.overlaps(&r.interval)
                    && p.timestamp_ps <= failure_ts
            });
            if !persisted_before_failure {
                violations.push(PpoViolation::RecoveryReadUnpersisted {
                    agent: r.agent,
                    interval: r.interval,
                });
            }
        }
        violations
    }

    /// Naive [`super::relaxed_persist_count`]: all-pairs persist×access scan.
    pub fn relaxed_persist_count(trace: &Trace) -> usize {
        let events = trace.events();
        let cpu_accesses: Vec<&PpoEvent> = events
            .iter()
            .filter(|e| {
                e.agent == Agent::Cpu && matches!(e.kind, EventKind::Write | EventKind::Read)
            })
            .collect();
        events
            .iter()
            .filter(|e| {
                e.agent.is_ndp() && e.kind == EventKind::Persist && e.sharing == Sharing::NdpManaged
            })
            .filter(|p| {
                cpu_accesses
                    .iter()
                    .any(|c| c.program_order > 0 && c.timestamp_ps < p.timestamp_ps)
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Agent, EventKind, Interval, Sharing, Trace};

    /// Builds a well-formed undo-logging trace:
    /// CPU offloads log creation, NDP persists the log (NDP-managed), the CPU
    /// then updates the shared object in place and persists it.
    fn good_undo_log_trace() -> Trace {
        let mut t = Trace::new(1);
        let p = t.new_proc();
        let obj = Interval::new(0x1000, 64);
        let log = Interval::new(0x8000, 64);

        // CPU offloads the log-creation procedure.
        t.record(
            Agent::Cpu,
            EventKind::Offload,
            Interval::new(0, 0),
            Sharing::Shared,
            Some(p),
            None,
            100,
        );
        // NDP reads the shared object (source of the log copy).
        t.record(
            Agent::Ndp(0),
            EventKind::Read,
            obj,
            Sharing::Shared,
            Some(p),
            None,
            200,
        );
        // NDP writes + persists the log (NDP-managed).
        t.record_write_persist(Agent::Ndp(0), log, Sharing::NdpManaged, Some(p), 300);
        // CPU updates the object afterwards and persists it.
        t.record(
            Agent::Cpu,
            EventKind::Write,
            obj,
            Sharing::Shared,
            None,
            None,
            400,
        );
        t.record(
            Agent::Cpu,
            EventKind::Persist,
            obj,
            Sharing::Shared,
            None,
            None,
            450,
        );
        t
    }

    #[test]
    fn well_formed_trace_has_no_violations() {
        let t = good_undo_log_trace();
        assert!(check_all(&t).is_empty());
    }

    #[test]
    fn cpu_update_persisting_before_ndp_read_is_flagged() {
        // The CPU's in-place update (after the offload) must not become
        // visible before the NDP procedure reads the old value.
        let mut t = Trace::new(1);
        let p = t.new_proc();
        let obj = Interval::new(0x1000, 64);
        t.record(
            Agent::Cpu,
            EventKind::Offload,
            Interval::new(0, 0),
            Sharing::Shared,
            Some(p),
            None,
            100,
        );
        // NDP reads the object *late*...
        t.record(
            Agent::Ndp(0),
            EventKind::Read,
            obj,
            Sharing::Shared,
            Some(p),
            None,
            500,
        );
        // ...but the CPU already overwrote it at t=200 (program order after offload).
        t.record(
            Agent::Cpu,
            EventKind::Write,
            obj,
            Sharing::Shared,
            None,
            None,
            200,
        );
        let violations = check_cpu_ndp_ordering(&t);
        assert_eq!(violations.len(), 1);
        assert!(matches!(
            violations[0],
            PpoViolation::SharedOrderViolation {
                cpu_before_offload: false,
                ..
            }
        ));
    }

    #[test]
    fn cpu_write_before_offload_must_be_visible_to_ndp() {
        let mut t = Trace::new(1);
        let p = t.new_proc();
        let obj = Interval::new(0x1000, 64);
        // CPU writes the object, then offloads; the NDP read happens "earlier"
        // in simulated time than the CPU write — a violation.
        t.record(
            Agent::Cpu,
            EventKind::Write,
            obj,
            Sharing::Shared,
            None,
            None,
            300,
        );
        t.record(
            Agent::Cpu,
            EventKind::Offload,
            Interval::new(0, 0),
            Sharing::Shared,
            Some(p),
            None,
            350,
        );
        t.record(
            Agent::Ndp(0),
            EventKind::Read,
            obj,
            Sharing::Shared,
            Some(p),
            None,
            100,
        );
        let violations = check_cpu_ndp_ordering(&t);
        assert_eq!(violations.len(), 1);
        assert!(matches!(
            violations[0],
            PpoViolation::SharedOrderViolation {
                cpu_before_offload: true,
                ..
            }
        ));
    }

    #[test]
    fn ndp_shared_access_without_offload_is_flagged() {
        let mut t = Trace::new(1);
        let p = t.new_proc();
        let obj = Interval::new(0x1000, 64);
        t.record(
            Agent::Ndp(0),
            EventKind::Write,
            obj,
            Sharing::Shared,
            Some(p),
            None,
            100,
        );
        t.record(
            Agent::Cpu,
            EventKind::Write,
            obj,
            Sharing::Shared,
            None,
            None,
            200,
        );
        let violations = check_cpu_ndp_ordering(&t);
        assert!(violations
            .iter()
            .any(|v| matches!(v, PpoViolation::MissingOffload { .. })));
    }

    #[test]
    fn ndp_managed_addresses_are_exempt_from_cpu_ordering() {
        // An NDP-managed persist long after CPU activity is fine.
        let mut t = Trace::new(1);
        let p = t.new_proc();
        let log = Interval::new(0x8000, 64);
        t.record(
            Agent::Cpu,
            EventKind::Offload,
            Interval::new(0, 0),
            Sharing::Shared,
            Some(p),
            None,
            100,
        );
        t.record(
            Agent::Cpu,
            EventKind::Write,
            Interval::new(0x1000, 64),
            Sharing::Shared,
            None,
            None,
            150,
        );
        t.record_write_persist(Agent::Ndp(0), log, Sharing::NdpManaged, Some(p), 9_000);
        assert!(check_cpu_ndp_ordering(&t).is_empty());
        assert_eq!(relaxed_persist_count(&t), 1);
    }

    #[test]
    fn sync_requires_prior_writes_persisted() {
        let mut t = Trace::new(2);
        let p = t.new_proc();
        let s = t.new_sync();
        let log = Interval::new(0x8000, 64);
        t.record(
            Agent::Cpu,
            EventKind::Offload,
            Interval::new(0, 0),
            Sharing::Shared,
            Some(p),
            None,
            10,
        );
        // Device 0 writes its half of the log but never persists it...
        t.record(
            Agent::Ndp(0),
            EventKind::Write,
            log,
            Sharing::NdpManaged,
            Some(p),
            None,
            100,
        );
        // ...and then synchronizes. That violates Invariant 3.
        t.record(
            Agent::Ndp(0),
            EventKind::Sync,
            Interval::new(0, 0),
            Sharing::NdpManaged,
            Some(p),
            Some(s),
            200,
        );
        let violations = check_sync_persistence(&t);
        assert_eq!(violations.len(), 1);
        assert!(matches!(
            violations[0],
            PpoViolation::UnpersistedBeforeSync { .. }
        ));

        // Adding the persist before the sync fixes it.
        let mut t2 = Trace::new(2);
        let p2 = t2.new_proc();
        let s2 = t2.new_sync();
        t2.record(
            Agent::Cpu,
            EventKind::Offload,
            Interval::new(0, 0),
            Sharing::Shared,
            Some(p2),
            None,
            10,
        );
        t2.record(
            Agent::Ndp(0),
            EventKind::Write,
            log,
            Sharing::NdpManaged,
            Some(p2),
            None,
            100,
        );
        t2.record(
            Agent::Ndp(0),
            EventKind::Persist,
            log,
            Sharing::NdpManaged,
            Some(p2),
            None,
            150,
        );
        t2.record(
            Agent::Ndp(0),
            EventKind::Sync,
            Interval::new(0, 0),
            Sharing::NdpManaged,
            Some(p2),
            Some(s2),
            200,
        );
        assert!(check_sync_persistence(&t2).is_empty());
    }

    /// ROADMAP proc-scoped sync regression: a sync that names its procedure
    /// guarantees exactly that procedure's writes. A participating write
    /// whose timestamp lands *after* the sync (a late write the old temporal
    /// rule silently cleared) is correctly flagged, while another
    /// procedure's late write recorded before the sync does not false-
    /// positive — and an unscoped sync keeps the legacy temporal behavior.
    #[test]
    fn proc_scoped_sync_flags_late_participating_write_only() {
        let lay = |proc_for_sync: Option<ProcId>| -> (Trace, ProcId, ProcId) {
            let mut t = Trace::new(1);
            let p1 = t.new_proc();
            let p2 = t.new_proc();
            let s = t.new_sync();
            let log1 = Interval::new(0x8000, 64);
            let log2 = Interval::new(0x9000, 64);
            // An *unrelated* procedure's late write (ts 400 > sync ts 300),
            // recorded before the sync and never persisted.
            t.record(
                Agent::Ndp(0),
                EventKind::Write,
                log2,
                Sharing::NdpManaged,
                Some(p2),
                None,
                400,
            );
            // The participating procedure's write is also late (ts 500) and
            // never persisted: its handle took part in the sync, so the
            // sync's completion claims it persisted — a genuine violation.
            t.record(
                Agent::Ndp(0),
                EventKind::Write,
                log1,
                Sharing::NdpManaged,
                Some(p1),
                None,
                500,
            );
            t.record(
                Agent::Ndp(0),
                EventKind::Sync,
                Interval::new(0, 0),
                Sharing::NdpManaged,
                proc_for_sync,
                Some(s),
                300,
            );
            (t, p1, p2)
        };

        // Proc-scoped sync: exactly the participating procedure's late
        // write is flagged; the unrelated write is out of scope.
        let (t, _p1, _p2) = lay(Some(ProcId(0)));
        let violations = check_sync_persistence(&t);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(matches!(
            violations[0],
            PpoViolation::UnpersistedBeforeSync {
                interval: Interval { start: 0x8000, .. },
                ..
            }
        ));
        assert_eq!(violations, oracle::check_sync_persistence(&t));
        // The incremental checker agrees, including when the sync arrives in
        // a later batch than the writes.
        let mut checker = crate::incremental::IncrementalChecker::new();
        let mut replay = Trace::new(1);
        for (i, e) in t.events().iter().enumerate() {
            replay.record(
                e.agent,
                e.kind,
                e.interval,
                e.sharing,
                e.proc,
                e.sync,
                e.timestamp_ps,
            );
            assert_eq!(
                check_all_cached(&replay, &mut checker),
                check_all(&replay),
                "prefix {i}"
            );
        }

        // Unscoped sync: the legacy temporal under-approximation clears
        // both late writes (they had not happened yet at sync time).
        let (t, _, _) = lay(None);
        assert!(check_sync_persistence(&t).is_empty());
        assert_eq!(oracle::check_sync_persistence(&t), Vec::new());

        // A persisted participating write satisfies the proc-scoped sync
        // even when its persist is recorded after the sync in the trace but
        // timestamped before it.
        let mut t2 = Trace::new(1);
        let p1 = t2.new_proc();
        let s2 = t2.new_sync();
        let log = Interval::new(0x8000, 64);
        t2.record(
            Agent::Ndp(0),
            EventKind::Write,
            log,
            Sharing::NdpManaged,
            Some(p1),
            None,
            100,
        );
        t2.record(
            Agent::Ndp(0),
            EventKind::Sync,
            Interval::new(0, 0),
            Sharing::NdpManaged,
            Some(p1),
            Some(s2),
            300,
        );
        t2.record(
            Agent::Ndp(0),
            EventKind::Persist,
            log,
            Sharing::NdpManaged,
            Some(p1),
            None,
            200,
        );
        assert!(check_sync_persistence(&t2).is_empty());
        assert_eq!(oracle::check_sync_persistence(&t2), Vec::new());
    }

    #[test]
    fn recovery_read_of_unpersisted_data_is_flagged() {
        let mut t = Trace::new(1);
        let log = Interval::new(0x8000, 64);
        // Written but never persisted before the failure.
        t.record(
            Agent::Ndp(0),
            EventKind::Write,
            log,
            Sharing::NdpManaged,
            None,
            None,
            100,
        );
        t.record(
            Agent::Cpu,
            EventKind::Failure,
            Interval::new(0, 0),
            Sharing::Shared,
            None,
            None,
            200,
        );
        t.record(
            Agent::Ndp(0),
            EventKind::RecoveryRead,
            log,
            Sharing::NdpManaged,
            None,
            None,
            300,
        );
        let violations = check_recovery_reads(&t);
        assert_eq!(violations.len(), 1);

        // If the data persisted before the failure, recovery may read it.
        let mut t2 = Trace::new(1);
        t2.record_write_persist(Agent::Ndp(0), log, Sharing::NdpManaged, None, 100);
        t2.record(
            Agent::Cpu,
            EventKind::Failure,
            Interval::new(0, 0),
            Sharing::Shared,
            None,
            None,
            200,
        );
        t2.record(
            Agent::Ndp(0),
            EventKind::RecoveryRead,
            log,
            Sharing::NdpManaged,
            None,
            None,
            300,
        );
        assert!(check_recovery_reads(&t2).is_empty());
    }

    #[test]
    fn recovery_read_of_never_written_region_is_allowed() {
        let mut t = Trace::new(1);
        t.record(
            Agent::Cpu,
            EventKind::Failure,
            Interval::new(0, 0),
            Sharing::Shared,
            None,
            None,
            200,
        );
        t.record(
            Agent::Ndp(0),
            EventKind::RecoveryRead,
            Interval::new(0x9000, 64),
            Sharing::NdpManaged,
            None,
            None,
            300,
        );
        assert!(check_recovery_reads(&t).is_empty());
    }

    #[test]
    fn no_failure_means_no_recovery_violations() {
        let t = good_undo_log_trace();
        assert!(check_recovery_reads(&t).is_empty());
    }

    #[test]
    fn violation_display_is_informative() {
        let v = PpoViolation::MissingOffload { proc: ProcId(7) };
        assert!(v.to_string().contains("no offload"));
        let v = PpoViolation::RecoveryReadUnpersisted {
            agent: Agent::Ndp(1),
            interval: Interval::new(0, 8),
        };
        assert!(v.to_string().contains("recovery read"));
    }

    #[test]
    fn indexed_and_oracle_agree_on_handcrafted_traces() {
        let traces = [good_undo_log_trace()];
        for t in &traces {
            assert_eq!(check_all(t), oracle::check_all(t));
            assert_eq!(relaxed_persist_count(t), oracle::relaxed_persist_count(t));
        }
    }
}
