//! Persist-ordering event traces.
//!
//! Execution of a PM program on a NearPM system is *partitioned*: some memory
//! accesses are issued by the CPU, some by NDP procedures running on one or
//! more NearPM devices. To reason about Partitioned Persist Ordering (PPO),
//! the system records an [`Trace`] of [`PpoEvent`]s. Each event carries:
//!
//! * the **agent** that issued it (CPU or a specific NearPM device),
//! * its **kind** (read, write, persist, offload, synchronization, failure,
//!   recovery read),
//! * the affected **address interval** and its **sharing classification**
//!   (shared between CPU and NDP, or managed exclusively by NDP — logs,
//!   checkpoints, shadow copies),
//! * a **timestamp** in simulated time and a per-agent **program-order
//!   index**.
//!
//! The checkers in [`crate::invariants`] consume such traces and verify the
//! four PPO invariants from Section 4 of the paper.

use std::fmt;

/// Identifier of an NDP procedure (a series of primitives offloaded together,
/// e.g. "create the undo log for object X").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcId(pub u64);

/// Identifier of a multi-device synchronization event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SyncId(pub u64);

/// The agent that issued a memory event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Agent {
    /// The host CPU.
    Cpu,
    /// A NearPM device (by index).
    Ndp(usize),
}

impl Agent {
    /// True for NearPM agents.
    pub fn is_ndp(&self) -> bool {
        matches!(self, Agent::Ndp(_))
    }
}

impl fmt::Display for Agent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Agent::Cpu => write!(f, "cpu"),
            Agent::Ndp(d) => write!(f, "ndp{d}"),
        }
    }
}

/// Sharing classification of an address interval, the pivot of PPO's relaxed
/// ordering: NDP-managed addresses never become visible to the CPU outside of
/// recovery, so persists to them may be delayed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sharing {
    /// Shared between the CPU and NDP procedures (application data).
    Shared,
    /// Managed exclusively by NDP procedures (logs, checkpoints, shadow pages).
    NdpManaged,
}

/// A byte interval in the (virtual) address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interval {
    /// First byte.
    pub start: u64,
    /// Length in bytes.
    pub len: u64,
}

impl Interval {
    /// Creates an interval.
    pub fn new(start: u64, len: u64) -> Self {
        Interval { start, len }
    }

    /// Exclusive end.
    pub fn end(&self) -> u64 {
        self.start + self.len
    }

    /// True if two intervals share at least one byte.
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.len > 0 && other.len > 0 && self.start < other.end() && other.start < self.end()
    }
}

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A read of the interval.
    Read,
    /// A write of the interval (visible, not necessarily persistent yet).
    Write,
    /// The interval became persistent (reached the persistence domain).
    Persist,
    /// The CPU offloaded an NDP procedure (the event's `proc` names it).
    Offload,
    /// An NDP procedure completed on this agent.
    ProcComplete,
    /// A multi-device synchronization point (the event's `sync` names it).
    Sync,
    /// A system failure (crash). Everything not persisted is lost.
    Failure,
    /// A read performed by the recovery procedure after a failure.
    RecoveryRead,
}

/// One entry of a PPO trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PpoEvent {
    /// Issuing agent.
    pub agent: Agent,
    /// Event kind.
    pub kind: EventKind,
    /// Affected address interval (zero-length for pure control events).
    pub interval: Interval,
    /// Sharing classification of the interval.
    pub sharing: Sharing,
    /// NDP procedure this event belongs to (if any).
    pub proc: Option<ProcId>,
    /// Synchronization event referenced (for `Sync` events).
    pub sync: Option<SyncId>,
    /// Simulated time at which the event took effect, in picoseconds.
    pub timestamp_ps: u64,
    /// Program-order index within the issuing agent.
    pub program_order: u64,
}

impl PpoEvent {
    /// Builder-style constructor for a control event with no interval.
    pub fn control(agent: Agent, kind: EventKind, timestamp_ps: u64, program_order: u64) -> Self {
        PpoEvent {
            agent,
            kind,
            interval: Interval::new(0, 0),
            sharing: Sharing::Shared,
            proc: None,
            sync: None,
            timestamp_ps,
            program_order,
        }
    }
}

/// Sealed summary of a retired trace prefix: per-kind event counts and
/// aggregate byte volume, folded in as events are evicted by
/// [`Trace::retire_through`]. The counts are exact — a compacting run's
/// report totals are computed from `retired + live` and stay equal to a
/// non-compacting run's.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetiredSummary {
    /// Retired read events.
    pub reads: usize,
    /// Retired write events.
    pub writes: usize,
    /// Retired persist events.
    pub persists: usize,
    /// Retired offload events.
    pub offloads: usize,
    /// Retired procedure-completion events.
    pub proc_completes: usize,
    /// Retired synchronization events.
    pub syncs: usize,
    /// Retired failure events.
    pub failures: usize,
    /// Retired recovery-read events.
    pub recovery_reads: usize,
    /// Total bytes covered by retired events' intervals.
    pub bytes: u64,
}

impl RetiredSummary {
    /// Total number of retired events.
    pub fn events(&self) -> usize {
        self.reads
            + self.writes
            + self.persists
            + self.offloads
            + self.proc_completes
            + self.syncs
            + self.failures
            + self.recovery_reads
    }

    fn absorb(&mut self, e: &PpoEvent) {
        match e.kind {
            EventKind::Read => self.reads += 1,
            EventKind::Write => self.writes += 1,
            EventKind::Persist => self.persists += 1,
            EventKind::Offload => self.offloads += 1,
            EventKind::ProcComplete => self.proc_completes += 1,
            EventKind::Sync => self.syncs += 1,
            EventKind::Failure => self.failures += 1,
            EventKind::RecoveryRead => self.recovery_reads += 1,
        }
        self.bytes += e.interval.len;
    }
}

/// An append-only trace of PPO events.
///
/// Long self-monitoring runs can **retire** a verified prefix
/// ([`Trace::retire_through`]): retired events are evicted from the live
/// vector into a sealed [`RetiredSummary`], bounding resident memory while
/// [`Trace::len`] keeps counting every event ever recorded. Event indices
/// (as used by the incremental checker) stay absolute; [`Trace::events`]
/// returns the live suffix, offset by [`Trace::retired`].
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<PpoEvent>,
    next_proc: u64,
    next_sync: u64,
    program_order_cpu: u64,
    program_order_ndp: Vec<u64>,
    /// Timestamp of the first recorded failure event (cached so
    /// `failure_time` is O(1) instead of a scan).
    first_failure: Option<u64>,
    /// Bumped by [`Trace::clear`] so cached indexes can detect a reset even
    /// when the trace has regrown past its previous length.
    generation: u64,
    /// Number of events evicted from the front of the live vector.
    retired: usize,
    /// Per-kind aggregates of the retired prefix.
    retired_summary: RetiredSummary,
}

impl Trace {
    /// Creates an empty trace for a system with `devices` NearPM devices.
    pub fn new(devices: usize) -> Self {
        Trace {
            program_order_ndp: vec![0; devices],
            ..Trace::default()
        }
    }

    /// Clears all events and counters, returning the trace to its freshly
    /// constructed state and advancing its generation. Any cached index
    /// built over the trace is invalidated (see
    /// `IncrementalTraceIndex::extend_from`, which detects the generation
    /// change and rebuilds).
    pub fn clear(&mut self) {
        let devices = self.program_order_ndp.len();
        let generation = self.generation.wrapping_add(1);
        *self = Trace::new(devices);
        self.generation = generation;
    }

    /// Reset generation: starts at zero and advances on every
    /// [`Trace::clear`].
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Total number of recorded events, including retired ones. This is the
    /// absolute id space: event `i` of a run keeps id `i` forever, whether or
    /// not it is still resident.
    pub fn len(&self) -> usize {
        self.retired + self.events.len()
    }

    /// True if no event was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The live (non-retired) suffix of the trace, in recording order. The
    /// first element has absolute id [`Trace::retired`], not 0.
    pub fn events(&self) -> &[PpoEvent] {
        &self.events
    }

    /// Number of events evicted from the front by [`Trace::retire_through`].
    pub fn retired(&self) -> usize {
        self.retired
    }

    /// Number of events still resident in the live vector.
    pub fn resident(&self) -> usize {
        self.events.len()
    }

    /// Aggregates of the retired prefix.
    pub fn retired_summary(&self) -> &RetiredSummary {
        &self.retired_summary
    }

    /// Evicts events with absolute id `< floor` from the live vector into the
    /// sealed [`RetiredSummary`], returning how many were evicted. Callers
    /// must guarantee no live consumer will dereference the evicted prefix
    /// again — in this workspace that contract is enforced by
    /// `IncrementalChecker::pinned_floor`, which never exceeds what the
    /// checker's parked Invariant-3/4 state can still reference.
    pub fn retire_through(&mut self, floor: usize) -> usize {
        let evict = floor.saturating_sub(self.retired).min(self.events.len());
        if evict == 0 {
            return 0;
        }
        for e in self.events.drain(..evict) {
            self.retired_summary.absorb(&e);
        }
        self.retired += evict;
        evict
    }

    /// Allocates a fresh NDP-procedure id.
    pub fn new_proc(&mut self) -> ProcId {
        let id = ProcId(self.next_proc);
        self.next_proc += 1;
        id
    }

    /// Allocates a fresh synchronization-event id.
    pub fn new_sync(&mut self) -> SyncId {
        let id = SyncId(self.next_sync);
        self.next_sync += 1;
        id
    }

    /// Next program-order index for `agent`, advancing the counter.
    fn next_po(&mut self, agent: Agent) -> u64 {
        match agent {
            Agent::Cpu => {
                let po = self.program_order_cpu;
                self.program_order_cpu += 1;
                po
            }
            Agent::Ndp(d) => {
                if d >= self.program_order_ndp.len() {
                    self.program_order_ndp.resize(d + 1, 0);
                }
                let po = self.program_order_ndp[d];
                self.program_order_ndp[d] += 1;
                po
            }
        }
    }

    /// Records an event, assigning its program-order index automatically.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &mut self,
        agent: Agent,
        kind: EventKind,
        interval: Interval,
        sharing: Sharing,
        proc: Option<ProcId>,
        sync: Option<SyncId>,
        timestamp_ps: u64,
    ) -> &PpoEvent {
        let program_order = self.next_po(agent);
        if kind == EventKind::Failure && self.first_failure.is_none() {
            self.first_failure = Some(timestamp_ps);
        }
        self.events.push(PpoEvent {
            agent,
            kind,
            interval,
            sharing,
            proc,
            sync,
            timestamp_ps,
            program_order,
        });
        self.events.last().expect("just pushed")
    }

    /// Convenience: record a write and its persist at the same timestamp
    /// (used for NDP writes, which have no write cache).
    pub fn record_write_persist(
        &mut self,
        agent: Agent,
        interval: Interval,
        sharing: Sharing,
        proc: Option<ProcId>,
        timestamp_ps: u64,
    ) {
        self.record(
            agent,
            EventKind::Write,
            interval,
            sharing,
            proc,
            None,
            timestamp_ps,
        );
        self.record(
            agent,
            EventKind::Persist,
            interval,
            sharing,
            proc,
            None,
            timestamp_ps,
        );
    }

    /// Live events issued by one agent, in program order (retired events are
    /// not included; the oracle checkers that use this are never run on
    /// compacted traces).
    pub fn by_agent(&self, agent: Agent) -> Vec<&PpoEvent> {
        self.events.iter().filter(|e| e.agent == agent).collect()
    }

    /// The timestamp of the first failure event, if one was recorded.
    pub fn failure_time(&self) -> Option<u64> {
        self.first_failure
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_overlap_rules() {
        let a = Interval::new(0, 10);
        let b = Interval::new(5, 10);
        let c = Interval::new(10, 10);
        let z = Interval::new(0, 0);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(!a.overlaps(&z));
        assert_eq!(a.end(), 10);
    }

    #[test]
    fn program_order_advances_per_agent() {
        let mut t = Trace::new(2);
        t.record(
            Agent::Cpu,
            EventKind::Write,
            Interval::new(0, 8),
            Sharing::Shared,
            None,
            None,
            10,
        );
        t.record(
            Agent::Ndp(0),
            EventKind::Write,
            Interval::new(64, 8),
            Sharing::NdpManaged,
            None,
            None,
            20,
        );
        t.record(
            Agent::Cpu,
            EventKind::Persist,
            Interval::new(0, 8),
            Sharing::Shared,
            None,
            None,
            30,
        );
        let cpu = t.by_agent(Agent::Cpu);
        assert_eq!(cpu.len(), 2);
        assert_eq!(cpu[0].program_order, 0);
        assert_eq!(cpu[1].program_order, 1);
        let ndp = t.by_agent(Agent::Ndp(0));
        assert_eq!(ndp[0].program_order, 0);
        assert!(t.by_agent(Agent::Ndp(1)).is_empty());
    }

    #[test]
    fn proc_and_sync_ids_are_unique() {
        let mut t = Trace::new(1);
        let p0 = t.new_proc();
        let p1 = t.new_proc();
        let s0 = t.new_sync();
        let s1 = t.new_sync();
        assert_ne!(p0, p1);
        assert_ne!(s0, s1);
    }

    #[test]
    fn write_persist_shortcut_records_two_events() {
        let mut t = Trace::new(1);
        let p = t.new_proc();
        t.record_write_persist(
            Agent::Ndp(0),
            Interval::new(128, 64),
            Sharing::NdpManaged,
            Some(p),
            42,
        );
        assert_eq!(t.len(), 2);
        assert_eq!(t.events()[0].kind, EventKind::Write);
        assert_eq!(t.events()[1].kind, EventKind::Persist);
        assert_eq!(t.events()[1].timestamp_ps, 42);
    }

    #[test]
    fn failure_time_lookup() {
        let mut t = Trace::new(1);
        assert_eq!(t.failure_time(), None);
        t.record(
            Agent::Cpu,
            EventKind::Failure,
            Interval::new(0, 0),
            Sharing::Shared,
            None,
            None,
            999,
        );
        assert_eq!(t.failure_time(), Some(999));
    }

    #[test]
    fn retirement_evicts_prefix_but_preserves_totals() {
        let mut t = Trace::new(1);
        let p = t.new_proc();
        for i in 0..10u64 {
            t.record_write_persist(
                Agent::Ndp(0),
                Interval::new(i * 64, 64),
                Sharing::NdpManaged,
                Some(p),
                i * 10,
            );
        }
        assert_eq!(t.len(), 20);
        assert_eq!(t.retired(), 0);

        // Retire the first 7 events (3.5 write/persist pairs).
        assert_eq!(t.retire_through(7), 7);
        assert_eq!(t.retired(), 7);
        assert_eq!(t.resident(), 13);
        assert_eq!(t.len(), 20);
        assert!(!t.is_empty());
        let s = *t.retired_summary();
        assert_eq!(s.events(), 7);
        assert_eq!(s.writes, 4);
        assert_eq!(s.persists, 3);
        assert_eq!(s.bytes, 7 * 64);
        // Live suffix starts at absolute id 7 (a persist of interval 192..256).
        assert_eq!(t.events()[0].kind, EventKind::Persist);
        assert_eq!(t.events()[0].interval.start, 3 * 64);

        // A lower or equal floor is a no-op; floors past the end clamp.
        assert_eq!(t.retire_through(5), 0);
        assert_eq!(t.retire_through(usize::MAX), 13);
        assert_eq!(t.retired(), 20);
        assert_eq!(t.resident(), 0);
        assert_eq!(t.len(), 20);
        assert_eq!(t.retired_summary().events(), 20);

        // clear() resets retirement along with everything else.
        t.clear();
        assert_eq!(t.retired(), 0);
        assert_eq!(t.len(), 0);
        assert_eq!(t.retired_summary().events(), 0);
    }

    #[test]
    fn agent_display_and_classification() {
        assert_eq!(Agent::Cpu.to_string(), "cpu");
        assert_eq!(Agent::Ndp(1).to_string(), "ndp1");
        assert!(Agent::Ndp(0).is_ndp());
        assert!(!Agent::Cpu.is_ndp());
    }
}
