//! Differential tests: indexed checkers vs the naive oracles.
//!
//! Generates randomized traces — adversarial ones, with overlapping
//! intervals, colliding timestamps, missing offloads, zero-length intervals,
//! multiple failures, and all event kinds — and asserts that the indexed
//! single-pass checkers report *exactly* the same violation lists (same
//! contents, same order) as the original nested-scan oracles.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::event::{Agent, EventKind, Interval, ProcId, Sharing, SyncId, Trace};
use crate::incremental::IncrementalChecker;
use crate::index::IncrementalTraceIndex;
use crate::invariants::{self, oracle};

/// Shape parameters of one random trace.
struct TraceShape {
    events: usize,
    devices: usize,
    /// Number of distinct base addresses; a small pool forces overlaps.
    bases: u64,
    procs: u64,
    /// Probability that a procedure gets an offload event recorded.
    offload_prob: f64,
    failure_prob: f64,
}

fn random_interval(rng: &mut StdRng, shape: &TraceShape) -> Interval {
    let base = rng.gen_range(0..shape.bases) * 0x100;
    let jitter = rng.gen_range(0u64..32);
    // Occasionally zero-length, to exercise the filters.
    let len = if rng.gen_range(0u64..10) == 0 {
        0
    } else {
        rng.gen_range(1u64..160)
    };
    Interval::new(base + jitter, len)
}

fn random_trace(rng: &mut StdRng, shape: &TraceShape) -> Trace {
    let mut t = Trace::new(shape.devices);
    let procs: Vec<ProcId> = (0..shape.procs).map(|_| t.new_proc()).collect();
    let syncs: Vec<SyncId> = (0..3).map(|_| t.new_sync()).collect();

    // Some procedures get an offload record, some deliberately do not
    // (MissingOffload coverage).
    for p in &procs {
        if rng.gen::<f64>() < shape.offload_prob {
            let ts = rng.gen_range(0u64..10_000);
            t.record(
                Agent::Cpu,
                EventKind::Offload,
                Interval::new(0, 0),
                Sharing::Shared,
                Some(*p),
                None,
                ts,
            );
        }
    }

    let mut failed = false;
    for _ in 0..shape.events {
        let agent = if rng.gen::<f64>() < 0.4 {
            Agent::Cpu
        } else {
            Agent::Ndp(rng.gen_range(0..shape.devices))
        };
        let kind = match rng.gen_range(0u32..100) {
            0..=29 => EventKind::Write,
            30..=54 => EventKind::Persist,
            55..=74 => EventKind::Read,
            75..=84 => EventKind::Sync,
            85..=94 => {
                if failed {
                    EventKind::RecoveryRead
                } else {
                    EventKind::Read
                }
            }
            _ => {
                if !failed && rng.gen::<f64>() < shape.failure_prob {
                    failed = true;
                    EventKind::Failure
                } else {
                    EventKind::Persist
                }
            }
        };
        let interval = random_interval(rng, shape);
        let sharing = if rng.gen::<f64>() < 0.5 {
            Sharing::Shared
        } else {
            Sharing::NdpManaged
        };
        let proc = if rng.gen::<f64>() < 0.7 {
            Some(procs[rng.gen_range(0..procs.len())])
        } else {
            None
        };
        let sync = if kind == EventKind::Sync {
            Some(syncs[rng.gen_range(0..syncs.len())])
        } else {
            None
        };
        // Coarse timestamps so that <=/< boundary cases actually occur.
        let ts = rng.gen_range(0u64..2_000) * 10;
        t.record(agent, kind, interval, sharing, proc, sync, ts);
    }
    t
}

fn assert_checkers_agree(t: &Trace, seed: u64) {
    assert_eq!(
        invariants::check_cpu_ndp_ordering(t),
        oracle::check_cpu_ndp_ordering(t),
        "cpu/ndp ordering diverged (seed {seed})"
    );
    assert_eq!(
        invariants::check_sync_persistence(t),
        oracle::check_sync_persistence(t),
        "sync persistence diverged (seed {seed})"
    );
    assert_eq!(
        invariants::check_recovery_reads(t),
        oracle::check_recovery_reads(t),
        "recovery reads diverged (seed {seed})"
    );
    assert_eq!(
        invariants::check_all(t),
        oracle::check_all(t),
        "check_all diverged (seed {seed})"
    );
    assert_eq!(
        invariants::relaxed_persist_count(t),
        oracle::relaxed_persist_count(t),
        "relaxed persist count diverged (seed {seed})"
    );
    // The parallel checker must produce the *identical* violation list (same
    // contents, same order) at every worker count, including the degenerate
    // single-worker pool.
    for workers in [1, 2, 4] {
        assert_eq!(
            invariants::check_all_parallel(t, workers),
            oracle::check_all(t),
            "parallel check_all diverged (seed {seed}, workers {workers})"
        );
    }
    // The cached incremental index must agree when fed the whole trace at
    // once...
    let mut cache = IncrementalTraceIndex::new();
    assert_eq!(
        invariants::check_all_with_index_cache(t, &mut cache),
        oracle::check_all(t),
        "index-cached check_all diverged (seed {seed})"
    );
    // ...and when re-checked without new events (fully cached path).
    assert_eq!(
        invariants::check_all_with_index_cache(t, &mut cache),
        oracle::check_all(t),
        "re-checked index-cached check_all diverged (seed {seed})"
    );
    // The violation-level incremental checker must agree as well, whole
    // trace at once and on the no-new-events fast path.
    let mut checker = IncrementalChecker::new();
    assert_eq!(
        invariants::check_all_cached(t, &mut checker),
        oracle::check_all(t),
        "incremental checker diverged (seed {seed})"
    );
    assert_eq!(
        invariants::check_all_cached(t, &mut checker),
        oracle::check_all(t),
        "re-checked incremental checker diverged (seed {seed})"
    );
}

#[test]
fn random_traces_do_exercise_violations() {
    // Guard against the differential suite silently comparing empty lists:
    // across the seeds, a healthy share of traces must contain violations of
    // each class.
    let (mut ordering, mut sync_v, mut recovery) = (0usize, 0usize, 0usize);
    for seed in 0..150u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let shape = TraceShape {
            events: rng.gen_range(1usize..120),
            devices: rng.gen_range(1usize..4),
            bases: rng.gen_range(2u64..10),
            procs: rng.gen_range(1u64..5),
            offload_prob: 0.7,
            failure_prob: 0.5,
        };
        let t = random_trace(&mut rng, &shape);
        ordering += invariants::check_cpu_ndp_ordering(&t).len();
        sync_v += invariants::check_sync_persistence(&t).len();
        recovery += invariants::check_recovery_reads(&t).len();
    }
    assert!(
        ordering > 50,
        "ordering violations never generated: {ordering}"
    );
    assert!(sync_v > 50, "sync violations never generated: {sync_v}");
    assert!(
        recovery > 10,
        "recovery violations never generated: {recovery}"
    );
}

#[test]
fn indexed_checkers_match_oracles_on_random_traces() {
    for seed in 0..150u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let shape = TraceShape {
            events: rng.gen_range(1usize..120),
            devices: rng.gen_range(1usize..4),
            bases: rng.gen_range(2u64..10),
            procs: rng.gen_range(1u64..5),
            offload_prob: 0.7,
            failure_prob: 0.5,
        };
        let t = random_trace(&mut rng, &shape);
        assert_checkers_agree(&t, seed);
    }
}

#[test]
fn indexed_checkers_match_oracles_on_dense_overlap_traces() {
    // One base address: every interval overlaps every other, the worst case
    // for ordering between equal starts and for duplicate violations.
    for seed in 1_000..1_040u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let shape = TraceShape {
            events: 80,
            devices: 2,
            bases: 1,
            procs: 2,
            offload_prob: 0.5,
            failure_prob: 0.8,
        };
        let t = random_trace(&mut rng, &shape);
        assert_checkers_agree(&t, seed);
    }
}

#[test]
fn incrementally_extended_index_matches_full_rebuild_at_every_prefix() {
    // Replay random traces into a second trace in random-sized batches,
    // checking with the cached incremental index after every batch and
    // comparing against a from-scratch check of the same prefix. This
    // exercises failure events arriving in later batches than the writes
    // they bound, level collapses in the logarithmic index, and the
    // no-new-events fast path.
    for seed in 3_000..3_030u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let shape = TraceShape {
            events: rng.gen_range(20usize..150),
            devices: rng.gen_range(1usize..3),
            bases: rng.gen_range(2u64..8),
            procs: rng.gen_range(1u64..5),
            offload_prob: 0.7,
            failure_prob: 0.6,
        };
        let t = random_trace(&mut rng, &shape);
        let mut replay = Trace::new(shape.devices);
        let mut cache = IncrementalTraceIndex::new();
        let mut checker = IncrementalChecker::new();
        let mut i = 0;
        while i < t.len() {
            let batch = rng.gen_range(1usize..12).min(t.len() - i);
            for e in &t.events()[i..i + batch] {
                replay.record(
                    e.agent,
                    e.kind,
                    e.interval,
                    e.sharing,
                    e.proc,
                    e.sync,
                    e.timestamp_ps,
                );
            }
            i += batch;
            let full = invariants::check_all(&replay);
            assert_eq!(
                invariants::check_all_with_index_cache(&replay, &mut cache),
                full,
                "index-cache prefix of {i} events diverged (seed {seed})"
            );
            // The violation-level checker must equal a from-scratch check at
            // *every* prefix: late offloads un-parking MissingOffload
            // verdicts, late CPU accesses violating old NDP events, late
            // persists clearing old sync violations, and failure events
            // arriving after the writes/reads they judge all land here.
            assert_eq!(
                invariants::check_all_cached(&replay, &mut checker),
                full,
                "incremental-checker prefix of {i} events diverged (seed {seed})"
            );
            assert_eq!(
                full,
                oracle::check_all(&replay),
                "oracle prefix (seed {seed})"
            );
            // The incrementally maintained relaxed-persist count must match
            // the two-pass recompute at every prefix (late CPU accesses
            // lowering the threshold retroactively count old persists here).
            assert_eq!(
                checker.relaxed_persist_count(&replay),
                invariants::relaxed_persist_count(&replay),
                "relaxed-count prefix of {i} events diverged (seed {seed})"
            );
        }
        assert_eq!(cache.consumed(), t.len());
        assert_eq!(checker.consumed(), t.len());
    }
}

#[test]
fn parallel_fold_matches_serial_fold_at_random_batch_splits_and_worker_counts() {
    // The tentpole determinism claim: sharding a batch's pair enumeration
    // across a worker pool must leave the folded violation list
    // element-for-element equal to the serial fold — at every batch split,
    // at every worker count (including workers > batch size), and equal to
    // a bulk `check_all` of the same prefix. Odd seeds append the offload
    // records *after* the main event stream so MissingOffload verdicts park
    // across many batches and un-park late (the adversarial case for the
    // parked state both folds must mutate identically).
    for seed in 5_000..5_024u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let shape = TraceShape {
            events: rng.gen_range(40usize..160),
            devices: rng.gen_range(1usize..3),
            bases: rng.gen_range(2u64..8),
            procs: rng.gen_range(1u64..5),
            offload_prob: if seed % 2 == 1 { 0.0 } else { 0.7 },
            failure_prob: 0.6,
        };
        let mut t = random_trace(&mut rng, &shape);
        if seed % 2 == 1 {
            // Late offloads: record them after every write/persist/sync they
            // retroactively legitimize.
            let procs: Vec<ProcId> = t.events().iter().filter_map(|e| e.proc).collect();
            let mut seen = Vec::new();
            for p in procs {
                if !seen.contains(&p) && rng.gen::<f64>() < 0.7 {
                    seen.push(p);
                    t.record(
                        Agent::Cpu,
                        EventKind::Offload,
                        Interval::new(0, 0),
                        Sharing::Shared,
                        Some(p),
                        None,
                        rng.gen_range(0u64..10_000),
                    );
                }
            }
        }

        // One serial checker plus one checker per worker count, all fed the
        // identical batch sequence.
        let worker_counts = [2usize, 4, 8];
        let mut serial = IncrementalChecker::new();
        let mut parallel: Vec<IncrementalChecker> = worker_counts
            .iter()
            .map(|&w| {
                let mut c = IncrementalChecker::new();
                c.set_workers(w);
                c
            })
            .collect();
        let mut replay = Trace::new(shape.devices);
        let feed = |replay: &mut Trace,
                    serial: &mut IncrementalChecker,
                    parallel: &mut Vec<IncrementalChecker>,
                    rng: &mut StdRng,
                    source: &Trace| {
            let mut i = 0;
            while i < source.len() {
                let batch = rng.gen_range(1usize..12).min(source.len() - i);
                for e in &source.events()[i..i + batch] {
                    replay.record(
                        e.agent,
                        e.kind,
                        e.interval,
                        e.sharing,
                        e.proc,
                        e.sync,
                        e.timestamp_ps,
                    );
                }
                i += batch;
                let bulk = invariants::check_all(replay);
                let serial_fold = invariants::check_all_cached(replay, serial);
                assert_eq!(
                    serial_fold, bulk,
                    "serial fold diverged from bulk check at prefix {i} (seed {seed})"
                );
                for (c, &w) in parallel.iter_mut().zip(&worker_counts) {
                    assert_eq!(
                        invariants::check_all_cached(replay, c),
                        serial_fold,
                        "parallel fold ({w} workers) diverged at prefix {i} (seed {seed})"
                    );
                }
            }
        };
        feed(
            &mut replay,
            &mut serial,
            &mut parallel,
            &mut rng,
            &t.clone(),
        );

        // Reset the trace and regrow it with a different stream: the checkers
        // must detect the generation bump, and the worker configuration must
        // survive the rebuild.
        replay.clear();
        let t2 = random_trace(
            &mut StdRng::seed_from_u64(seed ^ 0xACE),
            &TraceShape {
                events: shape.events / 2 + 10,
                ..shape
            },
        );
        feed(&mut replay, &mut serial, &mut parallel, &mut rng, &t2);
        for (c, &w) in parallel.iter().zip(&worker_counts) {
            assert_eq!(c.workers(), w, "worker count lost across reset");
            assert_eq!(c.consumed(), replay.len());
        }
    }
}

#[test]
fn cached_index_detects_trace_reset() {
    let mut rng = StdRng::seed_from_u64(7);
    let shape = TraceShape {
        events: 60,
        devices: 2,
        bases: 4,
        procs: 3,
        offload_prob: 0.7,
        failure_prob: 0.8,
    };
    let t = random_trace(&mut rng, &shape);
    let mut replay = t.clone();
    let mut cache = IncrementalTraceIndex::new();
    let mut checker = IncrementalChecker::new();
    assert_eq!(
        invariants::check_all_with_index_cache(&replay, &mut cache),
        invariants::check_all(&t)
    );
    assert_eq!(
        invariants::check_all_cached(&replay, &mut checker),
        invariants::check_all(&t)
    );
    let consumed_before_reset = cache.consumed();
    // Reset the trace and regrow it *past* its previous length with
    // different events before the next check: the generation bump must make
    // the cache rebuild — a length check alone would keep the stale prefix.
    replay.clear();
    assert!(replay.is_empty());
    let t2 = random_trace(
        &mut StdRng::seed_from_u64(8),
        &TraceShape {
            events: shape.events * 2,
            ..shape
        },
    );
    assert!(t2.len() > consumed_before_reset);
    for e in t2.events() {
        replay.record(
            e.agent,
            e.kind,
            e.interval,
            e.sharing,
            e.proc,
            e.sync,
            e.timestamp_ps,
        );
    }
    assert_eq!(
        invariants::check_all_with_index_cache(&replay, &mut cache),
        invariants::check_all(&replay)
    );
    assert_eq!(
        invariants::check_all_cached(&replay, &mut checker),
        invariants::check_all(&replay)
    );
    // An empty cleared trace also resets the caches.
    replay.clear();
    invariants::check_all_with_index_cache(&replay, &mut cache);
    assert_eq!(cache.consumed(), 0);
    assert!(invariants::check_all_cached(&replay, &mut checker).is_empty());
    assert_eq!(checker.consumed(), 0);
}

#[test]
fn indexed_checkers_match_oracles_on_empty_and_tiny_traces() {
    let t = Trace::new(1);
    assert_checkers_agree(&t, u64::MAX);
    for seed in 2_000..2_020u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let shape = TraceShape {
            events: rng.gen_range(1usize..4),
            devices: 1,
            bases: 2,
            procs: 1,
            offload_prob: 0.5,
            failure_prob: 0.5,
        };
        let t = random_trace(&mut rng, &shape);
        assert_checkers_agree(&t, seed);
    }
}
