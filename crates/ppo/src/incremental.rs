//! Violation-level incremental PPO checking.
//!
//! The cached index of PR 2 ([`IncrementalTraceIndex`]) made *index
//! maintenance* incremental, but every `check` still re-walked all NDP
//! accesses, all writes, and all recovery reads — a clean re-check of a
//! grown trace cost O(n log n) even when only a handful of events were new.
//! [`IncrementalChecker`] closes the loop: it tracks which **pairs** each
//! invariant has already compared and folds only the events appended since
//! the previous check, in both directions:
//!
//! * **Invariants 1/2 (shared-address ordering)** — a new NDP access is
//!   compared against every comparable CPU access via the cached CPU
//!   interval indexes, and a new CPU access is compared against every
//!   *older* NDP access via mirrored NDP-side indexes (a late CPU access
//!   can violate an old NDP event). NDP accesses whose procedure has no
//!   offload yet are parked with a `MissingOffload` verdict and re-checked
//!   in full if the offload arrives in a later batch. Neither direction
//!   enumerates comparable pairs on clean traces: the CPU→NDP sweep screens
//!   each access with one max-value overlap query (every mirrored NDP event
//!   predates every new CPU access in program order, so a violation needs
//!   an overlapping NDP timestamp above the CPU one), and the NDP→CPU sweep
//!   uses the violation-pruned index walk
//!   ([`IncrementalTraceIndex::for_each_comparable_cpu_order_violation`])
//!   that proves subtrees clean from per-node aux/value bounds. Zipfian
//!   working sets make pair counts quadratic in the trace length; the
//!   screens keep the fold O(new events · log² n) regardless.
//! * **Invariant 3 (persist-before-sync)** — writes are parked per agent,
//!   keyed by the earliest timestamp a persist of that agent covered them
//!   *as of the batch that parked them*. Keys are upper bounds (the true
//!   earliest persist only decreases as later batches add persists), so a
//!   sync's range read over-approximates its candidate set; each
//!   candidate's true key is re-derived from the full persist index at sync
//!   time and the parked key lowered in place. This lazy revalidation
//!   amortizes — keys only decrease — where an eager walk of every write a
//!   new persist covers would be quadratic under log-slot reuse. A persist
//!   arriving in a later batch then only has to retroactively clear the
//!   *standing violations* it satisfies, and those are scanned directly
//!   (violation lists are tiny — empty on clean runs).
//! * **Invariant 4 (recovery reads)** — each recovery read holds a current
//!   verdict; a new write or persist timestamped before the failure
//!   re-evaluates exactly the overlapping reads (found via a recovery-read
//!   interval index), and a failure event arriving late re-evaluates all of
//!   them once.
//!
//! Two properties of the fold matter for the 10M-event tier:
//!
//! * **The fold is self-contained.** Every fact a pair evaluation needs
//!   travels with the indexed [`Item`] (interval, timestamp, CPU program
//!   order or NDP procedure id in the `aux` word) or with the checker's own
//!   parked bookkeeping ([`AccessFact`], [`WriteFact`], the recovery-read
//!   fact list) — the fold never dereferences `trace.events()` for an event
//!   older than the current batch. That removes the random event-array
//!   fetch from the hottest loop *and* lets the trace retire verified
//!   prefixes out from under the checker ([`crate::event::Trace::retire_through`]);
//!   [`IncrementalChecker::pinned_floor`] reports the oldest event the
//!   parked Invariant-3/4 state can still reference, i.e. how far the owner
//!   may safely retire.
//! * **The pair enumeration shards across workers.** The two batch-scoped
//!   pair sweeps — new CPU accesses against the mirrored NDP indexes, and
//!   (re-checked + new) NDP accesses against the full CPU indexes — are
//!   partitioned into contiguous work-list chunks executed on a
//!   [`WorkerPool`], with per-job outcome lists applied serially **in job
//!   order**. Jobs only read index state frozen for the batch, so the
//!   folded violation list is element-for-element equal to the serial fold
//!   at every batch split and worker count; `workers <= 1` (the default)
//!   runs the exact serial loops and remains the differential oracle.
//!
//! Violations are held in ordered maps keyed the way the oracles emit them
//! — (NDP event, CPU event) for ordering, (sync, write) for
//! synchronization, read index for recovery — so [`IncrementalChecker::check`]
//! returns a list **exactly equal** to `check_all` / `invariants::oracle`
//! over the current trace, at every prefix, for O(new events · log n) work
//! per call. Differential tests replay random traces in random batch sizes
//! and assert equality at every prefix; trace resets are detected via the
//! trace's generation counter exactly like the index cache.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::ops::Bound;

use crate::event::{Agent, EventKind, Interval, PpoEvent, ProcId, Sharing, Trace};
use crate::index::{IncrementalIntervalIndex, IncrementalTraceIndex, Item, PpoIndexQueries};
use crate::invariants::PpoViolation;
use crate::pool::WorkerPool;

/// Key of a compared pair: the two event indices whose order matches the
/// oracle's reporting order. `MissingOffload` entries use a zero second
/// component (they are the only entry for their NDP event while parked).
type PairKey = (u32, u32);

/// `aux` payload of the checker's NDP-side mirror items for an access with
/// no procedure (the oracle skips such events entirely). Procedure ids are
/// allocated sequentially from zero, so the sentinel is unreachable.
const NO_PROC: u64 = u64::MAX;

/// Self-contained facts about one shared NDP access, recorded when the
/// access is parked (no offload yet) so a later re-check never has to fetch
/// the event from the trace — which may have retired it.
#[derive(Debug, Clone, Copy)]
struct AccessFact {
    kind: EventKind,
    interval: Interval,
    ts: u64,
    proc: Option<ProcId>,
}

impl AccessFact {
    fn of(e: &PpoEvent) -> Self {
        AccessFact {
            kind: e.kind,
            interval: e.interval,
            ts: e.timestamp_ps,
            proc: e.proc,
        }
    }
}

/// Self-contained facts about one parked write (Invariant 3): everything a
/// sync's candidate revalidation and violation report need.
#[derive(Debug, Clone, Copy)]
struct WriteFact {
    interval: Interval,
    proc: Option<ProcId>,
    ts: u64,
}

/// Outcome of evaluating one NDP shared access against the CPU indexes —
/// computed read-only (possibly on a worker thread), applied serially in
/// work-list order so parallel folds mutate state in the serial order.
enum NdpOutcome {
    /// The access's procedure has no offload event yet: park it.
    Park(ProcId),
    /// Ordering verdicts against comparable CPU accesses (possibly empty).
    Violations(Vec<(u32, PpoViolation)>),
    /// The access has no procedure: the oracle skips it entirely.
    Skip,
}

/// One entry of the Step-A work list: a new shared CPU access with the
/// facts pair evaluation needs (event id, kind, interval, timestamp,
/// program order).
type CpuWork = (u32, EventKind, Interval, u64, u64);

/// Incremental whole-trace PPO checker: `check` folds only the events
/// appended since the previous call and returns the same violation list a
/// from-scratch [`crate::check_all`] would.
#[derive(Debug, Clone, Default)]
pub struct IncrementalChecker {
    /// The cached per-category interval indexes (CPU shared accesses,
    /// per-agent persists, all writes/persists, offload table, failure).
    index: IncrementalTraceIndex,
    /// Events already folded into the checker.
    consumed: usize,
    /// Trace generation the state was built from (reset detection).
    generation: u64,
    /// Worker threads for the batch pair sweeps; `<= 1` runs the serial
    /// fold. Survives [`IncrementalChecker::reset`] — it is configuration,
    /// not trace state.
    workers: usize,

    // --- Invariants 1/2 ---
    /// Shared NDP accesses mirrored per kind, so a new CPU access can find
    /// the older NDP events it is comparable with. Items carry the NDP
    /// procedure id in `aux` ([`NO_PROC`] when absent).
    ndp_shared_reads: IncrementalIntervalIndex,
    ndp_shared_writes: IncrementalIntervalIndex,
    ndp_shared_persists: IncrementalIntervalIndex,
    /// Shared NDP accesses whose procedure has no offload event yet, by
    /// procedure, with the facts needed to re-check them in full when the
    /// offload arrives.
    parked_no_offload: HashMap<ProcId, Vec<(u32, AccessFact)>>,
    /// Membership view of `parked_no_offload` for O(1) skip tests.
    parked_events: HashSet<u32>,
    /// Ordering verdicts, keyed (NDP event, CPU event).
    ordering: BTreeMap<PairKey, PpoViolation>,

    // --- Invariant 3 ---
    /// Writes seen so far per agent, keyed by (**upper bound** of the
    /// earliest covering persist timestamp, event index). A key is exact as
    /// of the batch that parked or last revalidated its write; later
    /// persists only lower the true value, so a sync's range read
    /// over-approximates its candidates and lazily tightens them.
    parked_writes: HashMap<Agent, BTreeMap<(u64, u32), WriteFact>>,
    /// Parked writes whose stored key is still `u64::MAX` (no covering
    /// persist seen when last examined) — the Invariant-3 contribution to
    /// [`IncrementalChecker::pinned_floor`], kept as a side set so the
    /// floor is O(log n) instead of a scan of every parked write.
    parked_unpersisted: BTreeSet<u32>,
    /// Sync verdicts, keyed (sync event, write event).
    sync_violations: BTreeMap<PairKey, PpoViolation>,

    // --- Invariant 4 ---
    /// Interval index over recovery reads (id-valued), so a late
    /// write/persist re-evaluates exactly the reads it overlaps.
    recovery_idx: IncrementalIntervalIndex,
    /// All recovery-read events (id, interval, agent) in trace order — the
    /// facts re-evaluation needs, id-sorted for binary search.
    recovery_reads: Vec<(u32, Interval, Agent)>,
    /// Recovery verdicts, keyed by read index.
    recovery_violations: BTreeMap<u32, PpoViolation>,

    // --- Relaxed-persist counter ---
    /// Earliest timestamp of a CPU read/write with program order > 0 — the
    /// threshold [`crate::relaxed_persist_count`] compares every NDP-managed
    /// persist against. Only ever decreases as events are folded.
    rpc_min_cpu_ts: Option<u64>,
    /// Multiset of NDP-managed NDP persist timestamps, so a decrease of the
    /// threshold can count exactly the persists that newly pass it (each
    /// persist crosses the threshold at most once over the checker's
    /// lifetime, so maintenance is amortized O(log n) per event).
    rpc_persists: BTreeMap<u64, u32>,
    /// Current relaxed-persist count for the folded prefix.
    rpc_count: usize,
}

impl IncrementalChecker {
    /// Creates an empty checker (serial fold).
    pub fn new() -> Self {
        IncrementalChecker::default()
    }

    /// Number of trace events already folded into the checker.
    pub fn consumed(&self) -> usize {
        self.consumed
    }

    /// Sets the worker count for the batch pair sweeps. `workers <= 1`
    /// selects the serial fold (the differential oracle); any count
    /// produces the identical violation list.
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = workers;
    }

    /// Worker threads the fold's pair sweeps run on (at least 1).
    pub fn workers(&self) -> usize {
        self.workers.max(1)
    }

    /// Drops all cached trace state (used when the trace it mirrors is
    /// reset). The `workers` configuration survives.
    pub fn reset(&mut self) {
        let workers = self.workers;
        *self = IncrementalChecker::default();
        self.workers = workers;
    }

    /// The oldest event index the checker's parked Invariant-3/4 state can
    /// still reference: the owner of the trace may retire events below this
    /// floor ([`crate::event::Trace::retire_through`]) without the fold
    /// ever touching them again. On clean runs — no accesses awaiting an
    /// offload, no never-persisted parked writes, no recovery reads — the
    /// floor equals [`IncrementalChecker::consumed`], so everything already
    /// folded is evictable.
    pub fn pinned_floor(&self) -> usize {
        let mut floor = self.consumed;
        if let Some(&id) = self.parked_events.iter().min() {
            floor = floor.min(id as usize);
        }
        if let Some(&id) = self.parked_unpersisted.first() {
            floor = floor.min(id as usize);
        }
        if let Some(&(id, _, _)) = self.recovery_reads.first() {
            floor = floor.min(id as usize);
        }
        floor
    }

    /// Runs all invariant checkers over `trace`, folding only the events
    /// appended since the previous call, and returns the full violation
    /// list for the *current* trace — element-for-element equal to
    /// [`crate::check_all`]. Detects a trace reset (shrink or generation
    /// change) and rebuilds from scratch.
    pub fn check(&mut self, trace: &Trace) -> Vec<PpoViolation> {
        self.sync_with(trace);
        self.ordering
            .values()
            .chain(self.sync_violations.values())
            .chain(self.recovery_violations.values())
            .cloned()
            .collect()
    }

    /// The trace's relaxed-persist count — NDP persists to NDP-managed
    /// addresses delayed past the earliest CPU access — maintained
    /// incrementally alongside the invariant state: equal to
    /// [`crate::relaxed_persist_count`] over the current trace, for O(new
    /// events · log n) work per call instead of a full O(n) recompute.
    pub fn relaxed_persist_count(&mut self, trace: &Trace) -> usize {
        self.sync_with(trace);
        self.rpc_count
    }

    /// Detects a trace reset and folds the events appended since the
    /// previous call (shared gate of [`IncrementalChecker::check`] and
    /// [`IncrementalChecker::relaxed_persist_count`]).
    fn sync_with(&mut self, trace: &Trace) {
        if trace.len() < self.consumed || trace.generation() != self.generation {
            self.reset();
            self.generation = trace.generation();
        }
        if self.consumed < trace.len() {
            let lo = self.consumed;
            self.fold(trace, lo);
            self.consumed = trace.len();
        }
    }

    /// Folds the events with absolute ids `lo..trace.len()` into every
    /// invariant's state.
    fn fold(&mut self, trace: &Trace, lo: usize) {
        let retired = trace.retired();
        assert!(
            lo >= retired,
            "trace compacted past the checker watermark (retired {retired}, consumed {lo})"
        );
        let events = trace.events();
        // Offset of the first new event in the live slice; `retired + off`
        // recovers an absolute id. New events are always resident (the
        // pinned floor never exceeds `consumed`), old events are never
        // dereferenced.
        let base = lo - retired;
        let failure_before = self.index.failure_ts();
        let pool = WorkerPool::new(self.workers.max(1));

        // Relaxed-persist counter: lower the CPU-access threshold first
        // (counting the already-indexed persists the lowered threshold newly
        // passes), then count the batch's NDP-managed persists against the
        // new threshold — together that reproduces the whole-trace count.
        let old_min = self.rpc_min_cpu_ts;
        let mut new_min = old_min;
        for e in &events[base..] {
            if e.agent == Agent::Cpu
                && matches!(e.kind, EventKind::Write | EventKind::Read)
                && e.program_order > 0
                && new_min.is_none_or(|m| e.timestamp_ps < m)
            {
                new_min = Some(e.timestamp_ps);
            }
        }
        if new_min != old_min {
            let nm = new_min.expect("threshold only appears or decreases");
            let upper = match old_min {
                Some(om) => Bound::Included(om),
                None => Bound::Unbounded,
            };
            self.rpc_count += self
                .rpc_persists
                .range((Bound::Excluded(nm), upper))
                .map(|(_, &mult)| mult as usize)
                .sum::<usize>();
            self.rpc_min_cpu_ts = new_min;
        }
        for e in &events[base..] {
            if e.agent.is_ndp() && e.kind == EventKind::Persist && e.sharing == Sharing::NdpManaged
            {
                *self.rpc_persists.entry(e.timestamp_ps).or_insert(0) += 1;
                if self.rpc_min_cpu_ts.is_some_and(|m| m < e.timestamp_ps) {
                    self.rpc_count += 1;
                }
            }
        }

        // Procedures whose *first* offload event arrives in this batch:
        // their parked accesses become checkable below. Dedup through a set
        // — a million-offload batch makes `Vec::contains` quadratic.
        let mut gained: Vec<ProcId> = Vec::new();
        let mut gained_set: HashSet<ProcId> = HashSet::new();
        for e in &events[base..] {
            if e.kind == EventKind::Offload && e.agent == Agent::Cpu {
                if let Some(p) = e.proc {
                    if self.index.offload_po(p).is_none() && gained_set.insert(p) {
                        gained.push(p);
                    }
                }
            }
        }

        // Step A — new CPU shared accesses against the *pre-batch* NDP-side
        // indexes (pairs old-NDP × new-CPU; pairs where both events are new
        // are produced exactly once, in step D). Parked NDP events are
        // skipped: they are either re-checked in full in step C (offload
        // arrived) or stay MissingOffload, matching the oracle. The work
        // list is evaluated read-only (sharded over the pool when workers
        // > 1) and the verdicts applied in work-list order.
        let mut cpu_work: Vec<CpuWork> = Vec::new();
        for (off, e) in events.iter().enumerate().skip(base) {
            if e.agent != Agent::Cpu || e.sharing != Sharing::Shared || e.interval.len == 0 {
                continue;
            }
            if !matches!(
                e.kind,
                EventKind::Read | EventKind::Write | EventKind::Persist
            ) {
                continue;
            }
            cpu_work.push((
                (retired + off) as u32,
                e.kind,
                e.interval,
                e.timestamp_ps,
                e.program_order,
            ));
        }
        if !cpu_work.is_empty() {
            let index = &self.index;
            let reads = &self.ndp_shared_reads;
            let writes = &self.ndp_shared_writes;
            let persists = &self.ndp_shared_persists;
            let parked = &self.parked_events;
            let eval = move |chunk: &[CpuWork]| {
                evaluate_cpu_chunk(index, reads, writes, persists, parked, chunk)
            };
            let verdicts = run_chunked(&pool, &cpu_work, eval);
            for (key, v) in verdicts.into_iter().flatten() {
                self.ordering.insert(key, v);
            }
        }

        // Step B — fold the batch into every index.
        self.index.extend_from(trace);
        let mut ndp_reads: Vec<Item> = Vec::new();
        let mut ndp_writes: Vec<Item> = Vec::new();
        let mut ndp_persists: Vec<Item> = Vec::new();
        let mut recovery_new: Vec<Item> = Vec::new();
        for (off, e) in events.iter().enumerate().skip(base) {
            if e.interval.len == 0 {
                continue;
            }
            let id = (retired + off) as u32;
            if e.agent.is_ndp() && e.sharing == Sharing::Shared {
                let item = Item {
                    start: e.interval.start,
                    end: e.interval.end(),
                    value: e.timestamp_ps,
                    aux: e.proc.map(|p| p.0).unwrap_or(NO_PROC),
                    id,
                };
                match e.kind {
                    EventKind::Read => ndp_reads.push(item),
                    EventKind::Write => ndp_writes.push(item),
                    EventKind::Persist => ndp_persists.push(item),
                    _ => {}
                }
            }
            if e.kind == EventKind::RecoveryRead {
                recovery_new.push(Item {
                    start: e.interval.start,
                    end: e.interval.end(),
                    value: e.timestamp_ps,
                    aux: 0,
                    id,
                });
                self.recovery_reads.push((id, e.interval, e.agent));
            }
        }
        self.ndp_shared_reads.insert_batch(ndp_reads);
        self.ndp_shared_writes.insert_batch(ndp_writes);
        self.ndp_shared_persists.insert_batch(ndp_persists);
        self.recovery_idx.insert_batch(recovery_new);

        // Steps C and D share one work list evaluated against the full
        // (post-fold) CPU indexes, in the serial order: first the parked
        // accesses of procedures that gained their offload (drop their
        // MissingOffload verdicts now), then the batch's new NDP shared
        // accesses in trace order.
        let mut ndp_work: Vec<(u32, AccessFact)> = Vec::new();
        for p in &gained {
            let Some(list) = self.parked_no_offload.remove(p) else {
                continue;
            };
            for (ndp_id, fact) in list {
                self.parked_events.remove(&ndp_id);
                self.ordering.remove(&(ndp_id, 0));
                ndp_work.push((ndp_id, fact));
            }
        }
        for (off, e) in events.iter().enumerate().skip(base) {
            if !e.agent.is_ndp() || e.sharing != Sharing::Shared || e.interval.len == 0 {
                continue;
            }
            if !matches!(
                e.kind,
                EventKind::Read | EventKind::Write | EventKind::Persist
            ) {
                continue;
            }
            ndp_work.push(((retired + off) as u32, AccessFact::of(e)));
        }
        if !ndp_work.is_empty() {
            let index = &self.index;
            let eval = move |chunk: &[(u32, AccessFact)]| {
                chunk
                    .iter()
                    .map(|(_, fact)| evaluate_ndp_access(index, fact))
                    .collect::<Vec<_>>()
            };
            let outcomes = run_chunked(&pool, &ndp_work, eval);
            for ((ndp_id, fact), outcome) in
                ndp_work.into_iter().zip(outcomes.into_iter().flatten())
            {
                match outcome {
                    NdpOutcome::Skip => {}
                    NdpOutcome::Park(proc) => {
                        self.parked_no_offload
                            .entry(proc)
                            .or_default()
                            .push((ndp_id, fact));
                        self.parked_events.insert(ndp_id);
                        self.ordering
                            .insert((ndp_id, 0), PpoViolation::MissingOffload { proc });
                    }
                    NdpOutcome::Violations(vs) => {
                        for (cpu_id, v) in vs {
                            self.ordering.insert((ndp_id, cpu_id), v);
                        }
                    }
                }
            }
        }

        // Step E — Invariant 3, sequentially through the batch (the parked
        // set must respect trace order around each sync). A write parks with
        // the post-fold whole-trace earliest-persist key, so within-batch
        // persist placement is already accounted; persists from *later*
        // batches can only lower a key, which syncs discover lazily.
        for (off, e) in events.iter().enumerate().skip(base) {
            if !e.agent.is_ndp() {
                continue;
            }
            let id = (retired + off) as u32;
            match e.kind {
                EventKind::Write if e.interval.len > 0 => {
                    let key = self
                        .index
                        .earliest_persist_by(e.agent, e.interval)
                        .unwrap_or(u64::MAX);
                    if key == u64::MAX {
                        self.parked_unpersisted.insert(id);
                    }
                    self.parked_writes.entry(e.agent).or_default().insert(
                        (key, id),
                        WriteFact {
                            interval: e.interval,
                            proc: e.proc,
                            ts: e.timestamp_ps,
                        },
                    );
                }
                EventKind::Persist if e.interval.len > 0 => {
                    // The only standing state a later persist can invalidate
                    // is a recorded violation it retroactively satisfies
                    // (same agent, overlapping the write, timestamped no
                    // later than the sync). Violation lists are tiny — empty
                    // on clean runs — so a direct scan beats indexing every
                    // write ever made against every future persist.
                    if self.sync_violations.is_empty() {
                        continue;
                    }
                    let cleared: Vec<PairKey> = self
                        .sync_violations
                        .iter()
                        .filter_map(|(&key, v)| match v {
                            PpoViolation::UnpersistedBeforeSync {
                                agent,
                                interval,
                                sync_ts,
                            } if *agent == e.agent
                                && e.timestamp_ps <= *sync_ts
                                && interval.overlaps(&e.interval) =>
                            {
                                Some(key)
                            }
                            _ => None,
                        })
                        .collect();
                    for key in cleared {
                        self.sync_violations.remove(&key);
                    }
                }
                EventKind::Sync => {
                    let Some(parked) = self.parked_writes.get_mut(&e.agent) else {
                        continue;
                    };
                    // Upper-bound keys over-approximate: every write whose
                    // stored key lands after the sync is a candidate, and
                    // its true key is re-derived from the full persist index
                    // (lowering the stored key in place — keys only
                    // decrease, so this revalidation amortizes).
                    let candidates: Vec<((u64, u32), WriteFact)> = parked
                        .range((
                            Bound::Excluded((e.timestamp_ps, u32::MAX)),
                            Bound::Unbounded,
                        ))
                        .map(|(&k, &v)| (k, v))
                        .collect();
                    let mut failing: Vec<(u32, WriteFact)> = Vec::new();
                    for ((stored, w), wf) in candidates {
                        let true_key = self
                            .index
                            .earliest_persist_by(e.agent, wf.interval)
                            .unwrap_or(u64::MAX);
                        if true_key < stored {
                            parked.remove(&(stored, w));
                            parked.insert((true_key, w), wf);
                            if stored == u64::MAX {
                                self.parked_unpersisted.remove(&w);
                            }
                        }
                        if true_key <= e.timestamp_ps {
                            continue;
                        }
                        let in_scope = match e.proc {
                            Some(p) => wf.proc == Some(p),
                            None => wf.ts <= e.timestamp_ps,
                        };
                        if in_scope {
                            failing.push((w, wf));
                        }
                    }
                    failing.sort_unstable_by_key(|&(w, _)| w);
                    for (w, wf) in failing {
                        self.sync_violations.insert(
                            (id, w),
                            PpoViolation::UnpersistedBeforeSync {
                                agent: e.agent,
                                interval: wf.interval,
                                sync_ts: e.timestamp_ps,
                            },
                        );
                    }
                }
                _ => {}
            }
        }

        // Step F — Invariant 4.
        let Some(failure) = self.index.failure_ts() else {
            return; // no failure yet: recovery reads hold no verdicts
        };
        if failure_before.is_none() {
            // The failure became visible in this batch: every recovery read
            // (old and new) gets its verdict from the full indexes once.
            let all = self.recovery_reads.clone();
            for (r, interval, agent) in all {
                self.evaluate_recovery(r, interval, agent);
            }
        } else {
            for (off, e) in events.iter().enumerate().skip(base) {
                match e.kind {
                    EventKind::RecoveryRead if e.interval.len > 0 => {
                        self.evaluate_recovery((retired + off) as u32, e.interval, e.agent);
                    }
                    EventKind::Write | EventKind::Persist
                        if e.interval.len > 0 && e.timestamp_ps <= failure =>
                    {
                        // A pre-failure write can create a verdict on an old
                        // read; a pre-failure persist can clear one. The
                        // read's facts come from the checker's own list —
                        // the event may be older than the batch.
                        let mut hits = Vec::new();
                        self.recovery_idx
                            .for_each_overlap(e.interval, |r| hits.push(r));
                        for r in hits {
                            let pos = self
                                .recovery_reads
                                .binary_search_by_key(&r, |&(id, _, _)| id)
                                .expect("indexed recovery read is tracked");
                            let (rid, interval, agent) = self.recovery_reads[pos];
                            self.evaluate_recovery(rid, interval, agent);
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    /// Re-derives one recovery read's verdict from the full write/persist
    /// indexes (idempotent: inserts or removes as the verdict dictates).
    fn evaluate_recovery(&mut self, r: u32, interval: Interval, agent: Agent) {
        let violating = self.index.written_before_failure(interval)
            && !self.index.persisted_before_failure(interval);
        if violating {
            self.recovery_violations
                .insert(r, PpoViolation::RecoveryReadUnpersisted { agent, interval });
        } else {
            self.recovery_violations.remove(&r);
        }
    }
}

/// Shards `work` into up to `pool.workers()` contiguous chunks, evaluates
/// them on the pool, and returns the per-chunk outputs **in work-list
/// order** — concatenated they equal what one serial pass over `work` would
/// produce. One worker (or a single-entry list) runs on the calling thread.
fn run_chunked<T: Sync, R: Send, F>(pool: &WorkerPool, work: &[T], eval: F) -> Vec<R>
where
    F: Fn(&[T]) -> R + Send + Sync,
{
    let jobs = pool.workers().min(work.len());
    if jobs <= 1 {
        return vec![eval(work)];
    }
    let chunk = work.len().div_ceil(jobs);
    let eval = &eval;
    pool.scoped_map(work.chunks(chunk).map(|c| move || eval(c)).collect())
}

/// Evaluates a chunk of new shared CPU accesses against the mirrored
/// NDP-side indexes (Step A), read-only: verdicts stream out of the item
/// walk — interval, timestamp, and procedure id all travel with the
/// [`Item`] — so no event is fetched from the trace.
fn evaluate_cpu_chunk(
    index: &IncrementalTraceIndex,
    ndp_reads: &IncrementalIntervalIndex,
    ndp_writes: &IncrementalIntervalIndex,
    ndp_persists: &IncrementalIntervalIndex,
    parked: &HashSet<u32>,
    chunk: &[CpuWork],
) -> Vec<(PairKey, PpoViolation)> {
    let mut out = Vec::new();
    for &(cpu_id, kind, interval, cpu_ts, cpu_po) in chunk {
        // Every mirrored NDP item's procedure was offloaded in an earlier
        // batch (parked accesses are skipped below, and program order is
        // assigned in trace-append order), so `off_po < cpu_po` holds for
        // every pair this loop can form and the predicate reduces to
        // "violation iff the NDP access is timestamped after the CPU
        // access". A mirror whose max overlapping timestamp is `<= cpu_ts`
        // therefore cannot contribute a violation — skip its enumeration
        // entirely, which turns clean-trace checking from Θ(comparable
        // pairs) into one O(log² n) aggregate query per mirror.
        let mut hits: Vec<Item> = Vec::new();
        let mut collect = |idx: &IncrementalIntervalIndex| {
            if idx.max_value_overlapping(interval) > cpu_ts {
                idx.for_each_overlap_item(interval, |it| hits.push(*it));
            }
        };
        match kind {
            EventKind::Persist => collect(ndp_persists),
            EventKind::Write => {
                collect(ndp_writes);
                collect(ndp_reads);
            }
            EventKind::Read => collect(ndp_writes),
            _ => {}
        }
        for it in hits {
            if it.aux == NO_PROC || parked.contains(&it.id) {
                continue;
            }
            let proc = ProcId(it.aux);
            let Some(off_po) = index.offload_po(proc) else {
                continue;
            };
            let cpu_before_offload = cpu_po < off_po;
            let ok = if cpu_before_offload {
                cpu_ts <= it.value
            } else {
                it.value <= cpu_ts
            };
            if !ok {
                out.push((
                    (it.id, cpu_id),
                    PpoViolation::SharedOrderViolation {
                        proc,
                        cpu_interval: interval,
                        ndp_interval: it.interval(),
                        cpu_ts,
                        ndp_ts: it.value,
                        cpu_before_offload,
                    },
                ));
            }
        }
    }
    out
}

/// Evaluates one NDP shared access against the full CPU indexes (Steps C
/// and D), read-only — the mutation the outcome implies is applied by the
/// caller in work-list order.
///
/// The pair loop is the fold's hottest code — on dense traces one NDP
/// access can be comparable with hundreds of CPU accesses — so the
/// per-access facts (its procedure's offload program order, its timestamp)
/// are resolved once up front and the verdicts stream straight out of the
/// item walk, with the CPU side's interval, timestamp, and program order
/// carried by the [`Item`] itself: no `events[]` fetch per pair.
fn evaluate_ndp_access(index: &IncrementalTraceIndex, fact: &AccessFact) -> NdpOutcome {
    let Some(proc) = fact.proc else {
        return NdpOutcome::Skip;
    };
    let Some(off_po) = index.offload_po(proc) else {
        return NdpOutcome::Park(proc);
    };
    let mut violating: Vec<(u32, PpoViolation)> = Vec::new();
    // The pruned walk yields exactly the comparable CPU accesses whose
    // (program order, timestamp) contradicts the offload order — on clean
    // traces it proves whole subtrees violation-free from per-node
    // aggregates instead of enumerating every comparable pair.
    index.for_each_comparable_cpu_order_violation(
        fact.kind,
        fact.interval,
        off_po,
        fact.ts,
        |cpu| {
            violating.push((
                cpu.id,
                PpoViolation::SharedOrderViolation {
                    proc,
                    cpu_interval: cpu.interval(),
                    ndp_interval: fact.interval,
                    cpu_ts: cpu.value,
                    ndp_ts: fact.ts,
                    cpu_before_offload: cpu.aux < off_po,
                },
            ));
        },
    );
    NdpOutcome::Violations(violating)
}
