//! Violation-level incremental PPO checking.
//!
//! The cached index of PR 2 ([`IncrementalTraceIndex`]) made *index
//! maintenance* incremental, but every `check` still re-walked all NDP
//! accesses, all writes, and all recovery reads — a clean re-check of a
//! grown trace cost O(n log n) even when only a handful of events were new.
//! [`IncrementalChecker`] closes the loop: it tracks which **pairs** each
//! invariant has already compared and folds only the events appended since
//! the previous check, in both directions:
//!
//! * **Invariants 1/2 (shared-address ordering)** — a new NDP access is
//!   compared against every comparable CPU access via the cached CPU
//!   interval indexes, and a new CPU access is compared against every
//!   *older* NDP access via mirrored NDP-side indexes (a late CPU access
//!   can violate an old NDP event). NDP accesses whose procedure has no
//!   offload yet are parked with a `MissingOffload` verdict and re-checked
//!   in full if the offload arrives in a later batch.
//! * **Invariant 3 (persist-before-sync)** — writes are parked per agent,
//!   keyed by the earliest timestamp a persist of that agent covered them
//!   *as of the batch that parked them*. Keys are upper bounds (the true
//!   earliest persist only decreases as later batches add persists), so a
//!   sync's range read over-approximates its candidate set; each
//!   candidate's true key is re-derived from the full persist index at sync
//!   time and the parked key lowered in place. This lazy revalidation
//!   amortizes — keys only decrease — where an eager walk of every write a
//!   new persist covers would be quadratic under log-slot reuse. A persist
//!   arriving in a later batch then only has to retroactively clear the
//!   *standing violations* it satisfies, and those are scanned directly
//!   (violation lists are tiny — empty on clean runs).
//! * **Invariant 4 (recovery reads)** — each recovery read holds a current
//!   verdict; a new write or persist timestamped before the failure
//!   re-evaluates exactly the overlapping reads (found via a recovery-read
//!   interval index), and a failure event arriving late re-evaluates all of
//!   them once.
//!
//! Violations are held in ordered maps keyed the way the oracles emit them
//! — (NDP event, CPU event) for ordering, (sync, write) for
//! synchronization, read index for recovery — so [`IncrementalChecker::check`]
//! returns a list **exactly equal** to `check_all` / `invariants::oracle`
//! over the current trace, at every prefix, for O(new events · log n) work
//! per call. Differential tests replay random traces in random batch sizes
//! and assert equality at every prefix; trace resets are detected via the
//! trace's generation counter exactly like the index cache.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::ops::Bound;

use crate::event::{Agent, EventKind, PpoEvent, ProcId, Sharing, Trace};
use crate::index::{IncrementalIntervalIndex, IncrementalTraceIndex, PpoIndexQueries};
use crate::invariants::PpoViolation;

/// Key of a compared pair: the two event indices whose order matches the
/// oracle's reporting order. `MissingOffload` entries use a zero second
/// component (they are the only entry for their NDP event while parked).
type PairKey = (u32, u32);

/// Incremental whole-trace PPO checker: `check` folds only the events
/// appended since the previous call and returns the same violation list a
/// from-scratch [`crate::check_all`] would.
#[derive(Debug, Clone, Default)]
pub struct IncrementalChecker {
    /// The cached per-category interval indexes (CPU shared accesses,
    /// per-agent persists, all writes/persists, offload table, failure).
    index: IncrementalTraceIndex,
    /// Events already folded into the checker.
    consumed: usize,
    /// Trace generation the state was built from (reset detection).
    generation: u64,

    // --- Invariants 1/2 ---
    /// Shared NDP accesses mirrored per kind, so a new CPU access can find
    /// the older NDP events it is comparable with.
    ndp_shared_reads: IncrementalIntervalIndex,
    ndp_shared_writes: IncrementalIntervalIndex,
    ndp_shared_persists: IncrementalIntervalIndex,
    /// Shared NDP accesses whose procedure has no offload event yet, by
    /// procedure (re-checked in full when the offload arrives).
    parked_no_offload: HashMap<ProcId, Vec<u32>>,
    /// Membership view of `parked_no_offload` for O(1) skip tests.
    parked_events: HashSet<u32>,
    /// Ordering verdicts, keyed (NDP event, CPU event).
    ordering: BTreeMap<PairKey, PpoViolation>,

    // --- Invariant 3 ---
    /// Writes seen so far per agent, keyed by (**upper bound** of the
    /// earliest covering persist timestamp, event index). A key is exact as
    /// of the batch that parked or last revalidated its write; later
    /// persists only lower the true value, so a sync's range read
    /// over-approximates its candidates and lazily tightens them.
    parked_writes: HashMap<Agent, BTreeSet<(u64, u32)>>,
    /// Sync verdicts, keyed (sync event, write event).
    sync_violations: BTreeMap<PairKey, PpoViolation>,

    // --- Invariant 4 ---
    /// Interval index over recovery reads (id-valued), so a late
    /// write/persist re-evaluates exactly the reads it overlaps.
    recovery_idx: IncrementalIntervalIndex,
    /// All recovery-read event indices, in trace order.
    recovery_reads: Vec<u32>,
    /// Recovery verdicts, keyed by read index.
    recovery_violations: BTreeMap<u32, PpoViolation>,

    // --- Relaxed-persist counter ---
    /// Earliest timestamp of a CPU read/write with program order > 0 — the
    /// threshold [`crate::relaxed_persist_count`] compares every NDP-managed
    /// persist against. Only ever decreases as events are folded.
    rpc_min_cpu_ts: Option<u64>,
    /// Multiset of NDP-managed NDP persist timestamps, so a decrease of the
    /// threshold can count exactly the persists that newly pass it (each
    /// persist crosses the threshold at most once over the checker's
    /// lifetime, so maintenance is amortized O(log n) per event).
    rpc_persists: BTreeMap<u64, u32>,
    /// Current relaxed-persist count for the folded prefix.
    rpc_count: usize,
}

impl IncrementalChecker {
    /// Creates an empty checker.
    pub fn new() -> Self {
        IncrementalChecker::default()
    }

    /// Number of trace events already folded into the checker.
    pub fn consumed(&self) -> usize {
        self.consumed
    }

    /// Drops all cached state (used when the trace it mirrors is reset).
    pub fn reset(&mut self) {
        *self = IncrementalChecker::default();
    }

    /// Runs all invariant checkers over `trace`, folding only the events
    /// appended since the previous call, and returns the full violation
    /// list for the *current* trace — element-for-element equal to
    /// [`crate::check_all`]. Detects a trace reset (shrink or generation
    /// change) and rebuilds from scratch.
    pub fn check(&mut self, trace: &Trace) -> Vec<PpoViolation> {
        self.sync_with(trace);
        self.ordering
            .values()
            .chain(self.sync_violations.values())
            .chain(self.recovery_violations.values())
            .cloned()
            .collect()
    }

    /// The trace's relaxed-persist count — NDP persists to NDP-managed
    /// addresses delayed past the earliest CPU access — maintained
    /// incrementally alongside the invariant state: equal to
    /// [`crate::relaxed_persist_count`] over the current trace, for O(new
    /// events · log n) work per call instead of a full O(n) recompute.
    pub fn relaxed_persist_count(&mut self, trace: &Trace) -> usize {
        self.sync_with(trace);
        self.rpc_count
    }

    /// Detects a trace reset and folds the events appended since the
    /// previous call (shared gate of [`IncrementalChecker::check`] and
    /// [`IncrementalChecker::relaxed_persist_count`]).
    fn sync_with(&mut self, trace: &Trace) {
        if trace.len() < self.consumed || trace.generation() != self.generation {
            self.reset();
            self.generation = trace.generation();
        }
        if self.consumed < trace.len() {
            let lo = self.consumed;
            self.fold(trace, lo);
            self.consumed = trace.len();
        }
    }

    /// Folds `trace.events()[lo..]` into every invariant's state.
    fn fold(&mut self, trace: &Trace, lo: usize) {
        let events = trace.events();
        let failure_before = self.index.failure_ts();

        // Relaxed-persist counter: lower the CPU-access threshold first
        // (counting the already-indexed persists the lowered threshold newly
        // passes), then count the batch's NDP-managed persists against the
        // new threshold — together that reproduces the whole-trace count.
        let old_min = self.rpc_min_cpu_ts;
        let mut new_min = old_min;
        for e in &events[lo..] {
            if e.agent == Agent::Cpu
                && matches!(e.kind, EventKind::Write | EventKind::Read)
                && e.program_order > 0
                && new_min.is_none_or(|m| e.timestamp_ps < m)
            {
                new_min = Some(e.timestamp_ps);
            }
        }
        if new_min != old_min {
            let nm = new_min.expect("threshold only appears or decreases");
            let upper = match old_min {
                Some(om) => Bound::Included(om),
                None => Bound::Unbounded,
            };
            self.rpc_count += self
                .rpc_persists
                .range((Bound::Excluded(nm), upper))
                .map(|(_, &mult)| mult as usize)
                .sum::<usize>();
            self.rpc_min_cpu_ts = new_min;
        }
        for e in &events[lo..] {
            if e.agent.is_ndp() && e.kind == EventKind::Persist && e.sharing == Sharing::NdpManaged
            {
                *self.rpc_persists.entry(e.timestamp_ps).or_insert(0) += 1;
                if self.rpc_min_cpu_ts.is_some_and(|m| m < e.timestamp_ps) {
                    self.rpc_count += 1;
                }
            }
        }

        // Procedures whose *first* offload event arrives in this batch:
        // their parked accesses become checkable below. Dedup through a set
        // — a million-offload batch makes `Vec::contains` quadratic.
        let mut gained: Vec<ProcId> = Vec::new();
        let mut gained_set: HashSet<ProcId> = HashSet::new();
        for e in &events[lo..] {
            if e.kind == EventKind::Offload && e.agent == Agent::Cpu {
                if let Some(p) = e.proc {
                    if self.index.offload_po(p).is_none() && gained_set.insert(p) {
                        gained.push(p);
                    }
                }
            }
        }

        // Step A — new CPU shared accesses against the *pre-batch* NDP-side
        // indexes (pairs old-NDP × new-CPU; pairs where both events are new
        // are produced exactly once, in step D). Parked NDP events are
        // skipped: they are either re-checked in full in step C (offload
        // arrived) or stay MissingOffload, matching the oracle.
        for (i, e) in events.iter().enumerate().skip(lo) {
            if e.agent != Agent::Cpu || e.sharing != Sharing::Shared || e.interval.len == 0 {
                continue;
            }
            let mut ids: Vec<u32> = Vec::new();
            match e.kind {
                EventKind::Persist => self
                    .ndp_shared_persists
                    .for_each_overlap(e.interval, |id| ids.push(id)),
                EventKind::Write => {
                    self.ndp_shared_writes
                        .for_each_overlap(e.interval, |id| ids.push(id));
                    self.ndp_shared_reads
                        .for_each_overlap(e.interval, |id| ids.push(id));
                }
                EventKind::Read => self
                    .ndp_shared_writes
                    .for_each_overlap(e.interval, |id| ids.push(id)),
                _ => continue,
            }
            for ndp_id in ids {
                if self.parked_events.contains(&ndp_id) {
                    continue;
                }
                self.evaluate_pair(events, ndp_id, i as u32);
            }
        }

        // Step B — fold the batch into every index.
        self.index.extend_from(trace);
        let mut ndp_reads = Vec::new();
        let mut ndp_writes = Vec::new();
        let mut ndp_persists = Vec::new();
        let mut recovery_new = Vec::new();
        for (i, e) in events.iter().enumerate().skip(lo) {
            let id = i as u32;
            if e.interval.len == 0 {
                continue;
            }
            let entry = (e.interval, e.timestamp_ps, id);
            if e.agent.is_ndp() && e.sharing == Sharing::Shared {
                match e.kind {
                    EventKind::Read => ndp_reads.push(entry),
                    EventKind::Write => ndp_writes.push(entry),
                    EventKind::Persist => ndp_persists.push(entry),
                    _ => {}
                }
            }
            if e.kind == EventKind::RecoveryRead {
                recovery_new.push(entry);
                self.recovery_reads.push(id);
            }
        }
        self.ndp_shared_reads.extend_items(ndp_reads);
        self.ndp_shared_writes.extend_items(ndp_writes);
        self.ndp_shared_persists.extend_items(ndp_persists);
        self.recovery_idx.extend_items(recovery_new);

        // Step C — procedures that gained their offload: drop the
        // MissingOffload verdicts and re-check the parked accesses against
        // the *full* (post-fold) CPU indexes.
        for p in &gained {
            let Some(list) = self.parked_no_offload.remove(p) else {
                continue;
            };
            for ndp_id in list {
                self.parked_events.remove(&ndp_id);
                self.ordering.remove(&(ndp_id, 0));
                self.check_ndp_event(events, ndp_id);
            }
        }

        // Step D — new NDP shared accesses against the full CPU indexes.
        for (i, e) in events.iter().enumerate().skip(lo) {
            if !e.agent.is_ndp() || e.sharing != Sharing::Shared || e.interval.len == 0 {
                continue;
            }
            if !matches!(
                e.kind,
                EventKind::Read | EventKind::Write | EventKind::Persist
            ) {
                continue;
            }
            self.check_ndp_event(events, i as u32);
        }

        // Step E — Invariant 3, sequentially through the batch (the parked
        // set must respect trace order around each sync). A write parks with
        // the post-fold whole-trace earliest-persist key, so within-batch
        // persist placement is already accounted; persists from *later*
        // batches can only lower a key, which syncs discover lazily.
        for (i, e) in events.iter().enumerate().skip(lo) {
            if !e.agent.is_ndp() {
                continue;
            }
            match e.kind {
                EventKind::Write if e.interval.len > 0 => {
                    let key = self
                        .index
                        .earliest_persist_by(e.agent, e.interval)
                        .unwrap_or(u64::MAX);
                    self.parked_writes
                        .entry(e.agent)
                        .or_default()
                        .insert((key, i as u32));
                }
                EventKind::Persist if e.interval.len > 0 => {
                    // The only standing state a later persist can invalidate
                    // is a recorded violation it retroactively satisfies
                    // (same agent, overlapping the write, timestamped no
                    // later than the sync). Violation lists are tiny — empty
                    // on clean runs — so a direct scan beats indexing every
                    // write ever made against every future persist.
                    if self.sync_violations.is_empty() {
                        continue;
                    }
                    let cleared: Vec<PairKey> = self
                        .sync_violations
                        .iter()
                        .filter_map(|(&key, v)| match v {
                            PpoViolation::UnpersistedBeforeSync {
                                agent,
                                interval,
                                sync_ts,
                            } if *agent == e.agent
                                && e.timestamp_ps <= *sync_ts
                                && interval.overlaps(&e.interval) =>
                            {
                                Some(key)
                            }
                            _ => None,
                        })
                        .collect();
                    for key in cleared {
                        self.sync_violations.remove(&key);
                    }
                }
                EventKind::Sync => {
                    let Some(parked) = self.parked_writes.get_mut(&e.agent) else {
                        continue;
                    };
                    // Upper-bound keys over-approximate: every write whose
                    // stored key lands after the sync is a candidate, and
                    // its true key is re-derived from the full persist index
                    // (lowering the stored key in place — keys only
                    // decrease, so this revalidation amortizes).
                    let candidates: Vec<(u64, u32)> = parked
                        .range((
                            Bound::Excluded((e.timestamp_ps, u32::MAX)),
                            Bound::Unbounded,
                        ))
                        .copied()
                        .collect();
                    let mut failing: Vec<u32> = Vec::new();
                    for (stored, w) in candidates {
                        let wev = &events[w as usize];
                        let true_key = self
                            .index
                            .earliest_persist_by(e.agent, wev.interval)
                            .unwrap_or(u64::MAX);
                        if true_key < stored {
                            parked.remove(&(stored, w));
                            parked.insert((true_key, w));
                        }
                        if true_key <= e.timestamp_ps {
                            continue;
                        }
                        let in_scope = match e.proc {
                            Some(p) => wev.proc == Some(p),
                            None => wev.timestamp_ps <= e.timestamp_ps,
                        };
                        if in_scope {
                            failing.push(w);
                        }
                    }
                    failing.sort_unstable();
                    for w in failing {
                        let wev = &events[w as usize];
                        self.sync_violations.insert(
                            (i as u32, w),
                            PpoViolation::UnpersistedBeforeSync {
                                agent: wev.agent,
                                interval: wev.interval,
                                sync_ts: e.timestamp_ps,
                            },
                        );
                    }
                }
                _ => {}
            }
        }

        // Step F — Invariant 4.
        let Some(failure) = self.index.failure_ts() else {
            return; // no failure yet: recovery reads hold no verdicts
        };
        if failure_before.is_none() {
            // The failure became visible in this batch: every recovery read
            // (old and new) gets its verdict from the full indexes once.
            let all = self.recovery_reads.clone();
            for r in all {
                self.evaluate_recovery(events, r);
            }
        } else {
            for (i, e) in events.iter().enumerate().skip(lo) {
                match e.kind {
                    EventKind::RecoveryRead if e.interval.len > 0 => {
                        self.evaluate_recovery(events, i as u32);
                    }
                    EventKind::Write | EventKind::Persist
                        if e.interval.len > 0 && e.timestamp_ps <= failure =>
                    {
                        // A pre-failure write can create a verdict on an old
                        // read; a pre-failure persist can clear one.
                        let mut hits = Vec::new();
                        self.recovery_idx
                            .for_each_overlap(e.interval, |r| hits.push(r));
                        for r in hits {
                            self.evaluate_recovery(events, r);
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    /// Evaluates one NDP shared access against the full CPU indexes, or
    /// parks it with a `MissingOffload` verdict if its procedure has no
    /// offload event yet.
    ///
    /// The pair loop is the fold's hottest code — on dense traces one NDP
    /// access can be comparable with hundreds of CPU accesses — so the
    /// per-event facts (the NDP event itself, its procedure's offload
    /// program order) are resolved once up front and the verdicts stream
    /// straight out of the index walk, instead of paying an offload-table
    /// hash lookup and an extra `events` fetch per pair the way
    /// [`IncrementalChecker::evaluate_pair`] does.
    fn check_ndp_event(&mut self, events: &[PpoEvent], ndp_id: u32) {
        let ndp = &events[ndp_id as usize];
        let Some(proc) = ndp.proc else {
            return; // no procedure: the oracle skips it entirely
        };
        let Some(off_po) = self.index.offload_po(proc) else {
            self.parked_no_offload.entry(proc).or_default().push(ndp_id);
            self.parked_events.insert(ndp_id);
            self.ordering
                .insert((ndp_id, 0), PpoViolation::MissingOffload { proc });
            return;
        };
        let mut violating: Vec<(u32, PpoViolation)> = Vec::new();
        self.index
            .for_each_comparable_cpu_id(ndp.kind, ndp.interval, |cpu_id| {
                let cpu = &events[cpu_id as usize];
                let cpu_before_offload = cpu.program_order < off_po;
                let ok = if cpu_before_offload {
                    cpu.timestamp_ps <= ndp.timestamp_ps
                } else {
                    ndp.timestamp_ps <= cpu.timestamp_ps
                };
                if !ok {
                    violating.push((
                        cpu_id,
                        PpoViolation::SharedOrderViolation {
                            proc,
                            cpu_interval: cpu.interval,
                            ndp_interval: ndp.interval,
                            cpu_ts: cpu.timestamp_ps,
                            ndp_ts: ndp.timestamp_ps,
                            cpu_before_offload,
                        },
                    ));
                }
            });
        for (cpu_id, v) in violating {
            self.ordering.insert((ndp_id, cpu_id), v);
        }
    }

    /// Evaluates one (NDP access, CPU access) pair and records the verdict.
    /// Every input to the verdict is immutable once both events exist (the
    /// offload table keeps the *first* offload per procedure), so a pair is
    /// evaluated exactly once across the checker's lifetime.
    fn evaluate_pair(&mut self, events: &[PpoEvent], ndp_id: u32, cpu_id: u32) {
        let ndp = &events[ndp_id as usize];
        let cpu = &events[cpu_id as usize];
        let Some(proc) = ndp.proc else {
            return;
        };
        let Some(off_po) = self.index.offload_po(proc) else {
            return;
        };
        let cpu_before_offload = cpu.program_order < off_po;
        let ok = if cpu_before_offload {
            cpu.timestamp_ps <= ndp.timestamp_ps
        } else {
            ndp.timestamp_ps <= cpu.timestamp_ps
        };
        if !ok {
            self.ordering.insert(
                (ndp_id, cpu_id),
                PpoViolation::SharedOrderViolation {
                    proc,
                    cpu_interval: cpu.interval,
                    ndp_interval: ndp.interval,
                    cpu_ts: cpu.timestamp_ps,
                    ndp_ts: ndp.timestamp_ps,
                    cpu_before_offload,
                },
            );
        }
    }

    /// Re-derives one recovery read's verdict from the full write/persist
    /// indexes (idempotent: inserts or removes as the verdict dictates).
    fn evaluate_recovery(&mut self, events: &[PpoEvent], r: u32) {
        let e = &events[r as usize];
        let violating = self.index.written_before_failure(e.interval)
            && !self.index.persisted_before_failure(e.interval);
        if violating {
            self.recovery_violations.insert(
                r,
                PpoViolation::RecoveryReadUnpersisted {
                    agent: e.agent,
                    interval: e.interval,
                },
            );
        } else {
            self.recovery_violations.remove(&r);
        }
    }
}
