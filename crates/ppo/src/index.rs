//! One-pass event index over a [`Trace`].
//!
//! The naive PPO checkers re-scan the whole event list for every sync, every
//! recovery read, and every CPU/NDP access pair, which is O(n²)–O(n³) in the
//! trace length — fig16-scale runs spend more time *verifying* the trace than
//! producing it. [`TraceIndex`] is built once in O(n log n) and answers the
//! checkers' questions as indexed queries:
//!
//! * **interval overlap** — which shared CPU accesses of a given kind overlap
//!   this NDP access? ([`IntervalIndex::for_each_overlap`])
//! * **interval existence** — did *any* write / persist of this range land
//!   before the failure? ([`IntervalIndex::any_overlap`])
//! * **earliest covering persist** — what is the earliest timestamp at which
//!   some persist overlapping this write completed?
//!   ([`IntervalIndex::min_value_overlapping`])
//! * **offload table** — the CPU program-order index of the offload event of
//!   each NDP procedure ([`TraceIndex::offload_po`]).
//!
//! All structures are static: the trace is immutable once recorded, so the
//! index sorts events by interval start and layers a merge-sort tree on top.
//! Each node stores its max interval end for pruning, min/max bounds over
//! the items' `aux` payload, and a **compressed end-sorted run** — one entry
//! per distinct interval end carrying the suffix min/max of the associated
//! value over all items ending at or after it. Internal nodes merge their
//! children's compressed runs directly (no per-node re-sort, no per-item
//! fan-out up the tree), so a build touches each distinct end once per
//! level. Queries whose start condition is a prefix of the sorted order
//! decompose into O(log n) tree nodes; the end-condition is resolved per
//! node by one binary search into the compressed run, giving O(log² n)
//! worst-case for the min/max-value queries and O(log n + hits) for
//! enumeration. [`IntervalIndex::for_each_overlap_order_violation`] drives
//! the same decomposition with the order-violation predicate evaluated
//! against the per-node aggregates, so subtrees whose aux and value bounds
//! already satisfy the offload order are proven clean without visiting a
//! single item.

use std::collections::HashMap;

use crate::event::{Agent, EventKind, Interval, PpoEvent, ProcId, Trace};
use crate::pool::WorkerPool;

/// One indexed interval with an attached value (usually a timestamp), an
/// auxiliary payload, and the index of the originating event in the trace.
///
/// The `aux` word makes the index **self-contained** for the incremental
/// checker: the CPU-side indexes carry the access's program order, the
/// checker's NDP-side mirrors carry the procedure id — every fact a pair
/// evaluation needs travels with the item, so old events never have to be
/// re-fetched from the trace (which may have retired them under streaming
/// compaction).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Item {
    pub(crate) start: u64,
    pub(crate) end: u64,
    pub(crate) value: u64,
    pub(crate) aux: u64,
    pub(crate) id: u32,
}

impl Item {
    /// The interval this item covers.
    pub(crate) fn interval(&self) -> Interval {
        Interval::new(self.start, self.end - self.start)
    }
}

/// Static interval index over a subset of trace events.
///
/// Entries are sorted by interval start; a segment tree over the sorted array
/// stores, per node, the maximum interval end (for pruning) and the node's
/// entries re-sorted by end with suffix minima of `value` (for earliest-
/// covering-persist queries).
#[derive(Debug, Clone, Default)]
pub struct IntervalIndex {
    items: Vec<Item>,
    /// Per segment-tree node `i` covering `ranges[i]`: entries sorted by
    /// interval end, paired with the minimum and maximum `value` of the
    /// suffix starting at that position.
    node_ends: Vec<Vec<(u64, u64, u64)>>,
    node_max_end: Vec<u64>,
    /// Per node: the minimum and maximum `aux` payload of its items. For the
    /// CPU-side shared indexes `aux` is the access's program order, so these
    /// bounds let a walk decide "every item here precedes / follows this
    /// offload" without touching the items.
    node_min_aux: Vec<u64>,
    node_max_aux: Vec<u64>,
    node_range: Vec<(usize, usize)>,
    node_children: Vec<Option<(usize, usize)>>,
    root: Option<usize>,
}

/// Below this size a node is a leaf and queries scan it directly.
const LEAF_SIZE: usize = 16;

impl IntervalIndex {
    /// Builds an index over `(interval, value, event-id)` triples. Zero-length
    /// intervals are dropped: they can never overlap anything.
    fn build(mut items: Vec<Item>) -> Self {
        items.retain(|it| it.end > it.start);
        items.sort_unstable_by_key(|it| (it.start, it.id));
        Self::build_presorted(items)
    }

    /// Builds an index over items already sorted by `(start, id)` with
    /// zero-length intervals removed — the incremental index merges its
    /// levels' sorted item lists and must not pay a full re-sort per merge.
    fn build_presorted(items: Vec<Item>) -> Self {
        debug_assert!(items
            .windows(2)
            .all(|w| (w[0].start, w[0].id) <= (w[1].start, w[1].id)));
        let mut idx = IntervalIndex {
            items,
            node_ends: Vec::new(),
            node_max_end: Vec::new(),
            node_min_aux: Vec::new(),
            node_max_aux: Vec::new(),
            node_range: Vec::new(),
            node_children: Vec::new(),
            root: None,
        };
        if !idx.items.is_empty() {
            let root = idx.build_node(0, idx.items.len());
            idx.root = Some(root);
        }
        idx
    }

    /// Builds the node over `items[lo..hi]`.
    ///
    /// The end-sorted runs are **compressed**: one entry per *distinct*
    /// interval end, holding the min/max `value` over all items of the node
    /// whose end is `>=` that entry's. A query for "items with end > qs"
    /// resolves to the first entry with end > qs, whose aggregates cover
    /// exactly the queried suffix — so compression changes nothing
    /// observable. It changes everything material: traces that hammer a
    /// small working set produce nodes whose thousands of items share a
    /// handful of interval ends, and the uncompressed runs' Θ(n · depth)
    /// footprint (gigabytes written per rebuild at 10M events) was the
    /// single largest checking cost. Runs are also built bottom-up — a
    /// parent merges its children's compressed runs with carried
    /// aggregates instead of re-sorting its whole range — so construction
    /// bandwidth is proportional to the compressed sizes, not the item
    /// count times depth.
    fn build_node(&mut self, lo: usize, hi: usize) -> usize {
        let node = self.node_range.len();
        self.node_range.push((lo, hi));
        self.node_ends.push(Vec::new());
        self.node_max_end.push(0);
        self.node_min_aux.push(u64::MAX);
        self.node_max_aux.push(0);
        self.node_children.push(None);

        let (children, ends) = if hi - lo > LEAF_SIZE {
            let mid = (lo + hi) / 2;
            let l = self.build_node(lo, mid);
            let r = self.build_node(mid, hi);
            let merged = merge_compressed_runs(&self.node_ends[l], &self.node_ends[r]);
            self.node_min_aux[node] = self.node_min_aux[l].min(self.node_min_aux[r]);
            self.node_max_aux[node] = self.node_max_aux[l].max(self.node_max_aux[r]);
            (Some((l, r)), merged)
        } else {
            let mut raw: Vec<(u64, u64)> = self.items[lo..hi]
                .iter()
                .map(|it| (it.end, it.value))
                .collect();
            raw.sort_unstable();
            let mut run: Vec<(u64, u64, u64)> = Vec::new();
            let mut min_from_here = u64::MAX;
            let mut max_from_here = 0u64;
            for &(end, value) in raw.iter().rev() {
                min_from_here = min_from_here.min(value);
                max_from_here = max_from_here.max(value);
                match run.last_mut() {
                    Some(e) if e.0 == end => {
                        e.1 = min_from_here;
                        e.2 = max_from_here;
                    }
                    _ => run.push((end, min_from_here, max_from_here)),
                }
            }
            run.reverse();
            (None, run)
        };

        let max_end = ends.last().map(|e| e.0).unwrap_or(0);
        if children.is_none() {
            let (mut min_aux, mut max_aux) = (u64::MAX, 0u64);
            for it in &self.items[lo..hi] {
                min_aux = min_aux.min(it.aux);
                max_aux = max_aux.max(it.aux);
            }
            self.node_min_aux[node] = min_aux;
            self.node_max_aux[node] = max_aux;
        }
        self.node_ends[node] = ends;
        self.node_max_end[node] = max_end;
        self.node_children[node] = children;
        node
    }

    /// Number of indexed intervals.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Consumes the index, returning its (start-sorted) items. Used by the
    /// incremental index when collapsing levels.
    fn take_items(self) -> Vec<Item> {
        self.items
    }

    /// True if nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// First position whose start is `>= bound` (the start condition
    /// `start < query.end` selects the prefix `[0, prefix_end)`).
    fn prefix_end(&self, bound: u64) -> usize {
        self.items.partition_point(|it| it.start < bound)
    }

    /// Calls `f` with the event id of every indexed interval overlapping
    /// `query`. Ids are produced in interval-start-sorted order, *not* trace
    /// order — callers that need trace order must collect and sort.
    pub fn for_each_overlap<F: FnMut(u32)>(&self, query: Interval, mut f: F) {
        self.for_each_overlap_item(query, |it| f(it.id));
    }

    /// Calls `f` with every indexed [`Item`] overlapping `query` (same walk
    /// as [`IntervalIndex::for_each_overlap`], but the full item — interval,
    /// value, and aux payload — streams out, so the incremental checker can
    /// evaluate pairs without re-fetching events from the trace).
    pub(crate) fn for_each_overlap_item<F: FnMut(&Item)>(&self, query: Interval, mut f: F) {
        if query.len == 0 || self.items.is_empty() {
            return;
        }
        let prefix = self.prefix_end(query.end());
        if prefix == 0 {
            return;
        }
        self.walk_overlap(self.root.unwrap(), prefix, query.start, &mut f);
    }

    fn walk_overlap<F: FnMut(&Item)>(&self, node: usize, prefix: usize, qs: u64, f: &mut F) {
        let (lo, hi) = self.node_range[node];
        if lo >= prefix || self.node_max_end[node] <= qs {
            return;
        }
        match self.node_children[node] {
            Some((l, r)) => {
                self.walk_overlap(l, prefix, qs, f);
                self.walk_overlap(r, prefix, qs, f);
            }
            None => {
                for it in &self.items[lo..hi.min(prefix)] {
                    if it.end > qs {
                        f(it);
                    }
                }
            }
        }
    }

    /// True if any indexed interval overlaps `query`.
    pub fn any_overlap(&self, query: Interval) -> bool {
        if query.len == 0 || self.items.is_empty() {
            return false;
        }
        let prefix = self.prefix_end(query.end());
        if prefix == 0 {
            return false;
        }
        self.walk_any(self.root.unwrap(), prefix, query.start)
    }

    fn walk_any(&self, node: usize, prefix: usize, qs: u64) -> bool {
        let (lo, hi) = self.node_range[node];
        if lo >= prefix || self.node_max_end[node] <= qs {
            return false;
        }
        if hi <= prefix {
            // Whole node satisfies the start condition; max-end pruning above
            // already proved some entry has end > qs.
            return true;
        }
        match self.node_children[node] {
            Some((l, r)) => self.walk_any(l, prefix, qs) || self.walk_any(r, prefix, qs),
            None => self.items[lo..hi.min(prefix)].iter().any(|it| it.end > qs),
        }
    }

    /// Minimum `value` over all indexed intervals overlapping `query`
    /// (`None` if nothing overlaps). With persist timestamps as values this
    /// answers "when was this range first covered by a persist".
    pub fn min_value_overlapping(&self, query: Interval) -> Option<u64> {
        if query.len == 0 || self.items.is_empty() {
            return None;
        }
        let prefix = self.prefix_end(query.end());
        if prefix == 0 {
            return None;
        }
        let m = self.walk_min(self.root.unwrap(), prefix, query.start);
        (m != u64::MAX).then_some(m)
    }

    fn walk_min(&self, node: usize, prefix: usize, qs: u64) -> u64 {
        let (lo, hi) = self.node_range[node];
        if lo >= prefix || self.node_max_end[node] <= qs {
            return u64::MAX;
        }
        if hi <= prefix {
            // Whole node satisfies the start condition: resolve the end
            // condition with one binary search in the end-sorted run.
            let ends = &self.node_ends[node];
            let pos = ends.partition_point(|&(end, _, _)| end <= qs);
            return ends.get(pos).map(|&(_, min, _)| min).unwrap_or(u64::MAX);
        }
        match self.node_children[node] {
            Some((l, r)) => self
                .walk_min(l, prefix, qs)
                .min(self.walk_min(r, prefix, qs)),
            None => self.items[lo..hi.min(prefix)]
                .iter()
                .filter(|it| it.end > qs)
                .map(|it| it.value)
                .min()
                .unwrap_or(u64::MAX),
        }
    }

    /// Maximum `value` over all indexed intervals overlapping `query`,
    /// `0` if nothing overlaps. The zero identity is deliberate: callers use
    /// this as a "could any overlapping item be timestamped after `t`"
    /// screen (`max > t`), and an empty overlap set answers that exactly
    /// like an all-`0` one.
    pub(crate) fn max_value_overlapping(&self, query: Interval) -> u64 {
        if query.len == 0 || self.items.is_empty() {
            return 0;
        }
        let prefix = self.prefix_end(query.end());
        if prefix == 0 {
            return 0;
        }
        self.walk_max(self.root.unwrap(), prefix, query.start)
    }

    fn walk_max(&self, node: usize, prefix: usize, qs: u64) -> u64 {
        let (lo, hi) = self.node_range[node];
        if lo >= prefix || self.node_max_end[node] <= qs {
            return 0;
        }
        if hi <= prefix {
            let ends = &self.node_ends[node];
            let pos = ends.partition_point(|&(end, _, _)| end <= qs);
            return ends.get(pos).map(|&(_, _, max)| max).unwrap_or(0);
        }
        match self.node_children[node] {
            Some((l, r)) => self
                .walk_max(l, prefix, qs)
                .max(self.walk_max(r, prefix, qs)),
            None => self.items[lo..hi.min(prefix)]
                .iter()
                .filter(|it| it.end > qs)
                .map(|it| it.value)
                .max()
                .unwrap_or(0),
        }
    }

    /// Calls `f` with exactly the overlapping items whose `(aux, value)`
    /// violates the shared-ordering predicate against an NDP access of
    /// procedure offload order `off_po` and timestamp `ndp_ts`: items with
    /// `aux < off_po` (CPU access before the offload in program order)
    /// violate iff `value > ndp_ts`, items with `aux >= off_po` violate iff
    /// `value < ndp_ts`.
    ///
    /// The walk never enumerates a subtree it can prove clean: a node whose
    /// items all sit on one side of `off_po` (the per-node aux bounds) is
    /// resolved by one binary search against the end-sorted suffix-min/max
    /// runs, so on violation-free traces the cost is polylogarithmic where
    /// plain overlap enumeration is Θ(hits) — the difference between linear
    /// and quadratic total checking on traces that hammer a small working
    /// set.
    pub(crate) fn for_each_overlap_order_violation<F: FnMut(&Item)>(
        &self,
        query: Interval,
        off_po: u64,
        ndp_ts: u64,
        f: &mut F,
    ) {
        if query.len == 0 || self.items.is_empty() {
            return;
        }
        let prefix = self.prefix_end(query.end());
        if prefix == 0 {
            return;
        }
        self.walk_violations(self.root.unwrap(), prefix, query.start, off_po, ndp_ts, f);
    }

    fn walk_violations<F: FnMut(&Item)>(
        &self,
        node: usize,
        prefix: usize,
        qs: u64,
        off_po: u64,
        ndp_ts: u64,
        f: &mut F,
    ) {
        let (lo, hi) = self.node_range[node];
        if lo >= prefix || self.node_max_end[node] <= qs {
            return;
        }
        if hi <= prefix {
            // Whole node satisfies the start condition: if every item is on
            // one side of the offload, one suffix-aggregate lookup decides
            // whether any overlapping item can violate.
            if self.node_max_aux[node] < off_po {
                let ends = &self.node_ends[node];
                let pos = ends.partition_point(|&(end, _, _)| end <= qs);
                if ends.get(pos).map(|&(_, _, max)| max).unwrap_or(0) <= ndp_ts {
                    return;
                }
            } else if self.node_min_aux[node] >= off_po {
                let ends = &self.node_ends[node];
                let pos = ends.partition_point(|&(end, _, _)| end <= qs);
                if ends.get(pos).map(|&(_, min, _)| min).unwrap_or(u64::MAX) >= ndp_ts {
                    return;
                }
            }
        }
        match self.node_children[node] {
            Some((l, r)) => {
                self.walk_violations(l, prefix, qs, off_po, ndp_ts, f);
                self.walk_violations(r, prefix, qs, off_po, ndp_ts, f);
            }
            None => {
                for it in &self.items[lo..hi.min(prefix)] {
                    let violates = if it.aux < off_po {
                        it.value > ndp_ts
                    } else {
                        it.value < ndp_ts
                    };
                    if it.end > qs && violates {
                        f(it);
                    }
                }
            }
        }
    }
}

/// Merges two `(start, id)`-sorted item lists into one (the level-collapse
/// path of [`IncrementalIntervalIndex::insert_batch`]).
fn merge_sorted_items(a: Vec<Item>, b: Vec<Item>) -> Vec<Item> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if (a[i].start, a[i].id) <= (b[j].start, b[j].id) {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Merges two compressed end-sorted runs (one entry per distinct end,
/// aggregates over the suffix `end >= entry.0` of its own run) into the
/// compressed run of their union. Walking both runs from the largest end
/// down, the most recently passed entry of each side is exactly that side's
/// aggregate over the suffix of the merged end — so one linear pass with two
/// carried aggregates produces the parent run.
fn merge_compressed_runs(l: &[(u64, u64, u64)], r: &[(u64, u64, u64)]) -> Vec<(u64, u64, u64)> {
    let mut out = Vec::with_capacity(l.len() + r.len());
    let (mut i, mut j) = (l.len(), r.len());
    let (mut lmin, mut lmax) = (u64::MAX, 0u64);
    let (mut rmin, mut rmax) = (u64::MAX, 0u64);
    while i > 0 || j > 0 {
        let e = match (i > 0, j > 0) {
            (true, true) => l[i - 1].0.max(r[j - 1].0),
            (true, false) => l[i - 1].0,
            (false, true) => r[j - 1].0,
            (false, false) => unreachable!(),
        };
        if i > 0 && l[i - 1].0 == e {
            lmin = l[i - 1].1;
            lmax = l[i - 1].2;
            i -= 1;
        }
        if j > 0 && r[j - 1].0 == e {
            rmin = r[j - 1].1;
            rmax = r[j - 1].2;
            j -= 1;
        }
        out.push((e, lmin.min(rmin), lmax.max(rmax)));
    }
    out.reverse();
    out
}

/// An interval index that supports batched appends: a logarithmic collection
/// of static [`IntervalIndex`] levels (the classic decomposable-search-
/// problem construction). Appending a batch collapses every level no larger
/// than the batch into it, so level sizes grow geometrically, insertion is
/// amortized O(log n) per item, and a query fans out over at most O(log n)
/// levels.
#[derive(Debug, Clone, Default)]
pub struct IncrementalIntervalIndex {
    levels: Vec<IntervalIndex>,
}

/// Geometric separation enforced between adjacent levels: a trailing level
/// is merged into an incoming batch unless it is more than `MERGE_RATIO`
/// times larger. Ratio-1 (the textbook construction) keeps sizes merely
/// strictly decreasing, which let long-lived sampling runs accumulate ~17
/// levels by 120k events — and the level count is a direct multiplier on
/// every query. Ratio-4 caps the stack at ⌈log₄ n⌉+1 levels (≤ 11 at 1M
/// items) while keeping insertion amortized: each merge grows an item's
/// level by ≥ 1 + 1/MERGE_RATIO, so an item is rebuilt O(log n) times.
const MERGE_RATIO: usize = 4;

impl IncrementalIntervalIndex {
    /// Appends a batch of items, collapsing levels into it under the
    /// logarithmic-merge discipline: every trailing level no larger than
    /// `MERGE_RATIO` times the accumulated batch is absorbed, so the
    /// remaining levels stay geometrically separated and the level count is
    /// bounded by log base `MERGE_RATIO` of the total size.
    pub(crate) fn insert_batch(&mut self, mut items: Vec<Item>) {
        items.retain(|it| it.end > it.start);
        if items.is_empty() {
            return;
        }
        // Sort the incoming batch once; absorbed levels are already sorted,
        // so each collapse is a linear merge rather than a re-sort of the
        // combined level.
        items.sort_unstable_by_key(|it| (it.start, it.id));
        while let Some(last) = self.levels.last() {
            if last.len() <= items.len().saturating_mul(MERGE_RATIO) {
                let level = self.levels.pop().expect("checked non-empty");
                items = merge_sorted_items(level.take_items(), items);
            } else {
                break;
            }
        }
        self.levels.push(IntervalIndex::build_presorted(items));
    }

    /// Total number of indexed intervals across all levels.
    pub fn len(&self) -> usize {
        self.levels.iter().map(|l| l.len()).sum()
    }

    /// True if nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// Number of static levels currently held (O(log n)).
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// Calls `f` with the event id of every indexed interval overlapping
    /// `query`, fanning out over the levels (no cross-level order).
    pub fn for_each_overlap<F: FnMut(u32)>(&self, query: Interval, mut f: F) {
        for level in &self.levels {
            level.for_each_overlap(query, &mut f);
        }
    }

    /// Calls `f` with every indexed [`Item`] overlapping `query`, fanning
    /// out over the levels (no cross-level order).
    pub(crate) fn for_each_overlap_item<F: FnMut(&Item)>(&self, query: Interval, mut f: F) {
        for level in &self.levels {
            level.for_each_overlap_item(query, &mut f);
        }
    }

    /// True if any indexed interval overlaps `query`.
    pub fn any_overlap(&self, query: Interval) -> bool {
        self.levels.iter().any(|l| l.any_overlap(query))
    }

    /// Minimum value over all indexed intervals overlapping `query`.
    pub fn min_value_overlapping(&self, query: Interval) -> Option<u64> {
        self.levels
            .iter()
            .filter_map(|l| l.min_value_overlapping(query))
            .min()
    }

    /// Maximum value over all indexed intervals overlapping `query`, `0` if
    /// nothing overlaps (see [`IntervalIndex::max_value_overlapping`]).
    pub(crate) fn max_value_overlapping(&self, query: Interval) -> u64 {
        self.levels
            .iter()
            .map(|l| l.max_value_overlapping(query))
            .max()
            .unwrap_or(0)
    }

    /// Calls `f` with exactly the overlapping items violating the shared-
    /// ordering predicate, fanning the pruned walk out over the levels (see
    /// [`IntervalIndex::for_each_overlap_order_violation`]).
    pub(crate) fn for_each_overlap_order_violation<F: FnMut(&Item)>(
        &self,
        query: Interval,
        off_po: u64,
        ndp_ts: u64,
        mut f: F,
    ) {
        for level in &self.levels {
            level.for_each_overlap_order_violation(query, off_po, ndp_ts, &mut f);
        }
    }
}

/// Per-NDP-agent view used by the synchronization checker.
#[derive(Debug, Clone, Default)]
pub struct AgentIndex {
    /// All persists of this agent, valued by timestamp.
    pub persists: IntervalIndex,
}

/// The index queries the PPO invariant checkers need, abstracted over the
/// build-once [`TraceIndex`] and the append-friendly
/// [`IncrementalTraceIndex`].
pub trait PpoIndexQueries {
    /// CPU program-order index of the offload event of `proc`, if recorded.
    fn offload_po(&self, proc: ProcId) -> Option<u64>;
    /// Timestamp of the first failure event, if any.
    fn failure_ts(&self) -> Option<u64>;
    /// Earliest timestamp at which some persist by `agent` overlapping
    /// `interval` completed.
    fn earliest_persist_by(&self, agent: Agent, interval: Interval) -> Option<u64>;
    /// Calls `f` (in trace order) with every *shared* CPU access in `events`
    /// whose kind is comparable to an NDP access of kind `ndp_kind` and
    /// whose interval overlaps `interval`.
    fn for_each_comparable_cpu_access<F: FnMut(&PpoEvent)>(
        &self,
        events: &[PpoEvent],
        ndp_kind: EventKind,
        interval: Interval,
        f: F,
    );
    /// True if any write with a timestamp no later than the failure overlaps
    /// `interval`.
    fn written_before_failure(&self, interval: Interval) -> bool;
    /// True if any persist with a timestamp no later than the failure
    /// overlaps `interval`.
    fn persisted_before_failure(&self, interval: Interval) -> bool;
}

/// An incrementally extendable [`TraceIndex`] equivalent.
///
/// The system trace grows monotonically between `report()` calls; rebuilding
/// the whole index for every report makes multi-report sweeps (fig18–20)
/// quadratic in the total event count. This structure consumes only the
/// events appended since the last `extend_from` call, maintaining every
/// per-category index as an [`IncrementalIntervalIndex`]. The
/// before-failure existence queries are answered from *timestamp-valued*
/// indexes over all writes/persists (`min overlapping timestamp <= failure`),
/// which — unlike the static index's pre-filtered variant — stays correct
/// when the failure event arrives in a later batch than the writes it
/// bounds.
///
/// If the underlying trace was reset (`Trace::clear` bumps a generation
/// counter, and a shrink is caught directly), the cache detects it and
/// rebuilds from scratch.
#[derive(Debug, Clone, Default)]
pub struct IncrementalTraceIndex {
    consumed: usize,
    /// Generation of the trace the cached state was built from.
    generation: u64,
    offload_po: HashMap<ProcId, u64>,
    cpu_shared_reads: IncrementalIntervalIndex,
    cpu_shared_writes: IncrementalIntervalIndex,
    cpu_shared_persists: IncrementalIntervalIndex,
    agents: HashMap<Agent, IncrementalIntervalIndex>,
    failure_ts: Option<u64>,
    /// All writes / persists (any agent), valued by timestamp.
    all_writes: IncrementalIntervalIndex,
    all_persists: IncrementalIntervalIndex,
}

impl IncrementalTraceIndex {
    /// Creates an empty cache.
    pub fn new() -> Self {
        IncrementalTraceIndex::default()
    }

    /// Number of trace events already folded into the index.
    pub fn consumed(&self) -> usize {
        self.consumed
    }

    /// Drops all cached state (used when the trace it mirrors is reset).
    pub fn reset(&mut self) {
        *self = IncrementalTraceIndex::default();
    }

    /// Folds the events appended to `trace` since the last call into the
    /// index. Detects a trace reset (shrink) and rebuilds from scratch.
    ///
    /// Event ids are **absolute** trace positions: on a compacting trace
    /// (`Trace::retire_through`) the live slice is offset by
    /// `Trace::retired`, and the index requires its own watermark to have
    /// kept up — retiring events the index has not consumed yet would lose
    /// them.
    pub fn extend_from(&mut self, trace: &Trace) {
        // A shrink or a generation change means the trace was reset since
        // the cache last saw it (the generation catches a trace cleared and
        // regrown past its previous length).
        if trace.len() < self.consumed || trace.generation() != self.generation {
            self.reset();
            self.generation = trace.generation();
        }
        if self.consumed == trace.len() {
            return;
        }
        let retired = trace.retired();
        assert!(
            self.consumed >= retired,
            "trace compacted past the index watermark (retired {retired}, consumed {})",
            self.consumed
        );
        let events = trace.events();

        let mut cpu_reads = Vec::new();
        let mut cpu_writes = Vec::new();
        let mut cpu_persists = Vec::new();
        let mut agent_persists: HashMap<Agent, Vec<Item>> = HashMap::new();
        let mut writes = Vec::new();
        let mut persists = Vec::new();

        for (off, e) in events.iter().enumerate().skip(self.consumed - retired) {
            let id = (retired + off) as u32;
            let item = Item {
                start: e.interval.start,
                end: e.interval.end(),
                value: e.timestamp_ps,
                aux: e.program_order,
                id,
            };
            match e.kind {
                EventKind::Offload if e.agent == Agent::Cpu => {
                    if let Some(p) = e.proc {
                        self.offload_po.entry(p).or_insert(e.program_order);
                    }
                }
                EventKind::Failure if self.failure_ts.is_none() => {
                    self.failure_ts = Some(e.timestamp_ps);
                }
                EventKind::Read | EventKind::Write | EventKind::Persist => {
                    if e.agent == Agent::Cpu {
                        if e.sharing == crate::event::Sharing::Shared {
                            match e.kind {
                                EventKind::Read => cpu_reads.push(item),
                                EventKind::Write => cpu_writes.push(item),
                                EventKind::Persist => cpu_persists.push(item),
                                _ => unreachable!(),
                            }
                        }
                    } else if e.kind == EventKind::Persist {
                        agent_persists.entry(e.agent).or_default().push(item);
                    }
                    match e.kind {
                        EventKind::Write => writes.push(item),
                        EventKind::Persist => persists.push(item),
                        _ => {}
                    }
                }
                _ => {}
            }
        }

        self.cpu_shared_reads.insert_batch(cpu_reads);
        self.cpu_shared_writes.insert_batch(cpu_writes);
        self.cpu_shared_persists.insert_batch(cpu_persists);
        for (agent, items) in agent_persists {
            self.agents.entry(agent).or_default().insert_batch(items);
        }
        self.all_writes.insert_batch(writes);
        self.all_persists.insert_batch(persists);
        self.consumed = trace.len();
    }

    /// Calls `f` with the event **index** of every shared CPU access whose
    /// kind is comparable to an NDP access of kind `ndp_kind` and whose
    /// interval overlaps `interval` (no cross-level order — callers that
    /// need trace order sort). The incremental checker keys its violation
    /// pairs by event index, which the trait's event-reference callback does
    /// not expose.
    pub(crate) fn for_each_comparable_cpu_id<F: FnMut(u32)>(
        &self,
        ndp_kind: EventKind,
        interval: Interval,
        mut f: F,
    ) {
        self.for_each_comparable_cpu_item(ndp_kind, interval, |it| f(it.id));
    }

    /// Item-level variant of
    /// [`IncrementalTraceIndex::for_each_comparable_cpu_id`]: streams the
    /// full [`Item`] — interval, timestamp (`value`), CPU program order
    /// (`aux`) — so the incremental checker's pair evaluation needs no
    /// `events[id]` fetch at all. That makes the checker independent of
    /// retired trace prefixes *and* removes the random event-array access
    /// from the hottest loop of the fold.
    pub(crate) fn for_each_comparable_cpu_item<F: FnMut(&Item)>(
        &self,
        ndp_kind: EventKind,
        interval: Interval,
        mut f: F,
    ) {
        match ndp_kind {
            EventKind::Persist => self
                .cpu_shared_persists
                .for_each_overlap_item(interval, &mut f),
            EventKind::Write => {
                self.cpu_shared_writes
                    .for_each_overlap_item(interval, &mut f);
                self.cpu_shared_reads
                    .for_each_overlap_item(interval, &mut f);
            }
            EventKind::Read => self
                .cpu_shared_writes
                .for_each_overlap_item(interval, &mut f),
            _ => {}
        }
    }

    /// Violation-pruned variant of
    /// [`IncrementalTraceIndex::for_each_comparable_cpu_item`]: streams only
    /// the comparable CPU items whose `(program order, timestamp)` violates
    /// the shared-ordering predicate against an NDP access with offload
    /// order `off_po` and timestamp `ndp_ts`. On violation-free traces the
    /// underlying walks prune to polylogarithmic cost instead of
    /// enumerating every comparable pair.
    pub(crate) fn for_each_comparable_cpu_order_violation<F: FnMut(&Item)>(
        &self,
        ndp_kind: EventKind,
        interval: Interval,
        off_po: u64,
        ndp_ts: u64,
        mut f: F,
    ) {
        match ndp_kind {
            EventKind::Persist => self
                .cpu_shared_persists
                .for_each_overlap_order_violation(interval, off_po, ndp_ts, &mut f),
            EventKind::Write => {
                self.cpu_shared_writes
                    .for_each_overlap_order_violation(interval, off_po, ndp_ts, &mut f);
                self.cpu_shared_reads
                    .for_each_overlap_order_violation(interval, off_po, ndp_ts, &mut f);
            }
            EventKind::Read => self
                .cpu_shared_writes
                .for_each_overlap_order_violation(interval, off_po, ndp_ts, &mut f),
            _ => {}
        }
    }
}

impl PpoIndexQueries for IncrementalTraceIndex {
    fn offload_po(&self, proc: ProcId) -> Option<u64> {
        self.offload_po.get(&proc).copied()
    }

    fn failure_ts(&self) -> Option<u64> {
        self.failure_ts
    }

    fn earliest_persist_by(&self, agent: Agent, interval: Interval) -> Option<u64> {
        self.agents
            .get(&agent)
            .and_then(|a| a.min_value_overlapping(interval))
    }

    fn for_each_comparable_cpu_access<F: FnMut(&PpoEvent)>(
        &self,
        events: &[PpoEvent],
        ndp_kind: EventKind,
        interval: Interval,
        mut f: F,
    ) {
        // One comparability dispatch for both entry points: collect ids via
        // the id-level walk, then resolve to events in trace order.
        let mut ids = Vec::new();
        self.for_each_comparable_cpu_id(ndp_kind, interval, |id| ids.push(id));
        ids.sort_unstable();
        for id in ids {
            f(&events[id as usize]);
        }
    }

    fn written_before_failure(&self, interval: Interval) -> bool {
        match self.failure_ts {
            Some(f) => self
                .all_writes
                .min_value_overlapping(interval)
                .is_some_and(|ts| ts <= f),
            None => false,
        }
    }

    fn persisted_before_failure(&self, interval: Interval) -> bool {
        match self.failure_ts {
            Some(f) => self
                .all_persists
                .min_value_overlapping(interval)
                .is_some_and(|ts| ts <= f),
            None => false,
        }
    }
}

/// The one-pass index over a [`Trace`] that the PPO checkers query.
#[derive(Debug)]
pub struct TraceIndex<'a> {
    trace: &'a Trace,
    /// CPU program-order index of the (first) offload event per procedure.
    offload_po: HashMap<ProcId, u64>,
    /// Shared-address CPU accesses, one index per comparable kind.
    cpu_shared_reads: IntervalIndex,
    cpu_shared_writes: IntervalIndex,
    cpu_shared_persists: IntervalIndex,
    /// Per NDP agent: persist index for the sync checker.
    agents: HashMap<Agent, AgentIndex>,
    /// Timestamp of the first failure event, if any.
    failure_ts: Option<u64>,
    /// Writes / persists that completed no later than the failure.
    writes_before_failure: IntervalIndex,
    persists_before_failure: IntervalIndex,
}

impl<'a> TraceIndex<'a> {
    /// Builds the index in one pass over the trace (plus sorts).
    pub fn new(trace: &'a Trace) -> Self {
        Self::build_with(trace, &WorkerPool::new(1))
    }

    /// [`TraceIndex::new`] with the per-category and per-agent
    /// [`IntervalIndex`] constructions (the O(n log n) sorts that dominate
    /// the build) run as independent jobs on `pool`. The categorization pass
    /// stays serial and each index is built from the same item list in the
    /// same order, so the resulting index is identical to the serial build.
    pub fn new_parallel(trace: &'a Trace, pool: &WorkerPool) -> Self {
        Self::build_with(trace, pool)
    }

    fn build_with(trace: &'a Trace, pool: &WorkerPool) -> Self {
        let events = trace.events();
        let failure_ts = trace.failure_time();

        let mut offload_po = HashMap::new();
        let mut cpu_reads = Vec::new();
        let mut cpu_writes = Vec::new();
        let mut cpu_persists = Vec::new();
        let mut agent_persists: HashMap<Agent, Vec<Item>> = HashMap::new();
        let mut writes_pre = Vec::new();
        let mut persists_pre = Vec::new();

        for (i, e) in events.iter().enumerate() {
            let id = i as u32;
            let item = Item {
                start: e.interval.start,
                end: e.interval.end(),
                value: e.timestamp_ps,
                aux: e.program_order,
                id,
            };
            match e.kind {
                EventKind::Offload if e.agent == Agent::Cpu => {
                    if let Some(p) = e.proc {
                        offload_po.entry(p).or_insert(e.program_order);
                    }
                }
                EventKind::Read | EventKind::Write | EventKind::Persist => {
                    if e.agent == Agent::Cpu {
                        if e.sharing == crate::event::Sharing::Shared {
                            match e.kind {
                                EventKind::Read => cpu_reads.push(item),
                                EventKind::Write => cpu_writes.push(item),
                                EventKind::Persist => cpu_persists.push(item),
                                _ => unreachable!(),
                            }
                        }
                    } else if e.kind == EventKind::Persist {
                        agent_persists.entry(e.agent).or_default().push(item);
                    }
                    if let Some(f) = failure_ts {
                        if e.timestamp_ps <= f {
                            match e.kind {
                                EventKind::Write => writes_pre.push(item),
                                EventKind::Persist => persists_pre.push(item),
                                _ => {}
                            }
                        }
                    }
                }
                _ => {}
            }
        }

        // Every IntervalIndex::build below is independent; hand them to the
        // pool as one job list (fixed slots first, then the per-agent persist
        // indexes in agent order) and unpack in the same order.
        let mut agent_keys: Vec<Agent> = agent_persists.keys().copied().collect();
        agent_keys.sort_unstable();
        let mut inputs: Vec<Vec<Item>> = vec![
            cpu_reads,
            cpu_writes,
            cpu_persists,
            writes_pre,
            persists_pre,
        ];
        for a in &agent_keys {
            inputs.push(agent_persists.remove(a).expect("key from this map"));
        }
        let mut built = pool
            .scoped_map(
                inputs
                    .into_iter()
                    .map(|items| move || IntervalIndex::build(items))
                    .collect(),
            )
            .into_iter();
        let mut next = || built.next().expect("one index per job");
        let (cpu_shared_reads, cpu_shared_writes, cpu_shared_persists) = (next(), next(), next());
        let (writes_before_failure, persists_before_failure) = (next(), next());
        TraceIndex {
            trace,
            offload_po,
            cpu_shared_reads,
            cpu_shared_writes,
            cpu_shared_persists,
            agents: agent_keys
                .into_iter()
                .map(|a| (a, AgentIndex { persists: next() }))
                .collect(),
            failure_ts,
            writes_before_failure,
            persists_before_failure,
        }
    }

    /// The indexed trace.
    pub fn trace(&self) -> &Trace {
        self.trace
    }

    /// CPU program-order index of the offload event of `proc`, if recorded.
    pub fn offload_po(&self, proc: ProcId) -> Option<u64> {
        self.offload_po.get(&proc).copied()
    }

    /// Timestamp of the first failure event, if any.
    pub fn failure_ts(&self) -> Option<u64> {
        self.failure_ts
    }

    /// Earliest timestamp at which some persist by `agent` overlapping
    /// `interval` completed (`None` if no such persist exists).
    pub fn earliest_persist_by(&self, agent: Agent, interval: Interval) -> Option<u64> {
        self.agents
            .get(&agent)
            .and_then(|a| a.persists.min_value_overlapping(interval))
    }

    /// Calls `f` (in trace order) with every *shared* CPU access whose kind
    /// is comparable to an NDP access of kind `ndp_kind` and whose interval
    /// overlaps `interval`. Comparability follows Invariants 1/2:
    /// persist-vs-persist and write/read-vs-write/read.
    pub fn for_each_comparable_cpu_access<F: FnMut(&PpoEvent)>(
        &self,
        ndp_kind: EventKind,
        interval: Interval,
        mut f: F,
    ) {
        let events = self.trace.events();
        // The tree walk yields ids in start-sorted order; collect and sort so
        // callers observe matches in trace order (ascending event index), the
        // order the reference oracle reports violations in.
        let mut ids = Vec::new();
        match ndp_kind {
            EventKind::Persist => {
                self.cpu_shared_persists
                    .for_each_overlap(interval, |id| ids.push(id));
            }
            EventKind::Write => {
                // CPU writes and CPU reads are both comparable to an NDP write.
                self.cpu_shared_writes
                    .for_each_overlap(interval, |id| ids.push(id));
                self.cpu_shared_reads
                    .for_each_overlap(interval, |id| ids.push(id));
            }
            EventKind::Read => {
                self.cpu_shared_writes
                    .for_each_overlap(interval, |id| ids.push(id));
            }
            _ => {}
        }
        ids.sort_unstable();
        for id in ids {
            f(&events[id as usize]);
        }
    }

    /// True if any write with a timestamp no later than the failure overlaps
    /// `interval`.
    pub fn written_before_failure(&self, interval: Interval) -> bool {
        self.writes_before_failure.any_overlap(interval)
    }

    /// True if any persist with a timestamp no later than the failure
    /// overlaps `interval`.
    pub fn persisted_before_failure(&self, interval: Interval) -> bool {
        self.persists_before_failure.any_overlap(interval)
    }
}

impl PpoIndexQueries for TraceIndex<'_> {
    fn offload_po(&self, proc: ProcId) -> Option<u64> {
        TraceIndex::offload_po(self, proc)
    }

    fn failure_ts(&self) -> Option<u64> {
        TraceIndex::failure_ts(self)
    }

    fn earliest_persist_by(&self, agent: Agent, interval: Interval) -> Option<u64> {
        TraceIndex::earliest_persist_by(self, agent, interval)
    }

    fn for_each_comparable_cpu_access<F: FnMut(&PpoEvent)>(
        &self,
        _events: &[PpoEvent],
        ndp_kind: EventKind,
        interval: Interval,
        f: F,
    ) {
        TraceIndex::for_each_comparable_cpu_access(self, ndp_kind, interval, f)
    }

    fn written_before_failure(&self, interval: Interval) -> bool {
        TraceIndex::written_before_failure(self, interval)
    }

    fn persisted_before_failure(&self, interval: Interval) -> bool {
        TraceIndex::persisted_before_failure(self, interval)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, Sharing};

    fn iv(start: u64, len: u64) -> Interval {
        Interval::new(start, len)
    }

    fn index_of(entries: &[(u64, u64, u64)]) -> IntervalIndex {
        IntervalIndex::build(
            entries
                .iter()
                .enumerate()
                .map(|(i, &(start, len, value))| Item {
                    start,
                    end: start + len,
                    value,
                    aux: 0,
                    id: i as u32,
                })
                .collect(),
        )
    }

    #[test]
    fn overlap_enumeration_matches_naive_scan() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        for _round in 0..50 {
            let n = rng.gen_range(0usize..60);
            let entries: Vec<(u64, u64, u64)> = (0..n)
                .map(|_| {
                    (
                        rng.gen_range(0u64..500),
                        rng.gen_range(0u64..64),
                        rng.gen_range(0u64..1000),
                    )
                })
                .collect();
            let idx = index_of(&entries);
            for _q in 0..20 {
                let q = iv(rng.gen_range(0u64..520), rng.gen_range(0u64..80));
                let mut got = Vec::new();
                idx.for_each_overlap(q, |id| got.push(id));
                got.sort_unstable();
                let want: Vec<u32> = entries
                    .iter()
                    .enumerate()
                    .filter(|(_, &(s, l, _))| iv(s, l).overlaps(&q))
                    .map(|(i, _)| i as u32)
                    .collect();
                assert_eq!(got, want, "query {q:?} over {entries:?}");
                assert_eq!(idx.any_overlap(q), !want.is_empty());
                let want_min = entries
                    .iter()
                    .filter(|&&(s, l, _)| iv(s, l).overlaps(&q))
                    .map(|&(_, _, v)| v)
                    .min();
                assert_eq!(idx.min_value_overlapping(q), want_min);
            }
        }
    }

    #[test]
    fn ids_come_out_in_trace_order() {
        let idx = index_of(&[(100, 10, 0), (0, 300, 0), (105, 2, 0), (400, 5, 0)]);
        let mut got = Vec::new();
        idx.for_each_overlap(iv(104, 4), |id| got.push(id));
        // for_each_overlap does not guarantee sortedness internally for the
        // generic walk, so callers sort; here we check contents.
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2]);
    }

    #[test]
    fn empty_and_zero_length_queries() {
        let idx = index_of(&[]);
        assert!(!idx.any_overlap(iv(0, 100)));
        assert_eq!(idx.min_value_overlapping(iv(0, 100)), None);
        let idx = index_of(&[(10, 10, 5)]);
        assert!(!idx.any_overlap(iv(0, 0)));
        assert!(idx.any_overlap(iv(0, 11)));
        assert_eq!(idx.min_value_overlapping(iv(15, 1)), Some(5));
        // Zero-length entries are dropped.
        let idx = index_of(&[(10, 0, 5)]);
        assert!(idx.is_empty());
        assert!(!idx.any_overlap(iv(0, 100)));
    }

    /// The logarithmic-merge discipline keeps the level count bounded by
    /// log base `MERGE_RATIO` even under the worst case for the old ratio-1
    /// rule: a long stream of tiny batches. Queries must stay exact.
    #[test]
    fn incremental_levels_stay_compact_under_small_batches() {
        let mut inc = IncrementalIntervalIndex::default();
        let mut naive: Vec<(u64, u64, u64)> = Vec::new();
        let n: usize = 2000;
        for i in 0..n as u64 {
            let (start, len, value) = (i * 7 % 509, 1 + i % 37, 1000 + i);
            inc.insert_batch(vec![Item {
                start,
                end: start + len,
                value,
                aux: 0,
                id: i as u32,
            }]);
            naive.push((start, len, value));
        }
        assert_eq!(inc.len(), n);
        // ⌈log₄ 2000⌉ + 1 = 7; the old discipline reached ~log₂ 2000 = 11.
        let bound = {
            let mut levels = 0usize;
            let mut size = 1usize;
            while size < n {
                size *= MERGE_RATIO;
                levels += 1;
            }
            levels + 1
        };
        assert!(
            inc.level_count() <= bound,
            "{} levels exceeds the log₄ bound {bound}",
            inc.level_count()
        );
        for q in 0..120u64 {
            let query = iv(q * 5 % 520, 1 + q % 50);
            let mut got = Vec::new();
            inc.for_each_overlap(query, |id| got.push(id));
            got.sort_unstable();
            let want: Vec<u32> = naive
                .iter()
                .enumerate()
                .filter(|(_, &(s, l, _))| iv(s, l).overlaps(&query))
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(got, want, "query {query:?}");
            assert_eq!(inc.any_overlap(query), !want.is_empty());
            let want_min = naive
                .iter()
                .filter(|&&(s, l, _)| iv(s, l).overlaps(&query))
                .map(|&(_, _, v)| v)
                .min();
            assert_eq!(inc.min_value_overlapping(query), want_min);
        }
    }

    #[test]
    fn parallel_trace_index_build_matches_serial() {
        use crate::pool::WorkerPool;
        let mut t = Trace::new(3);
        for i in 0..400u64 {
            let agent = match i % 4 {
                0 => Agent::Cpu,
                a => Agent::Ndp(a as usize - 1),
            };
            let kind = match i % 3 {
                0 => EventKind::Write,
                1 => EventKind::Persist,
                _ => EventKind::Read,
            };
            let sharing = if i % 2 == 0 {
                Sharing::Shared
            } else {
                Sharing::NdpManaged
            };
            t.record(agent, kind, iv(i * 13 % 997, 8), sharing, None, None, i * 3);
        }
        let serial = TraceIndex::new(&t);
        for workers in [1, 2, 4] {
            let par = TraceIndex::new_parallel(&t, &WorkerPool::new(workers));
            for q in 0..60u64 {
                let query = iv(q * 17 % 1000, 16);
                let collect = |idx: &TraceIndex<'_>, kind: EventKind| {
                    let mut ids = Vec::new();
                    idx.for_each_comparable_cpu_access(kind, query, |e| {
                        ids.push((e.timestamp_ps, e.interval))
                    });
                    ids
                };
                for kind in [EventKind::Read, EventKind::Write, EventKind::Persist] {
                    assert_eq!(collect(&serial, kind), collect(&par, kind));
                }
                for a in [Agent::Ndp(0), Agent::Ndp(1), Agent::Ndp(2)] {
                    assert_eq!(
                        serial.earliest_persist_by(a, query),
                        par.earliest_persist_by(a, query)
                    );
                }
            }
        }
    }

    #[test]
    fn trace_index_offload_and_failure_lookup() {
        let mut t = Trace::new(1);
        let p = t.new_proc();
        t.record(
            Agent::Cpu,
            EventKind::Offload,
            iv(0, 0),
            Sharing::Shared,
            Some(p),
            None,
            10,
        );
        t.record(
            Agent::Ndp(0),
            EventKind::Write,
            iv(0x100, 64),
            Sharing::NdpManaged,
            Some(p),
            None,
            20,
        );
        t.record(
            Agent::Ndp(0),
            EventKind::Persist,
            iv(0x100, 64),
            Sharing::NdpManaged,
            Some(p),
            None,
            30,
        );
        t.record(
            Agent::Cpu,
            EventKind::Failure,
            iv(0, 0),
            Sharing::Shared,
            None,
            None,
            40,
        );
        let idx = TraceIndex::new(&t);
        assert_eq!(idx.offload_po(p), Some(0));
        assert_eq!(idx.failure_ts(), Some(40));
        assert_eq!(
            idx.earliest_persist_by(Agent::Ndp(0), iv(0x100, 8)),
            Some(30)
        );
        assert_eq!(idx.earliest_persist_by(Agent::Ndp(1), iv(0x100, 8)), None);
        assert!(idx.written_before_failure(iv(0x100, 1)));
        assert!(idx.persisted_before_failure(iv(0x13f, 1)));
        assert!(!idx.written_before_failure(iv(0x140, 1)));
    }
}
