//! # nearpm-ppo — Partitioned Persist Ordering
//!
//! Formal-model companion of the NearPM system: the event-trace
//! representation of a partitioned (CPU + multiple NearPM devices) execution
//! and checkers for the four PPO invariants defined in Section 4 of the
//! paper:
//!
//! 1. **Read-write ordering** — accesses to CPU/NDP *shared* addresses follow
//!    program order across the offload boundary; accesses to NDP-*managed*
//!    addresses only follow program order within their NDP procedure.
//! 2. **Persistence** — persists to shared addresses follow program order
//!    across the boundary; persists to NDP-managed addresses may be delayed.
//! 3. **Persist before synchronization** — every NDP write issued before a
//!    multi-device synchronization event has persisted when the
//!    synchronization completes.
//! 4. **Failure-recovery** — recovery reads only data that persisted before
//!    the failure.
//!
//! The crate also contains the per-command multi-device synchronization state
//! machine of Figure 12 ([`SyncStateMachine`], [`MultiDeviceSync`]), which
//! the device model drives and which decides when recovery data (logs,
//! checkpoints) may be deleted.
//!
//! ## Example
//!
//! ```
//! use nearpm_ppo::{
//!     check_all, Agent, EventKind, Interval, Sharing, Trace,
//! };
//!
//! let mut trace = Trace::new(1);
//! let proc_id = trace.new_proc();
//! let object = Interval::new(0x1000, 64);
//! let undo_log = Interval::new(0x8000, 64);
//!
//! // CPU offloads undo-log creation; the device copies the old value into
//! // the (NDP-managed) log; only then does the CPU update the object.
//! trace.record(Agent::Cpu, EventKind::Offload, Interval::new(0, 0), Sharing::Shared, Some(proc_id), None, 100);
//! trace.record(Agent::Ndp(0), EventKind::Read, object, Sharing::Shared, Some(proc_id), None, 200);
//! trace.record_write_persist(Agent::Ndp(0), undo_log, Sharing::NdpManaged, Some(proc_id), 300);
//! trace.record(Agent::Cpu, EventKind::Write, object, Sharing::Shared, None, None, 400);
//! trace.record(Agent::Cpu, EventKind::Persist, object, Sharing::Shared, None, None, 420);
//!
//! assert!(check_all(&trace).is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(test)]
mod differential;
pub mod event;
pub mod incremental;
pub mod index;
pub mod invariants;
pub mod pool;
pub mod statemachine;

pub use event::{Agent, EventKind, Interval, PpoEvent, ProcId, Sharing, SyncId, Trace};
pub use incremental::IncrementalChecker;
pub use index::{
    IncrementalIntervalIndex, IncrementalTraceIndex, IntervalIndex, PpoIndexQueries, TraceIndex,
};
pub use invariants::{
    check_all, check_all_cached, check_all_indexed, check_all_indexed_parallel, check_all_parallel,
    check_all_with_index_cache, check_cpu_ndp_ordering, check_cpu_ndp_ordering_indexed,
    check_recovery_reads, check_recovery_reads_indexed, check_sync_persistence,
    check_sync_persistence_indexed, relaxed_persist_count, PpoViolation,
};
pub use pool::WorkerPool;
pub use statemachine::{MultiDeviceSync, SyncError, SyncInput, SyncState, SyncStateMachine};
