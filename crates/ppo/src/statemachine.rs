//! Multi-device synchronization state machine (paper Figure 12).
//!
//! When a NearPM command operates on a persistent object that spans multiple
//! devices, the command is duplicated to every involved device. Each device's
//! multi-device handler tracks the command with a small state machine:
//!
//! ```text
//!                 receive command
//!   AllComplete ------------------> Executing
//!        ^                          /        \
//!        |        local complete   /          \  remote completion
//!        |                        v            v
//!        |                LocalComplete    RemoteComplete
//!        |                        \            /
//!        |     remote completion   \          /  local complete
//!        +--------------------------+--------+
//! ```
//!
//! Only when a device's state machine returns to `AllComplete` may the data
//! required for recovery (logs, checkpoints) be deleted — that is how
//! Invariant 3 ("persist before synchronization") is enforced without putting
//! the synchronization on the critical path.

/// States of the per-command synchronization state machine for a two-device
/// partitioned execution. The paper encodes them as `<Device0><Device1>`
/// completion bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyncState {
    /// `E: 00` — executing; neither local nor remote completion seen.
    Executing,
    /// `L: 10` — local execution complete, waiting for the remote device.
    LocalComplete,
    /// `R: 01` — remote completion received, local execution still running.
    RemoteComplete,
    /// `C: 11` — all devices complete; recovery data may now be released.
    AllComplete,
}

/// Inputs to the state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncInput {
    /// A command duplicated across devices was received.
    ReceiveCommand,
    /// The local NearPM execution logic finished the command.
    ReceiveLocalComplete,
    /// A remote device signalled completion of its share of the command.
    ReceiveRemoteComplete,
}

/// Errors raised on protocol violations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncError {
    /// The input is not legal in the current state (e.g. a second local
    /// completion while already complete).
    InvalidTransition {
        /// State when the input arrived.
        state: SyncState,
        /// Offending input.
        input: SyncInput,
    },
}

impl std::fmt::Display for SyncError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SyncError::InvalidTransition { state, input } => {
                write!(
                    f,
                    "invalid synchronization transition: {input:?} in {state:?}"
                )
            }
        }
    }
}

impl std::error::Error for SyncError {}

/// Per-command synchronization tracker of one device's multi-device handler.
#[derive(Debug, Clone)]
pub struct SyncStateMachine {
    state: SyncState,
    transitions: u64,
}

impl Default for SyncStateMachine {
    fn default() -> Self {
        Self::new()
    }
}

impl SyncStateMachine {
    /// Creates a state machine in the initial `AllComplete` state.
    pub fn new() -> Self {
        SyncStateMachine {
            state: SyncState::AllComplete,
            transitions: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> SyncState {
        self.state
    }

    /// True if every device has completed the current command (or no command
    /// is in flight).
    pub fn is_all_complete(&self) -> bool {
        self.state == SyncState::AllComplete
    }

    /// Number of accepted transitions (diagnostics).
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Applies an input, returning the new state.
    pub fn step(&mut self, input: SyncInput) -> Result<SyncState, SyncError> {
        use SyncInput::*;
        use SyncState::*;
        let next = match (self.state, input) {
            (AllComplete, ReceiveCommand) => Executing,
            (Executing, ReceiveLocalComplete) => LocalComplete,
            (Executing, ReceiveRemoteComplete) => RemoteComplete,
            (LocalComplete, ReceiveRemoteComplete) => AllComplete,
            (RemoteComplete, ReceiveLocalComplete) => AllComplete,
            (state, input) => return Err(SyncError::InvalidTransition { state, input }),
        };
        self.state = next;
        self.transitions += 1;
        Ok(next)
    }
}

/// Synchronization coordinator for a command duplicated across `n` devices.
///
/// Generalizes the two-device state machine of Figure 12: a command is
/// complete once every involved device has reported completion. Each device
/// keeps one [`SyncStateMachine`]; the coordinator drives them consistently
/// and answers "may recovery data be deleted yet?".
#[derive(Debug, Clone)]
pub struct MultiDeviceSync {
    machines: Vec<SyncStateMachine>,
    involved: Vec<bool>,
    completed: Vec<bool>,
}

impl MultiDeviceSync {
    /// Creates a coordinator for a system with `devices` NearPM devices.
    pub fn new(devices: usize) -> Self {
        MultiDeviceSync {
            machines: (0..devices).map(|_| SyncStateMachine::new()).collect(),
            involved: vec![false; devices],
            completed: vec![false; devices],
        }
    }

    /// Number of devices.
    pub fn devices(&self) -> usize {
        self.machines.len()
    }

    /// Starts a command on the given set of devices.
    pub fn start_command(&mut self, devices: &[usize]) -> Result<(), SyncError> {
        for &d in devices {
            self.involved[d] = true;
            self.completed[d] = false;
            self.machines[d].step(SyncInput::ReceiveCommand)?;
        }
        Ok(())
    }

    /// Reports local completion of device `device`, which broadcasts a remote
    /// completion to every other involved device (as the multi-device handler
    /// hardware does).
    pub fn local_complete(&mut self, device: usize) -> Result<(), SyncError> {
        assert!(
            self.involved[device],
            "device {device} not part of the command"
        );
        self.completed[device] = true;
        self.machines[device].step(SyncInput::ReceiveLocalComplete)?;
        for d in 0..self.machines.len() {
            if d != device && self.involved[d] {
                self.machines[d].step(SyncInput::ReceiveRemoteComplete)?;
            }
        }
        Ok(())
    }

    /// True if device `device` has reached `AllComplete` for the current
    /// command (considering only involved devices).
    pub fn device_all_complete(&self, device: usize) -> bool {
        if !self.involved[device] {
            return true;
        }
        // A device is "all complete" when its own machine returned to
        // AllComplete, which for >2 devices we approximate by checking that
        // every involved device has reported completion.
        self.involved
            .iter()
            .zip(&self.completed)
            .all(|(inv, comp)| !inv || *comp)
    }

    /// True if the command is complete on all involved devices.
    pub fn all_complete(&self) -> bool {
        self.involved
            .iter()
            .zip(&self.completed)
            .all(|(inv, comp)| !inv || *comp)
    }

    /// Resets the coordinator for the next command.
    pub fn reset(&mut self) {
        for d in 0..self.machines.len() {
            self.machines[d] = SyncStateMachine::new();
            self.involved[d] = false;
            self.completed[d] = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_device_happy_path_local_first() {
        let mut m = SyncStateMachine::new();
        assert_eq!(m.state(), SyncState::AllComplete);
        assert_eq!(
            m.step(SyncInput::ReceiveCommand).unwrap(),
            SyncState::Executing
        );
        assert_eq!(
            m.step(SyncInput::ReceiveLocalComplete).unwrap(),
            SyncState::LocalComplete
        );
        assert_eq!(
            m.step(SyncInput::ReceiveRemoteComplete).unwrap(),
            SyncState::AllComplete
        );
        assert!(m.is_all_complete());
        assert_eq!(m.transitions(), 3);
    }

    #[test]
    fn two_device_happy_path_remote_first() {
        let mut m = SyncStateMachine::new();
        m.step(SyncInput::ReceiveCommand).unwrap();
        assert_eq!(
            m.step(SyncInput::ReceiveRemoteComplete).unwrap(),
            SyncState::RemoteComplete
        );
        assert_eq!(
            m.step(SyncInput::ReceiveLocalComplete).unwrap(),
            SyncState::AllComplete
        );
    }

    #[test]
    fn invalid_transitions_rejected() {
        let mut m = SyncStateMachine::new();
        // Local completion without a command.
        assert!(m.step(SyncInput::ReceiveLocalComplete).is_err());
        m.step(SyncInput::ReceiveCommand).unwrap();
        // Duplicate command while executing.
        assert!(m.step(SyncInput::ReceiveCommand).is_err());
        m.step(SyncInput::ReceiveLocalComplete).unwrap();
        // Duplicate local completion.
        assert!(m.step(SyncInput::ReceiveLocalComplete).is_err());
    }

    #[test]
    fn coordinator_two_devices() {
        let mut c = MultiDeviceSync::new(2);
        c.start_command(&[0, 1]).unwrap();
        assert!(!c.all_complete());
        c.local_complete(0).unwrap();
        assert!(!c.all_complete());
        assert!(!c.device_all_complete(1));
        c.local_complete(1).unwrap();
        assert!(c.all_complete());
        assert!(c.device_all_complete(0));
        assert!(c.device_all_complete(1));
    }

    #[test]
    fn coordinator_single_device_command() {
        let mut c = MultiDeviceSync::new(2);
        c.start_command(&[1]).unwrap();
        // Device 0 is uninvolved, so it is trivially complete.
        assert!(c.device_all_complete(0));
        assert!(!c.all_complete());
        c.local_complete(1).unwrap();
        assert!(c.all_complete());
    }

    #[test]
    fn coordinator_reset_allows_next_command() {
        let mut c = MultiDeviceSync::new(2);
        c.start_command(&[0, 1]).unwrap();
        c.local_complete(0).unwrap();
        c.local_complete(1).unwrap();
        c.reset();
        assert!(c.all_complete());
        c.start_command(&[0, 1]).unwrap();
        assert!(!c.all_complete());
    }

    #[test]
    #[should_panic(expected = "not part of the command")]
    fn completion_from_uninvolved_device_panics() {
        let mut c = MultiDeviceSync::new(2);
        c.start_command(&[0]).unwrap();
        c.local_complete(1).unwrap();
    }
}
