//! CPU write-back cache model.
//!
//! Crash consistency on PM hinges on the distinction between a *store*
//! (visible to later loads, but volatile) and a *persist* (written back to
//! the PM media and therefore durable). [`CpuCache`] models exactly that
//! distinction and nothing more: stores land in a volatile dirty-line map;
//! `clwb`/`flush` writes lines back to the [`PmSpace`]; a crash discards
//! whatever was still dirty.
//!
//! The model is deliberately not a performance model (timing lives in
//! `nearpm-sim`); it is the functional source of truth for what survives a
//! failure.

use std::collections::HashMap;

use crate::addr::PhysAddr;
use crate::space::PmSpace;

/// Cache-line size in bytes.
pub const LINE: u64 = 64;

/// Statistics of CPU cache activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Stores performed (each may dirty several lines).
    pub stores: u64,
    /// Loads performed.
    pub loads: u64,
    /// Lines written back by explicit flushes.
    pub lines_flushed: u64,
    /// Dirty lines discarded by a simulated crash.
    pub lines_lost: u64,
}

/// A write-back, allocate-on-write CPU cache keyed by physical line address.
#[derive(Debug, Clone, Default)]
pub struct CpuCache {
    dirty: HashMap<u64, [u8; LINE as usize]>,
    stats: CacheStats,
}

impl CpuCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        CpuCache::default()
    }

    /// Number of dirty (not yet persisted) lines.
    pub fn dirty_lines(&self) -> usize {
        self.dirty.len()
    }

    /// Cache activity statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// True if the line containing `addr` is dirty.
    pub fn is_dirty(&self, addr: PhysAddr) -> bool {
        self.dirty.contains_key(&line_of(addr.raw()))
    }

    /// CPU store: writes `data` at `addr`, dirtying the covered lines.
    /// The data is *not* persistent until the lines are flushed.
    pub fn store(&mut self, space: &mut PmSpace, addr: PhysAddr, data: &[u8]) {
        self.stats.stores += 1;
        let mut cursor = 0usize;
        let mut a = addr.raw();
        let end = addr.raw() + data.len() as u64;
        while a < end {
            let line = line_of(a);
            let offset_in_line = (a - line) as usize;
            let take = ((LINE as usize - offset_in_line) as u64).min(end - a) as usize;
            let entry = self.dirty.entry(line).or_insert_with(|| {
                // Allocate-on-write: fill the line from the persistent image
                // so that untouched bytes of the line stay correct.
                let mut buf = [0u8; LINE as usize];
                space.read(PhysAddr(line), &mut buf);
                buf
            });
            entry[offset_in_line..offset_in_line + take]
                .copy_from_slice(&data[cursor..cursor + take]);
            cursor += take;
            a += take as u64;
        }
    }

    /// CPU load: reads `buf.len()` bytes at `addr`, observing dirty lines
    /// first and falling back to the persistent image.
    pub fn load(&mut self, space: &mut PmSpace, addr: PhysAddr, buf: &mut [u8]) {
        self.stats.loads += 1;
        let mut cursor = 0usize;
        let mut a = addr.raw();
        let end = addr.raw() + buf.len() as u64;
        while a < end {
            let line = line_of(a);
            let offset_in_line = (a - line) as usize;
            let take = ((LINE as usize - offset_in_line) as u64).min(end - a) as usize;
            if let Some(entry) = self.dirty.get(&line) {
                buf[cursor..cursor + take]
                    .copy_from_slice(&entry[offset_in_line..offset_in_line + take]);
            } else {
                space.read(PhysAddr(a), &mut buf[cursor..cursor + take]);
            }
            cursor += take;
            a += take as u64;
        }
    }

    /// Convenience load into a fresh vector.
    pub fn load_vec(&mut self, space: &mut PmSpace, addr: PhysAddr, len: usize) -> Vec<u8> {
        let mut v = vec![0; len];
        self.load(space, addr, &mut v);
        v
    }

    /// Writes back (persists) every dirty line intersecting `addr..addr+len`.
    /// This models `clwb`/`clflushopt` over the range followed by the fence
    /// that the caller issues at the language level.
    pub fn flush(&mut self, space: &mut PmSpace, addr: PhysAddr, len: u64) {
        if len == 0 {
            return;
        }
        let first = line_of(addr.raw());
        let last = line_of(addr.raw() + len - 1);
        let mut line = first;
        while line <= last {
            if let Some(data) = self.dirty.remove(&line) {
                space.write(PhysAddr(line), &data);
                self.stats.lines_flushed += 1;
            }
            line += LINE;
        }
    }

    /// Writes back every dirty line (e.g. an eADR-style full drain, used by
    /// tests that want a fully persisted image).
    pub fn flush_all(&mut self, space: &mut PmSpace) {
        let mut lines: Vec<u64> = self.dirty.keys().copied().collect();
        lines.sort_unstable();
        for line in lines {
            if let Some(data) = self.dirty.remove(&line) {
                space.write(PhysAddr(line), &data);
                self.stats.lines_flushed += 1;
            }
        }
    }

    /// Simulates a power failure: every dirty line is lost. The persistent
    /// image in `PmSpace` is untouched.
    pub fn crash(&mut self) {
        self.stats.lines_lost += self.dirty.len() as u64;
        self.dirty.clear();
    }
}

fn line_of(addr: u64) -> u64 {
    addr & !(LINE - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (PmSpace, CpuCache) {
        (PmSpace::single(1 << 16), CpuCache::new())
    }

    #[test]
    fn store_is_visible_to_load_but_not_persistent() {
        let (mut space, mut cache) = setup();
        cache.store(&mut space, PhysAddr(0x100), &[1, 2, 3, 4]);
        assert_eq!(
            cache.load_vec(&mut space, PhysAddr(0x100), 4),
            vec![1, 2, 3, 4]
        );
        // Persistent image still zero.
        assert_eq!(space.read_vec(PhysAddr(0x100), 4), vec![0, 0, 0, 0]);
        assert!(cache.is_dirty(PhysAddr(0x100)));
    }

    #[test]
    fn flush_persists_dirty_lines() {
        let (mut space, mut cache) = setup();
        cache.store(&mut space, PhysAddr(0x100), &[1, 2, 3, 4]);
        cache.flush(&mut space, PhysAddr(0x100), 4);
        assert_eq!(space.read_vec(PhysAddr(0x100), 4), vec![1, 2, 3, 4]);
        assert!(!cache.is_dirty(PhysAddr(0x100)));
        assert_eq!(cache.stats().lines_flushed, 1);
    }

    #[test]
    fn crash_discards_unflushed_stores() {
        let (mut space, mut cache) = setup();
        cache.store(&mut space, PhysAddr(0x40), &[7; 8]);
        cache.store(&mut space, PhysAddr(0x200), &[8; 8]);
        cache.flush(&mut space, PhysAddr(0x40), 8);
        cache.crash();
        // Flushed data survives, unflushed is gone.
        assert_eq!(space.read_vec(PhysAddr(0x40), 8), vec![7; 8]);
        assert_eq!(space.read_vec(PhysAddr(0x200), 8), vec![0; 8]);
        assert_eq!(cache.dirty_lines(), 0);
        assert_eq!(cache.stats().lines_lost, 1);
    }

    #[test]
    fn partial_line_store_preserves_other_bytes() {
        let (mut space, mut cache) = setup();
        // Pre-populate persistent bytes in the same line.
        space.write(PhysAddr(0x100), &[9; 64]);
        cache.store(&mut space, PhysAddr(0x110), &[1, 1]);
        cache.flush(&mut space, PhysAddr(0x110), 2);
        let line = space.read_vec(PhysAddr(0x100), 64);
        assert_eq!(line[0x10], 1);
        assert_eq!(line[0x11], 1);
        assert_eq!(line[0x0f], 9);
        assert_eq!(line[0x12], 9);
    }

    #[test]
    fn store_spanning_lines() {
        let (mut space, mut cache) = setup();
        let data: Vec<u8> = (0..200u8).collect();
        cache.store(&mut space, PhysAddr(0x3f0), &data);
        assert_eq!(cache.load_vec(&mut space, PhysAddr(0x3f0), 200), data);
        assert!(cache.dirty_lines() >= 4);
        cache.flush(&mut space, PhysAddr(0x3f0), 200);
        assert_eq!(space.read_vec(PhysAddr(0x3f0), 200), data);
        assert_eq!(cache.dirty_lines(), 0);
    }

    #[test]
    fn flush_range_only_affects_covered_lines() {
        let (mut space, mut cache) = setup();
        cache.store(&mut space, PhysAddr(0x000), &[1; 8]);
        cache.store(&mut space, PhysAddr(0x400), &[2; 8]);
        cache.flush(&mut space, PhysAddr(0x000), 8);
        assert_eq!(space.read_vec(PhysAddr(0x000), 8), vec![1; 8]);
        assert_eq!(space.read_vec(PhysAddr(0x400), 8), vec![0; 8]);
        assert!(cache.is_dirty(PhysAddr(0x400)));
    }

    #[test]
    fn flush_all_drains_everything() {
        let (mut space, mut cache) = setup();
        for i in 0..10u64 {
            cache.store(&mut space, PhysAddr(i * 128), &[i as u8; 16]);
        }
        cache.flush_all(&mut space);
        assert_eq!(cache.dirty_lines(), 0);
        for i in 0..10u64 {
            assert_eq!(space.read_vec(PhysAddr(i * 128), 16), vec![i as u8; 16]);
        }
    }

    #[test]
    fn load_mixes_dirty_and_clean_lines() {
        let (mut space, mut cache) = setup();
        space.write(PhysAddr(0x140), &[5; 64]);
        cache.store(&mut space, PhysAddr(0x100), &[6; 64]);
        let v = cache.load_vec(&mut space, PhysAddr(0x100), 128);
        assert_eq!(&v[..64], &[6; 64]);
        assert_eq!(&v[64..], &[5; 64]);
    }

    #[test]
    fn zero_length_flush_is_noop() {
        let (mut space, mut cache) = setup();
        cache.store(&mut space, PhysAddr(0x100), &[1]);
        cache.flush(&mut space, PhysAddr(0x100), 0);
        assert!(cache.is_dirty(PhysAddr(0x100)));
    }
}
