//! Address interleaving across multiple PM devices.
//!
//! When more than one NearPM device is present, consecutive physical-address
//! blocks alternate between devices (like interleaved DIMMs). A persistent
//! object can therefore span devices, which is precisely the situation that
//! motivates the multi-device half of PPO: two devices can be at different
//! stages of the same logical crash-consistency operation when a failure
//! hits.
//!
//! The prototype interleaves at a contiguous-block granularity ("NearPM can
//! only support interleaving which will result in a contiguous block in a
//! given device; scatter-gather operations are not supported"), so the
//! default granularity is 4 kB.

use crate::addr::PhysAddr;

/// Default interleaving granularity (bytes).
pub const DEFAULT_INTERLEAVE: u64 = 4096;

/// Static interleaving configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterleaveConfig {
    /// Number of PM devices.
    pub devices: usize,
    /// Interleave granularity in bytes (power of two).
    pub granularity: u64,
}

/// A physical address range mapped onto one device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeviceSpan {
    /// Device index.
    pub device: usize,
    /// Byte offset within that device's local medium.
    pub local_offset: u64,
    /// Length in bytes of this contiguous span.
    pub len: u64,
    /// Physical address where the span starts (global address space).
    pub phys: PhysAddr,
}

/// A small vector that keeps up to `N` elements inline and only allocates
/// when a range genuinely crosses more devices.
///
/// [`InterleaveConfig::split`] and [`InterleaveConfig::devices_of`] sit on
/// the simulator's hottest paths (every cache-line write-back and DMA copy
/// splits a range); the overwhelmingly common case is one or two spans, so
/// returning a `Vec` made every media access pay a heap allocation. Derefs
/// to a slice, so callers index, iterate, and compare as before.
#[derive(Debug, Clone)]
pub struct InlineVec<T, const N: usize> {
    inline: [T; N],
    len: usize,
    spill: Vec<T>,
}

/// Inline-capacity span list returned by [`InterleaveConfig::split`].
pub type SpanVec = InlineVec<DeviceSpan, 2>;
/// Inline-capacity device list returned by [`InterleaveConfig::devices_of`].
pub type DeviceList = InlineVec<usize, 2>;

impl<T: Copy + Default, const N: usize> InlineVec<T, N> {
    /// Creates an empty list.
    pub fn new() -> Self {
        InlineVec {
            inline: [T::default(); N],
            len: 0,
            spill: Vec::new(),
        }
    }

    /// Appends an element, spilling to the heap past `N` elements.
    pub fn push(&mut self, value: T) {
        if !self.spill.is_empty() {
            self.spill.push(value);
        } else if self.len < N {
            self.inline[self.len] = value;
            self.len += 1;
        } else {
            self.spill.reserve(N + 1);
            self.spill.extend_from_slice(&self.inline[..self.len]);
            self.spill.push(value);
            self.len = 0;
        }
    }

    /// View of the elements as a slice.
    pub fn as_slice(&self) -> &[T] {
        if self.spill.is_empty() {
            &self.inline[..self.len]
        } else {
            &self.spill
        }
    }

    fn as_mut_slice(&mut self) -> &mut [T] {
        if self.spill.is_empty() {
            &mut self.inline[..self.len]
        } else {
            &mut self.spill
        }
    }

    /// Copies the elements into a plain `Vec`.
    pub fn to_vec(&self) -> Vec<T> {
        self.as_slice().to_vec()
    }
}

impl<T: Copy + Default, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        InlineVec::new()
    }
}

impl<T: Copy + Default, const N: usize> std::ops::Deref for InlineVec<T, N> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy + Default, const N: usize> std::ops::DerefMut for InlineVec<T, N> {
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq for InlineVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq<Vec<T>> for InlineVec<T, N> {
    fn eq(&self, other: &Vec<T>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Default + PartialEq, const N: usize, const M: usize> PartialEq<[T; M]>
    for InlineVec<T, N>
{
    fn eq(&self, other: &[T; M]) -> bool {
        self.as_slice() == other.as_slice()
    }
}

/// Consuming iterator over an [`InlineVec`].
pub struct InlineVecIter<T, const N: usize> {
    vec: InlineVec<T, N>,
    pos: usize,
}

impl<T: Copy + Default, const N: usize> Iterator for InlineVecIter<T, N> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        let slice = self.vec.as_slice();
        if self.pos < slice.len() {
            let v = slice[self.pos];
            self.pos += 1;
            Some(v)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.vec.as_slice().len() - self.pos;
        (rem, Some(rem))
    }
}

impl<T: Copy + Default, const N: usize> IntoIterator for InlineVec<T, N> {
    type Item = T;
    type IntoIter = InlineVecIter<T, N>;
    fn into_iter(self) -> Self::IntoIter {
        InlineVecIter { vec: self, pos: 0 }
    }
}

impl<'a, T: Copy + Default, const N: usize> IntoIterator for &'a InlineVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl InterleaveConfig {
    /// Creates a configuration; `granularity` must be a power of two and
    /// `devices` at least 1.
    pub fn new(devices: usize, granularity: u64) -> Self {
        assert!(devices >= 1, "at least one device required");
        assert!(
            granularity.is_power_of_two(),
            "interleave granularity must be a power of two"
        );
        InterleaveConfig {
            devices,
            granularity,
        }
    }

    /// Single-device configuration (no interleaving).
    pub fn single() -> Self {
        InterleaveConfig::new(1, DEFAULT_INTERLEAVE)
    }

    /// The device that owns physical address `addr`.
    pub fn device_of(&self, addr: PhysAddr) -> usize {
        ((addr.raw() / self.granularity) % self.devices as u64) as usize
    }

    /// The local byte offset of `addr` within its owning device.
    pub fn local_offset(&self, addr: PhysAddr) -> u64 {
        let block = addr.raw() / self.granularity;
        let within = addr.raw() % self.granularity;
        (block / self.devices as u64) * self.granularity + within
    }

    /// Capacity each device must provide so that a global physical space of
    /// `total` bytes is addressable.
    pub fn per_device_capacity(&self, total: u64) -> u64 {
        total.div_ceil(self.devices as u64 * self.granularity) * self.granularity
    }

    /// Splits a physical range into per-device contiguous spans, in address
    /// order. Adjacent blocks that land contiguously on the same device are
    /// merged as they are produced (always true for a single device), so the
    /// common one- or two-span result stays inline with no heap allocation.
    pub fn split(&self, start: PhysAddr, len: u64) -> SpanVec {
        let mut spans = SpanVec::new();
        let mut addr = start.raw();
        let end = start.raw() + len;
        while addr < end {
            let block_end = (addr / self.granularity + 1) * self.granularity;
            let span_end = block_end.min(end);
            let phys = PhysAddr(addr);
            let s = DeviceSpan {
                device: self.device_of(phys),
                local_offset: self.local_offset(phys),
                len: span_end - addr,
                phys,
            };
            match spans.last_mut() {
                Some(prev)
                    if prev.device == s.device
                        && prev.local_offset + prev.len == s.local_offset =>
                {
                    prev.len += s.len;
                }
                _ => spans.push(s),
            }
            addr = span_end;
        }
        spans
    }

    /// The set of devices touched by a physical range (sorted, deduplicated).
    pub fn devices_of(&self, start: PhysAddr, len: u64) -> DeviceList {
        let mut devs = DeviceList::new();
        for s in &self.split(start, len) {
            if !devs.contains(&s.device) {
                devs.push(s.device);
            }
        }
        devs.sort_unstable();
        devs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_device_identity_mapping() {
        let c = InterleaveConfig::single();
        assert_eq!(c.device_of(PhysAddr(0)), 0);
        assert_eq!(c.device_of(PhysAddr(123_456)), 0);
        assert_eq!(c.local_offset(PhysAddr(123_456)), 123_456);
        let spans = c.split(PhysAddr(100), 10_000);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].local_offset, 100);
        assert_eq!(spans[0].len, 10_000);
    }

    #[test]
    fn two_device_alternation() {
        let c = InterleaveConfig::new(2, 4096);
        assert_eq!(c.device_of(PhysAddr(0)), 0);
        assert_eq!(c.device_of(PhysAddr(4096)), 1);
        assert_eq!(c.device_of(PhysAddr(8192)), 0);
        assert_eq!(c.local_offset(PhysAddr(0)), 0);
        assert_eq!(c.local_offset(PhysAddr(4096)), 0);
        assert_eq!(c.local_offset(PhysAddr(8192)), 4096);
        assert_eq!(c.local_offset(PhysAddr(8192 + 17)), 4096 + 17);
    }

    #[test]
    fn split_crossing_devices() {
        let c = InterleaveConfig::new(2, 4096);
        // 8 kB starting 1 kB before a boundary: spans dev0 (1 kB), dev1 (4 kB), dev0 (3 kB).
        let spans = c.split(PhysAddr(3072), 8192);
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].device, 0);
        assert_eq!(spans[0].len, 1024);
        assert_eq!(spans[1].device, 1);
        assert_eq!(spans[1].len, 4096);
        assert_eq!(spans[2].device, 0);
        assert_eq!(spans[2].len, 3072);
        // Total length preserved.
        let total: u64 = spans.iter().map(|s| s.len).sum();
        assert_eq!(total, 8192);
        assert_eq!(c.devices_of(PhysAddr(3072), 8192), vec![0, 1]);
        assert_eq!(c.devices_of(PhysAddr(0), 64), vec![0]);
    }

    #[test]
    fn contiguous_same_device_spans_merge() {
        let c = InterleaveConfig::new(1, 4096);
        let spans = c.split(PhysAddr(0), 4096 * 3);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].len, 4096 * 3);
    }

    #[test]
    fn per_device_capacity_covers_total() {
        let c = InterleaveConfig::new(2, 4096);
        assert_eq!(c.per_device_capacity(8192), 4096);
        assert_eq!(c.per_device_capacity(8193), 8192);
        let c1 = InterleaveConfig::single();
        assert_eq!(c1.per_device_capacity(10_000), 12_288);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_granularity_rejected() {
        InterleaveConfig::new(2, 1000);
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn zero_devices_rejected() {
        InterleaveConfig::new(0, 4096);
    }

    #[test]
    fn inline_vec_spills_past_capacity() {
        let mut v: InlineVec<usize, 2> = InlineVec::new();
        v.push(1);
        v.push(2);
        assert_eq!(v.as_slice(), &[1, 2]);
        v.push(3); // spills
        v.push(4);
        assert_eq!(v.as_slice(), &[1, 2, 3, 4]);
        assert_eq!(v.to_vec(), vec![1, 2, 3, 4]);
        assert_eq!(v.clone().into_iter().sum::<usize>(), 10);
    }

    #[test]
    fn split_spills_for_many_devices() {
        // 4 devices, a range touching all of them twice: 8 unmerged spans.
        let c = InterleaveConfig::new(4, 4096);
        let spans = c.split(PhysAddr(0), 4096 * 8);
        assert_eq!(spans.len(), 8);
        let total: u64 = spans.iter().map(|s| s.len).sum();
        assert_eq!(total, 4096 * 8);
        assert_eq!(c.devices_of(PhysAddr(0), 4096 * 8), vec![0, 1, 2, 3]);
    }

    #[test]
    fn local_offsets_never_exceed_per_device_capacity() {
        let c = InterleaveConfig::new(2, 4096);
        let total = 1 << 20;
        let cap = c.per_device_capacity(total);
        for addr in (0..total).step_by(1024) {
            let a = PhysAddr(addr);
            assert!(c.local_offset(a) < cap, "offset overflow at {addr}");
        }
    }
}
