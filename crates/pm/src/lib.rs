//! # nearpm-pm — emulated persistent memory
//!
//! Functional emulation of the persistent-memory substrate that NearPM runs
//! on. The paper's prototype emulates PM with FPGA on-board DRAM; this crate
//! emulates it with plain memory while preserving the property that actually
//! matters for crash consistency: the difference between *volatile* state
//! (CPU cache lines that have not been written back) and the *persistence
//! domain* (the PM media), and the fact that a persistent object may be
//! interleaved across multiple PM devices.
//!
//! Components:
//!
//! * [`PmMedia`] — the persistent byte store of one device, with traffic
//!   statistics.
//! * [`PmSpace`] — the machine-wide physical PM space: all device media
//!   behind an [`InterleaveConfig`].
//! * [`CpuCache`] — the volatile write-back cache between CPU stores and the
//!   persistence domain; a simulated crash discards its dirty lines.
//! * [`PoolRegistry`] / [`Pool`] — PMDK-style pools with per-pool virtual
//!   bases, physical extents, translation offsets, and a free-list allocator.
//! * Address types: [`VirtAddr`], [`PhysAddr`], [`AddrRange`], [`PoolId`].
//!
//! ## Example
//!
//! ```
//! use nearpm_pm::{CpuCache, InterleaveConfig, PmSpace, PoolRegistry};
//!
//! // Two interleaved PM devices of 1 MiB total, as in the prototype.
//! let mut space = PmSpace::new(1 << 20, InterleaveConfig::new(2, 4096));
//! let mut pools = PoolRegistry::new(space.capacity());
//! let mut cache = CpuCache::new();
//!
//! let pool = pools.create_pool("store", 64 * 1024).unwrap();
//! let obj = pools.pool_mut(pool).unwrap().alloc(64, 64).unwrap();
//! let phys = pools.translate(obj).unwrap();
//!
//! // A store is visible but not durable until flushed.
//! cache.store(&mut space, phys, b"hello persistent world");
//! cache.flush(&mut space, phys, 22);
//! assert_eq!(&space.read_vec(phys, 5), b"hello");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod alloc;
pub mod cache;
pub mod interleave;
pub mod media;
pub mod pool;
pub mod space;

pub use addr::{AddrRange, PhysAddr, PoolId, VirtAddr};
pub use alloc::{AllocError, FreeListAllocator};
pub use cache::{CacheStats, CpuCache, LINE};
pub use interleave::{
    DeviceList, DeviceSpan, InlineVec, InterleaveConfig, SpanVec, DEFAULT_INTERLEAVE,
};
pub use media::{
    FileMedia, HeapMedia, MediaBackend, MediaConfig, MediaError, MediaKind, PmMedia, SparseMedia,
    SPARSE_PAGE,
};
pub use pool::{Pool, PoolError, PoolRegistry, POOL_VIRT_BASE, POOL_VIRT_SPACING};
pub use space::{PmSpace, PmTraffic, WriteLogOverflow};
