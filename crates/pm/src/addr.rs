//! Address types used across the emulated PM subsystem.
//!
//! The emulation distinguishes **virtual addresses** (what the application
//! and the NearPM command operands carry) from **physical addresses** (byte
//! offsets into the emulated PM space, which interleaving then maps onto a
//! specific device). Pools tie the two together: a pool has a virtual base
//! chosen at creation time and a physical base assigned by the allocator, and
//! every address inside the pool translates by the same constant offset —
//! exactly the property NearPM's address-mapping table relies on (Section 5.4
//! of the paper).

use std::fmt;
use std::ops::Range;

/// Identifier of a PM pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PoolId(pub u32);

impl fmt::Display for PoolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pool{}", self.0)
    }
}

/// A virtual address in the application's address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct VirtAddr(pub u64);

/// A physical address: a byte offset into the emulated PM physical space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct PhysAddr(pub u64);

impl VirtAddr {
    /// Adds a byte offset.
    pub fn offset(self, bytes: u64) -> VirtAddr {
        VirtAddr(self.0 + bytes)
    }

    /// Byte distance from `base` (panics if `self < base`).
    pub fn offset_from(self, base: VirtAddr) -> u64 {
        self.0.checked_sub(base.0).expect("address below pool base")
    }

    /// Raw value.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Aligns the address down to `align` (power of two).
    pub fn align_down(self, align: u64) -> VirtAddr {
        debug_assert!(align.is_power_of_two());
        VirtAddr(self.0 & !(align - 1))
    }

    /// Aligns the address up to `align` (power of two).
    pub fn align_up(self, align: u64) -> VirtAddr {
        debug_assert!(align.is_power_of_two());
        VirtAddr((self.0 + align - 1) & !(align - 1))
    }
}

impl PhysAddr {
    /// Adds a byte offset.
    pub fn offset(self, bytes: u64) -> PhysAddr {
        PhysAddr(self.0 + bytes)
    }

    /// Raw value.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Aligns the address down to `align` (power of two).
    pub fn align_down(self, align: u64) -> PhysAddr {
        debug_assert!(align.is_power_of_two());
        PhysAddr(self.0 & !(align - 1))
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v:{:#x}", self.0)
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p:{:#x}", self.0)
    }
}

/// A half-open byte range of virtual addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AddrRange {
    /// Inclusive start.
    pub start: VirtAddr,
    /// Length in bytes.
    pub len: u64,
}

impl AddrRange {
    /// Creates a range from a start address and a length.
    pub fn new(start: VirtAddr, len: u64) -> Self {
        AddrRange { start, len }
    }

    /// Exclusive end address.
    pub fn end(&self) -> VirtAddr {
        self.start.offset(self.len)
    }

    /// True if the two ranges share at least one byte.
    pub fn overlaps(&self, other: &AddrRange) -> bool {
        if self.len == 0 || other.len == 0 {
            return false;
        }
        self.start < other.end() && other.start < self.end()
    }

    /// True if `addr` falls inside the range.
    pub fn contains(&self, addr: VirtAddr) -> bool {
        addr >= self.start && addr < self.end()
    }

    /// True if `other` is entirely inside this range.
    pub fn contains_range(&self, other: &AddrRange) -> bool {
        other.len == 0 || (other.start >= self.start && other.end() <= self.end())
    }

    /// Converts to a `Range<u64>` over raw virtual addresses.
    pub fn raw(&self) -> Range<u64> {
        self.start.0..self.start.0 + self.len
    }
}

impl fmt::Display for AddrRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:#x}..{:#x})", self.start.0, self.end().0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virt_addr_arithmetic() {
        let a = VirtAddr(0x1000);
        assert_eq!(a.offset(0x10).raw(), 0x1010);
        assert_eq!(a.offset(0x10).offset_from(a), 0x10);
        assert_eq!(VirtAddr(0x1037).align_down(64).raw(), 0x1000);
        assert_eq!(VirtAddr(0x1037).align_up(64).raw(), 0x1040);
        assert_eq!(VirtAddr(0x1040).align_up(64).raw(), 0x1040);
    }

    #[test]
    #[should_panic(expected = "address below pool base")]
    fn offset_from_below_base_panics() {
        VirtAddr(0x10).offset_from(VirtAddr(0x20));
    }

    #[test]
    fn phys_addr_arithmetic() {
        let p = PhysAddr(0x2000);
        assert_eq!(p.offset(5).raw(), 0x2005);
        assert_eq!(PhysAddr(0x2fff).align_down(0x1000).raw(), 0x2000);
    }

    #[test]
    fn range_overlap() {
        let a = AddrRange::new(VirtAddr(0x100), 0x100);
        let b = AddrRange::new(VirtAddr(0x180), 0x100);
        let c = AddrRange::new(VirtAddr(0x200), 0x100);
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
        assert!(b.overlaps(&c));
        let empty = AddrRange::new(VirtAddr(0x150), 0);
        assert!(!a.overlaps(&empty));
    }

    #[test]
    fn range_contains() {
        let a = AddrRange::new(VirtAddr(0x100), 0x100);
        assert!(a.contains(VirtAddr(0x100)));
        assert!(a.contains(VirtAddr(0x1ff)));
        assert!(!a.contains(VirtAddr(0x200)));
        assert!(a.contains_range(&AddrRange::new(VirtAddr(0x140), 0x40)));
        assert!(!a.contains_range(&AddrRange::new(VirtAddr(0x1c0), 0x80)));
        assert!(a.contains_range(&AddrRange::new(VirtAddr(0x300), 0)));
    }

    #[test]
    fn display_formats() {
        assert_eq!(PoolId(3).to_string(), "pool3");
        assert_eq!(VirtAddr(0x10).to_string(), "v:0x10");
        assert_eq!(PhysAddr(0x10).to_string(), "p:0x10");
        assert_eq!(
            AddrRange::new(VirtAddr(0x10), 0x10).to_string(),
            "[0x10..0x20)"
        );
    }
}
