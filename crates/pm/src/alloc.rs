//! A simple first-fit free-list allocator used inside PM pools.
//!
//! The allocator manages byte offsets inside one pool. It is intentionally
//! straightforward: a sorted free list with coalescing on free, first-fit
//! allocation with configurable alignment. PMDK's real allocator is far more
//! elaborate, but the workloads only need correct, non-overlapping
//! allocations with deterministic behaviour.

/// Allocation failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// Not enough contiguous free space for the request.
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
    },
    /// A free was attempted on an offset that is not currently allocated.
    InvalidFree {
        /// Offset passed to `free`.
        offset: u64,
    },
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::OutOfMemory { requested } => {
                write!(f, "out of pool memory (requested {requested} bytes)")
            }
            AllocError::InvalidFree { offset } => {
                write!(f, "invalid free at offset {offset:#x}")
            }
        }
    }
}

impl std::error::Error for AllocError {}

/// First-fit free-list allocator over a contiguous byte region.
#[derive(Debug, Clone)]
pub struct FreeListAllocator {
    capacity: u64,
    /// Sorted, non-adjacent free extents: (offset, len).
    free: Vec<(u64, u64)>,
    /// Live allocations: (offset, len), kept sorted by offset.
    allocated: Vec<(u64, u64)>,
}

impl FreeListAllocator {
    /// Creates an allocator managing offsets `0..capacity`.
    pub fn new(capacity: u64) -> Self {
        FreeListAllocator {
            capacity,
            free: if capacity > 0 {
                vec![(0, capacity)]
            } else {
                vec![]
            },
            allocated: Vec::new(),
        }
    }

    /// Total managed capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn allocated_bytes(&self) -> u64 {
        self.allocated.iter().map(|(_, l)| l).sum()
    }

    /// Bytes currently free.
    pub fn free_bytes(&self) -> u64 {
        self.free.iter().map(|(_, l)| l).sum()
    }

    /// Number of live allocations.
    pub fn live_allocations(&self) -> usize {
        self.allocated.len()
    }

    /// Allocates `len` bytes aligned to `align` (power of two, at least 1).
    /// Returns the offset of the allocation.
    pub fn alloc(&mut self, len: u64, align: u64) -> Result<u64, AllocError> {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let len = len.max(1);
        for i in 0..self.free.len() {
            let (start, flen) = self.free[i];
            let aligned = (start + align - 1) & !(align - 1);
            let pad = aligned - start;
            if flen >= pad + len {
                // Carve [aligned, aligned+len) out of this extent.
                self.free.remove(i);
                if pad > 0 {
                    self.free.insert(i, (start, pad));
                }
                let tail_start = aligned + len;
                let tail_len = flen - pad - len;
                if tail_len > 0 {
                    let pos = self
                        .free
                        .iter()
                        .position(|(s, _)| *s > tail_start)
                        .unwrap_or(self.free.len());
                    self.free.insert(pos, (tail_start, tail_len));
                }
                let pos = self
                    .allocated
                    .iter()
                    .position(|(s, _)| *s > aligned)
                    .unwrap_or(self.allocated.len());
                self.allocated.insert(pos, (aligned, len));
                return Ok(aligned);
            }
        }
        Err(AllocError::OutOfMemory { requested: len })
    }

    /// Frees the allocation starting at `offset`.
    pub fn free(&mut self, offset: u64) -> Result<(), AllocError> {
        let idx = self
            .allocated
            .iter()
            .position(|(s, _)| *s == offset)
            .ok_or(AllocError::InvalidFree { offset })?;
        let (start, len) = self.allocated.remove(idx);
        // Insert into the free list keeping it sorted, then coalesce.
        let pos = self
            .free
            .iter()
            .position(|(s, _)| *s > start)
            .unwrap_or(self.free.len());
        self.free.insert(pos, (start, len));
        self.coalesce();
        Ok(())
    }

    /// Size of the live allocation at `offset`, if any.
    pub fn allocation_len(&self, offset: u64) -> Option<u64> {
        self.allocated
            .iter()
            .find(|(s, _)| *s == offset)
            .map(|(_, l)| *l)
    }

    /// True if `offset..offset+len` lies entirely inside live allocations.
    pub fn is_allocated(&self, offset: u64, len: u64) -> bool {
        self.allocated
            .iter()
            .any(|(s, l)| offset >= *s && offset + len <= *s + *l)
    }

    fn coalesce(&mut self) {
        let mut i = 0;
        while i + 1 < self.free.len() {
            let (s0, l0) = self.free[i];
            let (s1, l1) = self.free[i + 1];
            if s0 + l0 == s1 {
                self.free[i] = (s0, l0 + l1);
                self.free.remove(i + 1);
            } else {
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_alloc_free_cycle() {
        let mut a = FreeListAllocator::new(1024);
        let x = a.alloc(100, 1).unwrap();
        let y = a.alloc(100, 1).unwrap();
        assert_ne!(x, y);
        assert_eq!(a.allocated_bytes(), 200);
        assert_eq!(a.live_allocations(), 2);
        a.free(x).unwrap();
        assert_eq!(a.allocated_bytes(), 100);
        a.free(y).unwrap();
        assert_eq!(a.free_bytes(), 1024);
        // After freeing everything the free list coalesces to one extent.
        assert_eq!(a.free, vec![(0, 1024)]);
    }

    #[test]
    fn alignment_respected() {
        let mut a = FreeListAllocator::new(4096);
        let _ = a.alloc(10, 1).unwrap();
        let x = a.alloc(64, 64).unwrap();
        assert_eq!(x % 64, 0);
        let y = a.alloc(1, 256).unwrap();
        assert_eq!(y % 256, 0);
    }

    #[test]
    fn out_of_memory_reported() {
        let mut a = FreeListAllocator::new(128);
        assert!(a.alloc(100, 1).is_ok());
        let err = a.alloc(100, 1).unwrap_err();
        assert!(matches!(err, AllocError::OutOfMemory { requested: 100 }));
    }

    #[test]
    fn invalid_free_reported() {
        let mut a = FreeListAllocator::new(128);
        let x = a.alloc(16, 1).unwrap();
        assert!(matches!(a.free(x + 1), Err(AllocError::InvalidFree { .. })));
        a.free(x).unwrap();
        assert!(matches!(a.free(x), Err(AllocError::InvalidFree { .. })));
    }

    #[test]
    fn zero_length_requests_round_up_to_one() {
        let mut a = FreeListAllocator::new(16);
        let x = a.alloc(0, 1).unwrap();
        assert_eq!(a.allocation_len(x), Some(1));
    }

    #[test]
    fn reuse_after_free_with_coalescing() {
        let mut a = FreeListAllocator::new(300);
        let x = a.alloc(100, 1).unwrap();
        let y = a.alloc(100, 1).unwrap();
        let z = a.alloc(100, 1).unwrap();
        a.free(y).unwrap();
        a.free(x).unwrap();
        // x and y coalesce into a 200-byte extent that can serve a 150-byte request.
        let w = a.alloc(150, 1).unwrap();
        assert!(w < z);
        assert!(a.is_allocated(w, 150));
    }

    #[test]
    fn is_allocated_checks_containment() {
        let mut a = FreeListAllocator::new(256);
        let x = a.alloc(64, 1).unwrap();
        assert!(a.is_allocated(x, 64));
        assert!(a.is_allocated(x + 10, 20));
        assert!(!a.is_allocated(x + 10, 64));
        assert!(!a.is_allocated(200, 1));
    }

    #[test]
    fn allocations_never_overlap_under_stress() {
        let mut a = FreeListAllocator::new(1 << 16);
        let mut live: Vec<(u64, u64)> = Vec::new();
        // Deterministic pseudo-random sequence without external crates.
        let mut state = 0x12345678u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..2000 {
            if next() % 3 != 0 || live.is_empty() {
                let len = next() % 500 + 1;
                let align = 1 << (next() % 7);
                if let Ok(off) = a.alloc(len, align) {
                    for (s, l) in &live {
                        assert!(off + len <= *s || *s + *l <= off, "overlap detected");
                    }
                    live.push((off, len));
                }
            } else {
                let idx = (next() % live.len() as u64) as usize;
                let (off, _) = live.swap_remove(idx);
                a.free(off).unwrap();
            }
        }
        let allocated: u64 = live.iter().map(|(_, l)| l).sum();
        assert_eq!(a.allocated_bytes(), allocated);
    }
}
