//! The PM storage medium of one device.
//!
//! [`PmMedia`] stores the *persistent* image of one emulated PM device: bytes
//! written here survive a crash. The prototype in the paper emulates PM with
//! the FPGA's on-board DRAM; here the storage engine is pluggable behind the
//! [`MediaBackend`] trait:
//!
//! * [`HeapMedia`] — a plain in-RAM byte vector, the default. Fast, but the
//!   "persistent" image dies with the process; crash/recovery results are
//!   proven against an in-process model only.
//! * [`FileMedia`] — one flat file per device, accessed with positional
//!   `pread`/`pwrite`. Every media write is a write to the file, so the image
//!   survives process exit/abort and a fresh process can reopen it
//!   (real durability for restartable crash-recovery runs).
//! * [`SparseMedia`] — a page table of lazily allocated 4 KiB pages that
//!   read as zeros until first written, so a 100-device × multi-GiB geometry
//!   costs only the bytes actually touched.
//!
//! `PmMedia` itself is a thin wrapper that owns the access statistics; the
//! counters are maintained here, identically for every engine, so traffic
//! accounting is byte-for-byte the same regardless of the backend.
//! Everything that is *not* yet in a `PmMedia` (CPU cache lines that have not
//! been written back, device buffers outside the persistence domain) is lost
//! on a simulated failure.

use std::collections::BTreeMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};

/// Page granularity of [`SparseMedia`] allocation.
pub const SPARSE_PAGE: usize = 4096;

/// Which storage engine backs a [`PmMedia`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MediaKind {
    /// In-RAM `Vec<u8>` (volatile; the default).
    Heap,
    /// Flat file per device, positional read/write (durable).
    File,
    /// Lazily allocated 4 KiB pages, zero-fill on first touch (volatile).
    Sparse,
}

impl fmt::Display for MediaKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MediaKind::Heap => write!(f, "heap"),
            MediaKind::File => write!(f, "file"),
            MediaKind::Sparse => write!(f, "sparse"),
        }
    }
}

/// Selects and parameterizes the storage engine for every device of a
/// [`crate::PmSpace`]. `Heap` is the default and is behavior-preserving with
/// the pre-trait implementation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum MediaConfig {
    /// In-RAM byte vectors (the default).
    #[default]
    Heap,
    /// One flat file per device under `dir`, named `device-<n>.pm`.
    File {
        /// Directory holding the per-device image files; created on demand.
        dir: PathBuf,
    },
    /// Lazily allocated sparse pages.
    Sparse,
}

impl MediaConfig {
    /// The engine kind this configuration selects.
    pub fn kind(&self) -> MediaKind {
        match self {
            MediaConfig::Heap => MediaKind::Heap,
            MediaConfig::File { .. } => MediaKind::File,
            MediaConfig::Sparse => MediaKind::Sparse,
        }
    }

    /// File name of device `device`'s image under a `File` directory.
    pub fn device_file_name(device: usize) -> String {
        format!("device-{device}.pm")
    }

    /// Opens a fresh (zeroed) backend for device `device`.
    pub fn create_device(&self, device: usize, capacity: usize) -> Result<PmMedia, MediaError> {
        let backend: Box<dyn MediaBackend> = match self {
            MediaConfig::Heap => Box::new(HeapMedia::new(capacity)),
            MediaConfig::Sparse => Box::new(SparseMedia::new(capacity)),
            MediaConfig::File { dir } => {
                Box::new(FileMedia::create(&device_path(dir, device), capacity)?)
            }
        };
        Ok(PmMedia::from_backend(backend))
    }

    /// Reopens an existing backend for device `device` without zeroing it.
    ///
    /// Only meaningful for `File`: the image file must already exist and be
    /// at least `capacity` bytes long. For the volatile engines this is the
    /// same as [`MediaConfig::create_device`] (there is nothing to reopen).
    pub fn reopen_device(&self, device: usize, capacity: usize) -> Result<PmMedia, MediaError> {
        match self {
            MediaConfig::File { dir } => {
                let backend = FileMedia::open(&device_path(dir, device), capacity)?;
                Ok(PmMedia::from_backend(Box::new(backend)))
            }
            _ => self.create_device(device, capacity),
        }
    }
}

fn device_path(dir: &Path, device: usize) -> PathBuf {
    dir.join(MediaConfig::device_file_name(device))
}

/// Error raised when a non-heap backend cannot be created, opened, or
/// persisted.
#[derive(Debug)]
pub struct MediaError {
    context: String,
    source: Option<io::Error>,
}

impl MediaError {
    /// An error with an I/O cause.
    pub fn io(context: impl Into<String>, source: io::Error) -> Self {
        MediaError {
            context: context.into(),
            source: Some(source),
        }
    }

    /// An error without an underlying I/O cause (e.g. a manifest mismatch).
    pub fn msg(context: impl Into<String>) -> Self {
        MediaError {
            context: context.into(),
            source: None,
        }
    }
}

impl fmt::Display for MediaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.source {
            Some(e) => write!(f, "{}: {e}", self.context),
            None => write!(f, "{}", self.context),
        }
    }
}

impl std::error::Error for MediaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        self.source.as_ref().map(|e| e as _)
    }
}

/// A storage engine for one device's persistent image.
///
/// Backends store bytes only; access statistics, bounds-check panics on the
/// simulator's hot paths, and the public device API all live in [`PmMedia`]
/// so that every engine behaves identically apart from where the bytes live.
/// Bounds are checked by `PmMedia` before delegation, so implementations may
/// assume `offset + len <= capacity`.
pub trait MediaBackend: fmt::Debug + Send {
    /// Capacity in bytes.
    fn capacity(&self) -> usize;

    /// Reads `buf.len()` bytes at `offset`. Takes `&self` so that stat-free
    /// peeks (recovery checks, differential oracles) work on shared
    /// references.
    fn read_at(&self, offset: usize, buf: &mut [u8]);

    /// Writes `data` at `offset`. Durable immediately for durable engines.
    fn write_at(&mut self, offset: usize, data: &[u8]);

    /// Fills `len` bytes at `offset` with `value`.
    fn fill_at(&mut self, offset: usize, len: usize, value: u8) {
        // Engines without a cheaper path write a materialized run.
        self.write_at(offset, &vec![value; len]);
    }

    /// Which engine this is.
    fn kind(&self) -> MediaKind;

    /// Bytes of RAM this backend currently holds resident (images, page
    /// tables). `FileMedia` reports 0: its image lives in the file.
    fn resident_bytes(&self) -> usize;

    /// Direct view of the full image when the engine keeps it contiguously
    /// in RAM (`HeapMedia` only). Zero-copy paths use this and fall back to
    /// buffered copies when it is `None`.
    fn as_bytes(&self) -> Option<&[u8]> {
        None
    }

    /// Mutable direct view of the full image (`HeapMedia` only).
    fn as_bytes_mut(&mut self) -> Option<&mut [u8]> {
        None
    }

    /// Flushes buffered state to durable storage. No-op for volatile engines.
    fn sync(&mut self) -> Result<(), MediaError> {
        Ok(())
    }

    /// Clones this backend into an independent in-RAM copy.
    ///
    /// Cloning always *detaches*: the clone is a `HeapMedia` snapshot of the
    /// current image, never a second handle on the same file. Clones are
    /// used by differential oracles and write-log replay, which want an
    /// independent image, not shared storage.
    fn snapshot(&self) -> HeapMedia;
}

/// In-RAM storage engine: a plain byte vector (the pre-trait behavior).
#[derive(Debug, Clone)]
pub struct HeapMedia {
    bytes: Vec<u8>,
}

impl HeapMedia {
    /// Creates a zero-initialized heap image of `capacity` bytes.
    pub fn new(capacity: usize) -> Self {
        HeapMedia {
            bytes: vec![0; capacity],
        }
    }

    /// Builds a heap image from an existing byte vector.
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        HeapMedia { bytes }
    }
}

impl MediaBackend for HeapMedia {
    fn capacity(&self) -> usize {
        self.bytes.len()
    }

    fn read_at(&self, offset: usize, buf: &mut [u8]) {
        buf.copy_from_slice(&self.bytes[offset..offset + buf.len()]);
    }

    fn write_at(&mut self, offset: usize, data: &[u8]) {
        self.bytes[offset..offset + data.len()].copy_from_slice(data);
    }

    fn fill_at(&mut self, offset: usize, len: usize, value: u8) {
        self.bytes[offset..offset + len].fill(value);
    }

    fn kind(&self) -> MediaKind {
        MediaKind::Heap
    }

    fn resident_bytes(&self) -> usize {
        self.bytes.len()
    }

    fn as_bytes(&self) -> Option<&[u8]> {
        Some(&self.bytes)
    }

    fn as_bytes_mut(&mut self) -> Option<&mut [u8]> {
        Some(&mut self.bytes)
    }

    fn snapshot(&self) -> HeapMedia {
        self.clone()
    }
}

/// Durable storage engine: one flat file, accessed with positional I/O.
///
/// Every write lands in the file immediately (through the OS page cache), so
/// an aborted process leaves exactly the bytes it had written — the property
/// the restart-recovery harness relies on. [`MediaBackend::sync`] runs
/// `fsync` for power-failure-grade durability when callers want it.
#[derive(Debug)]
pub struct FileMedia {
    file: File,
    path: PathBuf,
    capacity: usize,
}

impl FileMedia {
    /// Creates (or truncates) the image file at `path`, zero-extended to
    /// `capacity` bytes.
    pub fn create(path: &Path, capacity: usize) -> Result<Self, MediaError> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)
                .map_err(|e| MediaError::io(format!("create media dir {}", parent.display()), e))?;
        }
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| MediaError::io(format!("create media file {}", path.display()), e))?;
        file.set_len(capacity as u64)
            .map_err(|e| MediaError::io(format!("size media file {}", path.display()), e))?;
        Ok(FileMedia {
            file,
            path: path.to_path_buf(),
            capacity,
        })
    }

    /// Opens an existing image file without truncating or zeroing it.
    pub fn open(path: &Path, capacity: usize) -> Result<Self, MediaError> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| MediaError::io(format!("open media file {}", path.display()), e))?;
        let len = file
            .metadata()
            .map_err(|e| MediaError::io(format!("stat media file {}", path.display()), e))?
            .len();
        if len < capacity as u64 {
            return Err(MediaError::msg(format!(
                "media file {} is {len} bytes, need {capacity}",
                path.display()
            )));
        }
        Ok(FileMedia {
            file,
            path: path.to_path_buf(),
            capacity,
        })
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl MediaBackend for FileMedia {
    fn capacity(&self) -> usize {
        self.capacity
    }

    fn read_at(&self, offset: usize, buf: &mut [u8]) {
        self.file
            .read_exact_at(buf, offset as u64)
            .unwrap_or_else(|e| panic!("PM file read at {offset} failed: {e}"));
    }

    fn write_at(&mut self, offset: usize, data: &[u8]) {
        self.file
            .write_all_at(data, offset as u64)
            .unwrap_or_else(|e| panic!("PM file write at {offset} failed: {e}"));
    }

    fn kind(&self) -> MediaKind {
        MediaKind::File
    }

    fn resident_bytes(&self) -> usize {
        0
    }

    fn sync(&mut self) -> Result<(), MediaError> {
        self.file
            .sync_data()
            .map_err(|e| MediaError::io(format!("fsync media file {}", self.path.display()), e))
    }

    fn snapshot(&self) -> HeapMedia {
        let mut bytes = vec![0u8; self.capacity];
        self.read_at(0, &mut bytes);
        HeapMedia::from_bytes(bytes)
    }
}

/// Sparse storage engine: 4 KiB pages allocated on first write.
///
/// Unwritten pages read as zeros without allocating, so capacity is free and
/// only the touched working set costs RAM. A `BTreeMap` keyed by page index
/// keeps iteration (snapshots, resident accounting) deterministic.
#[derive(Debug, Clone)]
pub struct SparseMedia {
    pages: BTreeMap<usize, Box<[u8; SPARSE_PAGE]>>,
    capacity: usize,
}

impl SparseMedia {
    /// Creates a sparse medium of `capacity` bytes with no pages resident.
    pub fn new(capacity: usize) -> Self {
        SparseMedia {
            pages: BTreeMap::new(),
            capacity,
        }
    }

    /// Number of 4 KiB pages currently materialized.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    fn page_mut(&mut self, index: usize) -> &mut [u8; SPARSE_PAGE] {
        self.pages
            .entry(index)
            .or_insert_with(|| Box::new([0u8; SPARSE_PAGE]))
    }
}

impl MediaBackend for SparseMedia {
    fn capacity(&self) -> usize {
        self.capacity
    }

    fn read_at(&self, offset: usize, buf: &mut [u8]) {
        let mut pos = 0;
        while pos < buf.len() {
            let at = offset + pos;
            let page = at / SPARSE_PAGE;
            let in_page = at % SPARSE_PAGE;
            let chunk = (SPARSE_PAGE - in_page).min(buf.len() - pos);
            match self.pages.get(&page) {
                Some(p) => buf[pos..pos + chunk].copy_from_slice(&p[in_page..in_page + chunk]),
                None => buf[pos..pos + chunk].fill(0),
            }
            pos += chunk;
        }
    }

    fn write_at(&mut self, offset: usize, data: &[u8]) {
        let mut pos = 0;
        while pos < data.len() {
            let at = offset + pos;
            let page = at / SPARSE_PAGE;
            let in_page = at % SPARSE_PAGE;
            let chunk = (SPARSE_PAGE - in_page).min(data.len() - pos);
            self.page_mut(page)[in_page..in_page + chunk].copy_from_slice(&data[pos..pos + chunk]);
            pos += chunk;
        }
    }

    fn fill_at(&mut self, offset: usize, len: usize, value: u8) {
        let mut pos = 0;
        while pos < len {
            let at = offset + pos;
            let page = at / SPARSE_PAGE;
            let in_page = at % SPARSE_PAGE;
            let chunk = (SPARSE_PAGE - in_page).min(len - pos);
            if value == 0 && in_page == 0 && chunk == SPARSE_PAGE {
                // A full-page zero fill can simply drop the page.
                self.pages.remove(&page);
            } else if value != 0 || self.pages.contains_key(&page) {
                self.page_mut(page)[in_page..in_page + chunk].fill(value);
            }
            pos += chunk;
        }
    }

    fn kind(&self) -> MediaKind {
        MediaKind::Sparse
    }

    fn resident_bytes(&self) -> usize {
        self.pages.len() * SPARSE_PAGE
    }

    fn snapshot(&self) -> HeapMedia {
        let mut bytes = vec![0u8; self.capacity];
        for (&index, page) in &self.pages {
            let start = index * SPARSE_PAGE;
            let end = (start + SPARSE_PAGE).min(self.capacity);
            bytes[start..end].copy_from_slice(&page[..end - start]);
        }
        HeapMedia::from_bytes(bytes)
    }
}

/// Persistent storage medium of a single PM device: access statistics plus a
/// pluggable [`MediaBackend`] holding the bytes.
#[derive(Debug)]
pub struct PmMedia {
    backend: Box<dyn MediaBackend>,
    writes: u64,
    bytes_written: u64,
    reads: u64,
    bytes_read: u64,
}

impl Clone for PmMedia {
    /// Clones detach to an in-RAM snapshot (see [`MediaBackend::snapshot`]).
    fn clone(&self) -> Self {
        PmMedia {
            backend: Box::new(self.backend.snapshot()),
            writes: self.writes,
            bytes_written: self.bytes_written,
            reads: self.reads,
            bytes_read: self.bytes_read,
        }
    }
}

impl PmMedia {
    /// Creates a zero-initialized heap-backed medium of `capacity` bytes.
    pub fn new(capacity: usize) -> Self {
        PmMedia::from_backend(Box::new(HeapMedia::new(capacity)))
    }

    /// Wraps an existing backend with fresh statistics.
    pub fn from_backend(backend: Box<dyn MediaBackend>) -> Self {
        PmMedia {
            backend,
            writes: 0,
            bytes_written: 0,
            reads: 0,
            bytes_read: 0,
        }
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.backend.capacity()
    }

    /// Which storage engine backs this medium.
    pub fn kind(&self) -> MediaKind {
        self.backend.kind()
    }

    /// Bytes of RAM the backend currently holds resident.
    pub fn resident_bytes(&self) -> usize {
        self.backend.resident_bytes()
    }

    /// Flushes the backend to durable storage (no-op for volatile engines).
    pub fn sync(&mut self) -> Result<(), MediaError> {
        self.backend.sync()
    }

    /// Reads `buf.len()` bytes starting at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if the access runs past the end of the medium; the allocator
    /// and interleaver are responsible for never issuing such accesses.
    pub fn read(&mut self, offset: usize, buf: &mut [u8]) {
        let end = offset + buf.len();
        assert!(
            end <= self.capacity(),
            "PM read out of bounds: {offset}..{end}"
        );
        self.backend.read_at(offset, buf);
        self.reads += 1;
        self.bytes_read += buf.len() as u64;
    }

    /// Reads `len` bytes starting at `offset` into a new vector.
    pub fn read_vec(&mut self, offset: usize, len: usize) -> Vec<u8> {
        let mut v = vec![0; len];
        self.read(offset, &mut v);
        v
    }

    /// Reads without touching the traffic statistics; used by recovery
    /// checks and differential oracles that must not perturb accounting.
    pub fn peek(&self, offset: usize, buf: &mut [u8]) {
        let end = offset + buf.len();
        assert!(
            end <= self.capacity(),
            "PM read out of bounds: {offset}..{end}"
        );
        self.backend.read_at(offset, buf);
    }

    /// Writes `data` starting at `offset`. The write is durable immediately:
    /// the medium *is* the persistence domain.
    ///
    /// # Panics
    ///
    /// Panics if the access runs past the end of the medium.
    pub fn write(&mut self, offset: usize, data: &[u8]) {
        let end = offset + data.len();
        assert!(
            end <= self.capacity(),
            "PM write out of bounds: {offset}..{end}"
        );
        self.backend.write_at(offset, data);
        self.writes += 1;
        self.bytes_written += data.len() as u64;
    }

    /// Fills `len` bytes starting at `offset` with `value`.
    pub fn fill(&mut self, offset: usize, len: usize, value: u8) {
        let end = offset + len;
        assert!(
            end <= self.capacity(),
            "PM fill out of bounds: {offset}..{end}"
        );
        self.backend.fill_at(offset, len, value);
        self.writes += 1;
        self.bytes_written += len as u64;
    }

    /// Copies `len` bytes from `src` to `dst` inside the medium (the DMA
    /// engine's local copy path).
    pub fn copy_within(&mut self, src: usize, dst: usize, len: usize) {
        assert!(src + len <= self.capacity(), "PM copy source out of bounds");
        assert!(
            dst + len <= self.capacity(),
            "PM copy destination out of bounds"
        );
        if let Some(bytes) = self.backend.as_bytes_mut() {
            bytes.copy_within(src..src + len, dst);
        } else {
            let mut buf = vec![0u8; len];
            self.backend.read_at(src, &mut buf);
            self.backend.write_at(dst, &buf);
        }
        self.reads += 1;
        self.bytes_read += len as u64;
        self.writes += 1;
        self.bytes_written += len as u64;
    }

    /// Copies `len` bytes from `self` at `src_offset` into `dst` at
    /// `dst_offset` without an intermediate buffer when both engines expose
    /// their image directly (the cross-device DMA path).
    pub fn copy_to(&mut self, src_offset: usize, dst: &mut PmMedia, dst_offset: usize, len: usize) {
        assert!(
            src_offset + len <= self.capacity(),
            "PM cross-copy source out of bounds"
        );
        assert!(
            dst_offset + len <= dst.capacity(),
            "PM cross-copy destination out of bounds"
        );
        match (self.backend.as_bytes(), dst.backend.as_bytes_mut()) {
            (Some(src), Some(dstb)) => {
                dstb[dst_offset..dst_offset + len]
                    .copy_from_slice(&src[src_offset..src_offset + len]);
            }
            _ => {
                let mut buf = vec![0u8; len];
                self.backend.read_at(src_offset, &mut buf);
                dst.backend.write_at(dst_offset, &buf);
            }
        }
        self.reads += 1;
        self.bytes_read += len as u64;
        dst.writes += 1;
        dst.bytes_written += len as u64;
    }

    /// Number of write operations served.
    pub fn write_ops(&self) -> u64 {
        self.writes
    }

    /// Total bytes written.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Number of read operations served.
    pub fn read_ops(&self) -> u64 {
        self.reads
    }

    /// Total bytes read.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Resets the access statistics (not the contents).
    pub fn reset_stats(&mut self) {
        self.writes = 0;
        self.bytes_written = 0;
        self.reads = 0;
        self.bytes_read = 0;
    }

    /// Read-only view of the full contents, used by recovery checks in tests.
    ///
    /// # Panics
    ///
    /// Panics for engines that do not keep the image contiguously in RAM
    /// (`FileMedia`, `SparseMedia`); backend-agnostic callers should use
    /// [`PmMedia::image`] or [`PmMedia::peek`] instead.
    pub fn contents(&self) -> &[u8] {
        self.backend.as_bytes().unwrap_or_else(|| {
            panic!(
                "PmMedia::contents() requires a heap backend (have {}); use image()/peek()",
                self.backend.kind()
            )
        })
    }

    /// Owned copy of the full image; works for every engine and does not
    /// touch the traffic statistics.
    pub fn image(&self) -> Vec<u8> {
        let mut bytes = vec![0u8; self.capacity()];
        self.backend.read_at(0, &mut bytes);
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        let n = std::process::id();
        std::env::temp_dir().join(format!("nearpm-media-test-{n}-{tag}"))
    }

    #[test]
    fn read_write_roundtrip() {
        let mut m = PmMedia::new(1024);
        assert_eq!(m.capacity(), 1024);
        m.write(100, &[1, 2, 3, 4]);
        let mut buf = [0u8; 4];
        m.read(100, &mut buf);
        assert_eq!(buf, [1, 2, 3, 4]);
        assert_eq!(m.read_vec(101, 2), vec![2, 3]);
    }

    #[test]
    fn zero_initialized() {
        let mut m = PmMedia::new(64);
        assert_eq!(m.read_vec(0, 64), vec![0u8; 64]);
    }

    #[test]
    fn fill_and_copy_within() {
        let mut m = PmMedia::new(256);
        m.fill(0, 16, 0xAB);
        assert_eq!(m.read_vec(0, 16), vec![0xAB; 16]);
        m.copy_within(0, 128, 16);
        assert_eq!(m.read_vec(128, 16), vec![0xAB; 16]);
    }

    #[test]
    fn statistics_track_traffic() {
        let mut m = PmMedia::new(256);
        m.write(0, &[0; 32]);
        m.write(32, &[0; 32]);
        let _ = m.read_vec(0, 64);
        assert_eq!(m.write_ops(), 2);
        assert_eq!(m.bytes_written(), 64);
        assert_eq!(m.read_ops(), 1);
        assert_eq!(m.bytes_read(), 64);
        m.reset_stats();
        assert_eq!(m.write_ops(), 0);
        assert_eq!(m.bytes_read(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn write_out_of_bounds_panics() {
        let mut m = PmMedia::new(16);
        m.write(10, &[0; 10]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn read_out_of_bounds_panics() {
        let mut m = PmMedia::new(16);
        let mut buf = [0u8; 4];
        m.read(14, &mut buf);
    }

    #[test]
    fn peek_does_not_count() {
        let mut m = PmMedia::new(64);
        m.write(0, &[7; 8]);
        let mut buf = [0u8; 8];
        m.peek(0, &mut buf);
        assert_eq!(buf, [7; 8]);
        assert_eq!(m.read_ops(), 0);
        assert_eq!(m.bytes_read(), 0);
    }

    fn exercise(m: &mut PmMedia) {
        m.write(10, &[1, 2, 3, 4, 5]);
        m.fill(4000, 200, 0xEE); // straddles a sparse page boundary
        m.copy_within(10, 8000, 5);
        m.write(4099, &[9]);
    }

    #[test]
    fn backends_produce_identical_images_and_stats() {
        let mut heap = PmMedia::new(16384);
        let mut sparse = PmMedia::from_backend(Box::new(SparseMedia::new(16384)));
        let path = temp_path("equiv");
        let mut file = PmMedia::from_backend(Box::new(FileMedia::create(&path, 16384).unwrap()));
        exercise(&mut heap);
        exercise(&mut sparse);
        exercise(&mut file);
        assert_eq!(heap.image(), sparse.image());
        assert_eq!(heap.image(), file.image());
        for m in [&heap, &sparse, &file] {
            assert_eq!(m.write_ops(), heap.write_ops());
            assert_eq!(m.bytes_written(), heap.bytes_written());
            assert_eq!(m.read_ops(), heap.read_ops());
            assert_eq!(m.bytes_read(), heap.bytes_read());
        }
        drop(file);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_media_survives_reopen() {
        let path = temp_path("reopen");
        {
            let mut m = PmMedia::from_backend(Box::new(FileMedia::create(&path, 8192).unwrap()));
            m.write(100, &[0xAA; 64]);
            m.write(5000, b"durable");
        }
        let reopened = PmMedia::from_backend(Box::new(FileMedia::open(&path, 8192).unwrap()));
        let img = reopened.image();
        assert_eq!(&img[100..164], &[0xAA; 64]);
        assert_eq!(&img[5000..5007], b"durable");
        assert_eq!(&img[0..100], &[0u8; 100][..]);
        drop(reopened);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_media_open_rejects_short_file() {
        let path = temp_path("short");
        drop(FileMedia::create(&path, 100).unwrap());
        let err = FileMedia::open(&path, 200).unwrap_err();
        assert!(err.to_string().contains("need 200"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn sparse_media_allocates_lazily() {
        let mut m = PmMedia::from_backend(Box::new(SparseMedia::new(1 << 30)));
        assert_eq!(m.resident_bytes(), 0);
        assert_eq!(m.read_vec(512 << 20, 64), vec![0u8; 64]);
        m.write(256 << 20, &[1; 10]);
        assert_eq!(m.resident_bytes(), SPARSE_PAGE);
        m.write((256 << 20) + SPARSE_PAGE - 1, &[2, 3]); // straddle
        assert_eq!(m.resident_bytes(), 2 * SPARSE_PAGE);
        let mut buf = [0u8; 2];
        m.peek((256 << 20) + SPARSE_PAGE - 1, &mut buf);
        assert_eq!(buf, [2, 3]);
    }

    #[test]
    fn sparse_full_page_zero_fill_drops_page() {
        let mut m = PmMedia::from_backend(Box::new(SparseMedia::new(1 << 20)));
        m.write(0, &[1; SPARSE_PAGE]);
        assert_eq!(m.resident_bytes(), SPARSE_PAGE);
        m.fill(0, SPARSE_PAGE, 0);
        assert_eq!(m.resident_bytes(), 0);
        assert_eq!(m.read_vec(0, 16), vec![0u8; 16]);
    }

    #[test]
    fn clone_detaches_to_heap_snapshot() {
        let path = temp_path("clone");
        let mut file = PmMedia::from_backend(Box::new(FileMedia::create(&path, 4096).unwrap()));
        file.write(0, &[5; 16]);
        let clone = file.clone();
        assert_eq!(clone.kind(), MediaKind::Heap);
        assert_eq!(&clone.image()[..16], &[5; 16]);
        drop(file);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn media_config_selects_backend() {
        let heap = MediaConfig::Heap.create_device(0, 64).unwrap();
        assert_eq!(heap.kind(), MediaKind::Heap);
        let sparse = MediaConfig::Sparse.create_device(0, 64).unwrap();
        assert_eq!(sparse.kind(), MediaKind::Sparse);
        let dir = temp_path("cfg-dir");
        let cfg = MediaConfig::File { dir: dir.clone() };
        let mut file = cfg.create_device(3, 64).unwrap();
        assert_eq!(file.kind(), MediaKind::File);
        file.write(0, &[1; 8]);
        let reopened = cfg.reopen_device(3, 64).unwrap();
        assert_eq!(&reopened.image()[..8], &[1; 8]);
        drop((file, reopened));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
