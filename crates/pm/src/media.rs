//! The PM storage medium of one device.
//!
//! [`PmMedia`] stores the *persistent* image of one emulated PM device: bytes
//! written here survive a crash. The prototype in the paper emulates PM with
//! the FPGA's on-board DRAM; here it is a plain byte vector plus write
//! statistics. Everything that is *not* yet in a `PmMedia` (CPU cache lines
//! that have not been written back, device buffers outside the persistence
//! domain) is lost on a simulated failure.

/// Persistent storage medium of a single PM device.
#[derive(Debug, Clone)]
pub struct PmMedia {
    bytes: Vec<u8>,
    writes: u64,
    bytes_written: u64,
    reads: u64,
    bytes_read: u64,
}

impl PmMedia {
    /// Creates a zero-initialized medium of `capacity` bytes.
    pub fn new(capacity: usize) -> Self {
        PmMedia {
            bytes: vec![0; capacity],
            writes: 0,
            bytes_written: 0,
            reads: 0,
            bytes_read: 0,
        }
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.bytes.len()
    }

    /// Reads `buf.len()` bytes starting at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if the access runs past the end of the medium; the allocator
    /// and interleaver are responsible for never issuing such accesses.
    pub fn read(&mut self, offset: usize, buf: &mut [u8]) {
        let end = offset + buf.len();
        assert!(
            end <= self.bytes.len(),
            "PM read out of bounds: {offset}..{end}"
        );
        buf.copy_from_slice(&self.bytes[offset..end]);
        self.reads += 1;
        self.bytes_read += buf.len() as u64;
    }

    /// Reads `len` bytes starting at `offset` into a new vector.
    pub fn read_vec(&mut self, offset: usize, len: usize) -> Vec<u8> {
        let mut v = vec![0; len];
        self.read(offset, &mut v);
        v
    }

    /// Writes `data` starting at `offset`. The write is durable immediately:
    /// the medium *is* the persistence domain.
    ///
    /// # Panics
    ///
    /// Panics if the access runs past the end of the medium.
    pub fn write(&mut self, offset: usize, data: &[u8]) {
        let end = offset + data.len();
        assert!(
            end <= self.bytes.len(),
            "PM write out of bounds: {offset}..{end}"
        );
        self.bytes[offset..end].copy_from_slice(data);
        self.writes += 1;
        self.bytes_written += data.len() as u64;
    }

    /// Fills `len` bytes starting at `offset` with `value`.
    pub fn fill(&mut self, offset: usize, len: usize, value: u8) {
        let end = offset + len;
        assert!(
            end <= self.bytes.len(),
            "PM fill out of bounds: {offset}..{end}"
        );
        self.bytes[offset..end].fill(value);
        self.writes += 1;
        self.bytes_written += len as u64;
    }

    /// Copies `len` bytes from `src` to `dst` inside the medium (the DMA
    /// engine's local copy path).
    pub fn copy_within(&mut self, src: usize, dst: usize, len: usize) {
        assert!(
            src + len <= self.bytes.len(),
            "PM copy source out of bounds"
        );
        assert!(
            dst + len <= self.bytes.len(),
            "PM copy destination out of bounds"
        );
        self.bytes.copy_within(src..src + len, dst);
        self.reads += 1;
        self.bytes_read += len as u64;
        self.writes += 1;
        self.bytes_written += len as u64;
    }

    /// Copies `len` bytes from `self` at `src_offset` into `dst` at
    /// `dst_offset` without an intermediate buffer (the cross-device DMA
    /// path).
    pub fn copy_to(&mut self, src_offset: usize, dst: &mut PmMedia, dst_offset: usize, len: usize) {
        assert!(
            src_offset + len <= self.bytes.len(),
            "PM cross-copy source out of bounds"
        );
        assert!(
            dst_offset + len <= dst.bytes.len(),
            "PM cross-copy destination out of bounds"
        );
        dst.bytes[dst_offset..dst_offset + len]
            .copy_from_slice(&self.bytes[src_offset..src_offset + len]);
        self.reads += 1;
        self.bytes_read += len as u64;
        dst.writes += 1;
        dst.bytes_written += len as u64;
    }

    /// Number of write operations served.
    pub fn write_ops(&self) -> u64 {
        self.writes
    }

    /// Total bytes written.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Number of read operations served.
    pub fn read_ops(&self) -> u64 {
        self.reads
    }

    /// Total bytes read.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Resets the access statistics (not the contents).
    pub fn reset_stats(&mut self) {
        self.writes = 0;
        self.bytes_written = 0;
        self.reads = 0;
        self.bytes_read = 0;
    }

    /// Read-only view of the full contents, used by recovery checks in tests.
    pub fn contents(&self) -> &[u8] {
        &self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let mut m = PmMedia::new(1024);
        assert_eq!(m.capacity(), 1024);
        m.write(100, &[1, 2, 3, 4]);
        let mut buf = [0u8; 4];
        m.read(100, &mut buf);
        assert_eq!(buf, [1, 2, 3, 4]);
        assert_eq!(m.read_vec(101, 2), vec![2, 3]);
    }

    #[test]
    fn zero_initialized() {
        let mut m = PmMedia::new(64);
        assert_eq!(m.read_vec(0, 64), vec![0u8; 64]);
    }

    #[test]
    fn fill_and_copy_within() {
        let mut m = PmMedia::new(256);
        m.fill(0, 16, 0xAB);
        assert_eq!(m.read_vec(0, 16), vec![0xAB; 16]);
        m.copy_within(0, 128, 16);
        assert_eq!(m.read_vec(128, 16), vec![0xAB; 16]);
    }

    #[test]
    fn statistics_track_traffic() {
        let mut m = PmMedia::new(256);
        m.write(0, &[0; 32]);
        m.write(32, &[0; 32]);
        let _ = m.read_vec(0, 64);
        assert_eq!(m.write_ops(), 2);
        assert_eq!(m.bytes_written(), 64);
        assert_eq!(m.read_ops(), 1);
        assert_eq!(m.bytes_read(), 64);
        m.reset_stats();
        assert_eq!(m.write_ops(), 0);
        assert_eq!(m.bytes_read(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn write_out_of_bounds_panics() {
        let mut m = PmMedia::new(16);
        m.write(10, &[0; 10]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn read_out_of_bounds_panics() {
        let mut m = PmMedia::new(16);
        let mut buf = [0u8; 4];
        m.read(14, &mut buf);
    }
}
