//! PM pools and virtual→physical translation.
//!
//! PM libraries allocate persistent memory as *pools*; every address inside a
//! pool is the pool's base address plus an offset. NearPM exploits this to
//! translate command operands near memory: it only needs the per-pool
//! (virtual base − physical base) offset (paper Section 5.4). This module
//! provides the host-side source of truth for that mapping: a
//! [`PoolRegistry`] assigns each pool a physical extent of the emulated PM
//! space and a distinct virtual base, plus a per-pool byte allocator.

use crate::addr::{AddrRange, PhysAddr, PoolId, VirtAddr};
use crate::alloc::{AllocError, FreeListAllocator};

/// Spacing between the virtual bases of consecutive pools (4 GiB), large
/// enough that pools can never overlap in the virtual address space.
pub const POOL_VIRT_SPACING: u64 = 1 << 32;

/// Base of the virtual address region used for PM pools.
pub const POOL_VIRT_BASE: u64 = 0x1000_0000_0000;

/// Errors returned by pool management.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// The physical PM space cannot fit another pool of the requested size.
    NoSpace {
        /// Requested pool size.
        requested: u64,
        /// Remaining unreserved physical bytes.
        available: u64,
    },
    /// A pool with this name already exists.
    DuplicateName(String),
    /// The pool id is unknown.
    UnknownPool(PoolId),
    /// The virtual address does not belong to any pool.
    Unmapped(VirtAddr),
    /// Allocation inside the pool failed.
    Alloc(AllocError),
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::NoSpace {
                requested,
                available,
            } => write!(
                f,
                "not enough PM for pool: requested {requested}, available {available}"
            ),
            PoolError::DuplicateName(n) => write!(f, "pool name already exists: {n}"),
            PoolError::UnknownPool(id) => write!(f, "unknown pool: {id}"),
            PoolError::Unmapped(a) => write!(f, "address not mapped by any pool: {a}"),
            PoolError::Alloc(e) => write!(f, "pool allocation failed: {e}"),
        }
    }
}

impl std::error::Error for PoolError {}

impl From<AllocError> for PoolError {
    fn from(e: AllocError) -> Self {
        PoolError::Alloc(e)
    }
}

/// One PM pool: a named, contiguous physical extent with a fixed virtual base.
#[derive(Debug, Clone)]
pub struct Pool {
    id: PoolId,
    name: String,
    virt_base: VirtAddr,
    phys_base: PhysAddr,
    size: u64,
    allocator: FreeListAllocator,
}

impl Pool {
    /// Pool identifier.
    pub fn id(&self) -> PoolId {
        self.id
    }

    /// Pool name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Virtual base address of the pool.
    pub fn virt_base(&self) -> VirtAddr {
        self.virt_base
    }

    /// Physical base address of the pool.
    pub fn phys_base(&self) -> PhysAddr {
        self.phys_base
    }

    /// Pool size in bytes.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// The translation offset `virtual base − physical base` that NearPM's
    /// address-mapping table stores for this pool.
    pub fn translation_offset(&self) -> i128 {
        self.virt_base.raw() as i128 - self.phys_base.raw() as i128
    }

    /// Virtual address range covered by the pool.
    pub fn virt_range(&self) -> AddrRange {
        AddrRange::new(self.virt_base, self.size)
    }

    /// True if `addr` lies inside the pool.
    pub fn contains(&self, addr: VirtAddr) -> bool {
        self.virt_range().contains(addr)
    }

    /// Translates a virtual address inside this pool to its physical address.
    pub fn translate(&self, addr: VirtAddr) -> Option<PhysAddr> {
        if self.contains(addr) {
            Some(self.phys_base.offset(addr.offset_from(self.virt_base)))
        } else {
            None
        }
    }

    /// Translates a physical address back to the pool's virtual space, if it
    /// belongs to this pool.
    pub fn translate_back(&self, addr: PhysAddr) -> Option<VirtAddr> {
        let off = addr.raw().checked_sub(self.phys_base.raw())?;
        if off < self.size {
            Some(self.virt_base.offset(off))
        } else {
            None
        }
    }

    /// Allocates `len` bytes with the given alignment inside the pool,
    /// returning the virtual address of the allocation.
    pub fn alloc(&mut self, len: u64, align: u64) -> Result<VirtAddr, PoolError> {
        let off = self.allocator.alloc(len, align)?;
        Ok(self.virt_base.offset(off))
    }

    /// Frees an allocation previously returned by [`Pool::alloc`].
    pub fn free(&mut self, addr: VirtAddr) -> Result<(), PoolError> {
        let off = addr.offset_from(self.virt_base);
        self.allocator.free(off)?;
        Ok(())
    }

    /// Bytes currently allocated in the pool.
    pub fn allocated_bytes(&self) -> u64 {
        self.allocator.allocated_bytes()
    }

    /// True if the byte range is covered by live allocations.
    pub fn is_allocated(&self, addr: VirtAddr, len: u64) -> bool {
        if !self.contains(addr) {
            return false;
        }
        self.allocator
            .is_allocated(addr.offset_from(self.virt_base), len)
    }
}

/// Registry of all pools, plus the physical-space reservation cursor.
#[derive(Debug, Clone)]
pub struct PoolRegistry {
    pools: Vec<Pool>,
    phys_capacity: u64,
    phys_cursor: u64,
}

impl PoolRegistry {
    /// Creates a registry managing a physical space of `phys_capacity` bytes.
    pub fn new(phys_capacity: u64) -> Self {
        PoolRegistry {
            pools: Vec::new(),
            phys_capacity,
            phys_cursor: 0,
        }
    }

    /// Total physical capacity managed.
    pub fn phys_capacity(&self) -> u64 {
        self.phys_capacity
    }

    /// Physical bytes not yet reserved by any pool.
    pub fn phys_available(&self) -> u64 {
        self.phys_capacity - self.phys_cursor
    }

    /// Creates a pool of `size` bytes. The pool's physical extent is carved
    /// from the unreserved physical space; its virtual base is derived from
    /// its index so that pools never overlap virtually.
    pub fn create_pool(&mut self, name: &str, size: u64) -> Result<PoolId, PoolError> {
        if self.pools.iter().any(|p| p.name == name) {
            return Err(PoolError::DuplicateName(name.to_string()));
        }
        // Align pool extents to 4 kB so interleaving blocks never straddle
        // pool boundaries mid-page.
        let size = size.div_ceil(4096) * 4096;
        if size > self.phys_available() {
            return Err(PoolError::NoSpace {
                requested: size,
                available: self.phys_available(),
            });
        }
        let id = PoolId(self.pools.len() as u32);
        let phys_base = PhysAddr(self.phys_cursor);
        self.phys_cursor += size;
        let virt_base = VirtAddr(POOL_VIRT_BASE + id.0 as u64 * POOL_VIRT_SPACING);
        self.pools.push(Pool {
            id,
            name: name.to_string(),
            virt_base,
            phys_base,
            size,
            allocator: FreeListAllocator::new(size),
        });
        Ok(id)
    }

    /// Access a pool by id.
    pub fn pool(&self, id: PoolId) -> Result<&Pool, PoolError> {
        self.pools
            .get(id.0 as usize)
            .ok_or(PoolError::UnknownPool(id))
    }

    /// Mutable access to a pool by id.
    pub fn pool_mut(&mut self, id: PoolId) -> Result<&mut Pool, PoolError> {
        self.pools
            .get_mut(id.0 as usize)
            .ok_or(PoolError::UnknownPool(id))
    }

    /// Looks up a pool by name.
    pub fn pool_by_name(&self, name: &str) -> Option<&Pool> {
        self.pools.iter().find(|p| p.name == name)
    }

    /// All pools.
    pub fn pools(&self) -> &[Pool] {
        &self.pools
    }

    /// Number of pools.
    pub fn len(&self) -> usize {
        self.pools.len()
    }

    /// True if no pools exist.
    pub fn is_empty(&self) -> bool {
        self.pools.is_empty()
    }

    /// Finds the pool containing a virtual address.
    pub fn pool_of(&self, addr: VirtAddr) -> Result<&Pool, PoolError> {
        self.pools
            .iter()
            .find(|p| p.contains(addr))
            .ok_or(PoolError::Unmapped(addr))
    }

    /// Translates a virtual address to a physical address.
    pub fn translate(&self, addr: VirtAddr) -> Result<PhysAddr, PoolError> {
        self.pool_of(addr)
            .map(|p| p.translate(addr).expect("contained"))
    }

    /// Translates a physical address back to a virtual address, if any pool
    /// covers it.
    pub fn translate_back(&self, addr: PhysAddr) -> Option<VirtAddr> {
        self.pools.iter().find_map(|p| p.translate_back(addr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_pool_and_translate() {
        let mut reg = PoolRegistry::new(1 << 20);
        let id = reg.create_pool("store", 64 * 1024).unwrap();
        let pool = reg.pool(id).unwrap();
        assert_eq!(pool.name(), "store");
        assert_eq!(pool.size(), 64 * 1024);
        assert_eq!(pool.phys_base(), PhysAddr(0));
        assert_eq!(pool.virt_base(), VirtAddr(POOL_VIRT_BASE));

        let v = pool.virt_base().offset(100);
        assert_eq!(reg.translate(v).unwrap(), PhysAddr(100));
        assert_eq!(reg.translate_back(PhysAddr(100)), Some(v));
    }

    #[test]
    fn second_pool_gets_distinct_bases() {
        let mut reg = PoolRegistry::new(1 << 20);
        let a = reg.create_pool("a", 4096).unwrap();
        let b = reg.create_pool("b", 4096).unwrap();
        let pa = reg.pool(a).unwrap();
        let pb = reg.pool(b).unwrap();
        assert_eq!(pb.phys_base(), PhysAddr(4096));
        assert_eq!(
            pb.virt_base().raw() - pa.virt_base().raw(),
            POOL_VIRT_SPACING
        );
        assert_ne!(pa.translation_offset(), pb.translation_offset());
    }

    #[test]
    fn duplicate_name_rejected() {
        let mut reg = PoolRegistry::new(1 << 20);
        reg.create_pool("x", 4096).unwrap();
        assert!(matches!(
            reg.create_pool("x", 4096),
            Err(PoolError::DuplicateName(_))
        ));
    }

    #[test]
    fn pool_size_rounds_to_pages_and_space_is_limited() {
        let mut reg = PoolRegistry::new(8192);
        let id = reg.create_pool("a", 5000).unwrap();
        assert_eq!(reg.pool(id).unwrap().size(), 8192);
        assert!(matches!(
            reg.create_pool("b", 1),
            Err(PoolError::NoSpace { .. })
        ));
    }

    #[test]
    fn alloc_and_free_inside_pool() {
        let mut reg = PoolRegistry::new(1 << 20);
        let id = reg.create_pool("kv", 64 * 1024).unwrap();
        let pool = reg.pool_mut(id).unwrap();
        let a = pool.alloc(256, 64).unwrap();
        let b = pool.alloc(256, 64).unwrap();
        assert_ne!(a, b);
        assert!(pool.contains(a));
        assert!(pool.is_allocated(a, 256));
        assert!(!pool.is_allocated(a, 64 * 1024));
        pool.free(a).unwrap();
        assert!(!pool.is_allocated(a, 1));
        assert_eq!(pool.allocated_bytes(), 256);
    }

    #[test]
    fn unmapped_address_reported() {
        let reg = PoolRegistry::new(1 << 20);
        assert!(matches!(
            reg.translate(VirtAddr(0xdead)),
            Err(PoolError::Unmapped(_))
        ));
        assert_eq!(reg.translate_back(PhysAddr(0)), None);
    }

    #[test]
    fn unknown_pool_reported() {
        let reg = PoolRegistry::new(4096);
        assert!(matches!(
            reg.pool(PoolId(9)),
            Err(PoolError::UnknownPool(_))
        ));
    }

    #[test]
    fn translation_offset_matches_definition() {
        let mut reg = PoolRegistry::new(1 << 20);
        let a = reg.create_pool("a", 8192).unwrap();
        let b = reg.create_pool("b", 8192).unwrap();
        for id in [a, b] {
            let p = reg.pool(id).unwrap();
            let v = p.virt_base().offset(1234);
            let phys = p.translate(v).unwrap();
            // phys = virt - offset, by the paper's translation rule.
            assert_eq!(phys.raw() as i128, v.raw() as i128 - p.translation_offset());
        }
    }
}
