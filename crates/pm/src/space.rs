//! The physical PM space: one or more device media behind an interleaver.
//!
//! [`PmSpace`] is the persistence domain of the whole machine: a write that
//! reaches it survives a crash. Reads and writes are addressed with global
//! physical addresses; the interleaver decides which device medium serves
//! each block.

use crate::addr::PhysAddr;
use crate::interleave::InterleaveConfig;
use crate::media::PmMedia;

/// Aggregate PM traffic statistics across all devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PmTraffic {
    /// Total write operations.
    pub write_ops: u64,
    /// Total bytes written.
    pub bytes_written: u64,
    /// Total read operations.
    pub read_ops: u64,
    /// Total bytes read.
    pub bytes_read: u64,
}

/// The emulated physical PM space of the machine.
#[derive(Debug, Clone)]
pub struct PmSpace {
    media: Vec<PmMedia>,
    interleave: InterleaveConfig,
    capacity: u64,
    /// Opt-in media write log: every mutation since
    /// [`PmSpace::enable_write_log`] as `(addr, bytes)`, in order. Replaying
    /// it onto a fresh zeroed space of the same geometry must reproduce the
    /// current image — the crash-point explorer's differential check that
    /// the persisted image is exactly the recorded mutation history.
    write_log: Option<Vec<(PhysAddr, Vec<u8>)>>,
}

impl PmSpace {
    /// Creates a PM space of `capacity` bytes spread over the devices
    /// described by `interleave`.
    pub fn new(capacity: u64, interleave: InterleaveConfig) -> Self {
        let per_device = interleave.per_device_capacity(capacity) as usize;
        let media = (0..interleave.devices)
            .map(|_| PmMedia::new(per_device))
            .collect();
        PmSpace {
            media,
            interleave,
            capacity,
            write_log: None,
        }
    }

    /// Single-device space (the common unit-test configuration).
    pub fn single(capacity: u64) -> Self {
        PmSpace::new(capacity, InterleaveConfig::single())
    }

    /// Total addressable capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Number of PM devices backing the space.
    pub fn device_count(&self) -> usize {
        self.media.len()
    }

    /// The interleaving configuration.
    pub fn interleave(&self) -> &InterleaveConfig {
        &self.interleave
    }

    /// The device that owns physical address `addr`.
    pub fn device_of(&self, addr: PhysAddr) -> usize {
        self.interleave.device_of(addr)
    }

    /// The devices touched by the physical range.
    pub fn devices_of(&self, addr: PhysAddr, len: u64) -> Vec<usize> {
        self.interleave.devices_of(addr, len)
    }

    /// Reads `buf.len()` bytes starting at physical address `addr`.
    pub fn read(&mut self, addr: PhysAddr, buf: &mut [u8]) {
        assert!(
            addr.raw() + buf.len() as u64 <= self.capacity,
            "PM space read out of bounds at {addr} len {}",
            buf.len()
        );
        let mut cursor = 0usize;
        for span in self.interleave.split(addr, buf.len() as u64) {
            let len = span.len as usize;
            self.media[span.device]
                .read(span.local_offset as usize, &mut buf[cursor..cursor + len]);
            cursor += len;
        }
    }

    /// Reads `len` bytes starting at `addr` into a new vector.
    pub fn read_vec(&mut self, addr: PhysAddr, len: usize) -> Vec<u8> {
        let mut v = vec![0; len];
        self.read(addr, &mut v);
        v
    }

    /// Writes `data` starting at physical address `addr`. The data is durable
    /// once this returns (this *is* the persistence domain).
    pub fn write(&mut self, addr: PhysAddr, data: &[u8]) {
        assert!(
            addr.raw() + data.len() as u64 <= self.capacity,
            "PM space write out of bounds at {addr} len {}",
            data.len()
        );
        if let Some(log) = &mut self.write_log {
            log.push((addr, data.to_vec()));
        }
        let mut cursor = 0usize;
        for span in self.interleave.split(addr, data.len() as u64) {
            let len = span.len as usize;
            self.media[span.device].write(span.local_offset as usize, &data[cursor..cursor + len]);
            cursor += len;
        }
    }

    /// Copies `len` bytes from physical `src` to physical `dst` without an
    /// intermediate allocation: the source and destination span lists are
    /// walked in lockstep and each chunk is moved media-to-media (or with
    /// `copy_within` when both ends live on the same device).
    pub fn copy(&mut self, src: PhysAddr, dst: PhysAddr, len: usize) {
        if len == 0 {
            return;
        }
        assert!(
            src.raw() + len as u64 <= self.capacity,
            "PM space copy source out of bounds at {src} len {len}"
        );
        assert!(
            dst.raw() + len as u64 <= self.capacity,
            "PM space copy destination out of bounds at {dst} len {len}"
        );
        // Overlapping ranges need the source buffered before any chunk is
        // written (a later chunk may re-read bytes an earlier chunk already
        // overwrote); the hot paths only ever copy disjoint ranges. The
        // buffered path also serves write logging, which needs the moved
        // bytes materialized to record them.
        if self.write_log.is_some()
            || (src.raw() < dst.raw() + len as u64 && dst.raw() < src.raw() + len as u64)
        {
            let data = self.read_vec(src, len);
            self.write(dst, &data);
            return;
        }
        let src_spans = self.interleave.split(src, len as u64);
        let dst_spans = self.interleave.split(dst, len as u64);
        let (mut si, mut di) = (0usize, 0usize);
        let (mut s_done, mut d_done) = (0u64, 0u64);
        while si < src_spans.len() && di < dst_spans.len() {
            let s = &src_spans[si];
            let d = &dst_spans[di];
            let chunk = (s.len - s_done).min(d.len - d_done) as usize;
            let s_local = (s.local_offset + s_done) as usize;
            let d_local = (d.local_offset + d_done) as usize;
            if s.device == d.device {
                self.media[s.device].copy_within(s_local, d_local, chunk);
            } else {
                // Distinct devices: split the media vector to borrow both.
                let (lo, hi) = (s.device.min(d.device), s.device.max(d.device));
                let (head, tail) = self.media.split_at_mut(hi);
                let (first, second) = (&mut head[lo], &mut tail[0]);
                if s.device < d.device {
                    first.copy_to(s_local, second, d_local, chunk);
                } else {
                    second.copy_to(s_local, first, d_local, chunk);
                }
            }
            s_done += chunk as u64;
            d_done += chunk as u64;
            if s_done == s.len {
                si += 1;
                s_done = 0;
            }
            if d_done == d.len {
                di += 1;
                d_done = 0;
            }
        }
    }

    /// Fills `len` bytes at `addr` with `value` (no intermediate buffer).
    pub fn fill(&mut self, addr: PhysAddr, len: usize, value: u8) {
        assert!(
            addr.raw() + len as u64 <= self.capacity,
            "PM space fill out of bounds at {addr} len {len}"
        );
        if let Some(log) = &mut self.write_log {
            log.push((addr, vec![value; len]));
        }
        for span in self.interleave.split(addr, len as u64) {
            self.media[span.device].fill(span.local_offset as usize, span.len as usize, value);
        }
    }

    /// Aggregated traffic statistics across devices.
    pub fn traffic(&self) -> PmTraffic {
        let mut t = PmTraffic::default();
        for m in &self.media {
            t.write_ops += m.write_ops();
            t.bytes_written += m.bytes_written();
            t.read_ops += m.read_ops();
            t.bytes_read += m.bytes_read();
        }
        t
    }

    /// Traffic statistics of one device.
    pub fn device_traffic(&self, device: usize) -> PmTraffic {
        let m = &self.media[device];
        PmTraffic {
            write_ops: m.write_ops(),
            bytes_written: m.bytes_written(),
            read_ops: m.read_ops(),
            bytes_read: m.bytes_read(),
        }
    }

    /// Resets traffic statistics on all devices.
    pub fn reset_stats(&mut self) {
        for m in &mut self.media {
            m.reset_stats();
        }
    }

    /// Borrowed view of one device's full persistent image — the zero-copy
    /// alternative to [`PmSpace::snapshot`] when a read-only look suffices.
    pub fn device_contents(&self, device: usize) -> &[u8] {
        self.media[device].contents()
    }

    /// Snapshot of the full persistent image (used by crash-equivalence
    /// checks in tests; cloning multi-megabyte spaces is acceptable there).
    /// Hot paths should use [`PmSpace::device_contents`] instead.
    pub fn snapshot(&self) -> Vec<Vec<u8>> {
        self.media.iter().map(|m| m.contents().to_vec()).collect()
    }

    // ------------------------------------------------------------------
    // Media write log (deterministic replay)
    // ------------------------------------------------------------------

    /// Starts recording every media mutation. Enable this immediately after
    /// construction (while the space is still zeroed) so the log is a
    /// complete mutation history of the image.
    pub fn enable_write_log(&mut self) {
        if self.write_log.is_none() {
            self.write_log = Some(Vec::new());
        }
    }

    /// True when the write log is recording.
    pub fn write_log_enabled(&self) -> bool {
        self.write_log.is_some()
    }

    /// Number of recorded mutations (0 when the log is disabled).
    pub fn write_log_len(&self) -> usize {
        self.write_log.as_ref().map_or(0, |l| l.len())
    }

    /// Replays the recorded mutation history onto a fresh zeroed space of
    /// the same geometry and returns the resulting per-device images.
    /// `None` when the log was never enabled.
    pub fn replay_write_log(&self) -> Option<Vec<Vec<u8>>> {
        let log = self.write_log.as_ref()?;
        let mut fresh = PmSpace::new(self.capacity, self.interleave);
        for (addr, data) in log {
            fresh.write(*addr, data);
        }
        Some(fresh.snapshot())
    }

    /// Differential replay check: true iff replaying the write log onto a
    /// fresh space reproduces the current image byte for byte. False when
    /// the log is disabled (there is nothing to verify against).
    pub fn replay_matches(&self) -> bool {
        match self.replay_write_log() {
            Some(replayed) => self
                .media
                .iter()
                .zip(replayed.iter())
                .all(|(m, r)| m.contents() == r.as_slice()),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_device_roundtrip() {
        let mut s = PmSpace::single(1 << 16);
        s.write(PhysAddr(0x100), &[9, 8, 7]);
        assert_eq!(s.read_vec(PhysAddr(0x100), 3), vec![9, 8, 7]);
        assert_eq!(s.device_count(), 1);
    }

    #[test]
    fn interleaved_write_crossing_devices_roundtrips() {
        let mut s = PmSpace::new(1 << 16, InterleaveConfig::new(2, 4096));
        // Write a pattern spanning the 4 kB interleave boundary.
        let data: Vec<u8> = (0..8192u32).map(|i| (i % 251) as u8).collect();
        s.write(PhysAddr(1024), &data);
        assert_eq!(s.read_vec(PhysAddr(1024), 8192), data);
        // Both devices must have received traffic.
        assert!(s.device_traffic(0).bytes_written > 0);
        assert!(s.device_traffic(1).bytes_written > 0);
        assert_eq!(s.devices_of(PhysAddr(1024), 8192), vec![0, 1]);
    }

    #[test]
    fn copy_and_fill() {
        let mut s = PmSpace::single(1 << 16);
        s.fill(PhysAddr(0), 64, 0x5A);
        s.copy(PhysAddr(0), PhysAddr(4096), 64);
        assert_eq!(s.read_vec(PhysAddr(4096), 64), vec![0x5A; 64]);
    }

    #[test]
    fn traffic_aggregation() {
        let mut s = PmSpace::new(1 << 16, InterleaveConfig::new(2, 4096));
        s.write(PhysAddr(0), &[0; 128]);
        s.write(PhysAddr(4096), &[0; 128]);
        let t = s.traffic();
        assert_eq!(t.bytes_written, 256);
        assert_eq!(t.write_ops, 2);
        s.reset_stats();
        assert_eq!(s.traffic().bytes_written, 0);
    }

    #[test]
    fn cross_device_copy_without_intermediate_buffer() {
        let mut s = PmSpace::new(1 << 16, InterleaveConfig::new(2, 4096));
        let data: Vec<u8> = (0..6000u32).map(|i| (i % 251) as u8).collect();
        // Source spans both devices; destination starts on the other device.
        s.write(PhysAddr(1024), &data);
        s.copy(PhysAddr(1024), PhysAddr(4096 + 512), 6000);
        assert_eq!(s.read_vec(PhysAddr(4096 + 512), 6000), data);
    }

    #[test]
    fn overlapping_copy_preserves_source_semantics() {
        let mut s = PmSpace::new(1 << 16, InterleaveConfig::new(2, 4096));
        let data: Vec<u8> = (0..8192u32).map(|i| (i % 241) as u8).collect();
        s.write(PhysAddr(0), &data);
        // Destination overlaps the source across the interleave boundary.
        s.copy(PhysAddr(0), PhysAddr(2048), 8192);
        assert_eq!(s.read_vec(PhysAddr(2048), 8192), data);
    }

    #[test]
    fn device_contents_borrows_the_image() {
        let mut s = PmSpace::single(8192);
        s.write(PhysAddr(10), &[1, 2, 3]);
        assert_eq!(&s.device_contents(0)[10..13], &[1, 2, 3]);
    }

    #[test]
    fn snapshot_reflects_persistent_image() {
        let mut s = PmSpace::single(8192);
        s.write(PhysAddr(10), &[1, 2, 3]);
        let snap = s.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(&snap[0][10..13], &[1, 2, 3]);
    }

    #[test]
    fn write_log_replay_reproduces_the_image() {
        let mut s = PmSpace::new(1 << 16, InterleaveConfig::new(2, 4096));
        s.enable_write_log();
        assert!(s.write_log_enabled());
        let data: Vec<u8> = (0..8192u32).map(|i| (i % 251) as u8).collect();
        s.write(PhysAddr(1024), &data);
        s.fill(PhysAddr(0), 512, 0x5A);
        s.copy(PhysAddr(1024), PhysAddr(20000), 6000);
        // Overlapping copy exercises the buffered path too.
        s.copy(PhysAddr(1024), PhysAddr(3072), 8192);
        assert!(s.write_log_len() >= 4);
        let replayed = s.replay_write_log().unwrap();
        assert_eq!(replayed, s.snapshot());
        assert!(s.replay_matches());
    }

    #[test]
    fn write_log_disabled_has_no_replay() {
        let mut s = PmSpace::single(4096);
        s.write(PhysAddr(0), &[1, 2, 3]);
        assert_eq!(s.write_log_len(), 0);
        assert!(s.replay_write_log().is_none());
        assert!(!s.replay_matches());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_write_rejected() {
        let mut s = PmSpace::single(4096);
        s.write(PhysAddr(4090), &[0; 10]);
    }

    #[test]
    fn capacity_is_fully_addressable_when_interleaved() {
        let mut s = PmSpace::new(3 * 4096, InterleaveConfig::new(2, 4096));
        // The last byte of the requested capacity must be addressable.
        s.write(PhysAddr(3 * 4096 - 1), &[0xFF]);
        assert_eq!(s.read_vec(PhysAddr(3 * 4096 - 1), 1), vec![0xFF]);
    }
}
