//! The physical PM space: one or more device media behind an interleaver.
//!
//! [`PmSpace`] is the persistence domain of the whole machine: a write that
//! reaches it survives a crash. Reads and writes are addressed with global
//! physical addresses; the interleaver decides which device medium serves
//! each block.

use crate::addr::PhysAddr;
use crate::interleave::{DeviceList, InterleaveConfig};
use crate::media::{MediaConfig, MediaError, MediaKind, PmMedia};

/// Aggregate PM traffic statistics across all devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PmTraffic {
    /// Total write operations.
    pub write_ops: u64,
    /// Total bytes written.
    pub bytes_written: u64,
    /// Total read operations.
    pub read_ops: u64,
    /// Total bytes read.
    pub bytes_read: u64,
}

/// Typed error recording that the opt-in write log exceeded its configured
/// byte limit. The log's entries are dropped when this happens (the memory
/// is reclaimed); the error stays queryable via
/// [`PmSpace::write_log_overflow`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteLogOverflow {
    /// The configured payload-byte limit.
    pub limit: u64,
    /// Payload bytes the log would have held at the overflowing record.
    pub attempted: u64,
}

impl std::fmt::Display for WriteLogOverflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PM write log overflowed: {} payload bytes exceed the {}-byte limit",
            self.attempted, self.limit
        )
    }
}

impl std::error::Error for WriteLogOverflow {}

/// Opt-in media write log: every mutation since [`PmSpace::enable_write_log`]
/// as `(addr, bytes)`, in order. Replaying it onto a fresh zeroed space of
/// the same geometry must reproduce the current image — the crash-point
/// explorer's differential check that the persisted image is exactly the
/// recorded mutation history.
///
/// Consecutive entries that extend the previous address range (streaming
/// writes) or overwrite exactly the previous range (idempotent retries) are
/// coalesced in place, and total payload bytes can be capped; past the cap
/// the log drops its entries and records a [`WriteLogOverflow`] instead of
/// growing without bound.
#[derive(Debug, Clone)]
struct WriteLog {
    entries: Vec<(PhysAddr, Vec<u8>)>,
    bytes: u64,
    limit: Option<u64>,
    overflow: Option<WriteLogOverflow>,
    coalesced: u64,
}

impl WriteLog {
    fn new(limit: Option<u64>) -> Self {
        WriteLog {
            entries: Vec::new(),
            bytes: 0,
            limit,
            overflow: None,
            coalesced: 0,
        }
    }

    fn record(&mut self, addr: PhysAddr, data: &[u8]) {
        if self.overflow.is_some() || data.is_empty() {
            return;
        }
        let fits = !self.would_overflow(data.len() as u64);
        if let Some((prev_addr, prev_data)) = self.entries.last_mut() {
            if prev_addr.raw() + prev_data.len() as u64 == addr.raw() {
                // Streaming append: extend the previous entry in place.
                if fits {
                    prev_data.extend_from_slice(data);
                    self.bytes += data.len() as u64;
                    self.coalesced += 1;
                    return;
                }
            } else if *prev_addr == addr && prev_data.len() == data.len() {
                // Same-range overwrite: only the last value matters.
                prev_data.copy_from_slice(data);
                self.coalesced += 1;
                return;
            }
        }
        if self.would_overflow(data.len() as u64) {
            self.overflow = Some(WriteLogOverflow {
                limit: self.limit.unwrap_or(u64::MAX),
                attempted: self.bytes + data.len() as u64,
            });
            self.entries = Vec::new();
            self.bytes = 0;
            return;
        }
        self.entries.push((addr, data.to_vec()));
        self.bytes += data.len() as u64;
    }

    fn would_overflow(&self, extra: u64) -> bool {
        self.limit.is_some_and(|limit| self.bytes + extra > limit)
    }
}

/// The emulated physical PM space of the machine.
#[derive(Debug, Clone)]
pub struct PmSpace {
    media: Vec<PmMedia>,
    interleave: InterleaveConfig,
    capacity: u64,
    media_config: MediaConfig,
    write_log: Option<WriteLog>,
}

impl PmSpace {
    /// Creates a heap-backed PM space of `capacity` bytes spread over the
    /// devices described by `interleave`.
    pub fn new(capacity: u64, interleave: InterleaveConfig) -> Self {
        PmSpace::with_media(capacity, interleave, &MediaConfig::Heap)
            .expect("heap media cannot fail")
    }

    /// Creates a PM space with the storage engine selected by `config`.
    pub fn with_media(
        capacity: u64,
        interleave: InterleaveConfig,
        config: &MediaConfig,
    ) -> Result<Self, MediaError> {
        let per_device = interleave.per_device_capacity(capacity) as usize;
        let media = (0..interleave.devices)
            .map(|d| config.create_device(d, per_device))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(PmSpace {
            media,
            interleave,
            capacity,
            media_config: config.clone(),
            write_log: None,
        })
    }

    /// Reopens a PM space over existing device images without zeroing them
    /// (meaningful for [`MediaConfig::File`]; a fresh process attaches to
    /// the image a crashed run left behind).
    pub fn reopen(
        capacity: u64,
        interleave: InterleaveConfig,
        config: &MediaConfig,
    ) -> Result<Self, MediaError> {
        let per_device = interleave.per_device_capacity(capacity) as usize;
        let media = (0..interleave.devices)
            .map(|d| config.reopen_device(d, per_device))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(PmSpace {
            media,
            interleave,
            capacity,
            media_config: config.clone(),
            write_log: None,
        })
    }

    /// Single-device space (the common unit-test configuration).
    pub fn single(capacity: u64) -> Self {
        PmSpace::new(capacity, InterleaveConfig::single())
    }

    /// Total addressable capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Number of PM devices backing the space.
    pub fn device_count(&self) -> usize {
        self.media.len()
    }

    /// The interleaving configuration.
    pub fn interleave(&self) -> &InterleaveConfig {
        &self.interleave
    }

    /// The device that owns physical address `addr`.
    pub fn device_of(&self, addr: PhysAddr) -> usize {
        self.interleave.device_of(addr)
    }

    /// The devices touched by the physical range.
    pub fn devices_of(&self, addr: PhysAddr, len: u64) -> DeviceList {
        self.interleave.devices_of(addr, len)
    }

    /// The storage engine backing the devices.
    pub fn media_kind(&self) -> MediaKind {
        self.media_config.kind()
    }

    /// The media configuration this space was built with.
    pub fn media_config(&self) -> &MediaConfig {
        &self.media_config
    }

    /// Total RAM currently held resident by the device backends.
    pub fn resident_bytes(&self) -> usize {
        self.media.iter().map(|m| m.resident_bytes()).sum()
    }

    /// Flushes every device backend to durable storage (no-op for volatile
    /// engines).
    pub fn sync_all(&mut self) -> Result<(), MediaError> {
        for m in &mut self.media {
            m.sync()?;
        }
        Ok(())
    }

    /// Reads `buf.len()` bytes starting at physical address `addr`.
    pub fn read(&mut self, addr: PhysAddr, buf: &mut [u8]) {
        assert!(
            addr.raw() + buf.len() as u64 <= self.capacity,
            "PM space read out of bounds at {addr} len {}",
            buf.len()
        );
        let mut cursor = 0usize;
        for span in self.interleave.split(addr, buf.len() as u64) {
            let len = span.len as usize;
            self.media[span.device]
                .read(span.local_offset as usize, &mut buf[cursor..cursor + len]);
            cursor += len;
        }
    }

    /// Reads `len` bytes starting at `addr` into a new vector.
    pub fn read_vec(&mut self, addr: PhysAddr, len: usize) -> Vec<u8> {
        let mut v = vec![0; len];
        self.read(addr, &mut v);
        v
    }

    /// Writes `data` starting at physical address `addr`. The data is durable
    /// once this returns (this *is* the persistence domain).
    pub fn write(&mut self, addr: PhysAddr, data: &[u8]) {
        assert!(
            addr.raw() + data.len() as u64 <= self.capacity,
            "PM space write out of bounds at {addr} len {}",
            data.len()
        );
        if let Some(log) = &mut self.write_log {
            log.record(addr, data);
        }
        let mut cursor = 0usize;
        for span in self.interleave.split(addr, data.len() as u64) {
            let len = span.len as usize;
            self.media[span.device].write(span.local_offset as usize, &data[cursor..cursor + len]);
            cursor += len;
        }
    }

    /// Copies `len` bytes from physical `src` to physical `dst` without an
    /// intermediate allocation: the source and destination span lists are
    /// walked in lockstep and each chunk is moved media-to-media (or with
    /// `copy_within` when both ends live on the same device).
    pub fn copy(&mut self, src: PhysAddr, dst: PhysAddr, len: usize) {
        if len == 0 {
            return;
        }
        assert!(
            src.raw() + len as u64 <= self.capacity,
            "PM space copy source out of bounds at {src} len {len}"
        );
        assert!(
            dst.raw() + len as u64 <= self.capacity,
            "PM space copy destination out of bounds at {dst} len {len}"
        );
        // Overlapping ranges need the source buffered before any chunk is
        // written (a later chunk may re-read bytes an earlier chunk already
        // overwrote); the hot paths only ever copy disjoint ranges. The
        // buffered path also serves write logging, which needs the moved
        // bytes materialized to record them.
        if self.write_log.is_some()
            || (src.raw() < dst.raw() + len as u64 && dst.raw() < src.raw() + len as u64)
        {
            let data = self.read_vec(src, len);
            self.write(dst, &data);
            return;
        }
        let src_spans = self.interleave.split(src, len as u64);
        let dst_spans = self.interleave.split(dst, len as u64);
        let (mut si, mut di) = (0usize, 0usize);
        let (mut s_done, mut d_done) = (0u64, 0u64);
        while si < src_spans.len() && di < dst_spans.len() {
            let s = &src_spans[si];
            let d = &dst_spans[di];
            let chunk = (s.len - s_done).min(d.len - d_done) as usize;
            let s_local = (s.local_offset + s_done) as usize;
            let d_local = (d.local_offset + d_done) as usize;
            if s.device == d.device {
                self.media[s.device].copy_within(s_local, d_local, chunk);
            } else {
                // Distinct devices: split the media vector to borrow both.
                let (lo, hi) = (s.device.min(d.device), s.device.max(d.device));
                let (head, tail) = self.media.split_at_mut(hi);
                let (first, second) = (&mut head[lo], &mut tail[0]);
                if s.device < d.device {
                    first.copy_to(s_local, second, d_local, chunk);
                } else {
                    second.copy_to(s_local, first, d_local, chunk);
                }
            }
            s_done += chunk as u64;
            d_done += chunk as u64;
            if s_done == s.len {
                si += 1;
                s_done = 0;
            }
            if d_done == d.len {
                di += 1;
                d_done = 0;
            }
        }
    }

    /// Fills `len` bytes at `addr` with `value` (no intermediate buffer).
    pub fn fill(&mut self, addr: PhysAddr, len: usize, value: u8) {
        assert!(
            addr.raw() + len as u64 <= self.capacity,
            "PM space fill out of bounds at {addr} len {len}"
        );
        if let Some(log) = &mut self.write_log {
            log.record(addr, &vec![value; len]);
        }
        for span in self.interleave.split(addr, len as u64) {
            self.media[span.device].fill(span.local_offset as usize, span.len as usize, value);
        }
    }

    /// Aggregated traffic statistics across devices.
    pub fn traffic(&self) -> PmTraffic {
        let mut t = PmTraffic::default();
        for m in &self.media {
            t.write_ops += m.write_ops();
            t.bytes_written += m.bytes_written();
            t.read_ops += m.read_ops();
            t.bytes_read += m.bytes_read();
        }
        t
    }

    /// Traffic statistics of one device.
    pub fn device_traffic(&self, device: usize) -> PmTraffic {
        let m = &self.media[device];
        PmTraffic {
            write_ops: m.write_ops(),
            bytes_written: m.bytes_written(),
            read_ops: m.read_ops(),
            bytes_read: m.bytes_read(),
        }
    }

    /// Resets traffic statistics on all devices.
    pub fn reset_stats(&mut self) {
        for m in &mut self.media {
            m.reset_stats();
        }
    }

    /// Borrowed view of one device's full persistent image — the zero-copy
    /// alternative to [`PmSpace::snapshot`] when a read-only look suffices.
    ///
    /// # Panics
    ///
    /// Panics for storage engines that do not keep the image contiguously
    /// in RAM; backend-agnostic callers use [`PmSpace::device_image`] or
    /// [`PmSpace::peek`].
    pub fn device_contents(&self, device: usize) -> &[u8] {
        self.media[device].contents()
    }

    /// Owned copy of one device's full persistent image; works for every
    /// storage engine and does not touch the traffic statistics.
    pub fn device_image(&self, device: usize) -> Vec<u8> {
        self.media[device].image()
    }

    /// Reads `buf.len()` bytes at `addr` without touching the traffic
    /// statistics — for recovery checks and differential oracles that must
    /// not perturb accounting.
    pub fn peek(&self, addr: PhysAddr, buf: &mut [u8]) {
        assert!(
            addr.raw() + buf.len() as u64 <= self.capacity,
            "PM space read out of bounds at {addr} len {}",
            buf.len()
        );
        let mut cursor = 0usize;
        for span in self.interleave.split(addr, buf.len() as u64) {
            let len = span.len as usize;
            self.media[span.device]
                .peek(span.local_offset as usize, &mut buf[cursor..cursor + len]);
            cursor += len;
        }
    }

    /// Stat-free read of `len` bytes at `addr` into a new vector.
    pub fn peek_vec(&self, addr: PhysAddr, len: usize) -> Vec<u8> {
        let mut v = vec![0; len];
        self.peek(addr, &mut v);
        v
    }

    /// Snapshot of the full persistent image (used by crash-equivalence
    /// checks in tests; cloning multi-megabyte spaces is acceptable there).
    /// Hot paths should use [`PmSpace::device_contents`] instead.
    pub fn snapshot(&self) -> Vec<Vec<u8>> {
        self.media.iter().map(|m| m.image()).collect()
    }

    // ------------------------------------------------------------------
    // Media write log (deterministic replay)
    // ------------------------------------------------------------------

    /// Starts recording every media mutation with no byte limit. Enable
    /// this immediately after construction (while the space is still
    /// zeroed) so the log is a complete mutation history of the image.
    pub fn enable_write_log(&mut self) {
        if self.write_log.is_none() {
            self.write_log = Some(WriteLog::new(None));
        }
    }

    /// Starts recording with a payload-byte cap. When coalesced payload
    /// bytes would exceed `max_bytes`, the log drops its entries and
    /// records a [`WriteLogOverflow`] instead of growing without bound.
    pub fn enable_write_log_with_limit(&mut self, max_bytes: u64) {
        if self.write_log.is_none() {
            self.write_log = Some(WriteLog::new(Some(max_bytes)));
        }
    }

    /// True when the write log is recording.
    pub fn write_log_enabled(&self) -> bool {
        self.write_log.is_some()
    }

    /// Number of recorded mutations after coalescing (0 when the log is
    /// disabled or has overflowed).
    pub fn write_log_len(&self) -> usize {
        self.write_log.as_ref().map_or(0, |l| l.entries.len())
    }

    /// Payload bytes currently held by the log.
    pub fn write_log_bytes(&self) -> u64 {
        self.write_log.as_ref().map_or(0, |l| l.bytes)
    }

    /// Number of mutations absorbed into an existing entry by coalescing.
    pub fn write_log_coalesced(&self) -> u64 {
        self.write_log.as_ref().map_or(0, |l| l.coalesced)
    }

    /// The typed overflow error, if the log exceeded its byte limit.
    pub fn write_log_overflow(&self) -> Option<WriteLogOverflow> {
        self.write_log.as_ref().and_then(|l| l.overflow)
    }

    /// Replays the recorded mutation history onto a fresh zeroed heap space
    /// of the same geometry and returns the resulting per-device images.
    /// `None` when the log was never enabled or has overflowed (the
    /// history is incomplete).
    pub fn replay_write_log(&self) -> Option<Vec<Vec<u8>>> {
        let log = self.write_log.as_ref()?;
        if log.overflow.is_some() {
            return None;
        }
        let mut fresh = PmSpace::new(self.capacity, self.interleave);
        for (addr, data) in &log.entries {
            fresh.write(*addr, data);
        }
        Some(fresh.snapshot())
    }

    /// Differential replay check: true iff replaying the write log onto a
    /// fresh space reproduces the current image byte for byte. False when
    /// the log is disabled or overflowed (there is nothing to verify
    /// against).
    pub fn replay_matches(&self) -> bool {
        match self.replay_write_log() {
            Some(replayed) => self
                .media
                .iter()
                .zip(replayed.iter())
                .all(|(m, r)| m.image() == *r),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_device_roundtrip() {
        let mut s = PmSpace::single(1 << 16);
        s.write(PhysAddr(0x100), &[9, 8, 7]);
        assert_eq!(s.read_vec(PhysAddr(0x100), 3), vec![9, 8, 7]);
        assert_eq!(s.device_count(), 1);
    }

    #[test]
    fn interleaved_write_crossing_devices_roundtrips() {
        let mut s = PmSpace::new(1 << 16, InterleaveConfig::new(2, 4096));
        // Write a pattern spanning the 4 kB interleave boundary.
        let data: Vec<u8> = (0..8192u32).map(|i| (i % 251) as u8).collect();
        s.write(PhysAddr(1024), &data);
        assert_eq!(s.read_vec(PhysAddr(1024), 8192), data);
        // Both devices must have received traffic.
        assert!(s.device_traffic(0).bytes_written > 0);
        assert!(s.device_traffic(1).bytes_written > 0);
        assert_eq!(s.devices_of(PhysAddr(1024), 8192), vec![0, 1]);
    }

    #[test]
    fn copy_and_fill() {
        let mut s = PmSpace::single(1 << 16);
        s.fill(PhysAddr(0), 64, 0x5A);
        s.copy(PhysAddr(0), PhysAddr(4096), 64);
        assert_eq!(s.read_vec(PhysAddr(4096), 64), vec![0x5A; 64]);
    }

    #[test]
    fn traffic_aggregation() {
        let mut s = PmSpace::new(1 << 16, InterleaveConfig::new(2, 4096));
        s.write(PhysAddr(0), &[0; 128]);
        s.write(PhysAddr(4096), &[0; 128]);
        let t = s.traffic();
        assert_eq!(t.bytes_written, 256);
        assert_eq!(t.write_ops, 2);
        s.reset_stats();
        assert_eq!(s.traffic().bytes_written, 0);
    }

    #[test]
    fn cross_device_copy_without_intermediate_buffer() {
        let mut s = PmSpace::new(1 << 16, InterleaveConfig::new(2, 4096));
        let data: Vec<u8> = (0..6000u32).map(|i| (i % 251) as u8).collect();
        // Source spans both devices; destination starts on the other device.
        s.write(PhysAddr(1024), &data);
        s.copy(PhysAddr(1024), PhysAddr(4096 + 512), 6000);
        assert_eq!(s.read_vec(PhysAddr(4096 + 512), 6000), data);
    }

    #[test]
    fn overlapping_copy_preserves_source_semantics() {
        let mut s = PmSpace::new(1 << 16, InterleaveConfig::new(2, 4096));
        let data: Vec<u8> = (0..8192u32).map(|i| (i % 241) as u8).collect();
        s.write(PhysAddr(0), &data);
        // Destination overlaps the source across the interleave boundary.
        s.copy(PhysAddr(0), PhysAddr(2048), 8192);
        assert_eq!(s.read_vec(PhysAddr(2048), 8192), data);
    }

    #[test]
    fn device_contents_borrows_the_image() {
        let mut s = PmSpace::single(8192);
        s.write(PhysAddr(10), &[1, 2, 3]);
        assert_eq!(&s.device_contents(0)[10..13], &[1, 2, 3]);
    }

    #[test]
    fn snapshot_reflects_persistent_image() {
        let mut s = PmSpace::single(8192);
        s.write(PhysAddr(10), &[1, 2, 3]);
        let snap = s.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(&snap[0][10..13], &[1, 2, 3]);
    }

    #[test]
    fn write_log_replay_reproduces_the_image() {
        let mut s = PmSpace::new(1 << 16, InterleaveConfig::new(2, 4096));
        s.enable_write_log();
        assert!(s.write_log_enabled());
        let data: Vec<u8> = (0..8192u32).map(|i| (i % 251) as u8).collect();
        s.write(PhysAddr(1024), &data);
        s.fill(PhysAddr(0), 512, 0x5A);
        s.copy(PhysAddr(1024), PhysAddr(20000), 6000);
        // Overlapping copy exercises the buffered path too.
        s.copy(PhysAddr(1024), PhysAddr(3072), 8192);
        assert!(s.write_log_len() >= 4);
        let replayed = s.replay_write_log().unwrap();
        assert_eq!(replayed, s.snapshot());
        assert!(s.replay_matches());
    }

    #[test]
    fn write_log_disabled_has_no_replay() {
        let mut s = PmSpace::single(4096);
        s.write(PhysAddr(0), &[1, 2, 3]);
        assert_eq!(s.write_log_len(), 0);
        assert!(s.replay_write_log().is_none());
        assert!(!s.replay_matches());
    }

    #[test]
    fn write_log_coalesces_streaming_and_overwrites() {
        let mut s = PmSpace::single(1 << 16);
        s.enable_write_log();
        // Streaming: three adjacent writes coalesce to one entry.
        s.write(PhysAddr(0), &[1; 64]);
        s.write(PhysAddr(64), &[2; 64]);
        s.write(PhysAddr(128), &[3; 64]);
        assert_eq!(s.write_log_len(), 1);
        assert_eq!(s.write_log_bytes(), 192);
        // Same-range overwrite: replaced in place, not appended.
        s.write(PhysAddr(0), &[9; 192]);
        assert_eq!(s.write_log_len(), 1);
        assert_eq!(s.write_log_coalesced(), 3);
        assert!(s.replay_matches());
    }

    #[test]
    fn bounded_write_log_overflows_with_typed_error() {
        let mut s = PmSpace::single(1 << 16);
        s.enable_write_log_with_limit(100);
        s.write(PhysAddr(0), &[1; 64]);
        assert!(s.write_log_overflow().is_none());
        s.write(PhysAddr(1000), &[2; 64]); // 128 > 100 → overflow
        let err = s.write_log_overflow().expect("must overflow");
        assert_eq!(err.limit, 100);
        assert_eq!(err.attempted, 128);
        assert!(err.to_string().contains("100-byte limit"), "{err}");
        // Entries are dropped; replay is unavailable but writes still land.
        assert_eq!(s.write_log_len(), 0);
        assert!(s.replay_write_log().is_none());
        assert!(!s.replay_matches());
        assert_eq!(s.read_vec(PhysAddr(1000), 2), vec![2, 2]);
    }

    #[test]
    fn peek_reads_without_stats() {
        let mut s = PmSpace::new(1 << 16, InterleaveConfig::new(2, 4096));
        let data: Vec<u8> = (0..8192u32).map(|i| (i % 251) as u8).collect();
        s.write(PhysAddr(1024), &data);
        let before = s.traffic();
        assert_eq!(s.peek_vec(PhysAddr(1024), 8192), data);
        assert_eq!(s.traffic(), before);
        assert_eq!(s.device_image(0).len(), s.device_contents(0).len());
    }

    #[test]
    fn with_media_backends_match_heap() {
        let dir = std::env::temp_dir().join(format!("nearpm-space-test-{}", std::process::id()));
        let geometries = [MediaConfig::Sparse, MediaConfig::File { dir: dir.clone() }];
        let il = InterleaveConfig::new(3, 4096);
        let mut heap = PmSpace::new(1 << 16, il);
        let data: Vec<u8> = (0..20000u32).map(|i| (i % 249) as u8).collect();
        heap.write(PhysAddr(100), &data);
        heap.fill(PhysAddr(40000), 5000, 0x3C);
        heap.copy(PhysAddr(100), PhysAddr(30000), 9000);
        for cfg in &geometries {
            let mut other = PmSpace::with_media(1 << 16, il, cfg).unwrap();
            other.write(PhysAddr(100), &data);
            other.fill(PhysAddr(40000), 5000, 0x3C);
            other.copy(PhysAddr(100), PhysAddr(30000), 9000);
            assert_eq!(heap.snapshot(), other.snapshot(), "{:?}", cfg.kind());
            assert_eq!(heap.traffic(), other.traffic(), "{:?}", cfg.kind());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_space_reopens_with_image_intact() {
        let dir = std::env::temp_dir().join(format!("nearpm-reopen-test-{}", std::process::id()));
        let cfg = MediaConfig::File { dir: dir.clone() };
        let il = InterleaveConfig::new(2, 4096);
        {
            let mut s = PmSpace::with_media(1 << 16, il, &cfg).unwrap();
            s.write(PhysAddr(5000), b"survives the process");
            s.sync_all().unwrap();
        }
        let s = PmSpace::reopen(1 << 16, il, &cfg).unwrap();
        assert_eq!(s.peek_vec(PhysAddr(5000), 20), b"survives the process");
        drop(s);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_write_rejected() {
        let mut s = PmSpace::single(4096);
        s.write(PhysAddr(4090), &[0; 10]);
    }

    #[test]
    fn capacity_is_fully_addressable_when_interleaved() {
        let mut s = PmSpace::new(3 * 4096, InterleaveConfig::new(2, 4096));
        // The last byte of the requested capacity must be addressable.
        s.write(PhysAddr(3 * 4096 - 1), &[0xFF]);
        assert_eq!(s.read_vec(PhysAddr(3 * 4096 - 1), 1), vec![0xFF]);
    }
}
