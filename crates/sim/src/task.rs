//! Task-graph construction.
//!
//! Every operation in the system — an application compute burst, a CPU
//! in-place persist, a NearPM DMA copy, a synchronization wait — is lowered
//! to a task bound to one [`Resource`] with an explicit dependency list.
//! A [`TaskGraph`] accumulates these tasks; the scheduler in
//! [`crate::schedule`] then derives start/finish times, overlap, and region
//! breakdowns from it.
//!
//! ## Storage layout
//!
//! Tasks live in a **struct-of-arrays arena**: one parallel vector per field
//! (label, resource, duration, region) plus a single flat dependency pool
//! indexed by per-task offsets. `add` touches each field array once and
//! appends the dependency slice to the shared pool, so building a
//! million-task graph performs no per-task heap allocation (the old layout
//! allocated one `Vec<TaskId>` per task) and the hot scheduling fields stay
//! densely packed. [`TaskRef`] is the borrowed per-task view the accessors
//! hand out.

use std::collections::HashMap;

use crate::resource::Resource;
use crate::schedule::Timeline;
use crate::time::{SimDuration, SimTime};

/// Identifier of a task within one [`TaskGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub(crate) usize);

impl TaskId {
    /// Index into the graph's task vector.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Accounting category of a task, matching the breakdowns reported by the
/// paper (Figure 1 and Figure 18).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Region {
    /// Application logic: compute and volatile-memory work.
    Application,
    /// In-place persistent updates that the application itself performs.
    AppPersist,
    /// Crash-consistency data movement (log/checkpoint/shadow copies).
    CcDataMovement,
    /// Crash-consistency metadata generation.
    CcMetadata,
    /// Log reset / deletion.
    CcLogReset,
    /// Page-fault handling attributed to checkpointing or shadow paging.
    CcPageFault,
    /// Command issue and offload overhead on the control path.
    CcOffload,
    /// Synchronization: CPU polling, cross-device completion exchange.
    CcSync,
    /// Page-table switch in shadow paging, commit records, etc.
    CcCommit,
}

impl Region {
    /// True if this region is part of crash-consistency overhead (everything
    /// except plain application logic and the application's own in-place
    /// persists).
    pub fn is_crash_consistency(self) -> bool {
        !matches!(self, Region::Application | Region::AppPersist)
    }

    /// Stable short name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Region::Application => "application",
            Region::AppPersist => "app-persist",
            Region::CcDataMovement => "data-movement",
            Region::CcMetadata => "metadata",
            Region::CcLogReset => "log-reset",
            Region::CcPageFault => "page-fault",
            Region::CcOffload => "offload",
            Region::CcSync => "sync",
            Region::CcCommit => "commit",
        }
    }

    /// All regions, in report order.
    pub fn all() -> [Region; 9] {
        [
            Region::Application,
            Region::AppPersist,
            Region::CcDataMovement,
            Region::CcMetadata,
            Region::CcLogReset,
            Region::CcPageFault,
            Region::CcOffload,
            Region::CcSync,
            Region::CcCommit,
        ]
    }
}

/// Borrowed view of one task in the graph's struct-of-arrays arena.
///
/// The graph stores task fields in parallel vectors and dependency lists in
/// one flat pool; this view stitches a single task back together without
/// copying (the `deps` slice borrows the pool directly).
#[derive(Debug, Clone, Copy)]
pub struct TaskRef<'a> {
    /// Identifier within the owning graph.
    pub id: TaskId,
    /// Short human-readable label (used in traces and debugging).
    pub label: &'static str,
    /// Resource that executes the task.
    pub resource: Resource,
    /// Execution time once started.
    pub duration: SimDuration,
    /// Tasks that must finish before this one starts.
    pub deps: &'a [TaskId],
    /// Accounting category.
    pub region: Region,
}

/// A directed acyclic graph of tasks.
///
/// Tasks are appended in program order; dependencies may only reference
/// previously added tasks, which makes cycles impossible by construction and
/// lets the scheduler process tasks in insertion order.
///
/// Because the list scheduler processes tasks in exactly this order, a task's
/// start and finish time are fully determined the moment it is added: the
/// graph maintains them **incrementally** (`start = max(dep finishes,
/// resource free time)`). This is what lets the device model dispatch
/// requests to the earliest-available unit *while the graph is being built*,
/// and lets trace events be timestamped eagerly instead of after a separate
/// scheduling pass.
#[derive(Debug, Default, Clone)]
pub struct TaskGraph {
    /// Per-task labels (struct-of-arrays arena, one entry per task).
    labels: Vec<&'static str>,
    /// Per-task executing resource.
    resources: Vec<Resource>,
    /// Per-task execution time.
    durations: Vec<SimDuration>,
    /// Per-task accounting category.
    regions: Vec<Region>,
    /// Start offset of each task's dependency slice in [`TaskGraph::dep_pool`]
    /// (the slice ends at the next task's offset, or at the pool's end for
    /// the last task).
    dep_offsets: Vec<u32>,
    /// Flat dependency arena: every task's dependency list, concatenated in
    /// insertion order.
    dep_pool: Vec<TaskId>,
    /// Incremental start time of each task (same index as the field arrays).
    starts: Vec<SimTime>,
    /// Incremental finish time of each task.
    finishes: Vec<SimTime>,
    /// Time each resource becomes free (max finish among its tasks).
    resource_free: HashMap<Resource, SimTime>,
    /// Busy intervals (sorted by start, disjoint) of resources scheduled in
    /// *arrival order* via [`TaskGraph::add_arrival_ordered`].
    arrival_busy: HashMap<Resource, Vec<(SimTime, SimTime)>>,
    /// Scheduling discipline each resource was first used with (`true` =
    /// arrival-ordered). Mixing disciplines on one resource would silently
    /// schedule overlapping tasks, so it is rejected.
    arrival_ordered: HashMap<Resource, bool>,
    /// Incremental per-region busy sums (every task's duration, including
    /// zero-length barriers, which contribute nothing but create the entry —
    /// matching the oracle aggregation exactly).
    region_busy: HashMap<Region, SimDuration>,
    /// Incremental per-resource busy sums.
    resource_busy: HashMap<Resource, SimDuration>,
    /// Latest task finish (the makespan end), including zero-length tasks.
    max_finish: SimTime,
    /// Longest dependency chain ending at each task (same index as `tasks`).
    chain: Vec<SimDuration>,
    /// Running maximum of `chain` (the critical path).
    critical_path: SimDuration,
    /// Sum of all task durations (serial work).
    total_work: SimDuration,
    /// Incrementally merged busy-interval timeline of the schedule so far.
    timeline: Timeline,
    /// Number of leading tasks whose descriptive columns (labels, resources,
    /// durations, regions, dependencies) were evicted by
    /// [`TaskGraph::retire_tasks_before`]. The timing columns (`starts`,
    /// `finishes`, `chain`) are kept in full — new tasks may depend on
    /// arbitrarily old ones — so scheduling is unaffected.
    retired: usize,
    /// Dependency-pool entries dropped for retired tasks (`dep_offsets`
    /// values stay absolute; subtract this on access).
    dep_pool_base: usize,
}

impl TaskGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        TaskGraph::default()
    }

    /// Total number of tasks ever added, including retired ones — the
    /// absolute [`TaskId`] space.
    pub fn len(&self) -> usize {
        self.retired + self.labels.len()
    }

    /// True if no task was ever added.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of leading tasks whose descriptive columns were evicted.
    pub fn retired_tasks(&self) -> usize {
        self.retired
    }

    /// Number of tasks whose descriptive columns are still resident.
    pub fn resident_tasks(&self) -> usize {
        self.labels.len()
    }

    /// Evicts the descriptive columns (labels, resources, durations,
    /// regions, dependency lists) of tasks with id `< floor`, returning how
    /// many were evicted. The timing columns survive in full, so
    /// [`TaskGraph::task_finish`] / scheduling against old dependencies keep
    /// working; [`TaskGraph::task`] and [`TaskGraph::tasks`] only cover the
    /// live suffix afterwards, so whole-graph rescans
    /// (`schedule::oracle::aggregate`, [`TaskGraph::append`]) must not be
    /// used on a retired graph. All report aggregates are maintained
    /// incrementally and stay exact.
    pub fn retire_tasks_before(&mut self, floor: usize) -> usize {
        let evict = floor.saturating_sub(self.retired).min(self.labels.len());
        if evict == 0 {
            return 0;
        }
        let pool_end = self.dep_pool_base + self.dep_pool.len();
        let cut = self
            .dep_offsets
            .get(evict)
            .map_or(pool_end, |&o| o as usize)
            - self.dep_pool_base;
        self.labels.drain(..evict);
        self.resources.drain(..evict);
        self.durations.drain(..evict);
        self.regions.drain(..evict);
        self.dep_offsets.drain(..evict);
        self.dep_pool.drain(..cut);
        self.dep_pool_base += cut;
        self.retired += evict;
        evict
    }

    /// The dependency slice of task `i` (absolute id) inside the flat arena.
    fn deps_of(&self, i: usize) -> &[TaskId] {
        let rel = i - self.retired;
        let start = self.dep_offsets[rel] as usize - self.dep_pool_base;
        let end = self
            .dep_offsets
            .get(rel + 1)
            .map_or(self.dep_pool.len(), |&o| o as usize - self.dep_pool_base);
        &self.dep_pool[start..end]
    }

    /// Appends one task's fields to the arena (the SoA equivalent of the old
    /// `tasks.push(Task { .. })`).
    fn push_task(
        &mut self,
        label: &'static str,
        resource: Resource,
        duration: SimDuration,
        region: Region,
        deps: &[TaskId],
    ) {
        debug_assert!(self.dep_pool_base + self.dep_pool.len() + deps.len() <= u32::MAX as usize);
        self.dep_offsets
            .push((self.dep_pool_base + self.dep_pool.len()) as u32);
        self.dep_pool.extend_from_slice(deps);
        self.labels.push(label);
        self.resources.push(resource);
        self.durations.push(duration);
        self.regions.push(region);
    }

    /// Folds one just-scheduled task into the incrementally maintained
    /// aggregates: region/resource busy sums, makespan, critical-path chain,
    /// total work, and the merged busy-interval [`Timeline`]. Called by both
    /// adders, so `Schedule::compute` is a snapshot rather than a rescan.
    fn account(
        &mut self,
        resource: Resource,
        duration: SimDuration,
        region: Region,
        deps: &[TaskId],
        start: SimTime,
        finish: SimTime,
    ) {
        *self.region_busy.entry(region).or_insert(SimDuration::ZERO) += duration;
        *self
            .resource_busy
            .entry(resource)
            .or_insert(SimDuration::ZERO) += duration;
        self.max_finish = self.max_finish.max(finish);
        let dep_chain = deps
            .iter()
            .map(|d| self.chain[d.0])
            .max()
            .unwrap_or(SimDuration::ZERO);
        let chain = dep_chain + duration;
        self.critical_path = self.critical_path.max(chain);
        self.chain.push(chain);
        self.total_work += duration;
        if !duration.is_zero() {
            self.timeline.record(resource, start, finish);
        }
    }

    /// Asserts one scheduling discipline per resource. Zero-duration tasks
    /// (barriers) are exempt: they reserve no busy interval, so they cannot
    /// overlap anything.
    fn claim_discipline(&mut self, resource: Resource, arrival_ordered: bool, label: &str) {
        let claimed = self
            .arrival_ordered
            .entry(resource)
            .or_insert(arrival_ordered);
        assert!(
            *claimed == arrival_ordered,
            "task {label:?} schedules {resource} {}-ordered, but the resource is already \
             {}-ordered; mixing disciplines on one resource would overlap tasks",
            if arrival_ordered {
                "arrival"
            } else {
                "insertion"
            },
            if *claimed { "arrival" } else { "insertion" },
        );
    }

    /// Adds a task and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if any dependency refers to a task that has not been added yet,
    /// or if `resource` already carries arrival-ordered tasks
    /// ([`TaskGraph::add_arrival_ordered`]); both indicate a bug in the code
    /// building the graph.
    pub fn add(
        &mut self,
        label: &'static str,
        resource: Resource,
        duration: SimDuration,
        region: Region,
        deps: &[TaskId],
    ) -> TaskId {
        let id = TaskId(self.len());
        for d in deps {
            assert!(
                d.0 < id.0,
                "task dependency {:?} does not precede task {:?}",
                d,
                id
            );
        }
        if !duration.is_zero() {
            self.claim_discipline(resource, false, label);
        }
        let dep_ready = deps
            .iter()
            .map(|d| self.finishes[d.0])
            .max()
            .unwrap_or(SimTime::ZERO);
        let free = self
            .resource_free
            .get(&resource)
            .copied()
            .unwrap_or(SimTime::ZERO);
        let start = dep_ready.max(free);
        let finish = start + duration;
        self.starts.push(start);
        self.finishes.push(finish);
        self.resource_free.insert(resource, finish);
        self.account(resource, duration, region, deps, start, finish);
        self.push_task(label, resource, duration, region, deps);
        id
    }

    /// Adds a task on a resource that serves requests in **arrival order**
    /// rather than insertion order: the task starts at the earliest gap of
    /// `resource` at or after its dependencies are ready, instead of after
    /// every previously inserted task on the resource.
    ///
    /// This models FIFO front-end hardware (the NearPM dispatcher and issue
    /// queues) fed by concurrently executing threads. The graph is built in
    /// *program* order — one thread's whole transaction is appended before
    /// the next thread's — so a command posted late in one transaction is
    /// inserted *before* other threads' commands that arrive earlier in
    /// simulated time. In-order list scheduling would make those earlier
    /// arrivals queue behind it (head-of-line blocking on a nearly idle
    /// resource, the fig20 multithread collapse); arrival-ordered scheduling
    /// lets the resource serve them in the gaps, exactly as the hardware
    /// would, while still never overlapping two tasks on the resource.
    ///
    /// [`TaskGraph::add`] and this method must not be mixed on the same
    /// resource — in-order tasks do not see the arrival-ordered busy
    /// intervals, so mixing would silently overlap tasks. The graph enforces
    /// this: the first non-zero-duration task on a resource claims its
    /// discipline, and the other adder panics afterwards.
    pub fn add_arrival_ordered(
        &mut self,
        label: &'static str,
        resource: Resource,
        duration: SimDuration,
        region: Region,
        deps: &[TaskId],
    ) -> TaskId {
        let id = TaskId(self.len());
        for d in deps {
            assert!(
                d.0 < id.0,
                "task dependency {:?} does not precede task {:?}",
                d,
                id
            );
        }
        if !duration.is_zero() {
            self.claim_discipline(resource, true, label);
        }
        let dep_ready = deps
            .iter()
            .map(|d| self.finishes[d.0])
            .max()
            .unwrap_or(SimTime::ZERO);
        let busy = self.arrival_busy.entry(resource).or_default();
        // Earliest gap at or after `dep_ready` that fits `duration`.
        let mut start = dep_ready;
        let mut i = busy.partition_point(|&(_, end)| end <= start);
        while let Some(&(next_start, next_end)) = busy.get(i) {
            if start + duration <= next_start {
                break;
            }
            start = next_end;
            i += 1;
        }
        let finish = start + duration;
        if !duration.is_zero() {
            busy.insert(i, (start, finish));
        }
        self.starts.push(start);
        self.finishes.push(finish);
        let free = self.resource_free.entry(resource).or_insert(SimTime::ZERO);
        *free = (*free).max(finish);
        self.account(resource, duration, region, deps, start, finish);
        self.push_task(label, resource, duration, region, deps);
        id
    }

    /// Adds a zero-duration marker task pinned at the absolute simulated
    /// time `at`, ignoring resource availability — the open-loop driver's
    /// arrival events. A request generated by an external arrival process
    /// enters the system at its arrival time regardless of what the serving
    /// resources are doing; its first real task then depends on the marker,
    /// so `start = max(arrival, resource free)` — queueing delay becomes
    /// visible instead of being collapsed into back-to-back service.
    ///
    /// The marker reserves no busy interval and claims no scheduling
    /// discipline (like all zero-duration tasks), so it composes with both
    /// in-order and arrival-ordered resources. `resource_free` is only ever
    /// advanced (never rewound) to `at`, matching arrival-ordered semantics.
    pub fn add_pinned_marker(
        &mut self,
        label: &'static str,
        resource: Resource,
        at: SimTime,
        region: Region,
    ) -> TaskId {
        let id = TaskId(self.len());
        self.starts.push(at);
        self.finishes.push(at);
        let free = self.resource_free.entry(resource).or_insert(SimTime::ZERO);
        *free = (*free).max(at);
        self.account(resource, SimDuration::ZERO, region, &[], at, at);
        self.push_task(label, resource, SimDuration::ZERO, region, &[]);
        id
    }

    /// Latest finish time among tasks with id `>= from` — O(len - from) over
    /// the timing columns, which survive [`TaskGraph::retire_tasks_before`].
    /// This is how a driver reads one request's commit-retire time from the
    /// task span the request added, without rescanning the whole graph.
    /// [`SimTime::ZERO`] when the range is empty.
    pub fn max_finish_since(&self, from: usize) -> SimTime {
        self.finishes[from.min(self.finishes.len())..]
            .iter()
            .copied()
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Earliest start time among tasks with id `>= from` (the span
    /// counterpart of [`TaskGraph::max_finish_since`]). [`SimTime::ZERO`]
    /// when the range is empty.
    pub fn min_start_since(&self, from: usize) -> SimTime {
        self.starts[from.min(self.starts.len())..]
            .iter()
            .copied()
            .min()
            .unwrap_or(SimTime::ZERO)
    }

    /// Scheduled start time of a task (list-scheduling semantics, maintained
    /// incrementally as tasks are added).
    pub fn task_start(&self, id: TaskId) -> SimTime {
        self.starts[id.0]
    }

    /// Scheduled finish time of a task.
    pub fn task_finish(&self, id: TaskId) -> SimTime {
        self.finishes[id.0]
    }

    /// The time at which `resource` becomes free: the finish time of the last
    /// task bound to it, or time zero if it has none. This is the signal the
    /// device dispatcher uses to pick the earliest-available unit.
    pub fn resource_available(&self, resource: Resource) -> SimTime {
        self.resource_free
            .get(&resource)
            .copied()
            .unwrap_or(SimTime::ZERO)
    }

    /// Finish time of the latest-finishing task (the schedule horizon).
    pub fn horizon(&self) -> SimTime {
        self.resource_free
            .values()
            .copied()
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Adds a zero-length barrier task on `resource` depending on `deps`.
    ///
    /// Barriers are used to express "wait until all of these finish" without
    /// consuming time, e.g. the commit point waiting on log completions.
    pub fn barrier(&mut self, label: &'static str, resource: Resource, deps: &[TaskId]) -> TaskId {
        self.add(label, resource, SimDuration::ZERO, Region::CcSync, deps)
    }

    /// Iterates over the live (non-retired) tasks in insertion order, as
    /// borrowed views into the struct-of-arrays arena.
    pub fn tasks(&self) -> impl ExactSizeIterator<Item = TaskRef<'_>> + '_ {
        (self.retired..self.len()).map(move |i| self.task(TaskId(i)))
    }

    /// Access one task (a borrowed view; no per-task allocation).
    ///
    /// # Panics
    ///
    /// Panics if the task's descriptive columns were evicted by
    /// [`TaskGraph::retire_tasks_before`].
    pub fn task(&self, id: TaskId) -> TaskRef<'_> {
        let i = id.0;
        assert!(
            i >= self.retired,
            "task {i} was retired (watermark {})",
            self.retired
        );
        let rel = i - self.retired;
        TaskRef {
            id,
            label: self.labels[rel],
            resource: self.resources[rel],
            duration: self.durations[rel],
            deps: self.deps_of(i),
            region: self.regions[rel],
        }
    }

    /// Sum of the durations of all tasks (serial work) — O(1), maintained as
    /// tasks are added.
    pub fn total_work(&self) -> SimDuration {
        self.total_work
    }

    /// Sum of the durations of tasks in a given region — O(1), maintained as
    /// tasks are added.
    pub fn region_work(&self, region: Region) -> SimDuration {
        self.region_busy
            .get(&region)
            .copied()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Sum of the durations of tasks bound to one resource — O(1).
    pub fn resource_work(&self, resource: Resource) -> SimDuration {
        self.resource_busy
            .get(&resource)
            .copied()
            .unwrap_or(SimDuration::ZERO)
    }

    /// End-to-end simulated time of the schedule so far (latest task finish,
    /// including zero-length barriers) — O(1).
    pub fn makespan(&self) -> SimDuration {
        self.max_finish.since(SimTime::ZERO)
    }

    /// Length of the longest dependency chain so far — O(1).
    pub fn critical_path(&self) -> SimDuration {
        self.critical_path
    }

    /// The incrementally merged busy-interval timeline of the schedule so
    /// far. Totals are O(1) reads; windowed queries are O(log n).
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// The incremental per-region busy sums (snapshot support).
    pub(crate) fn region_busy_map(&self) -> &HashMap<Region, SimDuration> {
        &self.region_busy
    }

    /// The incremental per-resource busy sums (snapshot support).
    pub(crate) fn resource_busy_map(&self) -> &HashMap<Resource, SimDuration> {
        &self.resource_busy
    }

    /// Appends another graph, offsetting its task ids, and making its first
    /// tasks additionally depend on `join`. Returns the id offset applied.
    ///
    /// Tasks are replayed through the in-order [`TaskGraph::add`], so the
    /// source graph must not contain arrival-ordered tasks
    /// ([`TaskGraph::add_arrival_ordered`]) — replaying those in-order would
    /// silently re-derive different timings and claim the wrong discipline
    /// for their resources.
    ///
    /// # Panics
    ///
    /// Panics if `other` contains arrival-ordered tasks or has retired its
    /// task columns ([`TaskGraph::retire_tasks_before`]).
    pub fn append(&mut self, other: &TaskGraph, join: &[TaskId]) -> usize {
        assert!(
            other.arrival_ordered.values().all(|&ao| !ao),
            "append replays tasks with in-order scheduling, but the source graph \
             contains arrival-ordered tasks"
        );
        assert!(
            other.retired == 0,
            "append needs every source task, but {} were retired",
            other.retired
        );
        let offset = self.len();
        let mut deps: Vec<TaskId> = Vec::new();
        for i in 0..other.len() {
            let src_deps = other.deps_of(i);
            deps.clear();
            deps.extend(src_deps.iter().map(|d| TaskId(d.0 + offset)));
            if src_deps.is_empty() {
                deps.extend_from_slice(join);
            }
            self.add(
                other.labels[i],
                other.resources[i],
                other.durations[i],
                other.regions[i],
                &deps,
            );
        }
        offset
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn ns(x: f64) -> SimDuration {
        SimDuration::from_ns(x)
    }

    #[test]
    fn add_tasks_and_query() {
        let mut g = TaskGraph::new();
        assert!(g.is_empty());
        let a = g.add("a", Resource::Cpu(0), ns(10.0), Region::Application, &[]);
        let b = g.add("b", Resource::Cpu(0), ns(5.0), Region::CcDataMovement, &[a]);
        assert_eq!(g.len(), 2);
        assert_eq!(g.task(b).deps, &[a][..]);
        assert!((g.total_work().as_ns() - 15.0).abs() < 1e-9);
        assert!((g.region_work(Region::Application).as_ns() - 10.0).abs() < 1e-9);
        assert!((g.region_work(Region::CcDataMovement).as_ns() - 5.0).abs() < 1e-9);
        assert!(g.region_work(Region::CcSync).is_zero());
    }

    #[test]
    fn soa_arena_round_trips_every_field() {
        let mut g = TaskGraph::new();
        let a = g.add("a", Resource::Cpu(0), ns(1.0), Region::Application, &[]);
        let b = g.add("b", Resource::Cpu(1), ns(2.0), Region::CcMetadata, &[a]);
        let c = g.add("c", Resource::Cpu(0), ns(3.0), Region::CcCommit, &[a, b]);
        let views: Vec<_> = g.tasks().collect();
        assert_eq!(views.len(), 3);
        for (i, t) in views.iter().enumerate() {
            assert_eq!(t.id, TaskId(i));
        }
        assert!(views[0].deps.is_empty());
        assert_eq!(views[1].deps, &[a][..]);
        assert_eq!(views[2].deps, &[a, b][..]);
        assert_eq!(views[2].label, "c");
        assert_eq!(views[2].resource, Resource::Cpu(0));
        assert_eq!(views[2].region, Region::CcCommit);
        assert_eq!(views[2].duration, ns(3.0));
        assert_eq!(g.task(c).deps, &[a, b][..]);
    }

    #[test]
    #[should_panic(expected = "does not precede")]
    fn forward_dependency_panics() {
        let mut g = TaskGraph::new();
        // Fabricate a dependency on a task that does not exist yet.
        g.add(
            "bad",
            Resource::Cpu(0),
            ns(1.0),
            Region::Application,
            &[TaskId(5)],
        );
    }

    #[test]
    fn barrier_has_zero_duration() {
        let mut g = TaskGraph::new();
        let a = g.add("a", Resource::Cpu(0), ns(1.0), Region::Application, &[]);
        let b = g.barrier("join", Resource::Cpu(0), &[a]);
        assert!(g.task(b).duration.is_zero());
        assert_eq!(g.task(b).region, Region::CcSync);
    }

    #[test]
    fn region_classification() {
        assert!(!Region::Application.is_crash_consistency());
        assert!(!Region::AppPersist.is_crash_consistency());
        for r in Region::all() {
            if r != Region::Application && r != Region::AppPersist {
                assert!(r.is_crash_consistency(), "{:?}", r);
            }
            assert!(!r.name().is_empty());
        }
    }

    #[test]
    fn arrival_ordered_tasks_fill_gaps_instead_of_queueing() {
        let disp = Resource::Dispatcher(0);
        let mut g = TaskGraph::new();
        // A command posted late in one thread's transaction…
        let late_issue = g.add(
            "cmd-issue",
            Resource::Cpu(0),
            ns(100.0),
            Region::CcOffload,
            &[],
        );
        let a = g.add_arrival_ordered(
            "ndp-decode",
            disp,
            ns(10.0),
            Region::CcOffload,
            &[late_issue],
        );
        assert_eq!(g.task_start(a), SimTime::from_ns(100.0));
        // …must not delay another thread's command that arrives at time 0:
        // it decodes in the gap before the late arrival.
        let b = g.add_arrival_ordered("ndp-decode", disp, ns(10.0), Region::CcOffload, &[]);
        assert_eq!(g.task_start(b), SimTime::ZERO);
        // A task too long for the gap skips past it.
        let c = g.add_arrival_ordered("ndp-decode", disp, ns(150.0), Region::CcOffload, &[]);
        assert_eq!(g.task_start(c), SimTime::from_ns(110.0));
        // A task that fits the remaining gap exactly uses it.
        let d = g.add_arrival_ordered("ndp-decode", disp, ns(90.0), Region::CcOffload, &[]);
        assert_eq!(g.task_start(d), SimTime::from_ns(10.0));
        // The resource frees at the max finish over all tasks.
        assert_eq!(g.resource_available(disp), SimTime::from_ns(260.0));
    }

    #[test]
    #[should_panic(expected = "mixing disciplines")]
    fn mixing_scheduling_disciplines_on_one_resource_panics() {
        let disp = Resource::Dispatcher(0);
        let mut g = TaskGraph::new();
        g.add_arrival_ordered("ndp-decode", disp, ns(10.0), Region::CcOffload, &[]);
        // The same resource cannot also be scheduled in insertion order —
        // the in-order add would not see the arrival-ordered busy intervals.
        g.add("ndp-dispatch", disp, ns(10.0), Region::CcOffload, &[]);
    }

    #[test]
    fn zero_duration_barriers_are_exempt_from_discipline_claims() {
        let disp = Resource::Dispatcher(0);
        let mut g = TaskGraph::new();
        let a = g.add_arrival_ordered("ndp-decode", disp, ns(10.0), Region::CcOffload, &[]);
        // A zero-length join on the same resource reserves nothing and is
        // allowed from either adder.
        let b = g.barrier("join", disp, &[a]);
        assert_eq!(g.task_start(b), g.task_finish(a));
    }

    #[test]
    fn retiring_task_columns_keeps_scheduling_and_aggregates_exact() {
        let mut g = TaskGraph::new();
        let a = g.add("a", Resource::Cpu(0), ns(10.0), Region::Application, &[]);
        let b = g.add("b", Resource::Cpu(0), ns(5.0), Region::CcDataMovement, &[a]);
        let c = g.add("c", Resource::Cpu(1), ns(2.0), Region::Application, &[a, b]);
        let makespan = g.makespan();
        let total = g.total_work();

        assert_eq!(g.retire_tasks_before(2), 2);
        assert_eq!(g.retired_tasks(), 2);
        assert_eq!(g.resident_tasks(), 1);
        assert_eq!(g.len(), 3);
        assert!(!g.is_empty());
        // Aggregates are incremental: untouched by retirement.
        assert_eq!(g.makespan(), makespan);
        assert_eq!(g.total_work(), total);
        // Timing columns survive; new tasks may depend on retired ones.
        assert_eq!(g.task_finish(a).as_ps(), 10_000);
        let d = g.add("d", Resource::Cpu(1), ns(1.0), Region::Application, &[a, c]);
        assert_eq!(g.task_start(d), g.task_finish(c));
        // The live suffix is iterable and keeps absolute ids and deps.
        let live: Vec<_> = g.tasks().map(|t| t.id).collect();
        assert_eq!(live, vec![c, d]);
        assert_eq!(g.task(c).deps, &[a, b][..]);
        // Floors only move forward; stale floors are no-ops.
        assert_eq!(g.retire_tasks_before(1), 0);
        assert_eq!(g.retire_tasks_before(usize::MAX), 2);
        assert_eq!(g.resident_tasks(), 0);
        assert_eq!(g.len(), 4);
    }

    #[test]
    #[should_panic(expected = "was retired")]
    fn retired_task_access_panics() {
        let mut g = TaskGraph::new();
        let a = g.add("a", Resource::Cpu(0), ns(10.0), Region::Application, &[]);
        g.retire_tasks_before(1);
        let _ = g.task(a);
    }

    #[test]
    #[should_panic(expected = "arrival-ordered tasks")]
    fn append_rejects_arrival_ordered_source_graphs() {
        let disp = Resource::Dispatcher(0);
        let mut src = TaskGraph::new();
        src.add_arrival_ordered("ndp-decode", disp, ns(10.0), Region::CcOffload, &[]);
        let mut dst = TaskGraph::new();
        dst.append(&src, &[]);
    }

    #[test]
    fn arrival_ordered_zero_duration_reserves_nothing() {
        let disp = Resource::Dispatcher(0);
        let mut g = TaskGraph::new();
        let a = g.add_arrival_ordered("marker", disp, SimDuration::ZERO, Region::CcSync, &[]);
        let b = g.add_arrival_ordered("decode", disp, ns(10.0), Region::CcOffload, &[]);
        assert_eq!(g.task_start(a), SimTime::ZERO);
        assert_eq!(g.task_start(b), SimTime::ZERO);
    }

    #[test]
    fn pinned_markers_schedule_at_their_absolute_time() {
        let mut g = TaskGraph::new();
        let busy = g.add(
            "work",
            Resource::Cpu(0),
            ns(100.0),
            Region::Application,
            &[],
        );
        // A marker pinned in the middle of the resource's busy period starts
        // exactly there (ignores availability)…
        let m = g.add_pinned_marker(
            "arrival",
            Resource::Cpu(0),
            SimTime::from_ns(40.0),
            Region::Application,
        );
        assert_eq!(g.task_start(m), SimTime::from_ns(40.0));
        assert_eq!(g.task_finish(m), SimTime::from_ns(40.0));
        // …and never rewinds the resource's free time.
        assert_eq!(g.resource_available(Resource::Cpu(0)), g.task_finish(busy));
        // A task depending on the marker starts at max(arrival, free).
        let next = g.add("op", Resource::Cpu(0), ns(10.0), Region::Application, &[m]);
        assert_eq!(g.task_start(next), g.task_finish(busy));
        // A marker past the horizon advances the resource's free time, so a
        // later arrival-gated task waits for its arrival, not the resource.
        let late = g.add_pinned_marker(
            "arrival",
            Resource::Cpu(1),
            SimTime::from_ns(500.0),
            Region::Application,
        );
        let served = g.add(
            "op",
            Resource::Cpu(1),
            ns(10.0),
            Region::Application,
            &[late],
        );
        assert_eq!(g.task_start(served), SimTime::from_ns(500.0));
    }

    #[test]
    fn pinned_markers_compose_with_arrival_ordered_resources() {
        let disp = Resource::Dispatcher(0);
        let mut g = TaskGraph::new();
        let a = g.add_arrival_ordered("ndp-decode", disp, ns(10.0), Region::CcOffload, &[]);
        // Zero-duration markers claim no discipline, so they can pin events
        // onto an arrival-ordered resource too.
        let m = g.add_pinned_marker("arrival", disp, SimTime::from_ns(3.0), Region::CcSync);
        assert_eq!(g.task_start(m), SimTime::from_ns(3.0));
        assert_eq!(g.resource_available(disp), g.task_finish(a));
    }

    #[test]
    fn span_extrema_cover_task_ranges_and_survive_retirement() {
        let mut g = TaskGraph::new();
        let a = g.add("a", Resource::Cpu(0), ns(10.0), Region::Application, &[]);
        let b = g.add("b", Resource::Cpu(1), ns(5.0), Region::Application, &[]);
        let c = g.add("c", Resource::Cpu(0), ns(2.0), Region::Application, &[a, b]);
        assert_eq!(g.max_finish_since(0), g.task_finish(c));
        assert_eq!(g.max_finish_since(c.index()), g.task_finish(c));
        assert_eq!(g.min_start_since(c.index()), g.task_start(c));
        assert_eq!(g.min_start_since(b.index()), SimTime::ZERO);
        // Empty and out-of-range spans are ZERO, not a panic.
        assert_eq!(g.max_finish_since(g.len()), SimTime::ZERO);
        assert_eq!(g.max_finish_since(g.len() + 10), SimTime::ZERO);
        // Timing columns survive retirement, so spans still answer.
        g.retire_tasks_before(g.len());
        assert_eq!(g.max_finish_since(0), g.task_finish(c));
    }

    #[test]
    fn append_offsets_and_joins() {
        let mut base = TaskGraph::new();
        let a = base.add("a", Resource::Cpu(0), ns(3.0), Region::Application, &[]);

        let mut tail = TaskGraph::new();
        let x = tail.add("x", Resource::Cpu(0), ns(2.0), Region::Application, &[]);
        let _y = tail.add("y", Resource::Cpu(0), ns(2.0), Region::Application, &[x]);

        let offset = base.append(&tail, &[a]);
        assert_eq!(offset, 1);
        assert_eq!(base.len(), 3);
        // The appended root now depends on `a`.
        assert_eq!(base.task(TaskId(1)).deps, &[a][..]);
        // The appended second task depends on the offset first task.
        assert_eq!(base.task(TaskId(2)).deps, &[TaskId(1)][..]);
    }
}
