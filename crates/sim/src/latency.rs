//! Latency and bandwidth model of the evaluation platform.
//!
//! The defaults mirror the prototype in the paper (Section 7 / Table 3):
//! PM emulated with on-board DRAM at 436 ns access latency, a PCIe 3.0 x8
//! link (8 GB/s) between the host and the NearPM devices, an internal AXI
//! interconnect of 4 GB/s shared by the four NearPM units of a device, and
//! NearPM units clocked at 300 MHz.
//!
//! All figure-producing code derives task durations exclusively from this
//! model, so a single struct captures every knob a sensitivity study needs.

use crate::time::SimDuration;

/// Size of a CPU cache line in bytes.
pub const CACHE_LINE: u64 = 64;

/// Size of a PM page used by checkpointing and shadow paging (4 kB).
pub const PM_PAGE: u64 = 4096;

/// Latency/bandwidth parameters of the simulated platform.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyModel {
    /// Latency of a CPU load that misses to the emulated PM (ns).
    pub pm_read_latency_ns: f64,
    /// Latency for a write to reach the PM persistence domain (ns).
    pub pm_write_latency_ns: f64,
    /// Latency of a CPU load served from DRAM (ns).
    pub dram_latency_ns: f64,
    /// Latency of a CPU load served from the last-level cache (ns).
    pub llc_latency_ns: f64,

    /// Sustained bandwidth of CPU-driven reads from PM (GB/s).
    pub cpu_pm_read_gbps: f64,
    /// Sustained bandwidth of CPU-driven writes to PM (GB/s).
    pub cpu_pm_write_gbps: f64,
    /// Host PCIe link bandwidth (GB/s); PCIe 3.0 x8 in the prototype.
    pub pcie_gbps: f64,
    /// Internal AXI bandwidth shared by the NearPM units of one device (GB/s).
    pub axi_gbps: f64,
    /// Bandwidth of the NearPM DMA engine to the local PM media (GB/s).
    pub ndp_pm_gbps: f64,

    /// Issue cost of one cache-line write-back instruction (`clwb`), ns.
    /// Write-backs pipeline, so only the issue cost scales with line count.
    pub clwb_issue_ns: f64,
    /// Drain cost paid once per persist barrier for the last outstanding
    /// write-back to reach the persistence domain, ns.
    pub clwb_drain_ns: f64,
    /// Cost of a persist fence (`sfence`) in ns.
    pub sfence_ns: f64,
    /// CPU cycles' worth of work to generate log/checkpoint metadata (ns).
    pub cpu_metadata_ns: f64,
    /// Cost on the CPU of resetting/deleting a log entry (ns, excluding flush).
    pub cpu_log_reset_ns: f64,
    /// Cost of a minor page-fault + copy-on-write bookkeeping on the CPU (ns).
    pub cpu_page_fault_ns: f64,

    /// Cost of issuing one NearPM command over the control path (MMIO write, ns).
    pub ndp_cmd_issue_ns: f64,
    /// Clock frequency of a NearPM unit (MHz).
    pub ndp_unit_mhz: f64,
    /// Cycles spent by the dispatcher to decode, translate, and conflict-check
    /// one request when the front-end runs as a single monolithic stage (the
    /// pre-pipelining model, retained for the differential oracle). The
    /// pipelined front-end splits the same work into
    /// [`LatencyModel::ndp_decode_cycles`] + [`LatencyModel::ndp_issue_cycles`].
    pub ndp_dispatch_cycles: u64,
    /// Cycles the shared dispatcher holds a request: pop from the FIFO and
    /// decode the command word. The dispatcher frees as soon as this stage
    /// retires.
    pub ndp_decode_cycles: u64,
    /// Cycles the per-unit issue queue spends translating the operands and
    /// checking the in-flight access table, overlapping with execution on the
    /// other units. `ndp_decode_cycles + ndp_issue_cycles ==
    /// ndp_dispatch_cycles`, so the pipelined and single-stage front-ends do
    /// the same total work and differ only in the modeled overlap.
    pub ndp_issue_cycles: u64,
    /// Cycles spent by the metadata generator per log/checkpoint entry.
    pub ndp_metadata_cycles: u64,
    /// Cycles spent resetting (deleting) one log entry near memory.
    pub ndp_log_reset_cycles: u64,
    /// Fixed DMA engine setup cycles per copy.
    pub ndp_dma_setup_cycles: u64,
    /// Access latency from a NearPM unit to its local PM media (ns). Much
    /// smaller than the host's 436 ns because the unit sits in the PM
    /// controller.
    pub ndp_pm_latency_ns: f64,

    /// One CPU polling round when software-synchronizing with a device (ns).
    pub cpu_poll_ns: f64,
    /// Latency of a completion notification between devices or back to the
    /// host (ns). Used by the multi-device handler.
    pub ndp_notify_ns: f64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            pm_read_latency_ns: 436.0,
            pm_write_latency_ns: 436.0,
            dram_latency_ns: 82.0,
            llc_latency_ns: 22.0,

            cpu_pm_read_gbps: 6.0,
            cpu_pm_write_gbps: 3.0,
            pcie_gbps: 8.0,
            axi_gbps: 4.0,
            ndp_pm_gbps: 14.0,

            clwb_issue_ns: 3.0,
            clwb_drain_ns: 60.0,
            sfence_ns: 30.0,
            cpu_metadata_ns: 180.0,
            cpu_log_reset_ns: 140.0,
            cpu_page_fault_ns: 1350.0,

            ndp_cmd_issue_ns: 260.0,
            ndp_unit_mhz: 300.0,
            ndp_dispatch_cycles: 12,
            ndp_decode_cycles: 4,
            ndp_issue_cycles: 8,
            ndp_metadata_cycles: 24,
            ndp_log_reset_cycles: 16,
            ndp_dma_setup_cycles: 20,
            ndp_pm_latency_ns: 96.0,

            cpu_poll_ns: 420.0,
            ndp_notify_ns: 180.0,
        }
    }
}

impl LatencyModel {
    /// Number of cache lines covering `bytes`.
    pub fn cache_lines(bytes: u64) -> u64 {
        bytes.div_ceil(CACHE_LINE).max(1)
    }

    /// Number of 4 kB pages covering `bytes`.
    pub fn pages(bytes: u64) -> u64 {
        bytes.div_ceil(PM_PAGE).max(1)
    }

    /// One NearPM-unit cycle count expressed as a duration.
    pub fn ndp_cycles(&self, cycles: u64) -> SimDuration {
        SimDuration::from_cycles(cycles, self.ndp_unit_mhz)
    }

    /// Time for the CPU to read `bytes` from PM into its caches.
    pub fn cpu_pm_read(&self, bytes: u64) -> SimDuration {
        SimDuration::from_ns(self.pm_read_latency_ns)
            + SimDuration::from_transfer(bytes, self.cpu_pm_read_gbps)
    }

    /// Time for the CPU to write `bytes` to PM and make them persistent
    /// (streaming store + pipelined per-line write-backs + drain + fence).
    pub fn cpu_pm_persist_write(&self, bytes: u64) -> SimDuration {
        let lines = Self::cache_lines(bytes);
        SimDuration::from_transfer(bytes, self.cpu_pm_write_gbps)
            + SimDuration::from_ns(self.clwb_issue_ns) * lines
            + SimDuration::from_ns(self.clwb_drain_ns)
            + SimDuration::from_ns(self.sfence_ns)
    }

    /// Time for the CPU to copy `bytes` from one PM location to another and
    /// persist the destination. This is the data-movement core of CPU-side
    /// logging, checkpointing, and shadow paging.
    pub fn cpu_pm_copy(&self, bytes: u64) -> SimDuration {
        self.cpu_pm_read(bytes) + self.cpu_pm_persist_write(bytes)
    }

    /// Time for the CPU to update `bytes` of PM in place (application-visible
    /// store + persist), assuming the destination line is already cached.
    pub fn cpu_inplace_update(&self, bytes: u64) -> SimDuration {
        let lines = Self::cache_lines(bytes);
        SimDuration::from_ns(self.llc_latency_ns)
            + SimDuration::from_transfer(bytes, self.cpu_pm_write_gbps)
            + SimDuration::from_ns(self.clwb_issue_ns) * lines
            + SimDuration::from_ns(self.clwb_drain_ns)
            + SimDuration::from_ns(self.sfence_ns)
    }

    /// Time for one NearPM unit to copy `bytes` between two locations of its
    /// local PM media (DMA setup + near-memory read/write at DMA bandwidth).
    pub fn ndp_copy(&self, bytes: u64) -> SimDuration {
        self.ndp_cycles(self.ndp_dma_setup_cycles)
            + SimDuration::from_ns(self.ndp_pm_latency_ns)
            + SimDuration::from_transfer(bytes, self.ndp_pm_gbps)
    }

    /// Time for a NearPM unit to generate metadata for one log/checkpoint
    /// entry and persist it locally.
    pub fn ndp_metadata(&self) -> SimDuration {
        self.ndp_cycles(self.ndp_metadata_cycles) + SimDuration::from_ns(self.ndp_pm_latency_ns)
    }

    /// Time for a NearPM unit to reset/delete one log entry.
    pub fn ndp_log_reset(&self) -> SimDuration {
        self.ndp_cycles(self.ndp_log_reset_cycles) + SimDuration::from_ns(self.ndp_pm_latency_ns)
    }

    /// Time for the dispatcher to accept, translate, and conflict-check one
    /// request as a single monolithic front-end stage (the differential
    /// oracle's model).
    pub fn ndp_dispatch(&self) -> SimDuration {
        self.ndp_cycles(self.ndp_dispatch_cycles)
    }

    /// Time the shared dispatcher holds a request in the pipelined front-end
    /// (FIFO pop + command decode).
    pub fn ndp_decode(&self) -> SimDuration {
        self.ndp_cycles(self.ndp_decode_cycles)
    }

    /// Time the per-unit issue queue spends on operand translation and the
    /// in-flight conflict check in the pipelined front-end.
    pub fn ndp_issue(&self) -> SimDuration {
        self.ndp_cycles(self.ndp_issue_cycles)
    }

    /// Cost on the CPU of issuing one NearPM command (posted MMIO write over
    /// the control path).
    pub fn cmd_issue(&self) -> SimDuration {
        SimDuration::from_ns(self.ndp_cmd_issue_ns)
    }

    /// One CPU polling round while waiting for a device completion flag.
    pub fn cpu_poll(&self) -> SimDuration {
        SimDuration::from_ns(self.cpu_poll_ns)
    }

    /// Completion-notification latency between devices / back to the host.
    pub fn notify(&self) -> SimDuration {
        SimDuration::from_ns(self.ndp_notify_ns)
    }

    /// CPU-side metadata generation for one logged object.
    pub fn cpu_metadata(&self) -> SimDuration {
        SimDuration::from_ns(self.cpu_metadata_ns)
    }

    /// CPU-side log reset/delete for one logged object (plus persist).
    pub fn cpu_log_reset(&self) -> SimDuration {
        SimDuration::from_ns(self.cpu_log_reset_ns)
            + SimDuration::from_ns(self.clwb_issue_ns)
            + SimDuration::from_ns(self.clwb_drain_ns)
            + SimDuration::from_ns(self.sfence_ns)
    }

    /// CPU-side page-fault handling cost (checkpointing / shadow paging).
    pub fn cpu_page_fault(&self) -> SimDuration {
        SimDuration::from_ns(self.cpu_page_fault_ns)
    }

    /// Pure application compute+DRAM time modeled per workload operation.
    pub fn cpu_compute(&self, ns: f64) -> SimDuration {
        SimDuration::from_ns(ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_platform() {
        let m = LatencyModel::default();
        assert_eq!(m.pm_read_latency_ns, 436.0);
        assert_eq!(m.pcie_gbps, 8.0);
        assert_eq!(m.axi_gbps, 4.0);
        assert_eq!(m.ndp_unit_mhz, 300.0);
    }

    #[test]
    fn cache_line_and_page_rounding() {
        assert_eq!(LatencyModel::cache_lines(1), 1);
        assert_eq!(LatencyModel::cache_lines(64), 1);
        assert_eq!(LatencyModel::cache_lines(65), 2);
        assert_eq!(LatencyModel::cache_lines(0), 1);
        assert_eq!(LatencyModel::pages(1), 1);
        assert_eq!(LatencyModel::pages(4096), 1);
        assert_eq!(LatencyModel::pages(4097), 2);
    }

    #[test]
    fn ndp_copy_is_faster_than_cpu_copy_for_large_transfers() {
        let m = LatencyModel::default();
        for shift in 6..=14 {
            let bytes = 1u64 << shift; // 64 B .. 16 kB
            let cpu = m.cpu_pm_copy(bytes);
            let ndp = m.ndp_copy(bytes) + m.cmd_issue();
            assert!(
                cpu > ndp,
                "expected NDP copy faster at {} bytes: cpu={} ndp={}",
                bytes,
                cpu,
                ndp
            );
        }
    }

    #[test]
    fn copy_speedup_grows_with_size() {
        let m = LatencyModel::default();
        let speedup = |bytes: u64| {
            let cpu = m.cpu_pm_copy(bytes).as_ns();
            let ndp = (m.ndp_copy(bytes) + m.cmd_issue() + m.ndp_dispatch()).as_ns();
            cpu / ndp
        };
        let s64 = speedup(64);
        let s16k = speedup(16 * 1024);
        assert!(s64 < s16k, "speedup must grow with size: {s64} vs {s16k}");
        // Figure 17 band: ~1.1x at 64 B and ~5.6x at 16 kB.
        assert!(s64 > 1.0 && s64 < 2.5, "64 B speedup out of band: {s64}");
        assert!(
            s16k > 3.5 && s16k < 8.0,
            "16 kB speedup out of band: {s16k}"
        );
    }

    #[test]
    fn ndp_cycle_durations() {
        let m = LatencyModel::default();
        // 300 MHz => 3.333 ns per cycle.
        assert!((m.ndp_cycles(3).as_ns() - 10.0).abs() < 0.01);
        assert!(m.ndp_dispatch() > SimDuration::ZERO);
        assert!(m.ndp_metadata() > SimDuration::ZERO);
        assert!(m.ndp_log_reset() > SimDuration::ZERO);
    }

    #[test]
    fn pipelined_front_end_preserves_total_dispatch_work() {
        // The decode + issue split re-stages the monolithic dispatch; the
        // cycle budget (and so the duration sum) must be identical, so the
        // pipelined and single-stage front-ends differ only in overlap.
        let m = LatencyModel::default();
        assert_eq!(
            m.ndp_decode_cycles + m.ndp_issue_cycles,
            m.ndp_dispatch_cycles
        );
        assert_eq!(m.ndp_decode() + m.ndp_issue(), m.ndp_dispatch());
        assert!(m.ndp_decode() < m.ndp_issue());
    }

    #[test]
    fn clone_preserves_all_fields() {
        let m = LatencyModel::default();
        let m2 = m.clone();
        assert_eq!(m, m2);
    }
}
