//! List scheduler and schedule analysis.
//!
//! The scheduler assigns start and finish times to every task in a
//! [`TaskGraph`]: a task starts at the later of (a) the finish time of its
//! last dependency and (b) the time its resource becomes free. Tasks are
//! processed in insertion order, which corresponds to program order on each
//! resource, so the schedule is deterministic.
//!
//! The resulting [`Schedule`] exposes the quantities the paper reports:
//! makespan (end-to-end time), per-region busy time (Figure 1 breakdowns),
//! per-resource busy time, and the CPU/NDP overlap used for the
//! parallelizable-fraction analysis (Figure 18).

use std::collections::HashMap;

use crate::resource::Resource;
use crate::task::{Region, TaskGraph, TaskId};
use crate::time::{SimDuration, SimTime};

/// Start/finish assignment for one task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskTiming {
    /// Scheduled start time.
    pub start: SimTime,
    /// Scheduled finish time.
    pub finish: SimTime,
}

impl TaskTiming {
    /// Execution duration (finish - start).
    pub fn duration(&self) -> SimDuration {
        self.finish - self.start
    }
}

/// The result of scheduling a task graph.
#[derive(Debug, Clone)]
pub struct Schedule {
    timings: Vec<TaskTiming>,
    makespan: SimDuration,
    region_busy: HashMap<Region, SimDuration>,
    resource_busy: HashMap<Resource, SimDuration>,
    cpu_busy: SimDuration,
    ndp_busy: SimDuration,
    overlap: SimDuration,
    critical_path: SimDuration,
}

impl Schedule {
    /// Schedules `graph` with the list-scheduling policy described in the
    /// module documentation.
    pub fn compute(graph: &TaskGraph) -> Schedule {
        let mut timings: Vec<TaskTiming> = Vec::with_capacity(graph.len());
        let mut resource_free: HashMap<Resource, SimTime> = HashMap::new();
        let mut region_busy: HashMap<Region, SimDuration> = HashMap::new();
        let mut resource_busy: HashMap<Resource, SimDuration> = HashMap::new();
        // Longest dependency chain ending at each task (critical path).
        let mut chain: Vec<SimDuration> = Vec::with_capacity(graph.len());

        let mut makespan = SimDuration::ZERO;
        let mut cpu_intervals: Vec<(SimTime, SimTime)> = Vec::new();
        let mut ndp_intervals: Vec<(SimTime, SimTime)> = Vec::new();

        for task in graph.tasks() {
            let dep_ready = task
                .deps
                .iter()
                .map(|d| timings[d.index()].finish)
                .max()
                .unwrap_or(SimTime::ZERO);
            let free = resource_free
                .get(&task.resource)
                .copied()
                .unwrap_or(SimTime::ZERO);
            let start = dep_ready.max(free);
            let finish = start + task.duration;

            resource_free.insert(task.resource, finish);
            *region_busy.entry(task.region).or_insert(SimDuration::ZERO) += task.duration;
            *resource_busy
                .entry(task.resource)
                .or_insert(SimDuration::ZERO) += task.duration;

            let dep_chain = task
                .deps
                .iter()
                .map(|d| chain[d.index()])
                .max()
                .unwrap_or(SimDuration::ZERO);
            chain.push(dep_chain + task.duration);

            if finish.since(SimTime::ZERO) > makespan {
                makespan = finish.since(SimTime::ZERO);
            }
            if !task.duration.is_zero() {
                if task.resource.is_cpu() {
                    cpu_intervals.push((start, finish));
                } else if task.resource.is_ndp() {
                    ndp_intervals.push((start, finish));
                }
            }
            timings.push(TaskTiming { start, finish });
        }

        let cpu_busy = merged_length(&mut cpu_intervals);
        let ndp_busy = merged_length(&mut ndp_intervals);
        let overlap = intersection_length(&cpu_intervals, &ndp_intervals);
        let critical_path = chain.iter().copied().max().unwrap_or(SimDuration::ZERO);

        Schedule {
            timings,
            makespan,
            region_busy,
            resource_busy,
            cpu_busy,
            ndp_busy,
            overlap,
            critical_path,
        }
    }

    /// Timing of a specific task.
    pub fn timing(&self, id: TaskId) -> TaskTiming {
        self.timings[id.index()]
    }

    /// End-to-end simulated time (completion of the last task).
    pub fn makespan(&self) -> SimDuration {
        self.makespan
    }

    /// Total busy time attributed to a region (summed across resources, so it
    /// can exceed the makespan when work overlaps).
    pub fn region_time(&self, region: Region) -> SimDuration {
        self.region_busy
            .get(&region)
            .copied()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Total busy time of one resource.
    pub fn resource_time(&self, resource: Resource) -> SimDuration {
        self.resource_busy
            .get(&resource)
            .copied()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Sum of all crash-consistency region time.
    pub fn crash_consistency_time(&self) -> SimDuration {
        Region::all()
            .into_iter()
            .filter(|r| r.is_crash_consistency())
            .map(|r| self.region_time(r))
            .sum()
    }

    /// Sum of application-logic region time (including the application's own
    /// in-place persists, which the paper counts as application logic).
    pub fn application_time(&self) -> SimDuration {
        self.region_time(Region::Application) + self.region_time(Region::AppPersist)
    }

    /// Wall-clock time during which at least one CPU thread was busy.
    pub fn cpu_busy(&self) -> SimDuration {
        self.cpu_busy
    }

    /// Wall-clock time during which at least one NearPM resource was busy.
    pub fn ndp_busy(&self) -> SimDuration {
        self.ndp_busy
    }

    /// Wall-clock time during which the CPU and a NearPM resource were busy
    /// simultaneously — the "parallelizable fraction" numerator of Figure 18.
    pub fn cpu_ndp_overlap(&self) -> SimDuration {
        self.overlap
    }

    /// Fraction of the makespan during which CPU and NDP overlap.
    pub fn overlap_fraction(&self) -> f64 {
        self.overlap.ratio(self.makespan)
    }

    /// Length of the longest dependency chain (lower bound on makespan with
    /// infinite resources).
    pub fn critical_path(&self) -> SimDuration {
        self.critical_path
    }

    /// Per-region breakdown as fractions of total busy time.
    pub fn region_breakdown(&self) -> Vec<(Region, f64)> {
        let total: SimDuration = Region::all().into_iter().map(|r| self.region_time(r)).sum();
        Region::all()
            .into_iter()
            .map(|r| (r, self.region_time(r).ratio(total)))
            .collect()
    }
}

/// Sorts and merges intervals in place, returning their total covered length.
fn merged_length(intervals: &mut Vec<(SimTime, SimTime)>) -> SimDuration {
    if intervals.is_empty() {
        return SimDuration::ZERO;
    }
    intervals.sort_by_key(|(s, _)| *s);
    let mut merged: Vec<(SimTime, SimTime)> = Vec::with_capacity(intervals.len());
    for &(s, e) in intervals.iter() {
        match merged.last_mut() {
            Some((_, last_end)) if s <= *last_end => {
                if e > *last_end {
                    *last_end = e;
                }
            }
            _ => merged.push((s, e)),
        }
    }
    let total = merged.iter().map(|(s, e)| *e - *s).sum();
    *intervals = merged;
    total
}

/// Total length of the intersection of two sets of *merged, sorted* intervals.
fn intersection_length(a: &[(SimTime, SimTime)], b: &[(SimTime, SimTime)]) -> SimDuration {
    let mut i = 0;
    let mut j = 0;
    let mut total = SimDuration::ZERO;
    while i < a.len() && j < b.len() {
        let (as_, ae) = a[i];
        let (bs, be) = b[j];
        let start = as_.max(bs);
        let end = ae.min(be);
        if end > start {
            total += end - start;
        }
        if ae <= be {
            i += 1;
        } else {
            j += 1;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::Resource;
    use crate::task::{Region, TaskGraph};
    use crate::time::SimDuration;

    fn ns(x: f64) -> SimDuration {
        SimDuration::from_ns(x)
    }

    const CPU: Resource = Resource::Cpu(0);
    const UNIT0: Resource = Resource::NdpUnit { device: 0, unit: 0 };
    const UNIT1: Resource = Resource::NdpUnit { device: 0, unit: 1 };

    #[test]
    fn serial_chain_on_one_resource() {
        let mut g = TaskGraph::new();
        let a = g.add("a", CPU, ns(10.0), Region::Application, &[]);
        let b = g.add("b", CPU, ns(20.0), Region::CcDataMovement, &[a]);
        let _c = g.add("c", CPU, ns(5.0), Region::CcMetadata, &[b]);
        let s = Schedule::compute(&g);
        assert!((s.makespan().as_ns() - 35.0).abs() < 1e-9);
        assert!((s.crash_consistency_time().as_ns() - 25.0).abs() < 1e-9);
        assert!((s.application_time().as_ns() - 10.0).abs() < 1e-9);
        assert!((s.critical_path().as_ns() - 35.0).abs() < 1e-9);
        assert_eq!(s.cpu_ndp_overlap(), SimDuration::ZERO);
    }

    #[test]
    fn resource_contention_serializes_independent_tasks() {
        let mut g = TaskGraph::new();
        let _a = g.add("a", CPU, ns(10.0), Region::Application, &[]);
        let _b = g.add("b", CPU, ns(10.0), Region::Application, &[]);
        let s = Schedule::compute(&g);
        // Independent but same resource: must serialize.
        assert!((s.makespan().as_ns() - 20.0).abs() < 1e-9);
        // Critical path ignores resource contention.
        assert!((s.critical_path().as_ns() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn independent_tasks_on_distinct_units_run_in_parallel() {
        let mut g = TaskGraph::new();
        let _a = g.add("log-a", UNIT0, ns(100.0), Region::CcDataMovement, &[]);
        let _b = g.add("log-b", UNIT1, ns(100.0), Region::CcDataMovement, &[]);
        let s = Schedule::compute(&g);
        assert!((s.makespan().as_ns() - 100.0).abs() < 1e-9);
        assert!((s.ndp_busy().as_ns() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn cpu_ndp_overlap_measured() {
        let mut g = TaskGraph::new();
        // NDP copies for 100 ns while the CPU computes for 60 ns concurrently.
        let _n = g.add("ndp-copy", UNIT0, ns(100.0), Region::CcDataMovement, &[]);
        let _c = g.add("cpu-work", CPU, ns(60.0), Region::Application, &[]);
        let s = Schedule::compute(&g);
        assert!((s.makespan().as_ns() - 100.0).abs() < 1e-9);
        assert!((s.cpu_ndp_overlap().as_ns() - 60.0).abs() < 1e-9);
        assert!((s.overlap_fraction() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn dependency_across_resources_enforced() {
        let mut g = TaskGraph::new();
        let n = g.add("ndp-log", UNIT0, ns(50.0), Region::CcDataMovement, &[]);
        let u = g.add("cpu-update", CPU, ns(10.0), Region::AppPersist, &[n]);
        let s = Schedule::compute(&g);
        assert!((s.timing(u).start.as_ns() - 50.0).abs() < 1e-9);
        assert!((s.makespan().as_ns() - 60.0).abs() < 1e-9);
        assert_eq!(s.cpu_ndp_overlap(), SimDuration::ZERO);
    }

    #[test]
    fn barriers_do_not_consume_time_but_order() {
        let mut g = TaskGraph::new();
        let a = g.add("a", UNIT0, ns(40.0), Region::CcDataMovement, &[]);
        let b = g.add("b", UNIT1, ns(70.0), Region::CcDataMovement, &[]);
        let j = g.barrier("join", CPU, &[a, b]);
        let c = g.add("commit", CPU, ns(10.0), Region::CcCommit, &[j]);
        let s = Schedule::compute(&g);
        assert!((s.timing(c).start.as_ns() - 70.0).abs() < 1e-9);
        assert!((s.makespan().as_ns() - 80.0).abs() < 1e-9);
    }

    #[test]
    fn region_breakdown_sums_to_one() {
        let mut g = TaskGraph::new();
        let a = g.add("a", CPU, ns(30.0), Region::Application, &[]);
        let _b = g.add("b", CPU, ns(70.0), Region::CcDataMovement, &[a]);
        let s = Schedule::compute(&g);
        let breakdown = s.region_breakdown();
        let total: f64 = breakdown.iter().map(|(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-9);
        let dm = breakdown
            .iter()
            .find(|(r, _)| *r == Region::CcDataMovement)
            .unwrap()
            .1;
        assert!((dm - 0.7).abs() < 1e-9);
    }

    #[test]
    fn empty_graph_schedules_to_zero() {
        let g = TaskGraph::new();
        let s = Schedule::compute(&g);
        assert_eq!(s.makespan(), SimDuration::ZERO);
        assert_eq!(s.critical_path(), SimDuration::ZERO);
        assert_eq!(s.cpu_busy(), SimDuration::ZERO);
    }

    #[test]
    fn interval_merging_handles_overlaps() {
        let mut v = vec![
            (SimTime::from_ns(0.0), SimTime::from_ns(10.0)),
            (SimTime::from_ns(5.0), SimTime::from_ns(15.0)),
            (SimTime::from_ns(20.0), SimTime::from_ns(25.0)),
        ];
        let len = merged_length(&mut v);
        assert!((len.as_ns() - 20.0).abs() < 1e-9);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn interval_intersection() {
        let a = vec![(SimTime::from_ns(0.0), SimTime::from_ns(10.0))];
        let b = vec![
            (SimTime::from_ns(5.0), SimTime::from_ns(7.0)),
            (SimTime::from_ns(9.0), SimTime::from_ns(20.0)),
        ];
        let len = intersection_length(&a, &b);
        assert!((len.as_ns() - 3.0).abs() < 1e-9);
    }
}
