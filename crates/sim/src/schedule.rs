//! List scheduler and schedule analysis over merged busy-interval timelines.
//!
//! The scheduler assigns start and finish times to every task in a
//! [`TaskGraph`]: a task starts at the later of (a) the finish time of its
//! last dependency and (b) the time its resource becomes free. Tasks are
//! processed in insertion order, which corresponds to program order on each
//! resource, so the schedule is deterministic. The graph maintains these
//! times incrementally as tasks are added, so [`Schedule::compute`] is a
//! single aggregation pass, not a re-derivation.
//!
//! The resulting [`Schedule`] exposes the quantities the paper reports:
//! makespan (end-to-end time), per-region busy time (Figure 1 breakdowns),
//! per-resource busy time, and the CPU/NDP overlap used for the
//! parallelizable-fraction analysis (Figure 18).
//!
//! ## The timeline
//!
//! All wall-clock analyses are answered by a [`Timeline`] built once per
//! `compute`: per-resource **merged busy intervals** (already sorted because
//! every resource serializes its tasks) with prefix sums of covered time,
//! plus union timelines for the CPU side and the NDP side and their
//! intersection. On top of this structure
//!
//! * totals (`cpu_busy`, `ndp_busy`, `cpu_ndp_overlap`, per-resource busy
//!   time, utilization) are O(1) reads of precomputed sums,
//! * windowed queries (`covered_in`, `contains`) are O(log n) binary
//!   searches against the prefix sums, and
//! * idle-gap analyses enumerate the complement of a merged interval set.
//!
//! The pre-timeline implementation — rescanning the task list and re-merging
//! intervals for every query — is preserved verbatim in [`oracle`]
//! (compiled under `cfg(test)` or the `oracle` feature). Randomized
//! differential tests assert both produce identical timings, overlap,
//! region, and makespan answers; the `schedule_compute` bench quantifies the
//! speedup at fig18 scale.

use std::collections::HashMap;

use crate::resource::Resource;
use crate::task::{Region, TaskGraph};
use crate::time::{SimDuration, SimTime};

/// Start/finish assignment for one task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskTiming {
    /// Scheduled start time.
    pub start: SimTime,
    /// Scheduled finish time.
    pub finish: SimTime,
}

impl TaskTiming {
    /// Execution duration (finish - start).
    pub fn duration(&self) -> SimDuration {
        self.finish - self.start
    }
}

/// A merged set of disjoint, sorted busy intervals with prefix sums of the
/// covered time. All queries are O(log n) or better.
///
/// Besides batch construction ([`IntervalSet::from_intervals`]), the set
/// supports **incremental insertion** ([`IntervalSet::insert`]): one interval
/// is merged in place (coalescing with anything it overlaps or touches) and
/// the prefix sums are rebuilt from the first modified index only. Busy
/// intervals are produced in roughly increasing simulated time, so insertion
/// streams are append-mostly and pay O(1) amortized per insert; this is what
/// lets the task graph maintain its timeline while it is being built instead
/// of re-merging everything per `report()`.
#[derive(Debug, Clone, Default)]
pub struct IntervalSet {
    /// Disjoint intervals sorted by start; no two touch (`end < next start`).
    intervals: Vec<(SimTime, SimTime)>,
    /// `prefix[i]` = total covered time of `intervals[..i]`, in ps.
    prefix: Vec<u64>,
}

impl IntervalSet {
    /// The empty set.
    pub fn empty() -> Self {
        IntervalSet::default()
    }

    /// Builds a set from arbitrary (possibly overlapping, unsorted)
    /// intervals. Zero-length intervals are dropped.
    pub fn from_intervals(mut intervals: Vec<(SimTime, SimTime)>) -> Self {
        intervals.retain(|(s, e)| e > s);
        intervals.sort_unstable_by_key(|(s, _)| *s);
        Self::merge_sorted(intervals)
    }

    /// Builds a set from intervals already sorted by start and pairwise
    /// non-overlapping (the shape a serialized resource produces); touching
    /// intervals are coalesced.
    fn from_sorted_disjoint(intervals: Vec<(SimTime, SimTime)>) -> Self {
        debug_assert!(intervals.windows(2).all(|w| w[0].1 <= w[1].0));
        Self::merge_sorted(intervals)
    }

    fn merge_sorted(intervals: Vec<(SimTime, SimTime)>) -> Self {
        let mut merged: Vec<(SimTime, SimTime)> = Vec::with_capacity(intervals.len());
        for (s, e) in intervals {
            if e <= s {
                continue;
            }
            match merged.last_mut() {
                Some((_, last_end)) if s <= *last_end => {
                    if e > *last_end {
                        *last_end = e;
                    }
                }
                _ => merged.push((s, e)),
            }
        }
        let mut prefix = Vec::with_capacity(merged.len() + 1);
        let mut acc = 0u64;
        prefix.push(0);
        for (s, e) in &merged {
            acc += (*e - *s).as_ps();
            prefix.push(acc);
        }
        IntervalSet {
            intervals: merged,
            prefix,
        }
    }

    /// Inserts one interval, coalescing it with every existing interval it
    /// overlaps or touches (the same rule batch construction applies).
    /// Prefix sums are rebuilt from the first modified index, so an
    /// append-mostly insertion stream costs O(1) amortized per insert.
    pub fn insert(&mut self, start: SimTime, end: SimTime) {
        self.insert_with(start, end, None);
    }

    /// [`IntervalSet::insert`] that additionally appends to `newly` the
    /// sub-intervals of `[start, end)` that were **not** previously covered —
    /// the coverage delta a union timeline feeds into the incremental
    /// CPU/NDP-overlap maintenance.
    pub(crate) fn insert_with(
        &mut self,
        start: SimTime,
        end: SimTime,
        mut newly: Option<&mut Vec<(SimTime, SimTime)>>,
    ) {
        if end <= start {
            return;
        }
        if self.prefix.is_empty() {
            // A default-constructed set has no sentinel prefix entry yet.
            self.prefix.push(0);
        }
        // First interval whose end reaches `start` (touching coalesces).
        let i = self.intervals.partition_point(|&(_, e)| e < start);
        let mut j = i;
        let mut merged = (start, end);
        let mut cursor = start;
        while j < self.intervals.len() && self.intervals[j].0 <= end {
            let (cs, ce) = self.intervals[j];
            if let Some(out) = newly.as_deref_mut() {
                if cs > cursor && cursor < end {
                    out.push((cursor, cs.min(end)));
                }
            }
            cursor = cursor.max(ce);
            merged.0 = merged.0.min(cs);
            merged.1 = merged.1.max(ce);
            j += 1;
        }
        if let Some(out) = newly {
            if cursor < end {
                out.push((cursor, end));
            }
        }
        self.intervals.splice(i..j, std::iter::once(merged));
        // `intervals[..i]` (and so `prefix[..=i]`) are untouched: rebuild the
        // suffix only.
        self.prefix.truncate(i + 1);
        let mut acc = self.prefix[i];
        for &(s, e) in &self.intervals[i..] {
            acc += (e - s).as_ps();
            self.prefix.push(acc);
        }
    }

    /// The merged intervals, sorted by start.
    pub fn intervals(&self) -> &[(SimTime, SimTime)] {
        &self.intervals
    }

    /// Number of merged intervals.
    pub fn count(&self) -> usize {
        self.intervals.len()
    }

    /// True if nothing is covered.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// Total covered time — O(1) from the precomputed prefix sums.
    pub fn total(&self) -> SimDuration {
        SimDuration::from_ps(*self.prefix.last().unwrap_or(&0))
    }

    /// End of the last busy interval (`None` if the set is empty).
    pub fn end(&self) -> Option<SimTime> {
        self.intervals.last().map(|&(_, e)| e)
    }

    /// True if instant `t` falls inside a busy interval — O(log n).
    pub fn contains(&self, t: SimTime) -> bool {
        let k = self.intervals.partition_point(|&(s, _)| s <= t);
        k > 0 && self.intervals[k - 1].1 > t
    }

    /// Covered time in `[0, t)` — O(log n) via the prefix sums.
    pub fn covered_before(&self, t: SimTime) -> SimDuration {
        let k = self.intervals.partition_point(|&(s, _)| s < t);
        // `get` keeps a default-constructed (never-inserted) set queryable.
        let mut ps = self.prefix.get(k).copied().unwrap_or(0);
        if k > 0 {
            let (_, end) = self.intervals[k - 1];
            if end > t {
                ps -= (end - t).as_ps();
            }
        }
        SimDuration::from_ps(ps)
    }

    /// Covered time in `[from, to)` — O(log n).
    pub fn covered_in(&self, from: SimTime, to: SimTime) -> SimDuration {
        self.covered_before(to)
            .saturating_sub(self.covered_before(from))
    }

    /// Intersection with another set — linear sweep over both interval
    /// lists, producing a new merged set.
    pub fn intersect(&self, other: &IntervalSet) -> IntervalSet {
        let a = &self.intervals;
        let b = &other.intervals;
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            let (as_, ae) = a[i];
            let (bs, be) = b[j];
            let start = as_.max(bs);
            let end = ae.min(be);
            if end > start {
                out.push((start, end));
            }
            if ae <= be {
                i += 1;
            } else {
                j += 1;
            }
        }
        IntervalSet::from_sorted_disjoint(out)
    }

    /// Idle gaps in `[0, horizon)`: the maximal sub-intervals not covered by
    /// any busy interval.
    pub fn idle_gaps(&self, horizon: SimTime) -> Vec<(SimTime, SimTime)> {
        let mut gaps = Vec::new();
        let mut cursor = SimTime::ZERO;
        for &(s, e) in &self.intervals {
            if s >= horizon {
                break;
            }
            if s > cursor {
                gaps.push((cursor, s.min(horizon)));
            }
            cursor = cursor.max(e);
        }
        if cursor < horizon {
            gaps.push((cursor, horizon));
        }
        gaps
    }

    /// Length of the longest idle gap in `[0, horizon)`.
    pub fn longest_idle_gap(&self, horizon: SimTime) -> SimDuration {
        self.idle_gaps(horizon)
            .into_iter()
            .map(|(s, e)| e - s)
            .max()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Total idle time in `[0, horizon)`.
    pub fn idle_before(&self, horizon: SimTime) -> SimDuration {
        horizon
            .since(SimTime::ZERO)
            .saturating_sub(self.covered_before(horizon))
    }
}

/// The merged busy-interval timeline of one schedule: per-resource merged
/// busy intervals plus the CPU-side and NDP-side union timelines and their
/// intersection, all with prefix sums.
///
/// The timeline is **incrementally mergeable**: [`Timeline::record`] folds a
/// single busy interval into the per-resource set, the CPU/NDP union of its
/// side, and — via the union's coverage delta intersected with the other
/// side — the overlap set. The task graph calls it as tasks are added, so a
/// `report()` reads a fully maintained timeline instead of re-merging all
/// intervals. [`Timeline::build`] (the batch construction) is retained for
/// the oracle aggregation pass.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    /// Sorted by resource for binary-search lookup.
    per_resource: Vec<(Resource, IntervalSet)>,
    cpu: IntervalSet,
    ndp: IntervalSet,
    overlap: IntervalSet,
    horizon: SimTime,
    /// Reusable coverage-delta buffer for [`Timeline::record`].
    scratch: Vec<(SimTime, SimTime)>,
}

impl Timeline {
    /// Folds one busy interval into the timeline: the resource's merged set,
    /// the CPU/NDP union of the resource's side, and the overlap set (the
    /// union's newly covered sub-intervals intersected with the other side —
    /// every point of the final intersection is counted exactly once, at the
    /// later of its two union arrivals). Zero-length intervals record
    /// nothing, mirroring the batch construction's filter.
    pub fn record(&mut self, resource: Resource, start: SimTime, finish: SimTime) {
        if finish <= start {
            return;
        }
        self.horizon = self.horizon.max(finish);
        let idx = match self
            .per_resource
            .binary_search_by_key(&resource, |(r, _)| *r)
        {
            Ok(i) => i,
            Err(i) => {
                self.per_resource
                    .insert(i, (resource, IntervalSet::empty()));
                i
            }
        };
        self.per_resource[idx].1.insert(start, finish);
        let mut fresh = std::mem::take(&mut self.scratch);
        fresh.clear();
        if resource.is_cpu() {
            self.cpu.insert_with(start, finish, Some(&mut fresh));
            for &(s, e) in &fresh {
                Self::fold_intersection(&self.ndp, s, e, &mut self.overlap);
            }
        } else if resource.is_ndp() {
            self.ndp.insert_with(start, finish, Some(&mut fresh));
            for &(s, e) in &fresh {
                Self::fold_intersection(&self.cpu, s, e, &mut self.overlap);
            }
        }
        self.scratch = fresh;
    }

    /// Inserts `[s, e) ∩ other` into `overlap`. `[s, e)` is a coverage delta
    /// of the opposite union, so the pieces are disjoint from everything the
    /// overlap already holds (insert only coalesces touching neighbors).
    fn fold_intersection(other: &IntervalSet, s: SimTime, e: SimTime, overlap: &mut IntervalSet) {
        let from = other.intervals.partition_point(|&(_, oe)| oe <= s);
        for &(os, oe) in &other.intervals[from..] {
            if os >= e {
                break;
            }
            let a = os.max(s);
            let b = oe.min(e);
            if b > a {
                overlap.insert(a, b);
            }
        }
    }
    /// Builds the timeline from per-resource busy intervals (each list in
    /// task insertion order: sorted and disjoint on an in-order serialized
    /// resource, possibly out of order on an arrival-ordered front-end
    /// resource, whose gap-filled intervals are sorted here first). Batch
    /// construction is only used by [`oracle::aggregate`] now; the live
    /// timeline is maintained via [`Timeline::record`].
    #[cfg(any(test, feature = "oracle"))]
    fn build(per_resource_raw: Vec<(Resource, Vec<(SimTime, SimTime)>)>) -> Timeline {
        let mut cpu_all = Vec::new();
        let mut ndp_all = Vec::new();
        let mut per_resource: Vec<(Resource, IntervalSet)> = per_resource_raw
            .into_iter()
            .map(|(r, intervals)| {
                if r.is_cpu() {
                    cpu_all.extend_from_slice(&intervals);
                } else if r.is_ndp() {
                    ndp_all.extend_from_slice(&intervals);
                }
                let in_insertion_order = intervals.windows(2).all(|w| w[0].1 <= w[1].0);
                if in_insertion_order {
                    (r, IntervalSet::from_sorted_disjoint(intervals))
                } else {
                    (r, IntervalSet::from_intervals(intervals))
                }
            })
            .collect();
        per_resource.sort_by_key(|(r, _)| *r);
        let cpu = IntervalSet::from_intervals(cpu_all);
        let ndp = IntervalSet::from_intervals(ndp_all);
        let overlap = cpu.intersect(&ndp);
        let horizon = per_resource
            .iter()
            .filter_map(|(_, set)| set.end())
            .max()
            .unwrap_or(SimTime::ZERO);
        Timeline {
            per_resource,
            cpu,
            ndp,
            overlap,
            horizon,
            scratch: Vec::new(),
        }
    }

    /// The merged busy intervals of one resource (`None` if it never ran a
    /// non-zero-length task).
    pub fn resource(&self, resource: Resource) -> Option<&IntervalSet> {
        self.per_resource
            .binary_search_by_key(&resource, |(r, _)| *r)
            .ok()
            .map(|i| &self.per_resource[i].1)
    }

    /// Iterates over every resource with busy time, in `Resource` order.
    pub fn resources(&self) -> impl Iterator<Item = (Resource, &IntervalSet)> {
        self.per_resource.iter().map(|(r, set)| (*r, set))
    }

    /// Union timeline of all CPU threads.
    pub fn cpu(&self) -> &IntervalSet {
        &self.cpu
    }

    /// Union timeline of all NDP resources (units and dispatchers).
    pub fn ndp(&self) -> &IntervalSet {
        &self.ndp
    }

    /// Intersection of the CPU and NDP union timelines.
    pub fn overlap(&self) -> &IntervalSet {
        &self.overlap
    }

    /// Finish time of the latest busy interval (equals the makespan end).
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// Fraction of the schedule horizon during which `resource` was busy.
    /// Zero for an empty timeline (guarding the undefined 0/0 case).
    pub fn utilization(&self, resource: Resource) -> f64 {
        if self.horizon == SimTime::ZERO {
            return 0.0;
        }
        match self.resource(resource) {
            Some(set) => set.total().ratio(self.horizon.since(SimTime::ZERO)),
            None => 0.0,
        }
    }

    /// Time at which `resource` runs its last task to completion (time zero
    /// if it is never used).
    pub fn busy_until(&self, resource: Resource) -> SimTime {
        self.resource(resource)
            .and_then(|set| set.end())
            .unwrap_or(SimTime::ZERO)
    }

    /// Total idle time of `resource` within the schedule horizon.
    pub fn idle_time(&self, resource: Resource) -> SimDuration {
        match self.resource(resource) {
            Some(set) => set.idle_before(self.horizon),
            None => self.horizon.since(SimTime::ZERO),
        }
    }
}

/// The result of scheduling a task graph.
#[derive(Debug, Clone)]
pub struct Schedule {
    makespan: SimDuration,
    region_busy: HashMap<Region, SimDuration>,
    resource_busy: HashMap<Resource, SimDuration>,
    critical_path: SimDuration,
    timeline: Timeline,
}

impl Schedule {
    /// Snapshots `graph`'s **incrementally maintained** schedule state.
    ///
    /// The graph keeps every aggregate up to date as tasks are added —
    /// per-region and per-resource busy sums, makespan, critical path, and
    /// the merged busy-interval [`Timeline`] — so this is a plain copy, not
    /// a re-derivation. The snapshot is **timings-free**: it no longer
    /// copies the per-task start/finish vectors (an O(n) allocation per
    /// snapshot at million-task scale); per-task timings stay with the graph
    /// ([`TaskGraph::task_start`] / [`TaskGraph::task_finish`]). The
    /// original full aggregation pass (one scan over the task list
    /// rebuilding everything) moved to [`oracle::aggregate`] next to the
    /// pre-timeline rescanners; differential tests assert the snapshot and
    /// the re-aggregation agree at every prefix of a growing graph.
    pub fn compute(graph: &TaskGraph) -> Schedule {
        Schedule {
            makespan: graph.makespan(),
            region_busy: graph.region_busy_map().clone(),
            resource_busy: graph.resource_busy_map().clone(),
            critical_path: graph.critical_path(),
            timeline: graph.timeline().clone(),
        }
    }

    /// End-to-end simulated time (completion of the last task).
    pub fn makespan(&self) -> SimDuration {
        self.makespan
    }

    /// The merged busy-interval timeline of this schedule.
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// Total busy time attributed to a region (summed across resources, so it
    /// can exceed the makespan when work overlaps).
    pub fn region_time(&self, region: Region) -> SimDuration {
        self.region_busy
            .get(&region)
            .copied()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Total busy time of one resource.
    pub fn resource_time(&self, resource: Resource) -> SimDuration {
        self.resource_busy
            .get(&resource)
            .copied()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Sum of all crash-consistency region time.
    pub fn crash_consistency_time(&self) -> SimDuration {
        Region::all()
            .into_iter()
            .filter(|r| r.is_crash_consistency())
            .map(|r| self.region_time(r))
            .sum()
    }

    /// Sum of application-logic region time (including the application's own
    /// in-place persists, which the paper counts as application logic).
    pub fn application_time(&self) -> SimDuration {
        self.region_time(Region::Application) + self.region_time(Region::AppPersist)
    }

    /// Wall-clock time during which at least one CPU thread was busy.
    pub fn cpu_busy(&self) -> SimDuration {
        self.timeline.cpu().total()
    }

    /// Wall-clock time during which at least one NearPM resource was busy.
    pub fn ndp_busy(&self) -> SimDuration {
        self.timeline.ndp().total()
    }

    /// Wall-clock time during which the CPU and a NearPM resource were busy
    /// simultaneously — the "parallelizable fraction" numerator of Figure 18.
    pub fn cpu_ndp_overlap(&self) -> SimDuration {
        self.timeline.overlap().total()
    }

    /// Fraction of the makespan during which CPU and NDP overlap. Zero for
    /// an empty schedule (guarding the undefined 0/0 case).
    pub fn overlap_fraction(&self) -> f64 {
        if self.makespan.is_zero() {
            return 0.0;
        }
        self.cpu_ndp_overlap().ratio(self.makespan)
    }

    /// Length of the longest dependency chain (lower bound on makespan with
    /// infinite resources).
    pub fn critical_path(&self) -> SimDuration {
        self.critical_path
    }

    /// Per-region breakdown as fractions of total busy time. All-zero for an
    /// empty schedule (guarding the undefined 0/0 case).
    pub fn region_breakdown(&self) -> Vec<(Region, f64)> {
        let total: SimDuration = Region::all().into_iter().map(|r| self.region_time(r)).sum();
        Region::all()
            .into_iter()
            .map(|r| {
                let frac = if total.is_zero() {
                    0.0
                } else {
                    self.region_time(r).ratio(total)
                };
                (r, frac)
            })
            .collect()
    }
}

/// The pre-timeline rescanning analyses, kept verbatim as reference oracles.
///
/// Every function re-derives its answer from the raw task list: timings via
/// the original scheduling recurrence, busy/overlap figures by collecting and
/// re-merging intervals per call, windowed queries by clipping and re-merging
/// per call. They exist so differential tests and the `schedule_compute`
/// bench can compare the timeline implementation against the original
/// semantics. Compiled under `cfg(test)` or the `oracle` cargo feature.
///
/// [`oracle::compute_timings`] re-derives timings with the *in-order*
/// recurrence, so it reproduces graphs built with [`TaskGraph::add`] only;
/// graphs containing arrival-ordered tasks
/// ([`TaskGraph::add_arrival_ordered`]) are outside its contract — for
/// those, the graph's incrementally maintained timings are authoritative.
#[cfg(any(test, feature = "oracle"))]
pub mod oracle {
    use super::*;

    /// The full aggregation pass that used to be `Schedule::compute`: one
    /// scan over the task list re-deriving every aggregate (region/resource
    /// busy sums, makespan, critical path) and re-merging all busy intervals
    /// into a fresh [`Timeline`]. Timings are read from the graph (they are
    /// authoritative for arrival-ordered tasks); everything downstream is
    /// rebuilt from scratch. This is the O(n)-per-report recompute path the
    /// incremental snapshot is measured against.
    pub fn aggregate(graph: &TaskGraph) -> Schedule {
        let mut region_busy: HashMap<Region, SimDuration> = HashMap::new();
        let mut resource_busy: HashMap<Resource, SimDuration> = HashMap::new();
        // Longest dependency chain ending at each task (critical path).
        let mut chain: Vec<SimDuration> = Vec::with_capacity(graph.len());
        // Per-resource busy intervals in insertion order (sorted + disjoint
        // on an in-order serialized resource).
        let mut per_resource: HashMap<Resource, Vec<(SimTime, SimTime)>> = HashMap::new();

        let mut makespan = SimDuration::ZERO;
        for task in graph.tasks() {
            let start = graph.task_start(task.id);
            let finish = graph.task_finish(task.id);
            *region_busy.entry(task.region).or_insert(SimDuration::ZERO) += task.duration;
            *resource_busy
                .entry(task.resource)
                .or_insert(SimDuration::ZERO) += task.duration;

            let dep_chain = task
                .deps
                .iter()
                .map(|d| chain[d.index()])
                .max()
                .unwrap_or(SimDuration::ZERO);
            chain.push(dep_chain + task.duration);

            if finish.since(SimTime::ZERO) > makespan {
                makespan = finish.since(SimTime::ZERO);
            }
            if !task.duration.is_zero() {
                per_resource
                    .entry(task.resource)
                    .or_default()
                    .push((start, finish));
            }
        }

        let critical_path = chain.iter().copied().max().unwrap_or(SimDuration::ZERO);
        let timeline = Timeline::build(per_resource.into_iter().collect());

        Schedule {
            makespan,
            region_busy,
            resource_busy,
            critical_path,
            timeline,
        }
    }

    /// Recomputes every task's timing with the original scheduling
    /// recurrence (independent of the graph's incremental bookkeeping).
    pub fn compute_timings(graph: &TaskGraph) -> Vec<TaskTiming> {
        let mut timings: Vec<TaskTiming> = Vec::with_capacity(graph.len());
        let mut resource_free: HashMap<Resource, SimTime> = HashMap::new();
        for task in graph.tasks() {
            let dep_ready = task
                .deps
                .iter()
                .map(|d| timings[d.index()].finish)
                .max()
                .unwrap_or(SimTime::ZERO);
            let free = resource_free
                .get(&task.resource)
                .copied()
                .unwrap_or(SimTime::ZERO);
            let start = dep_ready.max(free);
            let finish = start + task.duration;
            resource_free.insert(task.resource, finish);
            timings.push(TaskTiming { start, finish });
        }
        timings
    }

    /// Sorts and merges intervals in place, returning their total covered
    /// length (the original per-query helper).
    pub fn merged_length(intervals: &mut Vec<(SimTime, SimTime)>) -> SimDuration {
        if intervals.is_empty() {
            return SimDuration::ZERO;
        }
        intervals.sort_by_key(|(s, _)| *s);
        let mut merged: Vec<(SimTime, SimTime)> = Vec::with_capacity(intervals.len());
        for &(s, e) in intervals.iter() {
            match merged.last_mut() {
                Some((_, last_end)) if s <= *last_end => {
                    if e > *last_end {
                        *last_end = e;
                    }
                }
                _ => merged.push((s, e)),
            }
        }
        let total = merged.iter().map(|(s, e)| *e - *s).sum();
        *intervals = merged;
        total
    }

    /// Total length of the intersection of two sets of *merged, sorted*
    /// intervals.
    pub fn intersection_length(a: &[(SimTime, SimTime)], b: &[(SimTime, SimTime)]) -> SimDuration {
        let mut i = 0;
        let mut j = 0;
        let mut total = SimDuration::ZERO;
        while i < a.len() && j < b.len() {
            let (as_, ae) = a[i];
            let (bs, be) = b[j];
            let start = as_.max(bs);
            let end = ae.min(be);
            if end > start {
                total += end - start;
            }
            if ae <= be {
                i += 1;
            } else {
                j += 1;
            }
        }
        total
    }

    fn collect<F: Fn(Resource) -> bool>(
        graph: &TaskGraph,
        timings: &[TaskTiming],
        keep: F,
    ) -> Vec<(SimTime, SimTime)> {
        graph
            .tasks()
            .filter(|t| !t.duration.is_zero() && keep(t.resource))
            .map(|t| (timings[t.id.index()].start, timings[t.id.index()].finish))
            .collect()
    }

    /// Makespan: rescan for the latest finish.
    pub fn makespan(timings: &[TaskTiming]) -> SimDuration {
        timings
            .iter()
            .map(|t| t.finish.since(SimTime::ZERO))
            .max()
            .unwrap_or(SimDuration::ZERO)
    }

    /// CPU busy time: rescan the task list, sort, merge.
    pub fn cpu_busy(graph: &TaskGraph, timings: &[TaskTiming]) -> SimDuration {
        let mut v = collect(graph, timings, |r| r.is_cpu());
        merged_length(&mut v)
    }

    /// NDP busy time: rescan the task list, sort, merge.
    pub fn ndp_busy(graph: &TaskGraph, timings: &[TaskTiming]) -> SimDuration {
        let mut v = collect(graph, timings, |r| r.is_ndp());
        merged_length(&mut v)
    }

    /// CPU/NDP overlap: rescan and re-merge both sides, then intersect.
    pub fn cpu_ndp_overlap(graph: &TaskGraph, timings: &[TaskTiming]) -> SimDuration {
        let mut cpu = collect(graph, timings, |r| r.is_cpu());
        let mut ndp = collect(graph, timings, |r| r.is_ndp());
        merged_length(&mut cpu);
        merged_length(&mut ndp);
        intersection_length(&cpu, &ndp)
    }

    /// Per-region busy time: rescan the task list.
    pub fn region_time(graph: &TaskGraph, region: Region) -> SimDuration {
        graph
            .tasks()
            .filter(|t| t.region == region)
            .map(|t| t.duration)
            .sum()
    }

    /// Per-resource busy time: rescan the task list.
    pub fn resource_time(graph: &TaskGraph, resource: Resource) -> SimDuration {
        graph
            .tasks()
            .filter(|t| t.resource == resource)
            .map(|t| t.duration)
            .sum()
    }

    /// Critical path: rescan with the chain recurrence.
    pub fn critical_path(graph: &TaskGraph) -> SimDuration {
        let mut chain: Vec<SimDuration> = Vec::with_capacity(graph.len());
        for task in graph.tasks() {
            let dep_chain = task
                .deps
                .iter()
                .map(|d| chain[d.index()])
                .max()
                .unwrap_or(SimDuration::ZERO);
            chain.push(dep_chain + task.duration);
        }
        chain.into_iter().max().unwrap_or(SimDuration::ZERO)
    }

    /// Busy time of one resource inside `[from, to)`: rescan, clip, merge.
    pub fn resource_busy_in_window(
        graph: &TaskGraph,
        timings: &[TaskTiming],
        resource: Resource,
        from: SimTime,
        to: SimTime,
    ) -> SimDuration {
        let mut v: Vec<(SimTime, SimTime)> = collect(graph, timings, |r| r == resource)
            .into_iter()
            .map(|(s, e)| (s.max(from), e.min(to)))
            .filter(|(s, e)| e > s)
            .collect();
        merged_length(&mut v)
    }

    /// CPU/NDP overlap inside `[from, to)`: rescan and re-merge both sides.
    pub fn overlap_in_window(
        graph: &TaskGraph,
        timings: &[TaskTiming],
        from: SimTime,
        to: SimTime,
    ) -> SimDuration {
        let clip = |v: Vec<(SimTime, SimTime)>| -> Vec<(SimTime, SimTime)> {
            v.into_iter()
                .map(|(s, e)| (s.max(from), e.min(to)))
                .filter(|(s, e)| e > s)
                .collect()
        };
        let mut cpu = clip(collect(graph, timings, |r| r.is_cpu()));
        let mut ndp = clip(collect(graph, timings, |r| r.is_ndp()));
        merged_length(&mut cpu);
        merged_length(&mut ndp);
        intersection_length(&cpu, &ndp)
    }

    /// Finish time of the last non-zero-length task on `resource`: rescan.
    pub fn busy_until(graph: &TaskGraph, timings: &[TaskTiming], resource: Resource) -> SimTime {
        collect(graph, timings, |r| r == resource)
            .into_iter()
            .map(|(_, e)| e)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Idle gaps of one resource in `[0, horizon)`: rescan and walk the
    /// complement.
    pub fn resource_idle_gaps(
        graph: &TaskGraph,
        timings: &[TaskTiming],
        resource: Resource,
        horizon: SimTime,
    ) -> Vec<(SimTime, SimTime)> {
        let mut busy = collect(graph, timings, |r| r == resource);
        merged_length(&mut busy);
        let mut gaps = Vec::new();
        let mut cursor = SimTime::ZERO;
        for (s, e) in busy {
            if s >= horizon {
                break;
            }
            if s > cursor {
                gaps.push((cursor, s.min(horizon)));
            }
            cursor = cursor.max(e);
        }
        if cursor < horizon {
            gaps.push((cursor, horizon));
        }
        gaps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::Resource;
    use crate::task::{Region, TaskGraph, TaskId};
    use crate::time::SimDuration;

    fn ns(x: f64) -> SimDuration {
        SimDuration::from_ns(x)
    }

    const CPU: Resource = Resource::Cpu(0);
    const UNIT0: Resource = Resource::NdpUnit { device: 0, unit: 0 };
    const UNIT1: Resource = Resource::NdpUnit { device: 0, unit: 1 };

    #[test]
    fn serial_chain_on_one_resource() {
        let mut g = TaskGraph::new();
        let a = g.add("a", CPU, ns(10.0), Region::Application, &[]);
        let b = g.add("b", CPU, ns(20.0), Region::CcDataMovement, &[a]);
        let _c = g.add("c", CPU, ns(5.0), Region::CcMetadata, &[b]);
        let s = Schedule::compute(&g);
        assert!((s.makespan().as_ns() - 35.0).abs() < 1e-9);
        assert!((s.crash_consistency_time().as_ns() - 25.0).abs() < 1e-9);
        assert!((s.application_time().as_ns() - 10.0).abs() < 1e-9);
        assert!((s.critical_path().as_ns() - 35.0).abs() < 1e-9);
        assert_eq!(s.cpu_ndp_overlap(), SimDuration::ZERO);
    }

    #[test]
    fn resource_contention_serializes_independent_tasks() {
        let mut g = TaskGraph::new();
        let _a = g.add("a", CPU, ns(10.0), Region::Application, &[]);
        let _b = g.add("b", CPU, ns(10.0), Region::Application, &[]);
        let s = Schedule::compute(&g);
        // Independent but same resource: must serialize.
        assert!((s.makespan().as_ns() - 20.0).abs() < 1e-9);
        // Critical path ignores resource contention.
        assert!((s.critical_path().as_ns() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn independent_tasks_on_distinct_units_run_in_parallel() {
        let mut g = TaskGraph::new();
        let _a = g.add("log-a", UNIT0, ns(100.0), Region::CcDataMovement, &[]);
        let _b = g.add("log-b", UNIT1, ns(100.0), Region::CcDataMovement, &[]);
        let s = Schedule::compute(&g);
        assert!((s.makespan().as_ns() - 100.0).abs() < 1e-9);
        assert!((s.ndp_busy().as_ns() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn cpu_ndp_overlap_measured() {
        let mut g = TaskGraph::new();
        // NDP copies for 100 ns while the CPU computes for 60 ns concurrently.
        let _n = g.add("ndp-copy", UNIT0, ns(100.0), Region::CcDataMovement, &[]);
        let _c = g.add("cpu-work", CPU, ns(60.0), Region::Application, &[]);
        let s = Schedule::compute(&g);
        assert!((s.makespan().as_ns() - 100.0).abs() < 1e-9);
        assert!((s.cpu_ndp_overlap().as_ns() - 60.0).abs() < 1e-9);
        assert!((s.overlap_fraction() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn dependency_across_resources_enforced() {
        let mut g = TaskGraph::new();
        let n = g.add("ndp-log", UNIT0, ns(50.0), Region::CcDataMovement, &[]);
        let u = g.add("cpu-update", CPU, ns(10.0), Region::AppPersist, &[n]);
        let s = Schedule::compute(&g);
        assert!((g.task_start(u).as_ns() - 50.0).abs() < 1e-9);
        assert!((s.makespan().as_ns() - 60.0).abs() < 1e-9);
        assert_eq!(s.cpu_ndp_overlap(), SimDuration::ZERO);
    }

    #[test]
    fn barriers_do_not_consume_time_but_order() {
        let mut g = TaskGraph::new();
        let a = g.add("a", UNIT0, ns(40.0), Region::CcDataMovement, &[]);
        let b = g.add("b", UNIT1, ns(70.0), Region::CcDataMovement, &[]);
        let j = g.barrier("join", CPU, &[a, b]);
        let c = g.add("commit", CPU, ns(10.0), Region::CcCommit, &[j]);
        let s = Schedule::compute(&g);
        assert!((g.task_start(c).as_ns() - 70.0).abs() < 1e-9);
        assert!((s.makespan().as_ns() - 80.0).abs() < 1e-9);
    }

    #[test]
    fn region_breakdown_sums_to_one() {
        let mut g = TaskGraph::new();
        let a = g.add("a", CPU, ns(30.0), Region::Application, &[]);
        let _b = g.add("b", CPU, ns(70.0), Region::CcDataMovement, &[a]);
        let s = Schedule::compute(&g);
        let breakdown = s.region_breakdown();
        let total: f64 = breakdown.iter().map(|(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-9);
        let dm = breakdown
            .iter()
            .find(|(r, _)| *r == Region::CcDataMovement)
            .unwrap()
            .1;
        assert!((dm - 0.7).abs() < 1e-9);
    }

    #[test]
    fn empty_graph_schedules_to_zero() {
        let g = TaskGraph::new();
        let s = Schedule::compute(&g);
        assert_eq!(s.makespan(), SimDuration::ZERO);
        assert_eq!(s.critical_path(), SimDuration::ZERO);
        assert_eq!(s.cpu_busy(), SimDuration::ZERO);
        assert!(s.timeline().cpu().is_empty());
        assert_eq!(s.timeline().horizon(), SimTime::ZERO);
    }

    #[test]
    fn interval_set_merges_and_sums() {
        let set = IntervalSet::from_intervals(vec![
            (SimTime::from_ns(0.0), SimTime::from_ns(10.0)),
            (SimTime::from_ns(5.0), SimTime::from_ns(15.0)),
            (SimTime::from_ns(20.0), SimTime::from_ns(25.0)),
        ]);
        assert!((set.total().as_ns() - 20.0).abs() < 1e-9);
        assert_eq!(set.count(), 2);
        assert!(set.contains(SimTime::from_ns(7.0)));
        assert!(!set.contains(SimTime::from_ns(17.0)));
        assert!((set.covered_before(SimTime::from_ns(12.0)).as_ns() - 12.0).abs() < 1e-9);
        assert!(
            (set.covered_in(SimTime::from_ns(10.0), SimTime::from_ns(22.0))
                .as_ns()
                - 7.0)
                .abs()
                < 1e-9
        );
        assert_eq!(set.end(), Some(SimTime::from_ns(25.0)));
    }

    #[test]
    fn interval_set_intersection() {
        let a = IntervalSet::from_intervals(vec![(SimTime::from_ns(0.0), SimTime::from_ns(10.0))]);
        let b = IntervalSet::from_intervals(vec![
            (SimTime::from_ns(5.0), SimTime::from_ns(7.0)),
            (SimTime::from_ns(9.0), SimTime::from_ns(20.0)),
        ]);
        let both = a.intersect(&b);
        assert!((both.total().as_ns() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn interval_set_idle_gaps() {
        let set = IntervalSet::from_intervals(vec![
            (SimTime::from_ns(10.0), SimTime::from_ns(20.0)),
            (SimTime::from_ns(30.0), SimTime::from_ns(40.0)),
        ]);
        let gaps = set.idle_gaps(SimTime::from_ns(50.0));
        assert_eq!(
            gaps,
            vec![
                (SimTime::ZERO, SimTime::from_ns(10.0)),
                (SimTime::from_ns(20.0), SimTime::from_ns(30.0)),
                (SimTime::from_ns(40.0), SimTime::from_ns(50.0)),
            ]
        );
        assert!((set.longest_idle_gap(SimTime::from_ns(50.0)).as_ns() - 10.0).abs() < 1e-9);
        assert!((set.idle_before(SimTime::from_ns(50.0)).as_ns() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn timeline_per_resource_queries() {
        let mut g = TaskGraph::new();
        let a = g.add("a", UNIT0, ns(40.0), Region::CcDataMovement, &[]);
        let _b = g.add("b", UNIT1, ns(10.0), Region::CcDataMovement, &[]);
        let _c = g.add("c", UNIT0, ns(20.0), Region::CcDataMovement, &[a]);
        let _d = g.add("d", CPU, ns(30.0), Region::Application, &[]);
        let s = Schedule::compute(&g);
        let tl = s.timeline();
        assert_eq!(tl.busy_until(UNIT0), SimTime::from_ns(60.0));
        assert_eq!(tl.busy_until(UNIT1), SimTime::from_ns(10.0));
        assert_eq!(tl.horizon(), SimTime::from_ns(60.0));
        assert!((tl.utilization(UNIT0) - 1.0).abs() < 1e-9);
        assert!((tl.utilization(UNIT1) - 10.0 / 60.0).abs() < 1e-9);
        assert!((tl.idle_time(UNIT1).as_ns() - 50.0).abs() < 1e-9);
        // Adjacent busy intervals on UNIT0 coalesce into one.
        assert_eq!(tl.resource(UNIT0).unwrap().count(), 1);
        // Unused resource.
        assert!(tl.resource(Resource::Cpu(7)).is_none());
        assert_eq!(tl.busy_until(Resource::Cpu(7)), SimTime::ZERO);
        assert!((tl.utilization(Resource::Cpu(7))).abs() < 1e-9);
    }

    /// The pipelined front-end shape: decode on the dispatcher, issue on the
    /// per-unit queue, execution on the unit. All three stages are NDP
    /// resources, so the issue queue's busy time must count toward the NDP
    /// union (and the overlap) identically under the timeline and the
    /// rescanning oracle.
    #[test]
    fn issue_queue_counts_as_ndp_in_timeline_and_oracle() {
        let iq = Resource::IssueQueue { device: 0, unit: 0 };
        let mut g = TaskGraph::new();
        let compute = g.add("app-compute", CPU, ns(100.0), Region::Application, &[]);
        let decode = g.add(
            "ndp-decode",
            Resource::Dispatcher(0),
            ns(10.0),
            Region::CcOffload,
            &[],
        );
        let issue = g.add("ndp-issue", iq, ns(25.0), Region::CcOffload, &[decode]);
        let copy = g.add(
            "ndp-copy",
            UNIT0,
            ns(40.0),
            Region::CcDataMovement,
            &[issue],
        );
        let _ = (compute, copy);
        let s = Schedule::compute(&g);
        // Dispatcher (10) + issue queue (25) + unit (40) merge into one
        // contiguous NDP busy window.
        assert!((s.ndp_busy().as_ns() - 75.0).abs() < 1e-9);
        assert!((s.resource_time(iq).as_ns() - 25.0).abs() < 1e-9);
        // The CPU compute covers the whole NDP window: full overlap.
        assert!((s.cpu_ndp_overlap().as_ns() - 75.0).abs() < 1e-9);
        let timings = oracle::compute_timings(&g);
        assert_eq!(s.ndp_busy(), oracle::ndp_busy(&g, &timings));
        assert_eq!(s.cpu_ndp_overlap(), oracle::cpu_ndp_overlap(&g, &timings));
        assert_eq!(s.resource_time(iq), oracle::resource_time(&g, iq));
    }

    /// Builds a random task graph over a mixed CPU/NDP topology.
    fn random_graph(rng: &mut impl rand::Rng, tasks: usize) -> TaskGraph {
        let resources = [
            Resource::Cpu(0),
            Resource::Cpu(1),
            Resource::NdpUnit { device: 0, unit: 0 },
            Resource::NdpUnit { device: 0, unit: 1 },
            Resource::NdpUnit { device: 1, unit: 0 },
            Resource::IssueQueue { device: 0, unit: 0 },
            Resource::IssueQueue { device: 0, unit: 1 },
            Resource::Dispatcher(0),
            Resource::ControlPath,
        ];
        let regions = Region::all();
        let mut g = TaskGraph::new();
        for i in 0..tasks {
            let resource = resources[rng.gen_range(0..resources.len())];
            let region = regions[rng.gen_range(0..regions.len())];
            // Mix zero-length barriers in.
            let duration = if rng.gen_range(0..8) == 0 {
                SimDuration::ZERO
            } else {
                SimDuration::from_ps(rng.gen_range(1..5_000))
            };
            let mut deps = Vec::new();
            if i > 0 {
                for _ in 0..rng.gen_range(0..3usize) {
                    deps.push(TaskId(rng.gen_range(0..i)));
                }
                deps.sort_unstable();
                deps.dedup();
            }
            g.add("t", resource, duration, region, &deps);
        }
        g
    }

    /// Incremental insertion must be indistinguishable from batch
    /// construction: same merged intervals, same prefix sums, same coverage
    /// deltas as a naive membership recomputation.
    #[test]
    fn incremental_insert_matches_batch_construction() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(9);
        for _round in 0..60 {
            let n = rng.gen_range(0usize..60);
            let mut incremental = IntervalSet::empty();
            let mut all: Vec<(SimTime, SimTime)> = Vec::new();
            for _ in 0..n {
                let s = SimTime::from_ps(rng.gen_range(0u64..2_000));
                let e = s + SimDuration::from_ps(rng.gen_range(0u64..300));
                let mut fresh = Vec::new();
                incremental.insert_with(s, e, Some(&mut fresh));
                // The coverage delta equals [s, e) minus what was covered.
                let before = IntervalSet::from_intervals(all.clone());
                let expected: u64 = e
                    .since(s)
                    .as_ps()
                    .saturating_sub(before.covered_in(s, e).as_ps());
                let got: u64 = fresh.iter().map(|&(a, b)| b.since(a).as_ps()).sum();
                assert_eq!(got, expected, "coverage delta for [{s}, {e})");
                for w in fresh.windows(2) {
                    assert!(w[0].1 <= w[1].0, "delta pieces must be disjoint+sorted");
                }
                all.push((s, e));
                let batch = IntervalSet::from_intervals(all.clone());
                assert_eq!(incremental.intervals(), batch.intervals());
                assert_eq!(incremental.total(), batch.total());
                let probe = SimTime::from_ps(rng.gen_range(0u64..2_500));
                assert_eq!(
                    incremental.covered_before(probe),
                    batch.covered_before(probe)
                );
            }
        }
    }

    /// Prefix replay: after **every** added task (in-order and
    /// arrival-ordered alike), the O(1) snapshot (`Schedule::compute`) must
    /// agree with the full re-aggregation pass (`oracle::aggregate`) on
    /// timings, totals, and the merged timeline down to the exact interval
    /// lists.
    #[test]
    fn prefix_replay_snapshot_matches_oracle_aggregation() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let in_order: [Resource; 4] = [
            Resource::Cpu(0),
            Resource::Cpu(1),
            Resource::NdpUnit { device: 0, unit: 0 },
            Resource::NdpUnit { device: 1, unit: 1 },
        ];
        let arrival: [Resource; 3] = [
            Resource::Dispatcher(0),
            Resource::IssueQueue { device: 0, unit: 0 },
            Resource::IssueQueue { device: 0, unit: 1 },
        ];
        let regions = Region::all();
        let mut rng = StdRng::seed_from_u64(77);
        for _round in 0..15 {
            let mut g = TaskGraph::new();
            let tasks = rng.gen_range(1usize..90);
            for i in 0..tasks {
                let region = regions[rng.gen_range(0..regions.len())];
                let duration = if rng.gen_range(0..8) == 0 {
                    SimDuration::ZERO
                } else {
                    SimDuration::from_ps(rng.gen_range(1..4_000))
                };
                let mut deps = Vec::new();
                if i > 0 {
                    for _ in 0..rng.gen_range(0..3usize) {
                        deps.push(TaskId(rng.gen_range(0..i)));
                    }
                    deps.sort_unstable();
                    deps.dedup();
                }
                if rng.gen_bool(0.35) {
                    let r = arrival[rng.gen_range(0..arrival.len())];
                    g.add_arrival_ordered("t", r, duration, region, &deps);
                } else {
                    let r = in_order[rng.gen_range(0..in_order.len())];
                    g.add("t", r, duration, region, &deps);
                }
                if rng.gen_range(0..4) != 0 && i != tasks - 1 {
                    continue;
                }
                let snap = Schedule::compute(&g);
                let full = oracle::aggregate(&g);
                assert_eq!(snap.makespan(), full.makespan());
                assert_eq!(snap.critical_path(), full.critical_path());
                assert_eq!(snap.cpu_busy(), full.cpu_busy());
                assert_eq!(snap.ndp_busy(), full.ndp_busy());
                assert_eq!(snap.cpu_ndp_overlap(), full.cpu_ndp_overlap());
                for r in Region::all() {
                    assert_eq!(snap.region_time(r), full.region_time(r));
                }
                assert_eq!(snap.timeline().horizon(), full.timeline().horizon());
                assert_eq!(
                    snap.timeline().cpu().intervals(),
                    full.timeline().cpu().intervals()
                );
                assert_eq!(
                    snap.timeline().ndp().intervals(),
                    full.timeline().ndp().intervals()
                );
                assert_eq!(
                    snap.timeline().overlap().intervals(),
                    full.timeline().overlap().intervals()
                );
                for (res, set) in full.timeline().resources() {
                    let live = snap
                        .timeline()
                        .resource(res)
                        .unwrap_or_else(|| panic!("{res} missing from the live timeline"));
                    assert_eq!(live.intervals(), set.intervals(), "{res}");
                    assert_eq!(live.total(), set.total(), "{res}");
                }
                assert_eq!(
                    snap.timeline().resources().count(),
                    full.timeline().resources().count()
                );
            }
        }
    }

    #[test]
    fn differential_timeline_vs_rescanning_oracle() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for round in 0..40 {
            let tasks = rng.gen_range(0..120);
            let g = random_graph(&mut rng, tasks);
            let s = Schedule::compute(&g);
            let oracle_timings = oracle::compute_timings(&g);

            // Incremental timings match the original recurrence exactly.
            for (i, t) in oracle_timings.iter().enumerate() {
                assert_eq!(g.task_start(TaskId(i)), t.start, "round {round} task {i}");
                assert_eq!(g.task_finish(TaskId(i)), t.finish, "round {round} task {i}");
            }

            // Aggregate answers match the per-query rescans.
            assert_eq!(s.makespan(), oracle::makespan(&oracle_timings));
            assert_eq!(s.cpu_busy(), oracle::cpu_busy(&g, &oracle_timings));
            assert_eq!(s.ndp_busy(), oracle::ndp_busy(&g, &oracle_timings));
            assert_eq!(
                s.cpu_ndp_overlap(),
                oracle::cpu_ndp_overlap(&g, &oracle_timings)
            );
            assert_eq!(s.critical_path(), oracle::critical_path(&g));
            for r in Region::all() {
                assert_eq!(s.region_time(r), oracle::region_time(&g, r));
            }

            // Per-resource totals, windows, and idle gaps.
            let horizon = s.timeline().horizon();
            for resource in [
                Resource::Cpu(0),
                Resource::Cpu(1),
                Resource::NdpUnit { device: 0, unit: 0 },
                Resource::IssueQueue { device: 0, unit: 0 },
                Resource::Dispatcher(0),
            ] {
                assert_eq!(
                    s.resource_time(resource),
                    oracle::resource_time(&g, resource)
                );
                let set_total = s
                    .timeline()
                    .resource(resource)
                    .map(|set| set.total())
                    .unwrap_or(SimDuration::ZERO);
                assert_eq!(
                    set_total,
                    oracle::resource_busy_in_window(
                        &g,
                        &oracle_timings,
                        resource,
                        SimTime::ZERO,
                        SimTime::from_ps(u64::MAX),
                    )
                );
                let gaps = s
                    .timeline()
                    .resource(resource)
                    .map(|set| set.idle_gaps(horizon))
                    .unwrap_or_else(|| {
                        if horizon > SimTime::ZERO {
                            vec![(SimTime::ZERO, horizon)]
                        } else {
                            Vec::new()
                        }
                    });
                assert_eq!(
                    gaps,
                    oracle::resource_idle_gaps(&g, &oracle_timings, resource, horizon)
                );
                for _ in 0..4 {
                    let a = SimTime::from_ps(rng.gen_range(0..6_000 * 120));
                    let b = a + SimDuration::from_ps(rng.gen_range(0..10_000));
                    let timeline_win = s
                        .timeline()
                        .resource(resource)
                        .map(|set| set.covered_in(a, b))
                        .unwrap_or(SimDuration::ZERO);
                    assert_eq!(
                        timeline_win,
                        oracle::resource_busy_in_window(&g, &oracle_timings, resource, a, b)
                    );
                }
            }
            for _ in 0..6 {
                let a = SimTime::from_ps(rng.gen_range(0..6_000 * 120));
                let b = a + SimDuration::from_ps(rng.gen_range(0..10_000));
                assert_eq!(
                    s.timeline().overlap().covered_in(a, b),
                    oracle::overlap_in_window(&g, &oracle_timings, a, b)
                );
            }
        }
    }
}
