//! Statistics helpers used by the benchmark harness.
//!
//! The paper reports means with standard-deviation error bars over 10 runs;
//! [`Summary`] provides exactly that, plus geometric means for speedup
//! aggregation across workloads.

/// Online accumulator for a stream of samples.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    samples: Vec<f64>,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary::default()
    }

    /// Creates a summary from an existing sample vector.
    pub fn from_samples(samples: impl IntoIterator<Item = f64>) -> Self {
        Summary {
            samples: samples.into_iter().collect(),
        }
    }

    /// Adds one sample.
    pub fn add(&mut self, value: f64) {
        self.samples.push(value);
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean (0 for an empty summary).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Population standard deviation (0 for fewer than two samples).
    pub fn stddev(&self) -> f64 {
        if self.samples.len() < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let var = self
            .samples
            .iter()
            .map(|s| (s - mean) * (s - mean))
            .sum::<f64>()
            / self.samples.len() as f64;
        var.sqrt()
    }

    /// Minimum sample (0 for an empty summary).
    pub fn min(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
            .min_or_zero()
    }

    /// Maximum sample (0 for an empty summary).
    pub fn max(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
            .max_or_zero()
    }

    /// Geometric mean; samples must be positive (non-positive samples are
    /// skipped).
    pub fn geomean(&self) -> f64 {
        let positive: Vec<f64> = self.samples.iter().copied().filter(|s| *s > 0.0).collect();
        if positive.is_empty() {
            return 0.0;
        }
        let log_sum: f64 = positive.iter().map(|s| s.ln()).sum();
        (log_sum / positive.len() as f64).exp()
    }

    /// Borrow the raw samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

/// Geometric mean of an iterator of positive values.
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    Summary::from_samples(values).geomean()
}

/// Arithmetic mean of an iterator of values.
pub fn mean(values: impl IntoIterator<Item = f64>) -> f64 {
    Summary::from_samples(values).mean()
}

trait FiniteOrZero {
    fn min_or_zero(self) -> f64;
    fn max_or_zero(self) -> f64;
}

impl FiniteOrZero for f64 {
    fn min_or_zero(self) -> f64 {
        if self.is_finite() {
            self
        } else {
            0.0
        }
    }
    fn max_or_zero(self) -> f64 {
        if self.is_finite() {
            self
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_zeroed() {
        let s = Summary::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.geomean(), 0.0);
    }

    #[test]
    fn mean_and_stddev() {
        let s = Summary::from_samples([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean() - 5.0).abs() < 1e-9);
        assert!((s.stddev() - 2.0).abs() < 1e-9);
        assert_eq!(s.count(), 8);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn geomean_basic() {
        let s = Summary::from_samples([1.0, 4.0, 16.0]);
        assert!((s.geomean() - 4.0).abs() < 1e-9);
        // Non-positive samples are skipped.
        let s = Summary::from_samples([0.0, 4.0, 4.0]);
        assert!((s.geomean() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn free_function_helpers() {
        assert!((mean([1.0, 2.0, 3.0]) - 2.0).abs() < 1e-9);
        assert!((geomean([2.0, 8.0]) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn single_sample() {
        let mut s = Summary::new();
        s.add(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.min(), 3.5);
        assert_eq!(s.max(), 3.5);
        assert_eq!(s.samples(), &[3.5]);
    }
}
