//! # nearpm-sim — simulation substrate for NearPM
//!
//! This crate provides the discrete-event timing substrate that the NearPM
//! reproduction is built on:
//!
//! * [`SimTime`] / [`SimDuration`] — picosecond-precision simulated time.
//! * [`LatencyModel`] — latency/bandwidth parameters of the evaluation
//!   platform (PM latency, PCIe / AXI bandwidth, NearPM unit clock, flush and
//!   fence costs), defaulting to the paper's FPGA prototype.
//! * [`Resource`] / [`Topology`] — the exclusive execution resources of the
//!   platform: CPU threads, NearPM units, per-device dispatchers, and the
//!   host↔device control path.
//! * [`TaskGraph`] / [`TaskRef`] / [`Region`] — the task-DAG representation
//!   (a struct-of-arrays arena) that every crash-consistency operation and
//!   application step is lowered to.
//! * [`Schedule`] — the deterministic list scheduler and its analysis
//!   (makespan, per-region breakdown, CPU/NDP overlap, critical path).
//! * [`stats`] — mean / standard deviation / geometric-mean summaries used by
//!   the benchmark harness.
//! * [`hist`] — the log-bucketed [`LatencyHistogram`] (≤ 1 % relative error,
//!   O(1) record) behind the open-loop driver's p50/p99/p999 tail-latency
//!   reporting, with the exact sorted-percentile oracle for differentials.
//!
//! Performance results in the rest of the workspace are *derived exclusively*
//! from task graphs scheduled by this crate; no wall-clock measurement of the
//! simulator itself leaks into reported figures.
//!
//! ## Example
//!
//! ```
//! use nearpm_sim::{LatencyModel, Region, Resource, Schedule, TaskGraph};
//!
//! let model = LatencyModel::default();
//! let mut graph = TaskGraph::new();
//!
//! // A NearPM unit copies 4 kB to an undo log while the CPU keeps computing.
//! let log = graph.add(
//!     "undo-log copy",
//!     Resource::NdpUnit { device: 0, unit: 0 },
//!     model.ndp_copy(4096),
//!     Region::CcDataMovement,
//!     &[],
//! );
//! let compute = graph.add(
//!     "application logic",
//!     Resource::Cpu(0),
//!     model.cpu_compute(500.0),
//!     Region::Application,
//!     &[],
//! );
//! // The in-place update persists only after the log copy (PPO shared-address
//! // ordering) and after the application produced the new value.
//! let _update = graph.add(
//!     "in-place update",
//!     Resource::Cpu(0),
//!     model.cpu_inplace_update(64),
//!     Region::AppPersist,
//!     &[log, compute],
//! );
//!
//! let schedule = Schedule::compute(&graph);
//! assert!(schedule.cpu_ndp_overlap().as_ns() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hist;
pub mod latency;
pub mod resource;
pub mod schedule;
pub mod stats;
pub mod task;
pub mod time;

pub use hist::{exact_percentile, LatencyHistogram};
pub use latency::{LatencyModel, CACHE_LINE, PM_PAGE};
pub use resource::{Resource, Topology};
pub use schedule::{IntervalSet, Schedule, TaskTiming, Timeline};
pub use stats::Summary;
pub use task::{Region, TaskGraph, TaskId, TaskRef};
pub use time::{SimDuration, SimTime};
