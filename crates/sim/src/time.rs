//! Simulated time.
//!
//! The simulator keeps time in integer **picoseconds** so that bandwidth
//! arithmetic (bytes divided by GB/s) stays precise for the smallest transfer
//! sizes the paper uses (64 B) while still covering multi-second simulations
//! in a `u64` without overflow (2^64 ps ≈ 213 days).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time, measured from the start of the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

/// Picoseconds per nanosecond.
const PS_PER_NS: u64 = 1_000;
/// Picoseconds per microsecond.
const PS_PER_US: u64 = 1_000_000;

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from raw picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Creates a time from nanoseconds.
    pub fn from_ns(ns: f64) -> Self {
        SimTime((ns * PS_PER_NS as f64).round() as u64)
    }

    /// Raw picosecond count.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Time expressed in nanoseconds.
    pub fn as_ns(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }

    /// Time expressed in microseconds.
    pub fn as_us(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// Returns the later of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Returns the earlier of two times.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// Duration elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        SimDuration(ps)
    }

    /// Creates a duration from nanoseconds.
    pub fn from_ns(ns: f64) -> Self {
        SimDuration((ns * PS_PER_NS as f64).round() as u64)
    }

    /// Creates a duration from microseconds.
    pub fn from_us(us: f64) -> Self {
        SimDuration((us * PS_PER_US as f64).round() as u64)
    }

    /// Duration of transferring `bytes` at `gib_per_s` gigabytes per second.
    ///
    /// A bandwidth of zero yields a zero-length transfer, which keeps
    /// degenerate latency-model configurations from dividing by zero.
    pub fn from_transfer(bytes: u64, gb_per_s: f64) -> Self {
        if gb_per_s <= 0.0 {
            return SimDuration::ZERO;
        }
        // bytes / (GB/s) = ns * bytes / (bytes/ns); 1 GB/s == 1 byte/ns.
        let ns = bytes as f64 / gb_per_s;
        SimDuration::from_ns(ns)
    }

    /// Duration of `cycles` cycles at `mhz` megahertz.
    pub fn from_cycles(cycles: u64, mhz: f64) -> Self {
        if mhz <= 0.0 {
            return SimDuration::ZERO;
        }
        let ns_per_cycle = 1_000.0 / mhz;
        SimDuration::from_ns(cycles as f64 * ns_per_cycle)
    }

    /// Raw picosecond count.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Duration expressed in nanoseconds.
    pub fn as_ns(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }

    /// Duration expressed in microseconds.
    pub fn as_us(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// Duration expressed in seconds.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// True if the duration is zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// Ratio of this duration to `other`.
    ///
    /// A zero `other` makes the ratio undefined and returns [`f64::NAN`].
    /// (It used to return `0.0`, which made speedups over an empty run look
    /// like a catastrophic slowdown instead of a degenerate measurement.)
    /// Callers that prefer a defined value for the degenerate case — e.g.
    /// utilization of an empty schedule — must guard explicitly.
    pub fn ratio(self, other: SimDuration) -> f64 {
        if other.0 == 0 {
            f64::NAN
        } else {
            self.0 as f64 / other.0 as f64
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration((self.0 as f64 * rhs).round() as u64)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs.max(1))
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |acc, d| acc + d)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} ns", self.as_ns())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= PS_PER_US * 1_000 {
            write!(f, "{:.3} ms", self.as_us() / 1_000.0)
        } else if self.0 >= PS_PER_US {
            write!(f, "{:.3} us", self.as_us())
        } else {
            write!(f, "{:.3} ns", self.as_ns())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_roundtrip_ns() {
        let t = SimTime::from_ns(436.0);
        assert_eq!(t.as_ps(), 436_000);
        assert!((t.as_ns() - 436.0).abs() < 1e-9);
    }

    #[test]
    fn duration_transfer_bandwidth() {
        // 64 bytes at 8 GB/s = 8 ns.
        let d = SimDuration::from_transfer(64, 8.0);
        assert!((d.as_ns() - 8.0).abs() < 1e-9);
        // 16 KiB at 4 GB/s = 4096 ns.
        let d = SimDuration::from_transfer(16 * 1024, 4.0);
        assert!((d.as_ns() - 4096.0).abs() < 1e-9);
    }

    #[test]
    fn duration_transfer_zero_bandwidth_is_zero() {
        assert_eq!(SimDuration::from_transfer(1024, 0.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_transfer(1024, -1.0), SimDuration::ZERO);
    }

    #[test]
    fn duration_cycles() {
        // 300 cycles at 300 MHz = 1000 ns.
        let d = SimDuration::from_cycles(300, 300.0);
        assert!((d.as_ns() - 1000.0).abs() < 1e-6);
        assert_eq!(SimDuration::from_cycles(10, 0.0), SimDuration::ZERO);
    }

    #[test]
    fn time_arithmetic() {
        let t0 = SimTime::from_ns(100.0);
        let t1 = t0 + SimDuration::from_ns(50.0);
        assert!((t1.as_ns() - 150.0).abs() < 1e-9);
        assert!(((t1 - t0).as_ns() - 50.0).abs() < 1e-9);
        // Saturating: earlier minus later is zero.
        assert_eq!((t0 - t1).as_ps(), 0);
        assert_eq!(t0.max(t1), t1);
        assert_eq!(t0.min(t1), t0);
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_ns(10.0);
        let b = SimDuration::from_ns(4.0);
        assert!(((a + b).as_ns() - 14.0).abs() < 1e-9);
        assert!(((a - b).as_ns() - 6.0).abs() < 1e-9);
        assert_eq!((b - a), SimDuration::ZERO);
        assert!(((a * 3).as_ns() - 30.0).abs() < 1e-9);
        assert!(((a / 2).as_ns() - 5.0).abs() < 1e-9);
        assert!((a.ratio(b) - 2.5).abs() < 1e-9);
    }

    #[test]
    fn ratio_with_zero_denominator_is_nan() {
        // An empty run has a zero makespan; a speedup against it is
        // undefined, not 0x (which would read as an infinite slowdown).
        let b = SimDuration::from_ns(4.0);
        assert!(b.ratio(SimDuration::ZERO).is_nan());
        assert!(SimDuration::ZERO.ratio(SimDuration::ZERO).is_nan());
        assert_eq!(SimDuration::ZERO.ratio(b), 0.0);
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (1..=4).map(|i| SimDuration::from_ns(i as f64)).sum();
        assert!((total.as_ns() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn display_scales() {
        assert_eq!(format!("{}", SimDuration::from_ns(5.0)), "5.000 ns");
        assert_eq!(format!("{}", SimDuration::from_us(5.0)), "5.000 us");
        assert_eq!(format!("{}", SimDuration::from_us(5000.0)), "5.000 ms");
    }
}
