//! Execution resources of the simulated platform.
//!
//! A [`Resource`] is anything that can execute at most one task at a time:
//! a CPU hardware thread, one of the NearPM execution units of a device, the
//! PCIe control path used to issue commands, or the dispatcher front-end of a
//! device. Task durations already account for bandwidth sharing on the data
//! path, so the PM media itself is not modeled as an exclusive resource.

use std::fmt;

/// An exclusive execution resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Resource {
    /// A CPU hardware thread (the paper's host runs the application here).
    Cpu(usize),
    /// One NearPM execution unit.
    NdpUnit {
        /// Device the unit belongs to.
        device: usize,
        /// Unit index within the device.
        unit: usize,
    },
    /// The dispatcher front-end of a NearPM device. Only the short *decode*
    /// stage serializes here; translation and conflict checks run on the
    /// per-unit issue queues so the dispatcher frees as soon as decode
    /// retires.
    Dispatcher(usize),
    /// An extra decode lane of a device whose front-end has more than one
    /// decode stage (`lane >= 1`; lane 0 is the classic
    /// [`Resource::Dispatcher`], so single-lane devices are untouched).
    DispatcherLane {
        /// Device the lane belongs to.
        device: usize,
        /// Lane index within the device's front-end (always `>= 1`).
        lane: usize,
    },
    /// The issue queue feeding one NearPM execution unit: the decoded
    /// request's translate/conflict-check stage runs here, overlapping with
    /// the execution of requests on sibling units.
    IssueQueue {
        /// Device the queue belongs to.
        device: usize,
        /// Unit the queue feeds.
        unit: usize,
    },
    /// The memory-mapped control path between the host and the devices.
    ControlPath,
}

impl Resource {
    /// True if this resource belongs to a NearPM device (unit, dispatcher,
    /// or issue queue).
    pub fn is_ndp(&self) -> bool {
        matches!(
            self,
            Resource::NdpUnit { .. }
                | Resource::Dispatcher(_)
                | Resource::DispatcherLane { .. }
                | Resource::IssueQueue { .. }
        )
    }

    /// True if this resource is a CPU hardware thread.
    pub fn is_cpu(&self) -> bool {
        matches!(self, Resource::Cpu(_))
    }

    /// Device index for device-local resources.
    pub fn device(&self) -> Option<usize> {
        match self {
            Resource::NdpUnit { device, .. }
            | Resource::IssueQueue { device, .. }
            | Resource::DispatcherLane { device, .. }
            | Resource::Dispatcher(device) => Some(*device),
            _ => None,
        }
    }
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Resource::Cpu(i) => write!(f, "cpu{i}"),
            Resource::NdpUnit { device, unit } => write!(f, "dev{device}.unit{unit}"),
            Resource::IssueQueue { device, unit } => write!(f, "dev{device}.iq{unit}"),
            Resource::Dispatcher(d) => write!(f, "dev{d}.dispatcher"),
            Resource::DispatcherLane { device, lane } => {
                write!(f, "dev{device}.dispatcher{lane}")
            }
            Resource::ControlPath => write!(f, "control-path"),
        }
    }
}

/// Describes the resources available to a simulation: how many CPU threads,
/// how many NearPM devices, and how many execution units per device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    /// Number of CPU hardware threads available to the application.
    pub cpu_threads: usize,
    /// Number of NearPM devices (0 = CPU-only baseline).
    pub devices: usize,
    /// NearPM execution units per device (4 in the prototype).
    pub units_per_device: usize,
}

impl Default for Topology {
    fn default() -> Self {
        Topology {
            cpu_threads: 1,
            devices: 2,
            units_per_device: 4,
        }
    }
}

impl Topology {
    /// CPU-only topology used by the baseline configuration.
    pub fn cpu_only(cpu_threads: usize) -> Self {
        Topology {
            cpu_threads,
            devices: 0,
            units_per_device: 0,
        }
    }

    /// Topology with `devices` NearPM devices of `units` units each.
    pub fn with_devices(cpu_threads: usize, devices: usize, units: usize) -> Self {
        Topology {
            cpu_threads,
            devices,
            units_per_device: units,
        }
    }

    /// Total number of NearPM execution units in the system.
    pub fn total_units(&self) -> usize {
        self.devices * self.units_per_device
    }

    /// Iterates over every exclusive resource in this topology.
    pub fn resources(&self) -> Vec<Resource> {
        let mut out = Vec::new();
        for c in 0..self.cpu_threads {
            out.push(Resource::Cpu(c));
        }
        out.push(Resource::ControlPath);
        for d in 0..self.devices {
            out.push(Resource::Dispatcher(d));
            for u in 0..self.units_per_device {
                out.push(Resource::IssueQueue { device: d, unit: u });
                out.push(Resource::NdpUnit { device: d, unit: u });
            }
        }
        out
    }

    /// True if the topology has at least one NearPM device.
    pub fn has_ndp(&self) -> bool {
        self.devices > 0 && self.units_per_device > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resource_classification() {
        assert!(Resource::Cpu(0).is_cpu());
        assert!(!Resource::Cpu(0).is_ndp());
        assert!(Resource::NdpUnit { device: 1, unit: 2 }.is_ndp());
        assert!(Resource::Dispatcher(0).is_ndp());
        assert!(Resource::DispatcherLane { device: 0, lane: 1 }.is_ndp());
        assert_eq!(
            Resource::DispatcherLane { device: 2, lane: 1 }.device(),
            Some(2)
        );
        assert!(Resource::IssueQueue { device: 0, unit: 1 }.is_ndp());
        assert!(!Resource::IssueQueue { device: 0, unit: 1 }.is_cpu());
        assert!(!Resource::ControlPath.is_ndp());
        assert_eq!(Resource::NdpUnit { device: 1, unit: 2 }.device(), Some(1));
        assert_eq!(
            Resource::IssueQueue { device: 1, unit: 2 }.device(),
            Some(1)
        );
        assert_eq!(Resource::Dispatcher(3).device(), Some(3));
        assert_eq!(Resource::Cpu(0).device(), None);
        assert_eq!(Resource::ControlPath.device(), None);
    }

    #[test]
    fn default_topology_matches_prototype() {
        let t = Topology::default();
        assert_eq!(t.devices, 2);
        assert_eq!(t.units_per_device, 4);
        assert_eq!(t.total_units(), 8);
        assert!(t.has_ndp());
    }

    #[test]
    fn cpu_only_topology() {
        let t = Topology::cpu_only(4);
        assert_eq!(t.cpu_threads, 4);
        assert_eq!(t.total_units(), 0);
        assert!(!t.has_ndp());
        // Resources: 4 CPUs + control path.
        assert_eq!(t.resources().len(), 5);
    }

    #[test]
    fn resource_enumeration_counts() {
        let t = Topology::with_devices(2, 2, 4);
        let rs = t.resources();
        // 2 CPUs + control path + 2 dispatchers + 8 issue queues + 8 units.
        assert_eq!(rs.len(), 21);
        let units = rs
            .iter()
            .filter(|r| matches!(r, Resource::NdpUnit { .. }))
            .count();
        assert_eq!(units, 8);
        // One issue queue per unit.
        let queues = rs
            .iter()
            .filter(|r| matches!(r, Resource::IssueQueue { .. }))
            .count();
        assert_eq!(queues, units);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Resource::Cpu(3).to_string(), "cpu3");
        assert_eq!(
            Resource::NdpUnit { device: 1, unit: 0 }.to_string(),
            "dev1.unit0"
        );
        assert_eq!(Resource::Dispatcher(0).to_string(), "dev0.dispatcher");
        assert_eq!(
            Resource::DispatcherLane { device: 0, lane: 1 }.to_string(),
            "dev0.dispatcher1"
        );
        assert_eq!(
            Resource::IssueQueue { device: 1, unit: 3 }.to_string(),
            "dev1.iq3"
        );
        assert_eq!(Resource::ControlPath.to_string(), "control-path");
    }
}
