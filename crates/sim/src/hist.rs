//! Log-bucketed latency histogram (HDR-style) for per-request tail latency.
//!
//! The open-loop driver records one latency per request at million-op scale,
//! so percentile queries must not sort the raw samples. [`LatencyHistogram`]
//! buckets picosecond durations into a two-level HDR-style layout: values
//! below [`SUB_BUCKETS`] are exact, larger values share an exponent bucket
//! split into [`SUB_BUCKETS`] linear sub-buckets, bounding the relative
//! quantization error at `1 / SUB_BUCKETS` (< 1 %). Recording is O(1);
//! percentiles are one walk over the (few-thousand-entry) bucket table.
//!
//! The histogram is deliberately dependency-free. The exact sorted-vector
//! percentile ([`exact_percentile`]) is retained as the differential oracle:
//! bucketing is monotone, so the bucket holding the histogram's rank-th
//! sample is exactly the bucket of the oracle's answer — the differential
//! tests assert `hist.percentile(q) == bucket_upper(bucket_of(exact))` as an
//! equality, not a tolerance.

use crate::time::SimDuration;

/// Linear sub-buckets per exponent bucket (2^7): relative quantization error
/// is at most `1/128 ≈ 0.78 %`.
pub const SUB_BUCKETS: u64 = 128;

/// Bits of [`SUB_BUCKETS`].
const SUB_BITS: u32 = SUB_BUCKETS.trailing_zeros();

/// Bucket index of a picosecond value (monotone in `v`).
fn bucket_of_ps(v: u64) -> usize {
    if v < SUB_BUCKETS {
        v as usize
    } else {
        // v has its most significant bit at position k >= SUB_BITS; the
        // bucket keeps the top SUB_BITS bits after the MSB as the linear
        // sub-index, so consecutive buckets cover width 2^(k - SUB_BITS).
        let k = 63 - v.leading_zeros();
        let low = (v >> (k - SUB_BITS)) & (SUB_BUCKETS - 1);
        (((k - SUB_BITS + 1) as u64 * SUB_BUCKETS) + low) as usize
    }
}

/// Inclusive upper edge (ps) of a bucket — the histogram's canonical
/// representative value (conservative for tail latencies).
fn bucket_upper_ps(index: usize) -> u64 {
    let index = index as u64;
    if index < 2 * SUB_BUCKETS {
        // Buckets below 2*SUB_BUCKETS are exact single-value buckets
        // (width 1): [0, SUB_BUCKETS) directly, [SUB_BUCKETS, 2*SUB_BUCKETS)
        // via k = SUB_BITS with shift 0.
        index
    } else {
        let k = index / SUB_BUCKETS - 1 + SUB_BITS as u64;
        let low = index % SUB_BUCKETS;
        let width = 1u64 << (k - SUB_BITS as u64);
        ((SUB_BUCKETS + low) << (k - SUB_BITS as u64)) + width - 1
    }
}

/// Streaming log-bucketed latency histogram.
///
/// Records [`SimDuration`] samples in O(1) and answers
/// p50/p99/p999/arbitrary percentiles with ≤ `1/`[`SUB_BUCKETS`] relative
/// error. The maximum is tracked exactly.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LatencyHistogram {
    /// Bucket counts, grown lazily to the highest recorded bucket.
    counts: Vec<u64>,
    /// Total recorded samples.
    count: u64,
    /// Exact maximum (ps).
    max_ps: u64,
    /// Exact minimum (ps).
    min_ps: u64,
    /// Sum of all samples (ps) for the mean.
    sum_ps: u128,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: Vec::new(),
            count: 0,
            max_ps: 0,
            min_ps: u64::MAX,
            sum_ps: 0,
        }
    }

    /// Records one latency sample — O(1).
    pub fn record(&mut self, sample: SimDuration) {
        let ps = sample.as_ps();
        let bucket = bucket_of_ps(ps);
        if bucket >= self.counts.len() {
            self.counts.resize(bucket + 1, 0);
        }
        self.counts[bucket] += 1;
        self.count += 1;
        self.max_ps = self.max_ps.max(ps);
        self.min_ps = self.min_ps.min(ps);
        self.sum_ps += ps as u128;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact maximum recorded sample ([`SimDuration::ZERO`] when empty).
    pub fn max(&self) -> SimDuration {
        SimDuration::from_ps(self.max_ps)
    }

    /// Exact minimum recorded sample ([`SimDuration::ZERO`] when empty).
    pub fn min(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_ps(self.min_ps)
        }
    }

    /// Exact mean of the recorded samples ([`SimDuration::ZERO`] when
    /// empty).
    pub fn mean(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_ps((self.sum_ps / self.count as u128) as u64)
        }
    }

    /// The `q`-quantile (`0 < q <= 1`) under nearest-rank semantics: the
    /// inclusive upper edge of the bucket holding the `ceil(q·count)`-th
    /// smallest sample, which exceeds the exact answer by at most
    /// `1/`[`SUB_BUCKETS`] relative error. `q >= 1` returns the exact
    /// maximum. [`SimDuration::ZERO`] when empty.
    pub fn percentile(&self, q: f64) -> SimDuration {
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        if q >= 1.0 {
            return self.max();
        }
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // The histogram never reports past the exact maximum.
                return SimDuration::from_ps(bucket_upper_ps(i).min(self.max_ps));
            }
        }
        self.max()
    }

    /// Median (p50).
    pub fn p50(&self) -> SimDuration {
        self.percentile(0.50)
    }

    /// 99th percentile.
    pub fn p99(&self) -> SimDuration {
        self.percentile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> SimDuration {
        self.percentile(0.999)
    }

    /// Bucket index a sample falls into (monotone; exposed for the
    /// differential oracle tests).
    pub fn bucket_of(sample: SimDuration) -> usize {
        bucket_of_ps(sample.as_ps())
    }

    /// Inclusive upper edge of a bucket (the histogram's representative
    /// value for every sample in it).
    pub fn bucket_upper(index: usize) -> SimDuration {
        SimDuration::from_ps(bucket_upper_ps(index))
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        if other.count == 0 {
            return;
        }
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (dst, src) in self.counts.iter_mut().zip(other.counts.iter()) {
            *dst += src;
        }
        self.count += other.count;
        self.max_ps = self.max_ps.max(other.max_ps);
        self.min_ps = self.min_ps.min(other.min_ps);
        self.sum_ps += other.sum_ps;
    }
}

/// Exact nearest-rank percentile over a **sorted** sample slice — the O(n
/// log n) differential oracle for [`LatencyHistogram::percentile`].
///
/// # Panics
///
/// Panics if `sorted` is empty or not sorted ascending.
pub fn exact_percentile(sorted: &[SimDuration], q: f64) -> SimDuration {
    assert!(!sorted.is_empty(), "exact_percentile of an empty slice");
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "slice not sorted");
    if q >= 1.0 {
        return *sorted.last().unwrap();
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Checks bucketing invariants at one value: the bucket's upper edge
    /// covers the value within the documented relative-error bound.
    fn check_bucket(v: u64) {
        let b = bucket_of_ps(v);
        let upper = bucket_upper_ps(b);
        assert!(upper >= v, "upper edge {upper} below value {v}");
        if v >= SUB_BUCKETS {
            let err = (upper - v) as f64 / v as f64;
            assert!(err <= 1.0 / SUB_BUCKETS as f64, "error {err} at {v}");
        } else {
            assert_eq!(upper, v, "small values are exact");
        }
    }

    #[test]
    fn buckets_are_monotone_and_contiguous() {
        let mut prev = 0usize;
        for v in 0u64..100_000 {
            let b = bucket_of_ps(v);
            assert!(b >= prev, "bucket regressed at {v}");
            prev = b;
            check_bucket(v);
        }
        // Spot-check every power-of-two neighborhood up to ~18 minutes (ps).
        for k in 1u32..50 {
            for v in [(1u64 << k) - 1, 1u64 << k, (1u64 << k) + 1] {
                check_bucket(v);
            }
        }
    }

    #[test]
    fn percentiles_match_exact_oracle_bucketwise() {
        let mut rng = StdRng::seed_from_u64(7);
        for round in 0..20 {
            let n = rng.gen_range(1usize..2000);
            let mut hist = LatencyHistogram::new();
            let mut samples = Vec::with_capacity(n);
            for _ in 0..n {
                // Mix of magnitudes: ns to ms in picoseconds.
                let v = match rng.gen_range(0u32..4) {
                    0 => rng.gen_range(0u64..200),
                    1 => rng.gen_range(0u64..100_000),
                    2 => rng.gen_range(0u64..10_000_000),
                    _ => rng.gen_range(0u64..2_000_000_000),
                };
                let d = SimDuration::from_ps(v);
                hist.record(d);
                samples.push(d);
            }
            samples.sort_unstable();
            for q in [0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
                let exact = exact_percentile(&samples, q);
                let approx = hist.percentile(q);
                // The histogram answers with the upper edge of the exact
                // answer's bucket (capped at the exact max) — an equality,
                // not a tolerance.
                let expected = if q >= 1.0 {
                    exact
                } else {
                    LatencyHistogram::bucket_upper(LatencyHistogram::bucket_of(exact))
                        .min(hist.max())
                };
                assert_eq!(
                    approx, expected,
                    "round {round} q={q}: approx {approx} exact {exact}"
                );
                // And the documented relative-error bound holds.
                let err = approx.as_ps().saturating_sub(exact.as_ps()) as f64
                    / exact.as_ps().max(1) as f64;
                assert!(
                    err <= 1.0 / SUB_BUCKETS as f64,
                    "round {round} q={q}: {err}"
                );
            }
        }
    }

    #[test]
    fn summary_statistics_are_exact() {
        let mut hist = LatencyHistogram::new();
        assert!(hist.is_empty());
        assert_eq!(hist.percentile(0.5), SimDuration::ZERO);
        assert_eq!(hist.mean(), SimDuration::ZERO);
        for v in [5u64, 1_000, 250, 1_000_000, 42] {
            hist.record(SimDuration::from_ps(v));
        }
        assert_eq!(hist.count(), 5);
        assert_eq!(hist.max(), SimDuration::from_ps(1_000_000));
        assert_eq!(hist.min(), SimDuration::from_ps(5));
        assert_eq!(
            hist.mean(),
            SimDuration::from_ps((5 + 1_000 + 250 + 1_000_000 + 42) / 5)
        );
        assert_eq!(hist.percentile(1.0), SimDuration::from_ps(1_000_000));
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for i in 0..500 {
            let v = SimDuration::from_ps(rng.gen_range(0u64..5_000_000));
            whole.record(v);
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        a.merge(&b);
        assert_eq!(a, whole);
        // Merging an empty histogram is a no-op.
        let snapshot = a.clone();
        a.merge(&LatencyHistogram::new());
        assert_eq!(a, snapshot);
    }
}
