//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the (small) subset of the `rand 0.8` API the workspace uses: [`Rng`],
//! [`SeedableRng`], and [`rngs::StdRng`]. The generator is xoshiro256**
//! seeded through SplitMix64 — deterministic, fast, and of ample quality for
//! workload generation and randomized testing. It is **not** the upstream
//! implementation: streams differ from the real `rand` crate for the same
//! seed, which is fine because nothing in the workspace depends on the exact
//! upstream streams, only on determinism per seed.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Types that can be sampled uniformly from an RNG (subset of rand's
/// `Standard` distribution).
pub trait Standard: Sized {
    /// Draws a uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] accepts, producing values of type `T`.
/// The element type is a trait parameter (as in upstream rand) so that the
/// expected output type drives integer-literal inference in `gen_range`.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + (rng.next_u64() % (span + 1)) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Core entropy source (object-safe half of [`Rng`]).
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods (subset of rand's `Rng`).
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns true with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

impl<T: RngCore> Rng for T {}

/// RNGs constructible from a 64-bit seed (subset of rand's `SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_splitmix(seed: u64) -> Self {
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng::from_splitmix(seed)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(5usize..=15);
            assert!((5..=15).contains(&w));
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
            let i = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn f64_distribution_covers_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        let (mut lo, mut hi) = (false, false);
        for _ in 0..1000 {
            let f: f64 = r.gen();
            if f < 0.25 {
                lo = true;
            }
            if f > 0.75 {
                hi = true;
            }
        }
        assert!(lo && hi);
    }
}
