//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API the workspace's property tests
//! use: the [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`,
//! [`ProptestConfig`], integer-range strategies, and
//! [`collection::vec`]. Test cases are generated from a deterministic RNG
//! seeded by the test name, so failures are reproducible; there is no
//! shrinking — a failing case panics with the ordinary assertion message.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

pub use rand::rngs::StdRng as TestRng;
use rand::{Rng, SeedableRng};

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

impl ProptestConfig {
    /// Config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Seeds the per-test RNG from the test's name (deterministic across runs).
pub fn rng_for(name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    TestRng::seed_from_u64(h)
}

/// A value generator (non-shrinking subset of proptest's `Strategy`).
pub trait Strategy {
    /// Generated value type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A fixed single value (proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy producing vectors with random length and elements.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// Vector of values drawn from `elem`, with a length drawn from `len`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = ($cfg:expr);
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::rng_for(stringify!($name));
                for _case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
}

/// Declares property tests: each function runs `cases` times with fresh
/// random arguments drawn from the strategies after `in`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_sample_in_bounds(x in 3u64..17, v in collection::vec(0u8..5, 1..4)) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert!(v.iter().all(|&b| b < 5));
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(y in 0usize..4) {
            prop_assert!(y < 4);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        use rand::Rng;
        let mut a = crate::rng_for("case");
        let mut b = crate::rng_for("case");
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }
}
