//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset of the criterion API the workspace benches use:
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], and
//! the [`criterion_group!`]/[`criterion_main!`] macros. Each benchmark runs a
//! short warm-up followed by `sample_size` timed samples and prints
//! min/mean/max wall-clock per iteration. No statistics beyond that — the
//! goal is a working `cargo bench` in an environment without crates.io, not
//! criterion's analysis machinery.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group (function name + parameter).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter value alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    results: Vec<Duration>,
}

impl Bencher {
    /// Runs `routine` repeatedly, recording per-iteration wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up (not recorded).
        black_box(routine());
        self.results.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.results.push(start.elapsed());
        }
    }
}

fn report(name: &str, results: &[Duration]) {
    if results.is_empty() {
        println!("{name}: no samples");
        return;
    }
    let min = results.iter().min().unwrap();
    let max = results.iter().max().unwrap();
    let mean = results.iter().sum::<Duration>() / results.len() as u32;
    println!(
        "{name}: [{:?} {:?} {:?}] ({} samples)",
        min,
        mean,
        max,
        results.len()
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Benchmarks `routine` with an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.criterion.sample_size,
            results: Vec::new(),
        };
        routine(&mut b, input);
        report(&format!("{}/{}", self.name, id), &b.results);
        self
    }

    /// Benchmarks `routine` under a plain name.
    pub fn bench_function<F>(&mut self, id: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.criterion.sample_size,
            results: Vec::new(),
        };
        routine(&mut b);
        report(&format!("{}/{}", self.name, id), &b.results);
        self
    }

    /// Ends the group (printing is per-benchmark; nothing further to do).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the default number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Benchmarks a single function.
    pub fn bench_function<F>(&mut self, id: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            results: Vec::new(),
        };
        routine(&mut b);
        report(id, &b.results);
        self
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
