//! Address-mapping table: near-memory virtual→physical translation.
//!
//! Command operands carry virtual addresses. Translating them on the device
//! avoids a round trip to the host MMU: because PM libraries allocate pools
//! whose internal addresses are all `base + offset`, storing one translation
//! offset per pool (and per thread for thread-local pools) is sufficient
//! (paper Section 5.4). Entries are installed at pool-creation time.

use std::collections::HashMap;

use nearpm_pm::{PhysAddr, PoolId, VirtAddr};

use crate::request::ThreadId;

/// Translation errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TranslateError {
    /// No entry exists for the pool (and thread).
    MissingEntry {
        /// Pool the request referenced.
        pool: PoolId,
    },
    /// The virtual address does not fall inside the registered pool range.
    OutOfRange {
        /// Pool the request referenced.
        pool: PoolId,
        /// Offending virtual address.
        addr: VirtAddr,
    },
}

impl std::fmt::Display for TranslateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TranslateError::MissingEntry { pool } => {
                write!(f, "no address-mapping entry for {pool}")
            }
            TranslateError::OutOfRange { pool, addr } => {
                write!(f, "address {addr} outside registered range of {pool}")
            }
        }
    }
}

impl std::error::Error for TranslateError {}

/// One address-mapping entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct MapEntry {
    virt_base: VirtAddr,
    phys_base: PhysAddr,
    size: u64,
}

/// The per-device address-mapping table.
///
/// Multi-device note: each device stores the mapping for the whole pool; the
/// interleaver (not the mapping table) decides which device serves which
/// block, exactly as in the paper's multi-device translation scheme.
#[derive(Debug, Clone, Default)]
pub struct AddressMappingTable {
    entries: HashMap<(PoolId, Option<ThreadId>), MapEntry>,
    lookups: u64,
}

impl AddressMappingTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        AddressMappingTable::default()
    }

    /// Number of installed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries are installed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of translations served (diagnostics).
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Installs (or replaces) the mapping for a pool.
    pub fn register_pool(
        &mut self,
        pool: PoolId,
        virt_base: VirtAddr,
        phys_base: PhysAddr,
        size: u64,
    ) {
        self.entries.insert(
            (pool, None),
            MapEntry {
                virt_base,
                phys_base,
                size,
            },
        );
    }

    /// Installs a thread-local mapping (used when a multithreaded application
    /// gives each thread its own pool region).
    pub fn register_thread_pool(
        &mut self,
        pool: PoolId,
        thread: ThreadId,
        virt_base: VirtAddr,
        phys_base: PhysAddr,
        size: u64,
    ) {
        self.entries.insert(
            (pool, Some(thread)),
            MapEntry {
                virt_base,
                phys_base,
                size,
            },
        );
    }

    /// Translates `addr` for a request from `(pool, thread)`.
    ///
    /// Thread-specific entries take precedence over the pool-wide entry, and
    /// the pool-wide entry is the fallback, mirroring "in addition to the
    /// pool ID, thread ID is also used for indexing".
    pub fn translate(
        &mut self,
        pool: PoolId,
        thread: ThreadId,
        addr: VirtAddr,
    ) -> Result<PhysAddr, TranslateError> {
        self.lookups += 1;
        let entry = self
            .entries
            .get(&(pool, Some(thread)))
            .or_else(|| self.entries.get(&(pool, None)))
            .ok_or(TranslateError::MissingEntry { pool })?;
        let offset = addr
            .raw()
            .checked_sub(entry.virt_base.raw())
            .ok_or(TranslateError::OutOfRange { pool, addr })?;
        if offset >= entry.size {
            return Err(TranslateError::OutOfRange { pool, addr });
        }
        Ok(entry.phys_base.offset(offset))
    }

    /// Approximate persistence-domain footprint of the table in bytes
    /// (each entry stores two base addresses and a size).
    pub fn footprint_bytes(&self) -> usize {
        self.entries.len() * 24
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_translation() {
        let mut t = AddressMappingTable::new();
        t.register_pool(PoolId(0), VirtAddr(0x1000_0000), PhysAddr(0x0), 0x10000);
        let p = t
            .translate(PoolId(0), ThreadId(0), VirtAddr(0x1000_0040))
            .unwrap();
        assert_eq!(p, PhysAddr(0x40));
        assert_eq!(t.lookups(), 1);
    }

    #[test]
    fn missing_pool_and_out_of_range_errors() {
        let mut t = AddressMappingTable::new();
        assert!(matches!(
            t.translate(PoolId(3), ThreadId(0), VirtAddr(0x0)),
            Err(TranslateError::MissingEntry { .. })
        ));
        t.register_pool(PoolId(0), VirtAddr(0x1000), PhysAddr(0x0), 0x100);
        assert!(matches!(
            t.translate(PoolId(0), ThreadId(0), VirtAddr(0x2000)),
            Err(TranslateError::OutOfRange { .. })
        ));
        assert!(matches!(
            t.translate(PoolId(0), ThreadId(0), VirtAddr(0xfff)),
            Err(TranslateError::OutOfRange { .. })
        ));
    }

    #[test]
    fn thread_entry_takes_precedence() {
        let mut t = AddressMappingTable::new();
        t.register_pool(PoolId(0), VirtAddr(0x1000), PhysAddr(0x0), 0x1000);
        t.register_thread_pool(
            PoolId(0),
            ThreadId(5),
            VirtAddr(0x1000),
            PhysAddr(0x8000),
            0x1000,
        );
        let default = t
            .translate(PoolId(0), ThreadId(1), VirtAddr(0x1010))
            .unwrap();
        let thread5 = t
            .translate(PoolId(0), ThreadId(5), VirtAddr(0x1010))
            .unwrap();
        assert_eq!(default, PhysAddr(0x10));
        assert_eq!(thread5, PhysAddr(0x8010));
    }

    #[test]
    fn footprint_stays_small() {
        let mut t = AddressMappingTable::new();
        for i in 0..16 {
            t.register_pool(PoolId(i), VirtAddr(0x1000 * i as u64), PhysAddr(0), 0x1000);
        }
        // The paper budgets 432 bytes for the table; 16 pools stay within it.
        assert!(t.footprint_bytes() <= 432);
        assert_eq!(t.len(), 16);
        assert!(!t.is_empty());
    }
}
