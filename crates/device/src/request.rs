//! NearPM requests: the command format of the control path.
//!
//! The software interface (Table 2 of the paper) issues commands whose
//! operands are **virtual addresses** plus pool and thread identifiers. The
//! dispatcher inside the device translates the operands to physical addresses
//! via the address-mapping table before execution. This module defines both
//! the raw (virtual-address) request and its decoded (physical-address) form,
//! plus the micro-operations a NearPM unit executes.

use nearpm_pm::{PhysAddr, PoolId, VirtAddr};

use crate::metadata::LogEntryHeader;

/// Identifier of an application thread, used to select the per-thread log
/// region and to index the address-mapping table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ThreadId(pub u32);

/// Monotonically increasing identifier assigned to every request accepted by
/// a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(pub u64);

/// A crash-consistency primitive offloaded to NearPM (Table 2).
///
/// Log/checkpoint destinations are chosen by the PM library on the host (as
/// PMDK does for its per-transaction log offsets) and carried in the request
/// so that the device's metadata generator and DMA engine know where to
/// place recovery data. Destinations always point into NDP-managed regions.
#[derive(Debug, Clone, PartialEq)]
pub enum NearPmOp {
    /// `NearPM_undolg_create`: generate metadata and copy `len` bytes of old
    /// data from `src` into the undo-log slot at `log_meta`/`log_data`.
    UndoLogCreate {
        /// Virtual address of the data about to be overwritten.
        src: VirtAddr,
        /// Length of the logged range in bytes.
        len: u64,
        /// Destination of the log-entry header.
        log_meta: VirtAddr,
        /// Destination of the logged data bytes.
        log_data: VirtAddr,
        /// Transaction the entry belongs to.
        txn_id: u64,
    },
    /// `NearPM_applylog`: apply a redo log by copying `len` bytes from the
    /// log back to the home location.
    ApplyRedoLog {
        /// Virtual address of the redo-log data.
        log_data: VirtAddr,
        /// Home location to apply the log to.
        dst: VirtAddr,
        /// Length in bytes.
        len: u64,
    },
    /// `NearPM_commit_log`: mark a transaction's log entries committed and
    /// reset (delete) them.
    CommitLog {
        /// Log-entry headers to reset.
        entries: Vec<VirtAddr>,
        /// Transaction being committed.
        txn_id: u64,
    },
    /// `NearPM_ckpoint_create`: generate metadata and copy an existing page
    /// into the checkpoint area before it is updated.
    CheckpointCreate {
        /// Virtual address of the page to snapshot.
        src: VirtAddr,
        /// Length (typically 4 kB).
        len: u64,
        /// Destination of the checkpoint-entry header.
        ckpt_meta: VirtAddr,
        /// Destination of the snapshot bytes.
        ckpt_data: VirtAddr,
        /// Checkpoint epoch.
        epoch: u64,
    },
    /// `NearPM_shadowcpy`: copy an existing page to its shadow page before
    /// the application writes the new version.
    ShadowCopy {
        /// Virtual address of the original page.
        src: VirtAddr,
        /// Virtual address of the shadow page.
        dst: VirtAddr,
        /// Length (typically 4 kB).
        len: u64,
    },
}

impl NearPmOp {
    /// Short mnemonic used in traces and statistics.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            NearPmOp::UndoLogCreate { .. } => "undolog_create",
            NearPmOp::ApplyRedoLog { .. } => "applylog",
            NearPmOp::CommitLog { .. } => "commit_log",
            NearPmOp::CheckpointCreate { .. } => "ckpoint_create",
            NearPmOp::ShadowCopy { .. } => "shadowcpy",
        }
    }

    /// Number of payload bytes the operation moves.
    pub fn bytes_moved(&self) -> u64 {
        match self {
            NearPmOp::UndoLogCreate { len, .. }
            | NearPmOp::ApplyRedoLog { len, .. }
            | NearPmOp::CheckpointCreate { len, .. }
            | NearPmOp::ShadowCopy { len, .. } => *len,
            NearPmOp::CommitLog { .. } => 0,
        }
    }

    /// Virtual operand ranges the operation *reads* (shared application data
    /// or log data).
    pub fn read_ranges(&self) -> Vec<(VirtAddr, u64)> {
        match self {
            NearPmOp::UndoLogCreate { src, len, .. } => vec![(*src, *len)],
            NearPmOp::ApplyRedoLog { log_data, len, .. } => vec![(*log_data, *len)],
            NearPmOp::CheckpointCreate { src, len, .. } => vec![(*src, *len)],
            NearPmOp::ShadowCopy { src, len, .. } => vec![(*src, *len)],
            NearPmOp::CommitLog { .. } => vec![],
        }
    }

    /// Virtual operand ranges the operation *writes*.
    pub fn write_ranges(&self) -> Vec<(VirtAddr, u64)> {
        match self {
            NearPmOp::UndoLogCreate {
                log_meta,
                log_data,
                len,
                ..
            } => vec![
                (*log_meta, crate::metadata::LOG_ENTRY_HEADER_LEN as u64),
                (*log_data, *len),
            ],
            NearPmOp::ApplyRedoLog { dst, len, .. } => vec![(*dst, *len)],
            NearPmOp::CommitLog { entries, .. } => entries
                .iter()
                .map(|e| (*e, crate::metadata::LOG_ENTRY_HEADER_LEN as u64))
                .collect(),
            NearPmOp::CheckpointCreate {
                ckpt_meta,
                ckpt_data,
                len,
                ..
            } => vec![
                (*ckpt_meta, crate::metadata::LOG_ENTRY_HEADER_LEN as u64),
                (*ckpt_data, *len),
            ],
            NearPmOp::ShadowCopy { dst, len, .. } => vec![(*dst, *len)],
        }
    }

    /// Decodes the operation into the physical micro-op program a NearPM
    /// unit executes, translating every operand through `translate`.
    ///
    /// Both the pipelined front-end and the single-stage differential oracle
    /// run the *same* decoded program, which is what guarantees their
    /// functional effects are identical — only the timing of the front-end
    /// stages differs.
    pub fn decode<E>(
        &self,
        mut translate: impl FnMut(VirtAddr) -> Result<PhysAddr, E>,
    ) -> Result<Vec<MicroOp>, E> {
        Ok(match self {
            NearPmOp::UndoLogCreate {
                src,
                len,
                log_meta,
                log_data,
                txn_id,
            } => {
                let src_p = translate(*src)?;
                let meta_p = translate(*log_meta)?;
                let data_p = translate(*log_data)?;
                vec![
                    MicroOp::WriteHeader {
                        dst: meta_p,
                        header: LogEntryHeader::active(*src, *len, *txn_id),
                    },
                    MicroOp::Copy {
                        src: src_p,
                        dst: data_p,
                        len: *len,
                    },
                ]
            }
            NearPmOp::ApplyRedoLog { log_data, dst, len } => {
                let src_p = translate(*log_data)?;
                let dst_p = translate(*dst)?;
                vec![MicroOp::Copy {
                    src: src_p,
                    dst: dst_p,
                    len: *len,
                }]
            }
            NearPmOp::CommitLog { entries, .. } => {
                let mut ops = Vec::with_capacity(entries.len());
                for entry in entries {
                    ops.push(MicroOp::ResetHeader {
                        dst: translate(*entry)?,
                    });
                }
                ops
            }
            NearPmOp::CheckpointCreate {
                src,
                len,
                ckpt_meta,
                ckpt_data,
                epoch,
            } => {
                let src_p = translate(*src)?;
                let meta_p = translate(*ckpt_meta)?;
                let data_p = translate(*ckpt_data)?;
                vec![
                    MicroOp::WriteHeader {
                        dst: meta_p,
                        header: LogEntryHeader::active(*src, *len, *epoch),
                    },
                    MicroOp::Copy {
                        src: src_p,
                        dst: data_p,
                        len: *len,
                    },
                ]
            }
            NearPmOp::ShadowCopy { src, dst, len } => {
                let src_p = translate(*src)?;
                let dst_p = translate(*dst)?;
                vec![MicroOp::Copy {
                    src: src_p,
                    dst: dst_p,
                    len: *len,
                }]
            }
        })
    }
}

/// A request as issued by the host over the control path.
#[derive(Debug, Clone, PartialEq)]
pub struct NearPmRequest {
    /// Pool the operands belong to.
    pub pool: PoolId,
    /// Issuing application thread.
    pub thread: ThreadId,
    /// The operation.
    pub op: NearPmOp,
}

impl NearPmRequest {
    /// Creates a request.
    pub fn new(pool: PoolId, thread: ThreadId, op: NearPmOp) -> Self {
        NearPmRequest { pool, thread, op }
    }
}

/// A physical copy/metadata micro-operation produced by decoding a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MicroOp {
    /// Copy `len` bytes from `src` to `dst` using the DMA engine.
    Copy {
        /// Physical source.
        src: PhysAddr,
        /// Physical destination.
        dst: PhysAddr,
        /// Bytes to copy.
        len: u64,
    },
    /// Write a log/checkpoint entry header at `dst`.
    WriteHeader {
        /// Physical destination of the header.
        dst: PhysAddr,
        /// Header contents generated by the metadata generator.
        header: LogEntryHeader,
    },
    /// Reset (invalidate) the header at `dst`.
    ResetHeader {
        /// Physical location of the header.
        dst: PhysAddr,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: u64) -> VirtAddr {
        VirtAddr(x)
    }

    #[test]
    fn mnemonics_and_bytes() {
        let op = NearPmOp::UndoLogCreate {
            src: v(0x1000),
            len: 256,
            log_meta: v(0x8000),
            log_data: v(0x8040),
            txn_id: 1,
        };
        assert_eq!(op.mnemonic(), "undolog_create");
        assert_eq!(op.bytes_moved(), 256);
        let commit = NearPmOp::CommitLog {
            entries: vec![v(0x8000)],
            txn_id: 1,
        };
        assert_eq!(commit.bytes_moved(), 0);
        assert_eq!(commit.mnemonic(), "commit_log");
    }

    #[test]
    fn read_and_write_ranges() {
        let op = NearPmOp::UndoLogCreate {
            src: v(0x1000),
            len: 128,
            log_meta: v(0x8000),
            log_data: v(0x8040),
            txn_id: 0,
        };
        assert_eq!(op.read_ranges(), vec![(v(0x1000), 128)]);
        let writes = op.write_ranges();
        assert_eq!(writes.len(), 2);
        assert_eq!(writes[1], (v(0x8040), 128));

        let shadow = NearPmOp::ShadowCopy {
            src: v(0x2000),
            dst: v(0x3000),
            len: 4096,
        };
        assert_eq!(shadow.read_ranges(), vec![(v(0x2000), 4096)]);
        assert_eq!(shadow.write_ranges(), vec![(v(0x3000), 4096)]);
    }

    #[test]
    fn decode_produces_the_micro_op_program() {
        // Identity-ish translation: virtual 0x1000_0000 + x -> physical x.
        let xlate = |a: VirtAddr| -> Result<PhysAddr, ()> { Ok(PhysAddr(a.raw() & 0xFFFF)) };
        let op = NearPmOp::UndoLogCreate {
            src: v(0x1000_0100),
            len: 128,
            log_meta: v(0x1000_8000),
            log_data: v(0x1000_8040),
            txn_id: 9,
        };
        let prog = op.decode(xlate).unwrap();
        assert_eq!(
            prog,
            vec![
                MicroOp::WriteHeader {
                    dst: PhysAddr(0x8000),
                    header: LogEntryHeader::active(v(0x1000_0100), 128, 9),
                },
                MicroOp::Copy {
                    src: PhysAddr(0x100),
                    dst: PhysAddr(0x8040),
                    len: 128,
                },
            ]
        );
        let commit = NearPmOp::CommitLog {
            entries: vec![v(0x1000_8000), v(0x1000_8100)],
            txn_id: 9,
        };
        assert_eq!(
            commit.decode(xlate).unwrap(),
            vec![
                MicroOp::ResetHeader {
                    dst: PhysAddr(0x8000)
                },
                MicroOp::ResetHeader {
                    dst: PhysAddr(0x8100)
                },
            ]
        );
        // Translation failures surface instead of producing a partial program.
        let fail = |_: VirtAddr| -> Result<PhysAddr, &'static str> { Err("unmapped") };
        assert_eq!(op.decode(fail), Err("unmapped"));
    }

    #[test]
    fn request_construction() {
        let r = NearPmRequest::new(
            PoolId(1),
            ThreadId(2),
            NearPmOp::ApplyRedoLog {
                log_data: v(0x9000),
                dst: v(0x1000),
                len: 64,
            },
        );
        assert_eq!(r.pool, PoolId(1));
        assert_eq!(r.thread, ThreadId(2));
        assert_eq!(r.op.bytes_moved(), 64);
    }
}
