//! The NearPM device model: front-end, dispatcher, units, recovery state.
//!
//! A [`NearPmDevice`] assembles the components of Figure 8:
//!
//! * the request FIFO fed by the host control path,
//! * the dispatcher, which decodes requests, translates their operands
//!   through the address-mapping table, and checks the in-flight access
//!   table for conflicts,
//! * the NearPM units, which execute the data-intensive micro-operations
//!   (metadata generation, DMA copy, log reset) against the PM media,
//! * the persistence-domain state (FIFO + in-flight table) that survives a
//!   failure and is replayed by the hardware recovery procedure.
//!
//! The device is driven synchronously by the host-side model in
//! `nearpm-core`: functional effects are applied immediately; timing is
//! captured by the tasks the device appends to the shared [`TaskGraph`].

use std::collections::HashMap;

use nearpm_pm::{PhysAddr, PmSpace, PoolId, VirtAddr};
use nearpm_sim::{LatencyModel, Region, Resource, TaskGraph, TaskId};

use crate::address_map::{AddressMappingTable, TranslateError};
use crate::fifo::{FifoFull, RequestFifo};
use crate::inflight::{InFlightEntry, InFlightTable};
use crate::metadata::LogEntryHeader;
use crate::request::{NearPmOp, NearPmRequest, RequestId, ThreadId};
use crate::unit::{NearPmUnit, UnitStats};

/// How the dispatcher assigns decoded requests to execution units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DispatchPolicy {
    /// Pick the unit whose busy-interval timeline frees first (ties broken
    /// by unit index, so dispatch stays deterministic). With mixed-size
    /// primitives this keeps long DMA copies from queueing behind each
    /// other while sibling units idle.
    #[default]
    EarliestAvailable,
    /// Blind round-robin over the units (the pre-timeline policy, retained
    /// for regression comparisons and the dispatch benchmarks).
    RoundRobin,
}

/// Static configuration of one NearPM device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceConfig {
    /// Device index in the system.
    pub id: usize,
    /// Number of NearPM units (4 in the prototype).
    pub units: usize,
    /// Request-FIFO depth (32 in the prototype).
    pub fifo_depth: usize,
    /// Unit-assignment policy.
    pub dispatch: DispatchPolicy,
}

impl DeviceConfig {
    /// Prototype configuration for device `id`: 4 units, 32-entry FIFO,
    /// earliest-available dispatch.
    pub fn prototype(id: usize) -> Self {
        DeviceConfig {
            id,
            units: 4,
            fifo_depth: crate::fifo::DEFAULT_FIFO_DEPTH,
            dispatch: DispatchPolicy::default(),
        }
    }

    /// Overrides the unit-assignment policy.
    pub fn with_dispatch(mut self, dispatch: DispatchPolicy) -> Self {
        self.dispatch = dispatch;
        self
    }
}

/// Errors surfaced by the device model.
#[derive(Debug, Clone, PartialEq)]
pub enum DeviceError {
    /// The request FIFO is full.
    FifoFull,
    /// An operand address failed translation.
    Translate(TranslateError),
}

impl std::fmt::Display for DeviceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceError::FifoFull => write!(f, "request FIFO full"),
            DeviceError::Translate(e) => write!(f, "address translation failed: {e}"),
        }
    }
}

impl std::error::Error for DeviceError {}

impl From<FifoFull> for DeviceError {
    fn from(_: FifoFull) -> Self {
        DeviceError::FifoFull
    }
}

impl From<TranslateError> for DeviceError {
    fn from(e: TranslateError) -> Self {
        DeviceError::Translate(e)
    }
}

/// Result of executing one request on the device.
#[derive(Debug, Clone)]
pub struct ExecutedRequest {
    /// Request identifier.
    pub request: RequestId,
    /// Device that executed it.
    pub device: usize,
    /// Unit that executed it.
    pub unit: usize,
    /// Dispatcher task (decode + translate + conflict check).
    pub dispatch: TaskId,
    /// Final task of the execution; later work that must order after this
    /// request depends on it.
    pub finish: TaskId,
    /// Payload bytes moved.
    pub bytes_moved: u64,
    /// Virtual/physical ranges read by the request.
    pub reads: Vec<(VirtAddr, PhysAddr, u64)>,
    /// Virtual/physical ranges written by the request.
    pub writes: Vec<(VirtAddr, PhysAddr, u64)>,
}

/// Aggregate device statistics.
#[derive(Debug, Clone, Default)]
pub struct DeviceStats {
    /// Requests executed, by primitive mnemonic.
    pub by_op: HashMap<&'static str, u64>,
    /// Total requests executed.
    pub requests: u64,
    /// Total payload bytes moved.
    pub bytes_moved: u64,
    /// Conflicts detected against in-flight accesses.
    pub conflicts: u64,
}

/// Persistence-domain image of the device front-end, written back to PM on a
/// failure and restored by the hardware recovery procedure (Section 5.3.3).
#[derive(Debug, Clone)]
pub struct DevicePersistentState {
    /// Queued (not yet executed) requests.
    pub fifo: Vec<(RequestId, NearPmRequest)>,
    /// In-flight access records.
    pub inflight: Vec<InFlightEntry>,
}

/// One NearPM device.
#[derive(Debug, Clone)]
pub struct NearPmDevice {
    config: DeviceConfig,
    fifo: RequestFifo,
    map: AddressMappingTable,
    inflight: InFlightTable,
    units: Vec<NearPmUnit>,
    next_unit: usize,
    stats: DeviceStats,
}

impl NearPmDevice {
    /// Creates a device from its configuration.
    pub fn new(config: DeviceConfig) -> Self {
        assert!(config.units >= 1, "a device needs at least one unit");
        NearPmDevice {
            config,
            fifo: RequestFifo::new(config.fifo_depth),
            map: AddressMappingTable::new(),
            inflight: InFlightTable::new(),
            units: (0..config.units)
                .map(|u| NearPmUnit::new(config.id, u))
                .collect(),
            next_unit: 0,
            stats: DeviceStats::default(),
        }
    }

    /// Device index.
    pub fn id(&self) -> usize {
        self.config.id
    }

    /// Number of execution units.
    pub fn unit_count(&self) -> usize {
        self.units.len()
    }

    /// Device statistics.
    pub fn stats(&self) -> &DeviceStats {
        &self.stats
    }

    /// Per-unit statistics.
    pub fn unit_stats(&self) -> Vec<UnitStats> {
        self.units.iter().map(|u| u.stats()).collect()
    }

    /// Number of queued (not yet executed) requests.
    pub fn pending(&self) -> usize {
        self.fifo.len()
    }

    /// The dispatcher's scheduling resource.
    pub fn dispatcher_resource(&self) -> Resource {
        Resource::Dispatcher(self.config.id)
    }

    /// Installs the address-mapping entry for a pool (called at
    /// `NearPM_init_device` / pool-creation time).
    pub fn register_pool(
        &mut self,
        pool: PoolId,
        virt_base: VirtAddr,
        phys_base: PhysAddr,
        size: u64,
    ) {
        self.map.register_pool(pool, virt_base, phys_base, size);
    }

    /// Installs a thread-local mapping.
    pub fn register_thread_pool(
        &mut self,
        pool: PoolId,
        thread: ThreadId,
        virt_base: VirtAddr,
        phys_base: PhysAddr,
        size: u64,
    ) {
        self.map
            .register_thread_pool(pool, thread, virt_base, phys_base, size);
    }

    /// Enqueues a request without executing it (step 1a of the execution
    /// flow). Used by the recovery tests to model requests still sitting in
    /// the FIFO when a failure hits.
    pub fn enqueue(&mut self, request: NearPmRequest) -> Result<RequestId, DeviceError> {
        Ok(self.fifo.push(request)?)
    }

    /// Enqueues and immediately executes a request, returning its execution
    /// record. `issue_deps` are the tasks that must precede the dispatch
    /// (typically the CPU's command-issue task on the control path).
    pub fn submit(
        &mut self,
        request: NearPmRequest,
        space: &mut PmSpace,
        graph: &mut TaskGraph,
        model: &LatencyModel,
        issue_deps: &[TaskId],
    ) -> Result<ExecutedRequest, DeviceError> {
        self.enqueue(request)?;
        self.process_one(space, graph, model, issue_deps)
            .expect("request was just enqueued")
    }

    /// Pops and executes the oldest queued request (steps 2a–8a).
    pub fn process_one(
        &mut self,
        space: &mut PmSpace,
        graph: &mut TaskGraph,
        model: &LatencyModel,
        issue_deps: &[TaskId],
    ) -> Option<Result<ExecutedRequest, DeviceError>> {
        let (id, request) = self.fifo.pop()?;
        Some(self.execute(id, request, space, graph, model, issue_deps))
    }

    /// Executes every queued request in FIFO order (used by recovery replay).
    pub fn drain(
        &mut self,
        space: &mut PmSpace,
        graph: &mut TaskGraph,
        model: &LatencyModel,
        issue_deps: &[TaskId],
    ) -> Vec<Result<ExecutedRequest, DeviceError>> {
        let mut out = Vec::new();
        while let Some(r) = self.process_one(space, graph, model, issue_deps) {
            out.push(r);
        }
        out
    }

    fn execute(
        &mut self,
        id: RequestId,
        request: NearPmRequest,
        space: &mut PmSpace,
        graph: &mut TaskGraph,
        model: &LatencyModel,
        issue_deps: &[TaskId],
    ) -> Result<ExecutedRequest, DeviceError> {
        // Step 2a/3a: decode and translate operands.
        let mut reads = Vec::new();
        let mut writes = Vec::new();
        for (v, len) in request.op.read_ranges() {
            let p = self.map.translate(request.pool, request.thread, v)?;
            reads.push((v, p, len));
        }
        for (v, len) in request.op.write_ranges() {
            let p = self.map.translate(request.pool, request.thread, v)?;
            writes.push((v, p, len));
        }

        // Step 4a: conflict check against in-flight accesses.
        let mut conflict_deps: Vec<TaskId> = Vec::new();
        for (_, p, len) in &reads {
            conflict_deps.extend(self.inflight.conflicts(*p, *len, false));
        }
        for (_, p, len) in &writes {
            conflict_deps.extend(self.inflight.conflicts(*p, *len, true));
        }
        conflict_deps.sort_unstable();
        conflict_deps.dedup();
        if !conflict_deps.is_empty() {
            self.stats.conflicts += 1;
        }

        // Dispatcher occupancy: decode/translate/conflict-check time.
        let mut dispatch_deps = issue_deps.to_vec();
        dispatch_deps.extend_from_slice(&conflict_deps);
        let dispatch = graph.add(
            "ndp-dispatch",
            self.dispatcher_resource(),
            model.ndp_dispatch(),
            Region::CcOffload,
            &dispatch_deps,
        );

        // Step 6a: hand the request to a unit. Earliest-available dispatch
        // reads each unit's busy-until time from the incrementally
        // maintained schedule and picks the one that frees first (ties break
        // toward the lowest index, so assignment is deterministic);
        // round-robin is retained as the legacy comparison policy.
        let unit_index = match self.config.dispatch {
            DispatchPolicy::EarliestAvailable => (0..self.units.len())
                .min_by_key(|&u| (self.units[u].busy_until(graph), u))
                .expect("a device has at least one unit"),
            DispatchPolicy::RoundRobin => {
                let u = self.next_unit % self.units.len();
                self.next_unit = self.next_unit.wrapping_add(1);
                u
            }
        };

        let finish = {
            let unit = &mut self.units[unit_index];
            let mut last = dispatch;
            match &request.op {
                NearPmOp::UndoLogCreate {
                    src,
                    len,
                    log_meta,
                    log_data,
                    txn_id,
                } => {
                    let src_p = self.map.translate(request.pool, request.thread, *src)?;
                    let meta_p = self
                        .map
                        .translate(request.pool, request.thread, *log_meta)?;
                    let data_p = self
                        .map
                        .translate(request.pool, request.thread, *log_data)?;
                    let header = LogEntryHeader::active(*src, *len, *txn_id);
                    last = unit.write_header(space, graph, model, meta_p, &header, &[last]);
                    last = unit.copy(
                        space,
                        graph,
                        model,
                        src_p,
                        data_p,
                        *len,
                        Region::CcDataMovement,
                        &[last],
                    );
                }
                NearPmOp::ApplyRedoLog { log_data, dst, len } => {
                    let src_p = self
                        .map
                        .translate(request.pool, request.thread, *log_data)?;
                    let dst_p = self.map.translate(request.pool, request.thread, *dst)?;
                    last = unit.copy(
                        space,
                        graph,
                        model,
                        src_p,
                        dst_p,
                        *len,
                        Region::CcDataMovement,
                        &[last],
                    );
                }
                NearPmOp::CommitLog { entries, .. } => {
                    for entry in entries {
                        let p = self.map.translate(request.pool, request.thread, *entry)?;
                        last = unit.reset_header(space, graph, model, p, &[last]);
                    }
                }
                NearPmOp::CheckpointCreate {
                    src,
                    len,
                    ckpt_meta,
                    ckpt_data,
                    epoch,
                } => {
                    let src_p = self.map.translate(request.pool, request.thread, *src)?;
                    let meta_p = self
                        .map
                        .translate(request.pool, request.thread, *ckpt_meta)?;
                    let data_p = self
                        .map
                        .translate(request.pool, request.thread, *ckpt_data)?;
                    let header = LogEntryHeader::active(*src, *len, *epoch);
                    last = unit.write_header(space, graph, model, meta_p, &header, &[last]);
                    last = unit.copy(
                        space,
                        graph,
                        model,
                        src_p,
                        data_p,
                        *len,
                        Region::CcDataMovement,
                        &[last],
                    );
                }
                NearPmOp::ShadowCopy { src, dst, len } => {
                    let src_p = self.map.translate(request.pool, request.thread, *src)?;
                    let dst_p = self.map.translate(request.pool, request.thread, *dst)?;
                    last = unit.copy(
                        space,
                        graph,
                        model,
                        src_p,
                        dst_p,
                        *len,
                        Region::CcDataMovement,
                        &[last],
                    );
                }
            }
            unit.complete_request();
            last
        };

        // Track the request's accesses until the host releases them (commit).
        for (_, p, len) in &reads {
            self.inflight.insert(InFlightEntry {
                request: id,
                start: *p,
                len: *len,
                is_write: false,
                completes_at: finish,
            });
        }
        for (_, p, len) in &writes {
            self.inflight.insert(InFlightEntry {
                request: id,
                start: *p,
                len: *len,
                is_write: true,
                completes_at: finish,
            });
        }

        let bytes = request.op.bytes_moved();
        self.stats.requests += 1;
        self.stats.bytes_moved += bytes;
        *self.stats.by_op.entry(request.op.mnemonic()).or_insert(0) += 1;

        Ok(ExecutedRequest {
            request: id,
            device: self.config.id,
            unit: unit_index,
            dispatch,
            finish,
            bytes_moved: bytes,
            reads,
            writes,
        })
    }

    /// Conflict check for a *host* memory access (steps 1b–3b): returns the
    /// tasks the host access must wait for. An empty vector means no
    /// buffering is needed.
    pub fn host_access_conflicts(
        &mut self,
        addr: PhysAddr,
        len: u64,
        is_write: bool,
    ) -> Vec<TaskId> {
        self.inflight.conflicts(addr, len, is_write)
    }

    /// Releases the in-flight records of a request once the host no longer
    /// needs ordering against it (at transaction commit).
    pub fn release_request(&mut self, request: RequestId) {
        self.inflight.complete_request(request);
    }

    /// Number of in-flight access records (diagnostics).
    pub fn inflight_len(&self) -> usize {
        self.inflight.len()
    }

    /// Captures the persistence-domain image of the front-end.
    pub fn crash_snapshot(&self) -> DevicePersistentState {
        DevicePersistentState {
            fifo: self.fifo.snapshot(),
            inflight: self.inflight.snapshot(),
        }
    }

    /// Hardware recovery step 1: restore the persistence-domain structures
    /// from the reserved PM region. Step 2 (replaying the requests) is
    /// performed by calling [`NearPmDevice::drain`].
    pub fn restore(&mut self, state: DevicePersistentState) {
        self.fifo.restore(state.fifo);
        self.inflight = InFlightTable::new();
        for e in state.inflight {
            self.inflight.insert(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nearpm_sim::Schedule;

    fn setup() -> (NearPmDevice, PmSpace, TaskGraph, LatencyModel) {
        let mut dev = NearPmDevice::new(DeviceConfig::prototype(0));
        let space = PmSpace::single(1 << 20);
        // One pool covering the whole space: virtual 0x1000_0000 → physical 0.
        dev.register_pool(PoolId(0), VirtAddr(0x1000_0000), PhysAddr(0), 1 << 20);
        (dev, space, TaskGraph::new(), LatencyModel::default())
    }

    fn undolog_req(src_off: u64, len: u64, log_off: u64, txn: u64) -> NearPmRequest {
        NearPmRequest::new(
            PoolId(0),
            ThreadId(0),
            NearPmOp::UndoLogCreate {
                src: VirtAddr(0x1000_0000 + src_off),
                len,
                log_meta: VirtAddr(0x1000_0000 + log_off),
                log_data: VirtAddr(0x1000_0000 + log_off + 64),
                txn_id: txn,
            },
        )
    }

    #[test]
    fn undo_log_create_copies_data_and_writes_header() {
        let (mut dev, mut space, mut graph, model) = setup();
        space.write(PhysAddr(0x100), &[0xAA; 128]);
        let exec = dev
            .submit(
                undolog_req(0x100, 128, 0x8000, 7),
                &mut space,
                &mut graph,
                &model,
                &[],
            )
            .unwrap();
        // Log data copied.
        assert_eq!(space.read_vec(PhysAddr(0x8000 + 64), 128), vec![0xAA; 128]);
        // Header decodable and points at the source.
        let header = LogEntryHeader::decode(&space.read_vec(PhysAddr(0x8000), 40)).unwrap();
        assert_eq!(header.target, VirtAddr(0x1000_0100));
        assert_eq!(header.len, 128);
        assert_eq!(header.txn_id, 7);
        assert_eq!(exec.bytes_moved, 128);
        assert_eq!(dev.stats().requests, 1);
        assert_eq!(dev.stats().by_op["undolog_create"], 1);
        // Timing: the request occupies a dispatcher and a unit.
        let s = Schedule::compute(&graph);
        assert!(s.timing(exec.finish).finish > s.timing(exec.dispatch).start);
    }

    #[test]
    fn commit_log_resets_headers() {
        let (mut dev, mut space, mut graph, model) = setup();
        space.write(PhysAddr(0x100), &[1; 64]);
        dev.submit(
            undolog_req(0x100, 64, 0x8000, 1),
            &mut space,
            &mut graph,
            &model,
            &[],
        )
        .unwrap();
        assert!(LogEntryHeader::decode(&space.read_vec(PhysAddr(0x8000), 40)).is_some());
        let commit = NearPmRequest::new(
            PoolId(0),
            ThreadId(0),
            NearPmOp::CommitLog {
                entries: vec![VirtAddr(0x1000_8000)],
                txn_id: 1,
            },
        );
        dev.submit(commit, &mut space, &mut graph, &model, &[])
            .unwrap();
        assert!(LogEntryHeader::decode(&space.read_vec(PhysAddr(0x8000), 40)).is_none());
    }

    #[test]
    fn shadow_copy_and_apply_redo_log() {
        let (mut dev, mut space, mut graph, model) = setup();
        space.write(PhysAddr(0x4000), &[3; 4096]);
        let shadow = NearPmRequest::new(
            PoolId(0),
            ThreadId(0),
            NearPmOp::ShadowCopy {
                src: VirtAddr(0x1000_4000),
                dst: VirtAddr(0x1002_0000),
                len: 4096,
            },
        );
        dev.submit(shadow, &mut space, &mut graph, &model, &[])
            .unwrap();
        assert_eq!(space.read_vec(PhysAddr(0x2_0000), 4096), vec![3; 4096]);

        space.write(PhysAddr(0x9000), &[9; 256]);
        let apply = NearPmRequest::new(
            PoolId(0),
            ThreadId(0),
            NearPmOp::ApplyRedoLog {
                log_data: VirtAddr(0x1000_9000),
                dst: VirtAddr(0x1000_0400),
                len: 256,
            },
        );
        dev.submit(apply, &mut space, &mut graph, &model, &[])
            .unwrap();
        assert_eq!(space.read_vec(PhysAddr(0x400), 256), vec![9; 256]);
    }

    #[test]
    fn host_conflict_detected_until_release() {
        let (mut dev, mut space, mut graph, model) = setup();
        let exec = dev
            .submit(
                undolog_req(0x100, 64, 0x8000, 1),
                &mut space,
                &mut graph,
                &model,
                &[],
            )
            .unwrap();
        // The host reads the logged source range: conflicts with the NDP read?
        // Reads don't conflict with reads, but a host *write* to the source does.
        let deps = dev.host_access_conflicts(PhysAddr(0x100), 64, true);
        assert_eq!(deps, vec![exec.finish]);
        // A host access to an unrelated range does not conflict.
        assert!(dev
            .host_access_conflicts(PhysAddr(0x40000), 64, true)
            .is_empty());
        dev.release_request(exec.request);
        assert!(dev
            .host_access_conflicts(PhysAddr(0x100), 64, true)
            .is_empty());
        assert_eq!(dev.inflight_len(), 0);
    }

    #[test]
    fn earliest_available_dispatch_spreads_requests_across_units() {
        let (mut dev, mut space, mut graph, model) = setup();
        let mut units_used = Vec::new();
        for i in 0..4 {
            let exec = dev
                .submit(
                    undolog_req(0x1000 + i * 0x100, 64, 0x8000 + i * 0x200, i),
                    &mut space,
                    &mut graph,
                    &model,
                    &[],
                )
                .unwrap();
            units_used.push(exec.unit);
        }
        // Each request occupies a unit, so the next one picks the next idle
        // unit; ties break toward the lowest index, making the order
        // deterministic.
        assert_eq!(units_used, vec![0, 1, 2, 3]);
    }

    #[test]
    fn earliest_available_reuses_the_unit_that_frees_first() {
        let (mut dev, mut space, mut graph, model) = setup();
        // One huge copy on unit 0, three tiny ones on units 1-3.
        space.write(PhysAddr(0), &[1; 64 << 10]);
        let shadow = |src: u64, dst: u64, len: u64| {
            NearPmRequest::new(
                PoolId(0),
                ThreadId(0),
                NearPmOp::ShadowCopy {
                    src: VirtAddr(0x1000_0000 + src),
                    dst: VirtAddr(0x1000_0000 + dst),
                    len,
                },
            )
        };
        let big = dev
            .submit(
                shadow(0, 0x8_0000, 64 << 10),
                &mut space,
                &mut graph,
                &model,
                &[],
            )
            .unwrap();
        assert_eq!(big.unit, 0);
        for i in 0..3u64 {
            let small = dev
                .submit(
                    shadow(i * 0x100, 0x4_0000 + i * 0x100, 64),
                    &mut space,
                    &mut graph,
                    &model,
                    &[],
                )
                .unwrap();
            assert_eq!(small.unit, i as usize + 1);
        }
        // Unit 0 is still grinding through the 64 kB DMA; the next request
        // lands on whichever small-copy unit freed first, not back on unit 0.
        let next = dev
            .submit(
                shadow(0x1000, 0x5_0000, 64),
                &mut space,
                &mut graph,
                &model,
                &[],
            )
            .unwrap();
        assert_eq!(
            next.unit, 1,
            "unit 1 frees first; round-robin would have picked unit 0"
        );
    }

    /// Satellite regression: on a mixed-size primitive workload,
    /// earliest-available dispatch must strictly beat blind round-robin on
    /// makespan (round-robin ties long DMA copies to one unit while the
    /// others idle).
    #[test]
    fn earliest_available_beats_round_robin_makespan_on_mixed_sizes() {
        let run = |policy: DispatchPolicy| {
            let mut dev = NearPmDevice::new(DeviceConfig::prototype(0).with_dispatch(policy));
            let mut space = PmSpace::single(4 << 20);
            dev.register_pool(PoolId(0), VirtAddr(0x1000_0000), PhysAddr(0), 4 << 20);
            let mut graph = TaskGraph::new();
            let model = LatencyModel::default();
            // Alternating long (16 kB) and short (64 B) copies: round-robin
            // pins every other long copy onto the same two units.
            for i in 0..12u64 {
                let len = if i % 2 == 0 { 16 << 10 } else { 64 };
                let req = NearPmRequest::new(
                    PoolId(0),
                    ThreadId(0),
                    NearPmOp::ShadowCopy {
                        src: VirtAddr(0x1000_0000 + i * 0x2_0000),
                        dst: VirtAddr(0x1000_0000 + i * 0x2_0000 + 0x1_0000),
                        len,
                    },
                );
                dev.submit(req, &mut space, &mut graph, &model, &[])
                    .unwrap();
            }
            Schedule::compute(&graph).makespan()
        };
        let earliest = run(DispatchPolicy::EarliestAvailable);
        let round_robin = run(DispatchPolicy::RoundRobin);
        assert!(
            earliest < round_robin,
            "earliest-available ({earliest}) must strictly beat round-robin ({round_robin})"
        );
    }

    #[test]
    fn translation_failure_surfaces() {
        let (mut dev, mut space, mut graph, model) = setup();
        let bad = NearPmRequest::new(
            PoolId(3),
            ThreadId(0),
            NearPmOp::ShadowCopy {
                src: VirtAddr(0x1000_0000),
                dst: VirtAddr(0x1000_1000),
                len: 64,
            },
        );
        let err = dev
            .submit(bad, &mut space, &mut graph, &model, &[])
            .unwrap_err();
        assert!(matches!(err, DeviceError::Translate(_)));
    }

    #[test]
    fn crash_snapshot_preserves_queued_requests_for_replay() {
        let (mut dev, mut space, mut graph, model) = setup();
        space.write(PhysAddr(0x100), &[5; 64]);
        // Enqueue but do not execute: the request is only in the FIFO when the
        // failure hits.
        dev.enqueue(undolog_req(0x100, 64, 0x8000, 2)).unwrap();
        let snapshot = dev.crash_snapshot();
        assert_eq!(snapshot.fifo.len(), 1);

        // "Reboot": a fresh device restores the persistence-domain image and
        // replays the request.
        let mut dev2 = NearPmDevice::new(DeviceConfig::prototype(0));
        dev2.register_pool(PoolId(0), VirtAddr(0x1000_0000), PhysAddr(0), 1 << 20);
        dev2.restore(snapshot);
        assert_eq!(dev2.pending(), 1);
        let results = dev2.drain(&mut space, &mut graph, &model, &[]);
        assert_eq!(results.len(), 1);
        assert!(results[0].is_ok());
        // The replayed log creation is visible in PM.
        assert_eq!(space.read_vec(PhysAddr(0x8000 + 64), 64), vec![5; 64]);
    }
}
