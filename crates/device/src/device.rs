//! The NearPM device model: front-end, dispatcher, units, recovery state.
//!
//! A [`NearPmDevice`] assembles the components of Figure 8:
//!
//! * the request FIFO fed by the host control path,
//! * the dispatcher, which decodes requests, translates their operands
//!   through the address-mapping table, and checks the in-flight access
//!   table for conflicts,
//! * the NearPM units, which execute the data-intensive micro-operations
//!   (metadata generation, DMA copy, log reset) against the PM media,
//! * the persistence-domain state (FIFO + in-flight table) that survives a
//!   failure and is replayed by the hardware recovery procedure.
//!
//! The device is driven synchronously by the host-side model in
//! `nearpm-core`: functional effects are applied immediately; timing is
//! captured by the tasks the device appends to the shared [`TaskGraph`].

use std::collections::HashMap;

use nearpm_pm::{PhysAddr, PmSpace, PoolId, VirtAddr};
use nearpm_sim::{LatencyModel, Region, Resource, SimDuration, SimTime, TaskGraph, TaskId};

use crate::address_map::{AddressMappingTable, TranslateError};
use crate::fifo::{FifoFull, RequestFifo};
use crate::inflight::{InFlightEntry, InFlightTable};
use crate::request::{MicroOp, NearPmRequest, RequestId, ThreadId};
use crate::unit::{NearPmUnit, UnitStats};

/// How the dispatcher assigns decoded requests to execution units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DispatchPolicy {
    /// Pick the unit whose busy-interval timeline frees first (ties broken
    /// by unit index, so dispatch stays deterministic). With mixed-size
    /// primitives this keeps long DMA copies from queueing behind each
    /// other while sibling units idle.
    #[default]
    EarliestAvailable,
    /// Blind round-robin over the units (the pre-timeline policy, retained
    /// for regression comparisons and the dispatch benchmarks).
    RoundRobin,
}

/// Static configuration of one NearPM device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceConfig {
    /// Device index in the system.
    pub id: usize,
    /// Number of NearPM units (4 in the prototype).
    pub units: usize,
    /// Request-FIFO depth (32 in the prototype).
    pub fifo_depth: usize,
    /// Unit-assignment policy.
    pub dispatch: DispatchPolicy,
    /// Parallel decode lanes in the front-end (1 in the prototype). Lane 0
    /// is the classic dispatcher resource; extra lanes let decode of
    /// independent requests overlap when many clients contend one device.
    pub decode_lanes: usize,
}

impl DeviceConfig {
    /// Prototype configuration for device `id`: 4 units, 32-entry FIFO,
    /// earliest-available dispatch, a single decode lane.
    pub fn prototype(id: usize) -> Self {
        DeviceConfig {
            id,
            units: 4,
            fifo_depth: crate::fifo::DEFAULT_FIFO_DEPTH,
            dispatch: DispatchPolicy::default(),
            decode_lanes: 1,
        }
    }

    /// Overrides the unit-assignment policy.
    pub fn with_dispatch(mut self, dispatch: DispatchPolicy) -> Self {
        self.dispatch = dispatch;
        self
    }

    /// Overrides the number of decode lanes (at least 1).
    pub fn with_decode_lanes(mut self, lanes: usize) -> Self {
        self.decode_lanes = lanes.max(1);
        self
    }
}

/// Errors surfaced by the device model.
#[derive(Debug, Clone, PartialEq)]
pub enum DeviceError {
    /// The request FIFO is full.
    FifoFull,
    /// An operand address failed translation.
    Translate(TranslateError),
}

impl std::fmt::Display for DeviceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceError::FifoFull => write!(f, "request FIFO full"),
            DeviceError::Translate(e) => write!(f, "address translation failed: {e}"),
        }
    }
}

impl std::error::Error for DeviceError {}

impl From<FifoFull> for DeviceError {
    fn from(_: FifoFull) -> Self {
        DeviceError::FifoFull
    }
}

impl From<TranslateError> for DeviceError {
    fn from(e: TranslateError) -> Self {
        DeviceError::Translate(e)
    }
}

/// Result of executing one request on the device.
#[derive(Debug, Clone)]
pub struct ExecutedRequest {
    /// Request identifier.
    pub request: RequestId,
    /// Device that executed it.
    pub device: usize,
    /// Unit that executed it.
    pub unit: usize,
    /// Decode task on the shared dispatcher (the dispatcher frees when it
    /// retires). Under the single-stage oracle front-end this is the whole
    /// monolithic dispatch stage.
    pub dispatch: TaskId,
    /// Issue task on the unit's issue queue (operand translation + conflict
    /// check). Equals `dispatch` under the single-stage oracle front-end.
    pub issue: TaskId,
    /// Final task of the execution; later work that must order after this
    /// request depends on it.
    pub finish: TaskId,
    /// When the request arrived at a **full** FIFO: the front-end task whose
    /// retirement freed its slot. The host's control path is blocked until
    /// then — the submitter must order the posting thread's subsequent work
    /// after this task (backpressure on the host, not just on the decode).
    pub stall_dep: Option<TaskId>,
    /// Payload bytes moved.
    pub bytes_moved: u64,
    /// Virtual/physical ranges read by the request.
    pub reads: Vec<(VirtAddr, PhysAddr, u64)>,
    /// Virtual/physical ranges written by the request.
    pub writes: Vec<(VirtAddr, PhysAddr, u64)>,
}

/// Aggregate device statistics.
#[derive(Debug, Clone, Default)]
pub struct DeviceStats {
    /// Requests executed, by primitive mnemonic.
    pub by_op: HashMap<&'static str, u64>,
    /// Total requests executed.
    pub requests: u64,
    /// Total payload bytes moved.
    pub bytes_moved: u64,
    /// Conflicts detected against in-flight accesses.
    pub conflicts: u64,
}

/// Persistence-domain image of the device front-end, written back to PM on a
/// failure and restored by the hardware recovery procedure (Section 5.3.3).
#[derive(Debug, Clone)]
pub struct DevicePersistentState {
    /// Queued (not yet executed) requests.
    pub fifo: Vec<(RequestId, NearPmRequest)>,
    /// In-flight access records.
    pub inflight: Vec<InFlightEntry>,
}

/// One NearPM device.
#[derive(Debug, Clone)]
pub struct NearPmDevice {
    config: DeviceConfig,
    fifo: RequestFifo,
    map: AddressMappingTable,
    inflight: InFlightTable,
    units: Vec<NearPmUnit>,
    next_unit: usize,
    stats: DeviceStats,
}

impl NearPmDevice {
    /// Creates a device from its configuration.
    pub fn new(config: DeviceConfig) -> Self {
        assert!(config.units >= 1, "a device needs at least one unit");
        NearPmDevice {
            config,
            fifo: RequestFifo::new(config.fifo_depth),
            map: AddressMappingTable::new(),
            inflight: InFlightTable::new(),
            units: (0..config.units)
                .map(|u| NearPmUnit::new(config.id, u))
                .collect(),
            next_unit: 0,
            stats: DeviceStats::default(),
        }
    }

    /// Device index.
    pub fn id(&self) -> usize {
        self.config.id
    }

    /// Number of execution units.
    pub fn unit_count(&self) -> usize {
        self.units.len()
    }

    /// Device statistics.
    pub fn stats(&self) -> &DeviceStats {
        &self.stats
    }

    /// Per-unit statistics.
    pub fn unit_stats(&self) -> Vec<UnitStats> {
        self.units.iter().map(|u| u.stats()).collect()
    }

    /// Number of queued (not yet executed) requests.
    pub fn pending(&self) -> usize {
        self.fifo.len()
    }

    /// Maximum FIFO occupancy observed (modeled from the task graph's
    /// in-flight decode window).
    pub fn fifo_high_watermark(&self) -> usize {
        self.fifo.high_watermark()
    }

    /// Total time hosts stalled at this device's full FIFO.
    pub fn fifo_stall_time(&self) -> SimDuration {
        self.fifo.stall_time()
    }

    /// Number of requests that stalled at this device's full FIFO.
    pub fn fifo_stalls(&self) -> u64 {
        self.fifo.stalls()
    }

    /// Highest modeled FIFO occupancy within the simulated-time window
    /// `[from, to)` (post-run per-window analysis).
    pub fn fifo_occupancy_in(&self, from: SimTime, to: SimTime) -> usize {
        self.fifo.occupancy_in(from, to)
    }

    /// Number of requests admitted into this device's FIFO within the
    /// simulated-time window `[from, to)`.
    pub fn fifo_admissions_in(&self, from: SimTime, to: SimTime) -> usize {
        self.fifo.admissions_in(from, to)
    }

    /// The dispatcher's scheduling resource (decode lane 0).
    pub fn dispatcher_resource(&self) -> Resource {
        Resource::Dispatcher(self.config.id)
    }

    /// The scheduling resource of decode lane `lane`. Lane 0 is the classic
    /// dispatcher, so a single-lane device's schedule is unchanged by the
    /// lane plumbing.
    fn decode_lane_resource(&self, lane: usize) -> Resource {
        if lane == 0 {
            Resource::Dispatcher(self.config.id)
        } else {
            Resource::DispatcherLane {
                device: self.config.id,
                lane,
            }
        }
    }

    /// Installs the address-mapping entry for a pool (called at
    /// `NearPM_init_device` / pool-creation time).
    pub fn register_pool(
        &mut self,
        pool: PoolId,
        virt_base: VirtAddr,
        phys_base: PhysAddr,
        size: u64,
    ) {
        self.map.register_pool(pool, virt_base, phys_base, size);
    }

    /// Installs a thread-local mapping.
    pub fn register_thread_pool(
        &mut self,
        pool: PoolId,
        thread: ThreadId,
        virt_base: VirtAddr,
        phys_base: PhysAddr,
        size: u64,
    ) {
        self.map
            .register_thread_pool(pool, thread, virt_base, phys_base, size);
    }

    /// Enqueues a request without executing it (step 1a of the execution
    /// flow). Used by the recovery tests to model requests still sitting in
    /// the FIFO when a failure hits.
    pub fn enqueue(&mut self, request: NearPmRequest) -> Result<RequestId, DeviceError> {
        Ok(self.fifo.push(request)?)
    }

    /// Enqueues and immediately executes a request, returning its execution
    /// record. `issue_deps` are the tasks that must precede the dispatch
    /// (typically the CPU's command-issue task on the control path).
    pub fn submit(
        &mut self,
        request: NearPmRequest,
        space: &mut PmSpace,
        graph: &mut TaskGraph,
        model: &LatencyModel,
        issue_deps: &[TaskId],
    ) -> Result<ExecutedRequest, DeviceError> {
        self.submit_ordered(request, space, graph, model, issue_deps, &[])
    }

    /// Like [`NearPmDevice::submit`], with additional **device-side**
    /// ordering dependencies: the command is posted (and decoded) without
    /// waiting for them, but its issue stage — and so its execution — orders
    /// after every task in `order_deps`. This is how the delayed
    /// multi-device synchronization defers a commit's log deletion until the
    /// near-memory handlers agree, without stalling the control path.
    pub fn submit_ordered(
        &mut self,
        request: NearPmRequest,
        space: &mut PmSpace,
        graph: &mut TaskGraph,
        model: &LatencyModel,
        issue_deps: &[TaskId],
        order_deps: &[TaskId],
    ) -> Result<ExecutedRequest, DeviceError> {
        self.enqueue(request)?;
        let (id, request) = self.fifo.pop().expect("request was just enqueued");
        self.execute(id, request, space, graph, model, issue_deps, order_deps)
    }

    /// Pops and executes the oldest queued request (steps 2a–8a).
    pub fn process_one(
        &mut self,
        space: &mut PmSpace,
        graph: &mut TaskGraph,
        model: &LatencyModel,
        issue_deps: &[TaskId],
    ) -> Option<Result<ExecutedRequest, DeviceError>> {
        let (id, request) = self.fifo.pop()?;
        Some(self.execute(id, request, space, graph, model, issue_deps, &[]))
    }

    /// Executes every queued request in FIFO order (used by recovery replay).
    pub fn drain(
        &mut self,
        space: &mut PmSpace,
        graph: &mut TaskGraph,
        model: &LatencyModel,
        issue_deps: &[TaskId],
    ) -> Vec<Result<ExecutedRequest, DeviceError>> {
        let mut out = Vec::new();
        while let Some(r) = self.process_one(space, graph, model, issue_deps) {
            out.push(r);
        }
        out
    }

    /// Translates the request's operand ranges (steps 2a/3a, functional
    /// half: effects are applied immediately, timing is modeled by the
    /// front-end stages).
    #[allow(clippy::type_complexity)]
    fn translate_ranges(
        &mut self,
        request: &NearPmRequest,
    ) -> Result<
        (
            Vec<(VirtAddr, PhysAddr, u64)>,
            Vec<(VirtAddr, PhysAddr, u64)>,
        ),
        DeviceError,
    > {
        let mut reads = Vec::new();
        let mut writes = Vec::new();
        for (v, len) in request.op.read_ranges() {
            let p = self.map.translate(request.pool, request.thread, v)?;
            reads.push((v, p, len));
        }
        for (v, len) in request.op.write_ranges() {
            let p = self.map.translate(request.pool, request.thread, v)?;
            writes.push((v, p, len));
        }
        Ok((reads, writes))
    }

    /// Step 4a: conflict check against in-flight accesses. Returns the
    /// finish tasks the request must order after, sorted and deduplicated.
    fn conflict_check(
        &mut self,
        reads: &[(VirtAddr, PhysAddr, u64)],
        writes: &[(VirtAddr, PhysAddr, u64)],
    ) -> Vec<TaskId> {
        let mut conflict_deps: Vec<TaskId> = Vec::new();
        for (_, p, len) in reads {
            conflict_deps.extend(self.inflight.conflicts(*p, *len, false));
        }
        for (_, p, len) in writes {
            conflict_deps.extend(self.inflight.conflicts(*p, *len, true));
        }
        conflict_deps.sort_unstable();
        conflict_deps.dedup();
        if !conflict_deps.is_empty() {
            self.stats.conflicts += 1;
        }
        conflict_deps
    }

    /// Runs the decoded micro-op program on one unit, chaining each micro-op
    /// after the previous one starting from `first_dep`. Returns the final
    /// task of the execution.
    fn run_program(
        &mut self,
        unit_index: usize,
        program: &[MicroOp],
        space: &mut PmSpace,
        graph: &mut TaskGraph,
        model: &LatencyModel,
        first_dep: TaskId,
    ) -> TaskId {
        let unit = &mut self.units[unit_index];
        let mut last = first_dep;
        for op in program {
            last = unit.execute_micro(space, graph, model, op, &[last]);
        }
        unit.complete_request();
        last
    }

    /// Tracks the request's accesses in the in-flight table until the host
    /// releases them (at transaction commit), and accounts the statistics.
    fn track_request(
        &mut self,
        id: RequestId,
        request: &NearPmRequest,
        reads: &[(VirtAddr, PhysAddr, u64)],
        writes: &[(VirtAddr, PhysAddr, u64)],
        finish: TaskId,
    ) -> u64 {
        for (_, p, len) in reads {
            self.inflight.insert(InFlightEntry {
                request: id,
                start: *p,
                len: *len,
                is_write: false,
                completes_at: finish,
            });
        }
        for (_, p, len) in writes {
            self.inflight.insert(InFlightEntry {
                request: id,
                start: *p,
                len: *len,
                is_write: true,
                completes_at: finish,
            });
        }
        let bytes = request.op.bytes_moved();
        self.stats.requests += 1;
        self.stats.bytes_moved += bytes;
        *self.stats.by_op.entry(request.op.mnemonic()).or_insert(0) += 1;
        bytes
    }

    /// Executes one request through the pipelined front-end:
    ///
    /// 1. **FIFO admission** — the request occupies a FIFO slot from its
    ///    arrival over the control path until the front-end hands it to a
    ///    unit; a full FIFO stalls the host until the oldest blocking entry
    ///    frees a slot (real backpressure, surfaced via the FIFO's stall
    ///    statistics).
    /// 2. **Decode** on the shared dispatcher — a short stage that pops the
    ///    FIFO and decodes the command word; the dispatcher frees as soon as
    ///    it retires, so it no longer serializes the whole front-end.
    /// 3. **Issue** on the chosen unit's issue queue — operand translation
    ///    and the in-flight conflict check; a conflicting request waits here,
    ///    overlapping with decode and execution of requests on sibling units
    ///    instead of blocking them behind the dispatcher.
    /// 4. **Execution** of the decoded micro-op program on the unit.
    ///
    /// The decode and issue stages are scheduled in **arrival order** on
    /// their resources ([`TaskGraph::add_arrival_ordered`]): the graph is
    /// built in program order, thread by thread, so a command posted late in
    /// one thread's transaction must not head-of-line block other threads'
    /// earlier-arriving commands on the nearly idle front-end.
    #[allow(clippy::too_many_arguments)]
    fn execute(
        &mut self,
        id: RequestId,
        request: NearPmRequest,
        space: &mut PmSpace,
        graph: &mut TaskGraph,
        model: &LatencyModel,
        issue_deps: &[TaskId],
        order_deps: &[TaskId],
    ) -> Result<ExecutedRequest, DeviceError> {
        let (reads, writes) = self.translate_ranges(&request)?;
        let program = request
            .op
            .decode(|v| self.map.translate(request.pool, request.thread, v))?;
        let conflict_deps = self.conflict_check(&reads, &writes);

        // FIFO admission at the time the command lands on the control path.
        let arrival = issue_deps
            .iter()
            .map(|d| graph.task_finish(*d))
            .max()
            .unwrap_or(SimTime::ZERO);
        let admission = self.fifo.admit(arrival);
        let mut decode_deps = issue_deps.to_vec();
        decode_deps.extend(admission.slot_dep);
        decode_deps.sort_unstable();
        decode_deps.dedup();
        // With multiple decode lanes the front-end steers the command to the
        // lane whose timeline frees first (ties toward lane 0, so assignment
        // stays deterministic and single-lane behavior is bit-identical).
        let lane = if self.config.decode_lanes > 1 {
            (0..self.config.decode_lanes)
                .min_by_key(|&l| (graph.resource_available(self.decode_lane_resource(l)), l))
                .expect("a device has at least one decode lane")
        } else {
            0
        };
        let decode = graph.add_arrival_ordered(
            "ndp-decode",
            self.decode_lane_resource(lane),
            model.ndp_decode(),
            Region::CcOffload,
            &decode_deps,
        );

        // Step 6a: hand the request to a unit. Earliest-available dispatch
        // ranks units by when both the unit and its issue queue free (read
        // from the incrementally maintained schedule; ties break toward the
        // lowest index, so assignment stays deterministic); round-robin is
        // retained as the legacy comparison policy.
        let unit_index = match self.config.dispatch {
            DispatchPolicy::EarliestAvailable => (0..self.units.len())
                .min_by_key(|&u| {
                    let unit_free = self.units[u].busy_until(graph);
                    let queue_free = graph.resource_available(self.units[u].issue_queue());
                    (unit_free.max(queue_free), u)
                })
                .expect("a device has at least one unit"),
            DispatchPolicy::RoundRobin => {
                let u = self.next_unit % self.units.len();
                self.next_unit = self.next_unit.wrapping_add(1);
                u
            }
        };

        let mut issue_stage_deps = vec![decode];
        issue_stage_deps.extend_from_slice(&conflict_deps);
        issue_stage_deps.extend_from_slice(order_deps);
        issue_stage_deps.sort_unstable();
        issue_stage_deps.dedup();
        let issue = graph.add_arrival_ordered(
            "ndp-issue",
            self.units[unit_index].issue_queue(),
            model.ndp_issue(),
            Region::CcOffload,
            &issue_stage_deps,
        );
        // The request's FIFO slot frees when the front-end hands it to the
        // unit (a conflict wait at the issue queue backs the FIFO up).
        self.fifo
            .record_front_end(issue, arrival, graph.task_finish(issue));

        let finish = self.run_program(unit_index, &program, space, graph, model, issue);
        let bytes = self.track_request(id, &request, &reads, &writes, finish);

        Ok(ExecutedRequest {
            request: id,
            device: self.config.id,
            unit: unit_index,
            dispatch: decode,
            issue,
            finish,
            stall_dep: admission.slot_dep,
            bytes_moved: bytes,
            reads,
            writes,
        })
    }

    /// Enqueues and executes a request through the **single-stage** front-end
    /// that predates the pipelined decode/issue split: one monolithic
    /// `ndp-dispatch` task on the shared dispatcher carries decode, operand
    /// translation, and the conflict wait, and the FIFO drains instantly
    /// (no modeled backpressure).
    ///
    /// Retained as the differential oracle (mirroring `schedule::oracle` and
    /// `invariants::oracle`): it drives the same decoded micro-op program
    /// through the same units, so its functional effects are identical to
    /// [`NearPmDevice::submit`]'s by construction — only the modeled
    /// front-end overlap differs.
    #[cfg(any(test, feature = "oracle"))]
    pub fn submit_single_stage(
        &mut self,
        request: NearPmRequest,
        space: &mut PmSpace,
        graph: &mut TaskGraph,
        model: &LatencyModel,
        issue_deps: &[TaskId],
    ) -> Result<ExecutedRequest, DeviceError> {
        self.enqueue(request)?;
        let (id, request) = self.fifo.pop().expect("request was just enqueued");

        let (reads, writes) = self.translate_ranges(&request)?;
        let program = request
            .op
            .decode(|v| self.map.translate(request.pool, request.thread, v))?;
        let conflict_deps = self.conflict_check(&reads, &writes);

        // The monolithic dispatch stage: the dispatcher is held through
        // decode, translation, and the conflict wait.
        let mut dispatch_deps = issue_deps.to_vec();
        dispatch_deps.extend_from_slice(&conflict_deps);
        dispatch_deps.sort_unstable();
        dispatch_deps.dedup();
        let dispatch = graph.add(
            "ndp-dispatch",
            self.dispatcher_resource(),
            model.ndp_dispatch(),
            Region::CcOffload,
            &dispatch_deps,
        );

        // The pre-pipelining unit choice ranked by unit availability alone.
        let unit_index = match self.config.dispatch {
            DispatchPolicy::EarliestAvailable => (0..self.units.len())
                .min_by_key(|&u| (self.units[u].busy_until(graph), u))
                .expect("a device has at least one unit"),
            DispatchPolicy::RoundRobin => {
                let u = self.next_unit % self.units.len();
                self.next_unit = self.next_unit.wrapping_add(1);
                u
            }
        };

        let finish = self.run_program(unit_index, &program, space, graph, model, dispatch);
        let bytes = self.track_request(id, &request, &reads, &writes, finish);

        Ok(ExecutedRequest {
            request: id,
            device: self.config.id,
            unit: unit_index,
            dispatch,
            issue: dispatch,
            finish,
            stall_dep: None,
            bytes_moved: bytes,
            reads,
            writes,
        })
    }

    /// Conflict check for a *host* memory access (steps 1b–3b): returns the
    /// tasks the host access must wait for. An empty vector means no
    /// buffering is needed.
    pub fn host_access_conflicts(
        &mut self,
        addr: PhysAddr,
        len: u64,
        is_write: bool,
    ) -> Vec<TaskId> {
        self.inflight.conflicts(addr, len, is_write)
    }

    /// Releases the in-flight records of a request once the host no longer
    /// needs ordering against it (at transaction commit).
    pub fn release_request(&mut self, request: RequestId) {
        self.inflight.complete_request(request);
    }

    /// Number of in-flight access records (diagnostics).
    pub fn inflight_len(&self) -> usize {
        self.inflight.len()
    }

    /// Drops every piece of volatile front-end state on a power failure:
    /// queued FIFO requests and the in-flight access table. The functional
    /// effect of already-posted offloads is not rolled back — media mutations
    /// apply at post time and live in the persistence domain — but nothing
    /// queued or tracked in device SRAM survives. (A battery-backed
    /// configuration would instead use [`NearPmDevice::crash_snapshot`] /
    /// [`NearPmDevice::restore`].)
    pub fn crash(&mut self) {
        self.fifo.clear();
        self.inflight.clear();
    }

    /// Captures the persistence-domain image of the front-end.
    pub fn crash_snapshot(&self) -> DevicePersistentState {
        DevicePersistentState {
            fifo: self.fifo.snapshot(),
            inflight: self.inflight.snapshot(),
        }
    }

    /// Hardware recovery step 1: restore the persistence-domain structures
    /// from the reserved PM region. Step 2 (replaying the requests) is
    /// performed by calling [`NearPmDevice::drain`].
    pub fn restore(&mut self, state: DevicePersistentState) {
        self.fifo.restore(state.fifo);
        self.inflight = InFlightTable::new();
        for e in state.inflight {
            self.inflight.insert(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metadata::LogEntryHeader;
    use crate::request::NearPmOp;
    use nearpm_sim::Schedule;

    fn setup() -> (NearPmDevice, PmSpace, TaskGraph, LatencyModel) {
        let mut dev = NearPmDevice::new(DeviceConfig::prototype(0));
        let space = PmSpace::single(1 << 20);
        // One pool covering the whole space: virtual 0x1000_0000 → physical 0.
        dev.register_pool(PoolId(0), VirtAddr(0x1000_0000), PhysAddr(0), 1 << 20);
        (dev, space, TaskGraph::new(), LatencyModel::default())
    }

    fn undolog_req(src_off: u64, len: u64, log_off: u64, txn: u64) -> NearPmRequest {
        NearPmRequest::new(
            PoolId(0),
            ThreadId(0),
            NearPmOp::UndoLogCreate {
                src: VirtAddr(0x1000_0000 + src_off),
                len,
                log_meta: VirtAddr(0x1000_0000 + log_off),
                log_data: VirtAddr(0x1000_0000 + log_off + 64),
                txn_id: txn,
            },
        )
    }

    #[test]
    fn undo_log_create_copies_data_and_writes_header() {
        let (mut dev, mut space, mut graph, model) = setup();
        space.write(PhysAddr(0x100), &[0xAA; 128]);
        let exec = dev
            .submit(
                undolog_req(0x100, 128, 0x8000, 7),
                &mut space,
                &mut graph,
                &model,
                &[],
            )
            .unwrap();
        // Log data copied.
        assert_eq!(space.read_vec(PhysAddr(0x8000 + 64), 128), vec![0xAA; 128]);
        // Header decodable and points at the source.
        let header = LogEntryHeader::decode(&space.read_vec(PhysAddr(0x8000), 40)).unwrap();
        assert_eq!(header.target, VirtAddr(0x1000_0100));
        assert_eq!(header.len, 128);
        assert_eq!(header.txn_id, 7);
        assert_eq!(exec.bytes_moved, 128);
        assert_eq!(dev.stats().requests, 1);
        assert_eq!(dev.stats().by_op["undolog_create"], 1);
        // Timing: the request occupies a dispatcher and a unit.
        assert!(graph.task_finish(exec.finish) > graph.task_start(exec.dispatch));
    }

    #[test]
    fn commit_log_resets_headers() {
        let (mut dev, mut space, mut graph, model) = setup();
        space.write(PhysAddr(0x100), &[1; 64]);
        dev.submit(
            undolog_req(0x100, 64, 0x8000, 1),
            &mut space,
            &mut graph,
            &model,
            &[],
        )
        .unwrap();
        assert!(LogEntryHeader::decode(&space.read_vec(PhysAddr(0x8000), 40)).is_some());
        let commit = NearPmRequest::new(
            PoolId(0),
            ThreadId(0),
            NearPmOp::CommitLog {
                entries: vec![VirtAddr(0x1000_8000)],
                txn_id: 1,
            },
        );
        dev.submit(commit, &mut space, &mut graph, &model, &[])
            .unwrap();
        assert!(LogEntryHeader::decode(&space.read_vec(PhysAddr(0x8000), 40)).is_none());
    }

    #[test]
    fn shadow_copy_and_apply_redo_log() {
        let (mut dev, mut space, mut graph, model) = setup();
        space.write(PhysAddr(0x4000), &[3; 4096]);
        let shadow = NearPmRequest::new(
            PoolId(0),
            ThreadId(0),
            NearPmOp::ShadowCopy {
                src: VirtAddr(0x1000_4000),
                dst: VirtAddr(0x1002_0000),
                len: 4096,
            },
        );
        dev.submit(shadow, &mut space, &mut graph, &model, &[])
            .unwrap();
        assert_eq!(space.read_vec(PhysAddr(0x2_0000), 4096), vec![3; 4096]);

        space.write(PhysAddr(0x9000), &[9; 256]);
        let apply = NearPmRequest::new(
            PoolId(0),
            ThreadId(0),
            NearPmOp::ApplyRedoLog {
                log_data: VirtAddr(0x1000_9000),
                dst: VirtAddr(0x1000_0400),
                len: 256,
            },
        );
        dev.submit(apply, &mut space, &mut graph, &model, &[])
            .unwrap();
        assert_eq!(space.read_vec(PhysAddr(0x400), 256), vec![9; 256]);
    }

    #[test]
    fn host_conflict_detected_until_release() {
        let (mut dev, mut space, mut graph, model) = setup();
        let exec = dev
            .submit(
                undolog_req(0x100, 64, 0x8000, 1),
                &mut space,
                &mut graph,
                &model,
                &[],
            )
            .unwrap();
        // The host reads the logged source range: conflicts with the NDP read?
        // Reads don't conflict with reads, but a host *write* to the source does.
        let deps = dev.host_access_conflicts(PhysAddr(0x100), 64, true);
        assert_eq!(deps, vec![exec.finish]);
        // A host access to an unrelated range does not conflict.
        assert!(dev
            .host_access_conflicts(PhysAddr(0x40000), 64, true)
            .is_empty());
        dev.release_request(exec.request);
        assert!(dev
            .host_access_conflicts(PhysAddr(0x100), 64, true)
            .is_empty());
        assert_eq!(dev.inflight_len(), 0);
    }

    #[test]
    fn earliest_available_dispatch_spreads_requests_across_units() {
        let (mut dev, mut space, mut graph, model) = setup();
        let mut units_used = Vec::new();
        for i in 0..4 {
            let exec = dev
                .submit(
                    undolog_req(0x1000 + i * 0x100, 64, 0x8000 + i * 0x200, i),
                    &mut space,
                    &mut graph,
                    &model,
                    &[],
                )
                .unwrap();
            units_used.push(exec.unit);
        }
        // Each request occupies a unit, so the next one picks the next idle
        // unit; ties break toward the lowest index, making the order
        // deterministic.
        assert_eq!(units_used, vec![0, 1, 2, 3]);
    }

    #[test]
    fn earliest_available_reuses_the_unit_that_frees_first() {
        let (mut dev, mut space, mut graph, model) = setup();
        // One huge copy on unit 0, three tiny ones on units 1-3.
        space.write(PhysAddr(0), &[1; 64 << 10]);
        let shadow = |src: u64, dst: u64, len: u64| {
            NearPmRequest::new(
                PoolId(0),
                ThreadId(0),
                NearPmOp::ShadowCopy {
                    src: VirtAddr(0x1000_0000 + src),
                    dst: VirtAddr(0x1000_0000 + dst),
                    len,
                },
            )
        };
        let big = dev
            .submit(
                shadow(0, 0x8_0000, 64 << 10),
                &mut space,
                &mut graph,
                &model,
                &[],
            )
            .unwrap();
        assert_eq!(big.unit, 0);
        for i in 0..3u64 {
            let small = dev
                .submit(
                    shadow(i * 0x100, 0x4_0000 + i * 0x100, 64),
                    &mut space,
                    &mut graph,
                    &model,
                    &[],
                )
                .unwrap();
            assert_eq!(small.unit, i as usize + 1);
        }
        // Unit 0 is still grinding through the 64 kB DMA; the next request
        // lands on whichever small-copy unit freed first, not back on unit 0.
        let next = dev
            .submit(
                shadow(0x1000, 0x5_0000, 64),
                &mut space,
                &mut graph,
                &model,
                &[],
            )
            .unwrap();
        assert_eq!(
            next.unit, 1,
            "unit 1 frees first; round-robin would have picked unit 0"
        );
    }

    /// Satellite regression: on a mixed-size primitive workload,
    /// earliest-available dispatch must strictly beat blind round-robin on
    /// makespan (round-robin ties long DMA copies to one unit while the
    /// others idle).
    #[test]
    fn earliest_available_beats_round_robin_makespan_on_mixed_sizes() {
        let run = |policy: DispatchPolicy| {
            let mut dev = NearPmDevice::new(DeviceConfig::prototype(0).with_dispatch(policy));
            let mut space = PmSpace::single(4 << 20);
            dev.register_pool(PoolId(0), VirtAddr(0x1000_0000), PhysAddr(0), 4 << 20);
            let mut graph = TaskGraph::new();
            let model = LatencyModel::default();
            // Alternating long (16 kB) and short (64 B) copies: round-robin
            // pins every other long copy onto the same two units.
            for i in 0..12u64 {
                let len = if i % 2 == 0 { 16 << 10 } else { 64 };
                let req = NearPmRequest::new(
                    PoolId(0),
                    ThreadId(0),
                    NearPmOp::ShadowCopy {
                        src: VirtAddr(0x1000_0000 + i * 0x2_0000),
                        dst: VirtAddr(0x1000_0000 + i * 0x2_0000 + 0x1_0000),
                        len,
                    },
                );
                dev.submit(req, &mut space, &mut graph, &model, &[])
                    .unwrap();
            }
            Schedule::compute(&graph).makespan()
        };
        let earliest = run(DispatchPolicy::EarliestAvailable);
        let round_robin = run(DispatchPolicy::RoundRobin);
        assert!(
            earliest < round_robin,
            "earliest-available ({earliest}) must strictly beat round-robin ({round_robin})"
        );
    }

    /// A conflicting request must wait for the in-flight access it conflicts
    /// with — but on its unit's issue queue, not on the shared dispatcher:
    /// decode retires (and the dispatcher frees) while the conflict is still
    /// pending.
    #[test]
    fn conflict_wait_blocks_the_issue_stage_not_the_dispatcher() {
        let (mut dev, mut space, mut graph, model) = setup();
        space.write(PhysAddr(0), &[4; 16 << 10]);
        let shadow = |src: u64, dst: u64| {
            NearPmRequest::new(
                PoolId(0),
                ThreadId(0),
                NearPmOp::ShadowCopy {
                    src: VirtAddr(0x1000_0000 + src),
                    dst: VirtAddr(0x1000_0000 + dst),
                    len: 16 << 10,
                },
            )
        };
        let a = dev
            .submit(shadow(0, 0x8_0000), &mut space, &mut graph, &model, &[])
            .unwrap();
        // B reads A's destination: a read-after-write conflict.
        let b = dev
            .submit(
                shadow(0x8_0000, 0x4_0000),
                &mut space,
                &mut graph,
                &model,
                &[],
            )
            .unwrap();
        let a_finish = graph.task_finish(a.finish);
        // Decode (and the dispatcher) retires long before A's DMA finishes…
        assert!(
            graph.task_finish(b.dispatch) < a_finish,
            "decode must not wait for the conflicting request"
        );
        // …while the issue stage (and so the execution) orders after it.
        assert!(
            graph.task_finish(b.issue) >= a_finish,
            "the conflict wait must gate the issue stage"
        );
        assert_eq!(dev.stats().conflicts, 1);
    }

    /// The pipelined front-end holds the dispatcher only for the short decode
    /// stage; translation/conflict checking occupies the per-unit issue
    /// queue.
    #[test]
    fn dispatcher_frees_after_decode() {
        let (mut dev, mut space, mut graph, model) = setup();
        space.write(PhysAddr(0x100), &[1; 64]);
        let exec = dev
            .submit(
                undolog_req(0x100, 64, 0x8000, 1),
                &mut space,
                &mut graph,
                &model,
                &[],
            )
            .unwrap();
        let s = Schedule::compute(&graph);
        assert_eq!(
            s.resource_time(dev.dispatcher_resource()),
            model.ndp_decode()
        );
        assert_eq!(
            s.resource_time(Resource::IssueQueue {
                device: 0,
                unit: exec.unit,
            }),
            model.ndp_issue()
        );
        // Total front-end work matches the single-stage model exactly.
        assert_eq!(model.ndp_decode() + model.ndp_issue(), model.ndp_dispatch());
    }

    /// A burst deeper than the FIFO stalls the host: the modeled occupancy
    /// saturates at the depth and the overflowing requests' decodes order
    /// after the decode whose retirement frees their slot.
    #[test]
    fn fifo_backpressure_stalls_bursts_deeper_than_the_depth() {
        let config = DeviceConfig {
            id: 0,
            units: 4,
            fifo_depth: 2,
            dispatch: DispatchPolicy::default(),
            decode_lanes: 1,
        };
        let mut dev = NearPmDevice::new(config);
        let mut space = PmSpace::single(1 << 20);
        dev.register_pool(PoolId(0), VirtAddr(0x1000_0000), PhysAddr(0), 1 << 20);
        let mut graph = TaskGraph::new();
        let model = LatencyModel::default();
        let mut execs = Vec::new();
        for i in 0..5u64 {
            let exec = dev
                .submit(
                    undolog_req(0x1000 + i * 0x100, 64, 0x8000 + i * 0x200, i),
                    &mut space,
                    &mut graph,
                    &model,
                    &[],
                )
                .unwrap();
            execs.push(exec);
        }
        assert_eq!(dev.fifo_high_watermark(), 2);
        assert_eq!(dev.fifo_stalls(), 3, "requests 3-5 all found the FIFO full");
        assert!(dev.fifo_stall_time() > nearpm_sim::SimDuration::ZERO);
        // Request 2 (0-based) waits for request 0's decode to retire.
        assert!(graph.task_start(execs[2].dispatch) >= graph.task_finish(execs[0].dispatch));
    }

    /// Differential oracle: the pipelined and single-stage front-ends drive
    /// the same decoded micro-op programs, so their PM images and statistics
    /// are identical; pipelining only shortens the modeled makespan (the
    /// dispatcher stops serializing translation and conflict waits).
    #[test]
    fn pipelined_front_end_matches_single_stage_oracle_functionally() {
        let run = |pipelined: bool| {
            let mut dev = NearPmDevice::new(DeviceConfig::prototype(0));
            let mut space = PmSpace::single(1 << 20);
            dev.register_pool(PoolId(0), VirtAddr(0x1000_0000), PhysAddr(0), 1 << 20);
            let mut graph = TaskGraph::new();
            let model = LatencyModel::default();
            space.write(PhysAddr(0), &[0xA5; 64 << 10]);

            // A mixed stream: log creations, an overlapping (conflicting)
            // shadow copy, and a commit that resets the first two entries.
            let requests = vec![
                undolog_req(0x100, 128, 0x8000, 1),
                undolog_req(0x300, 4096, 0x9000, 1),
                NearPmRequest::new(
                    PoolId(0),
                    ThreadId(0),
                    NearPmOp::ShadowCopy {
                        src: VirtAddr(0x1000_8000 + 64), // reads the first log's data
                        dst: VirtAddr(0x1004_0000),
                        len: 128,
                    },
                ),
                NearPmRequest::new(
                    PoolId(0),
                    ThreadId(0),
                    NearPmOp::CommitLog {
                        entries: vec![VirtAddr(0x1000_8000), VirtAddr(0x1000_9000)],
                        txn_id: 1,
                    },
                ),
            ];
            for req in requests {
                if pipelined {
                    dev.submit(req, &mut space, &mut graph, &model, &[])
                        .unwrap();
                } else {
                    dev.submit_single_stage(req, &mut space, &mut graph, &model, &[])
                        .unwrap();
                }
            }
            let image = space.read_vec(PhysAddr(0), 1 << 20);
            let makespan = Schedule::compute(&graph).makespan();
            (image, dev.stats().clone(), makespan)
        };
        let (pipe_image, pipe_stats, pipe_makespan) = run(true);
        let (oracle_image, oracle_stats, oracle_makespan) = run(false);
        assert_eq!(pipe_image, oracle_image, "PM images must be identical");
        assert_eq!(pipe_stats.requests, oracle_stats.requests);
        assert_eq!(pipe_stats.bytes_moved, oracle_stats.bytes_moved);
        assert_eq!(pipe_stats.conflicts, oracle_stats.conflicts);
        assert_eq!(pipe_stats.by_op, oracle_stats.by_op);
        assert!(
            pipe_makespan <= oracle_makespan,
            "pipelining must not slow the device down: {pipe_makespan} vs {oracle_makespan}"
        );
    }

    /// fig19-shaped regression: a burst of independent log creations posted
    /// back to back (the split-phase transaction pipeline's posting pattern)
    /// must finish strictly faster as units are added — 1 → 2 → 4 units.
    /// With a single contended unit the requests serialize; sibling units
    /// absorb the overlap.
    #[test]
    fn unit_scaling_shrinks_batched_burst_makespan() {
        let run = |units: usize| {
            let config = DeviceConfig {
                id: 0,
                units,
                fifo_depth: crate::fifo::DEFAULT_FIFO_DEPTH,
                dispatch: DispatchPolicy::default(),
                decode_lanes: 1,
            };
            let mut dev = NearPmDevice::new(config);
            let mut space = PmSpace::single(4 << 20);
            dev.register_pool(PoolId(0), VirtAddr(0x1000_0000), PhysAddr(0), 4 << 20);
            let mut graph = TaskGraph::new();
            let model = LatencyModel::default();
            for i in 0..12u64 {
                // Disjoint sources and log slots: no conflicts, pure
                // capacity scaling.
                dev.submit(
                    undolog_req(0x1000 + i * 0x2000, 1024, 0x10_0000 + i * 0x1000, i),
                    &mut space,
                    &mut graph,
                    &model,
                    &[],
                )
                .unwrap();
            }
            Schedule::compute(&graph).makespan()
        };
        let one = run(1);
        let two = run(2);
        let four = run(4);
        assert!(
            two < one,
            "2 units must beat 1 on a batched burst ({two} vs {one})"
        );
        assert!(
            four < two,
            "4 units must beat 2 on a batched burst ({four} vs {two})"
        );
    }

    #[test]
    fn translation_failure_surfaces() {
        let (mut dev, mut space, mut graph, model) = setup();
        let bad = NearPmRequest::new(
            PoolId(3),
            ThreadId(0),
            NearPmOp::ShadowCopy {
                src: VirtAddr(0x1000_0000),
                dst: VirtAddr(0x1000_1000),
                len: 64,
            },
        );
        let err = dev
            .submit(bad, &mut space, &mut graph, &model, &[])
            .unwrap_err();
        assert!(matches!(err, DeviceError::Translate(_)));
    }

    #[test]
    fn crash_snapshot_preserves_queued_requests_for_replay() {
        let (mut dev, mut space, mut graph, model) = setup();
        space.write(PhysAddr(0x100), &[5; 64]);
        // Enqueue but do not execute: the request is only in the FIFO when the
        // failure hits.
        dev.enqueue(undolog_req(0x100, 64, 0x8000, 2)).unwrap();
        let snapshot = dev.crash_snapshot();
        assert_eq!(snapshot.fifo.len(), 1);

        // "Reboot": a fresh device restores the persistence-domain image and
        // replays the request.
        let mut dev2 = NearPmDevice::new(DeviceConfig::prototype(0));
        dev2.register_pool(PoolId(0), VirtAddr(0x1000_0000), PhysAddr(0), 1 << 20);
        dev2.restore(snapshot);
        assert_eq!(dev2.pending(), 1);
        let results = dev2.drain(&mut space, &mut graph, &model, &[]);
        assert_eq!(results.len(), 1);
        assert!(results[0].is_ok());
        // The replayed log creation is visible in PM.
        assert_eq!(space.read_vec(PhysAddr(0x8000 + 64), 64), vec![5; 64]);
    }
}
