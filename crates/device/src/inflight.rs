//! In-flight memory access table.
//!
//! The dispatcher records the physical ranges currently being read or written
//! by NearPM units. Incoming requests (from the host or from the request
//! FIFO) whose operands conflict with an in-flight range must stall until the
//! conflicting access completes — this is how the hardware enforces PPO
//! Invariant 1 between the CPU and NDP procedures and between NDP procedures
//! of the same device.
//!
//! The table is consulted on *every* host PM access and every dispatched
//! request, so lookups must not scan all live entries. Entries are stored in
//! a slab and indexed two ways: by the 4 kB-aligned pages their interval
//! touches (conflict lookups walk only the buckets of the queried pages) and
//! by owning request (release at commit removes the request's entries
//! without a scan).

use std::collections::HashMap;

use nearpm_pm::PhysAddr;
use nearpm_sim::TaskId;

use crate::request::RequestId;

/// Granularity of the conflict-lookup buckets.
const PAGE_SHIFT: u32 = 12;

fn pages_of(start: u64, len: u64) -> std::ops::RangeInclusive<u64> {
    debug_assert!(len > 0);
    (start >> PAGE_SHIFT)..=((start + len - 1) >> PAGE_SHIFT)
}

/// One in-flight access record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InFlightEntry {
    /// Request that owns the access.
    pub request: RequestId,
    /// Physical start address.
    pub start: PhysAddr,
    /// Length in bytes.
    pub len: u64,
    /// True if the access writes the range (write-write and read-write are
    /// conflicts; read-read is not).
    pub is_write: bool,
    /// The scheduler task whose completion releases this entry. Conflicting
    /// work must add this task to its dependency list.
    pub completes_at: TaskId,
}

impl InFlightEntry {
    fn overlaps(&self, start: PhysAddr, len: u64) -> bool {
        len > 0
            && self.len > 0
            && start.raw() < self.start.raw() + self.len
            && self.start.raw() < start.raw() + len
    }
}

/// The in-flight access table of one NearPM device.
#[derive(Debug, Clone, Default)]
pub struct InFlightTable {
    /// Slab of entries; freed slots are recycled.
    slots: Vec<Option<InFlightEntry>>,
    free: Vec<usize>,
    /// Page number → slots whose interval touches that page.
    pages: HashMap<u64, Vec<usize>>,
    /// Owning request → its slots (release path).
    by_request: HashMap<RequestId, Vec<usize>>,
    live: usize,
    conflicts_detected: u64,
}

impl InFlightTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        InFlightTable::default()
    }

    /// Number of tracked accesses.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total conflicts detected (diagnostics; the paper's motivation for
    /// buffering host accesses).
    pub fn conflicts_detected(&self) -> u64 {
        self.conflicts_detected
    }

    /// Registers an in-flight access.
    pub fn insert(&mut self, entry: InFlightEntry) {
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s] = Some(entry);
                s
            }
            None => {
                self.slots.push(Some(entry));
                self.slots.len() - 1
            }
        };
        if entry.len > 0 {
            for page in pages_of(entry.start.raw(), entry.len) {
                self.pages.entry(page).or_default().push(slot);
            }
        }
        self.by_request.entry(entry.request).or_default().push(slot);
        self.live += 1;
    }

    /// Removes every access belonging to `request` (called when the request's
    /// execution completes).
    pub fn complete_request(&mut self, request: RequestId) {
        let Some(slots) = self.by_request.remove(&request) else {
            return;
        };
        for slot in slots {
            let Some(entry) = self.slots[slot].take() else {
                continue;
            };
            if entry.len > 0 {
                for page in pages_of(entry.start.raw(), entry.len) {
                    if let Some(bucket) = self.pages.get_mut(&page) {
                        if let Some(pos) = bucket.iter().position(|&s| s == slot) {
                            bucket.swap_remove(pos);
                        }
                        if bucket.is_empty() {
                            self.pages.remove(&page);
                        }
                    }
                }
            }
            self.free.push(slot);
            self.live -= 1;
        }
    }

    /// Returns the completion tasks of every in-flight access that conflicts
    /// with the given access. An empty result means the access may proceed
    /// immediately; otherwise the caller must make its work depend on the
    /// returned tasks (stall until the conflicting accesses complete).
    ///
    /// Only the buckets of the pages the query touches are inspected, so the
    /// cost scales with the locality of the access, not with the number of
    /// live entries.
    pub fn conflicts(&mut self, start: PhysAddr, len: u64, is_write: bool) -> Vec<TaskId> {
        let mut deps: Vec<TaskId> = Vec::new();
        if len > 0 && !self.pages.is_empty() {
            for page in pages_of(start.raw(), len) {
                let Some(bucket) = self.pages.get(&page) else {
                    continue;
                };
                for &slot in bucket {
                    let Some(e) = &self.slots[slot] else {
                        continue;
                    };
                    if (is_write || e.is_write) && e.overlaps(start, len) {
                        deps.push(e.completes_at);
                    }
                }
            }
        }
        deps.sort_unstable();
        deps.dedup();
        if !deps.is_empty() {
            self.conflicts_detected += 1;
        }
        deps
    }

    /// Drops every tracked access. The in-flight table is volatile device
    /// state: on a power failure nothing in it survives, so a crash clears it
    /// wholesale rather than releasing request by request.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.free.clear();
        self.pages.clear();
        self.by_request.clear();
        self.live = 0;
    }

    /// Snapshot of the in-flight entries (persistence-domain image).
    pub fn snapshot(&self) -> Vec<InFlightEntry> {
        self.slots.iter().flatten().copied().collect()
    }

    /// Approximate persistence-domain footprint in bytes.
    pub fn footprint_bytes(&self) -> usize {
        self.live * 32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(req: u64, start: u64, len: u64, is_write: bool, task: usize) -> InFlightEntry {
        // TaskId construction goes through a tiny graph because its inner
        // index is crate-private to nearpm-sim.
        let mut g = nearpm_sim::TaskGraph::new();
        let mut id = None;
        for _ in 0..=task {
            id = Some(g.add(
                "t",
                nearpm_sim::Resource::Cpu(0),
                nearpm_sim::SimDuration::ZERO,
                nearpm_sim::Region::Application,
                &[],
            ));
        }
        InFlightEntry {
            request: RequestId(req),
            start: PhysAddr(start),
            len,
            is_write,
            completes_at: id.unwrap(),
        }
    }

    #[test]
    fn write_write_and_read_write_conflict() {
        let mut t = InFlightTable::new();
        t.insert(entry(1, 0x1000, 64, true, 0));
        // Overlapping write conflicts.
        assert_eq!(t.conflicts(PhysAddr(0x1020), 64, true).len(), 1);
        // Overlapping read against a write conflicts.
        assert_eq!(t.conflicts(PhysAddr(0x1020), 64, false).len(), 1);
        // Disjoint access does not.
        assert!(t.conflicts(PhysAddr(0x2000), 64, true).is_empty());
        assert_eq!(t.conflicts_detected(), 2);
    }

    #[test]
    fn read_read_does_not_conflict() {
        let mut t = InFlightTable::new();
        t.insert(entry(1, 0x1000, 64, false, 0));
        assert!(t.conflicts(PhysAddr(0x1000), 64, false).is_empty());
        // But a write against an in-flight read does conflict.
        assert_eq!(t.conflicts(PhysAddr(0x1000), 64, true).len(), 1);
    }

    #[test]
    fn completion_releases_entries() {
        let mut t = InFlightTable::new();
        t.insert(entry(1, 0x1000, 64, true, 0));
        t.insert(entry(1, 0x8000, 64, true, 1));
        t.insert(entry(2, 0x1000, 64, false, 2));
        assert_eq!(t.len(), 3);
        t.complete_request(RequestId(1));
        assert_eq!(t.len(), 1);
        assert!(t.conflicts(PhysAddr(0x1000), 8, false).is_empty());
        assert_eq!(t.conflicts(PhysAddr(0x1000), 8, true).len(), 1);
    }

    #[test]
    fn duplicate_dependencies_are_deduplicated() {
        let mut t = InFlightTable::new();
        t.insert(entry(1, 0x1000, 64, true, 0));
        t.insert(entry(2, 0x1040, 64, true, 0));
        let deps = t.conflicts(PhysAddr(0x1000), 256, true);
        assert_eq!(deps.len(), 1);
    }

    #[test]
    fn snapshot_and_footprint() {
        let mut t = InFlightTable::new();
        t.insert(entry(1, 0, 64, true, 0));
        assert_eq!(t.snapshot().len(), 1);
        assert_eq!(t.footprint_bytes(), 32);
        assert!(!t.is_empty());
    }

    #[test]
    fn page_spanning_entry_found_from_every_page_and_counted_once() {
        let mut t = InFlightTable::new();
        // Entry spanning three 4 kB pages.
        t.insert(entry(1, 0x1F00, 0x2200, true, 0));
        assert_eq!(t.conflicts(PhysAddr(0x1F80), 8, true).len(), 1);
        assert_eq!(t.conflicts(PhysAddr(0x3000), 8, true).len(), 1);
        assert_eq!(t.conflicts(PhysAddr(0x4000), 8, true).len(), 1);
        // A query spanning all three pages reports the entry once.
        assert_eq!(t.conflicts(PhysAddr(0x1000), 0x4000, true).len(), 1);
        // Same page, disjoint bytes: bucket hit but no overlap.
        assert!(t.conflicts(PhysAddr(0x1000), 64, true).is_empty());
    }

    #[test]
    fn slots_are_recycled_after_release() {
        let mut t = InFlightTable::new();
        for round in 0..10 {
            for i in 0..8u64 {
                t.insert(entry(i, i * 0x1000, 64, true, i as usize));
            }
            assert_eq!(t.len(), 8);
            for i in 0..8u64 {
                t.complete_request(RequestId(i));
            }
            assert_eq!(t.len(), 0, "round {round}");
            assert!(t.conflicts(PhysAddr(0), 0x10000, true).is_empty());
        }
        // The slab did not grow beyond one generation of entries.
        assert!(t.slots.len() <= 8);
    }

    #[test]
    fn zero_length_queries_and_entries_never_conflict() {
        let mut t = InFlightTable::new();
        t.insert(entry(1, 0x1000, 0, true, 0));
        assert_eq!(t.len(), 1);
        assert!(t.conflicts(PhysAddr(0x1000), 64, true).is_empty());
        assert!(t.conflicts(PhysAddr(0x1000), 0, true).is_empty());
        t.complete_request(RequestId(1));
        assert_eq!(t.len(), 0);
    }
}
