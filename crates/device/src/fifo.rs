//! Request FIFO of a NearPM device.
//!
//! Requests issued over the control path land in a bounded FIFO (32 entries
//! in the prototype, Table 3) that is part of the persistence domain: on a
//! failure its contents are written back to a reserved PM location by the
//! residual-capacitance mechanism and replayed during recovery.
//!
//! Besides the *physical* queue (used by the recovery path, which really
//! enqueues requests before replaying them), the FIFO maintains a *modeled
//! occupancy window* for timing: an entry occupies its slot from the
//! request's arrival over the control path until the front-end hands the
//! request to a unit — its issue stage retires in the task graph. A
//! conflicting request waiting at its issue queue therefore backs the FIFO
//! up, and when the window is as deep as the FIFO, a newly arriving request
//! stalls the host until the oldest blocking front-end stage retires — real
//! backpressure, surfaced as stall time and a high-watermark instead of the
//! queue being drained instantly.

use std::cell::RefCell;
use std::collections::VecDeque;

use nearpm_sim::{SimDuration, SimTime, TaskId};

use crate::request::{NearPmRequest, RequestId};

/// Default FIFO depth (entries), matching the prototype configuration.
pub const DEFAULT_FIFO_DEPTH: usize = 32;

/// Error returned when the FIFO is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FifoFull;

impl std::fmt::Display for FifoFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "NearPM request FIFO is full")
    }
}

impl std::error::Error for FifoFull {}

/// Modeled admission of one request into the FIFO, returned by
/// [`RequestFifo::admit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FifoAdmission {
    /// Front-end (issue) task whose retirement frees the slot this request
    /// needs. `None` when a slot is free at arrival; otherwise the request's
    /// decode must order after this task (backpressure on the host).
    pub slot_dep: Option<TaskId>,
    /// How long the host stalls at the full FIFO before the slot frees.
    pub stalled: SimDuration,
}

/// Bounded request FIFO.
#[derive(Debug, Clone)]
pub struct RequestFifo {
    depth: usize,
    entries: VecDeque<(RequestId, NearPmRequest)>,
    next_id: u64,
    accepted: u64,
    high_watermark: usize,
    /// Modeled occupancy window: `(issue task, arrival, front-end retire
    /// time)` of admitted requests, sorted by retire time. Entries are kept
    /// past their retirement for [`WINDOW_GC_SLACK`]: admissions arrive
    /// slightly out of simulated-time order (the task graph is built thread
    /// by thread while the threads' clocks drift apart), so an entry may
    /// still determine the occupancy seen by a straggler arrival after a
    /// later one was already admitted.
    window: Vec<(TaskId, SimTime, SimTime)>,
    /// Full `(arrival, retire)` residency history of every admitted request
    /// — unlike `window`, never garbage-collected, so post-run analyses can
    /// ask "how full was the FIFO during `[from, to)`" for any window of the
    /// run (`fig_timeline`'s occupancy series).
    history: Vec<(SimTime, SimTime)>,
    /// Lazily (re)built prefix/range-max structure over `history` answering
    /// [`RequestFifo::occupancy_in`] in O(log m). Interior mutability keeps
    /// the query `&self` (the whole report path is read-only); the cell is
    /// invalidated whenever `history` grows.
    occupancy_index: RefCell<OccupancyIndex>,
    stall_time: SimDuration,
    stalls: u64,
}

/// Sorted event list plus running-occupancy range-max tree over the full
/// residency history.
///
/// The occupancy step function `f(t) = #{entries: arrival <= t < retire}`
/// only changes at arrival/retirement instants. The index stores every
/// instant sorted by `(time, delta)` — retirements before arrivals at the
/// same instant, the admission model's tie rule — the running occupancy
/// after each event, and a flat max segment tree over those running values.
/// `max f(t) over [from, to)` is then `f(from)` (two binary searches over
/// the sorted arrival/retire instants) joined with the range max of the
/// running values at events strictly inside `(from, to)`: the maximum is
/// always attained either at `from` or at an arrival event, and ties'
/// intermediate running values never exceed the step function's value at
/// either side of the instant, so the answer is exact.
#[derive(Debug, Clone, Default)]
struct OccupancyIndex {
    /// History length this index was built from (`history.len()` at build
    /// time; a shorter value marks the index stale).
    built_len: usize,
    /// Every arrival instant, sorted (ps).
    arrivals: Vec<u64>,
    /// Every retirement instant, sorted (ps).
    retires: Vec<u64>,
    /// All events sorted by `(time, delta)`; retirements (`-1`) order before
    /// arrivals (`+1`) at the same instant.
    events: Vec<(u64, i32)>,
    /// Flat max segment tree of size `2 * events.len()`; leaf `i` holds the
    /// running occupancy after `events[i]`.
    tree: Vec<i32>,
}

impl OccupancyIndex {
    fn rebuild(&mut self, history: &[(SimTime, SimTime)]) {
        self.arrivals = history.iter().map(|&(a, _)| a.as_ps()).collect();
        self.arrivals.sort_unstable();
        self.retires = history.iter().map(|&(_, r)| r.as_ps()).collect();
        self.retires.sort_unstable();
        let mut events: Vec<(u64, i32)> = Vec::with_capacity(2 * history.len());
        for &(a, r) in history {
            events.push((a.as_ps(), 1));
            events.push((r.as_ps(), -1));
        }
        events.sort_unstable_by_key(|&(t, d)| (t, d));
        let n = events.len();
        let mut tree = vec![i32::MIN; 2 * n];
        let mut live = 0i32;
        for (i, &(_, d)) in events.iter().enumerate() {
            live += d;
            tree[n + i] = live;
        }
        for i in (1..n).rev() {
            tree[i] = tree[2 * i].max(tree[2 * i + 1]);
        }
        self.events = events;
        self.tree = tree;
        self.built_len = history.len();
    }

    /// Max of the running occupancy over event indices `[l, r)`.
    fn range_max(&self, mut l: usize, mut r: usize) -> i32 {
        let n = self.events.len();
        l += n;
        r += n;
        let mut m = i32::MIN;
        while l < r {
            if l & 1 == 1 {
                m = m.max(self.tree[l]);
                l += 1;
            }
            if r & 1 == 1 {
                r -= 1;
                m = m.max(self.tree[r]);
            }
            l >>= 1;
            r >>= 1;
        }
        m
    }

    /// `max f(t) for t in [from, to)` — O(log m).
    fn max_occupancy_in(&self, from: u64, to: u64) -> i32 {
        // f(from): entries that arrived no later than `from` and whose
        // front-end stage had not yet retired (`retire > from`, matching the
        // sweep's retire-before-arrive tie rule).
        let at_from = self.arrivals.partition_point(|&a| a <= from) as i32
            - self.retires.partition_point(|&r| r <= from) as i32;
        // The occupancy only rises at arrivals, so the window max beyond
        // `from` lives at an event strictly inside `(from, to)`.
        let l = self.events.partition_point(|&(t, _)| t <= from);
        let r = self.events.partition_point(|&(t, _)| t < to);
        let inside = if l < r {
            self.range_max(l, r)
        } else {
            i32::MIN
        };
        at_from.max(inside)
    }
}

/// How far behind the newest arrival an entry's retirement must lie before
/// it is garbage-collected from the occupancy window. Thread-clock skew in
/// the multithreaded sweeps measures in tens of microseconds; 1 ms of slack
/// keeps every entry any realistic straggler arrival could observe.
const WINDOW_GC_SLACK: SimDuration = SimDuration::from_ps(1_000_000_000);

impl RequestFifo {
    /// Creates a FIFO of the given depth.
    pub fn new(depth: usize) -> Self {
        assert!(depth >= 1, "a FIFO needs at least one slot");
        RequestFifo {
            depth,
            entries: VecDeque::with_capacity(depth),
            next_id: 0,
            accepted: 0,
            high_watermark: 0,
            window: Vec::new(),
            history: Vec::new(),
            occupancy_index: RefCell::new(OccupancyIndex::default()),
            stall_time: SimDuration::ZERO,
            stalls: 0,
        }
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no requests are queued.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True if the FIFO cannot accept another request.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.depth
    }

    /// FIFO depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Total requests accepted over the FIFO's lifetime.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Maximum occupancy observed (modeled occupancy for submitted requests,
    /// physical occupancy for pre-queued recovery replays).
    pub fn high_watermark(&self) -> usize {
        self.high_watermark
    }

    /// Total time hosts spent stalled at the full FIFO (modeled occupancy).
    pub fn stall_time(&self) -> SimDuration {
        self.stall_time
    }

    /// Number of requests that stalled at the full FIFO.
    pub fn stalls(&self) -> u64 {
        self.stalls
    }

    /// Models the admission of a request arriving over the control path at
    /// `arrival`. An entry occupies a slot at that instant if it was admitted
    /// no later (`entry arrival <= arrival`) and its front-end stage has not
    /// yet retired (`retire > arrival`) — counting is non-destructive, so an
    /// out-of-order earlier arrival still sees the entries that occupied the
    /// FIFO at *its* time. If the occupancy fills the FIFO, the request
    /// stalls the host until the oldest blocking entry retires and its own
    /// decode must order after that task. Call
    /// [`RequestFifo::record_front_end`] with the request's issue task once
    /// it exists.
    pub fn admit(&mut self, arrival: SimTime) -> FifoAdmission {
        // Garbage-collect only entries retired so far in the past that no
        // straggler arrival can still observe them.
        let floor = SimTime::from_ps(arrival.as_ps().saturating_sub(WINDOW_GC_SLACK.as_ps()));
        let collectable = self.window.partition_point(|&(_, _, r)| r <= floor);
        self.window.drain(..collectable);

        // Live entries at `arrival`, in retire order (the window's order).
        let first_unretired = self.window.partition_point(|&(_, _, r)| r <= arrival);
        let live: Vec<usize> = (first_unretired..self.window.len())
            .filter(|&i| self.window[i].1 <= arrival)
            .collect();
        let admission = if live.len() >= self.depth {
            // The FIFO is full until enough entries retire; the slot this
            // request takes frees when entry `len - depth` (0-based, in
            // retire order) leaves.
            let (slot_dep, _, frees_at) = self.window[live[live.len() - self.depth]];
            let stalled = frees_at.since(arrival);
            self.stall_time += stalled;
            self.stalls += 1;
            FifoAdmission {
                slot_dep: Some(slot_dep),
                stalled,
            }
        } else {
            FifoAdmission::default()
        };
        // Occupancy including this request, capped at the physical depth (a
        // stalled request waits on the control path, not in the FIFO).
        let occupancy = (live.len() + 1).min(self.depth);
        self.high_watermark = self.high_watermark.max(occupancy);
        admission
    }

    /// Records the front-end completion of the most recently admitted
    /// request: it arrived at `arrival` and its FIFO slot frees when `task`
    /// (the issue stage) retires and the request moves to a unit. Kept
    /// sorted by retire time (front-end stages are served in arrival order,
    /// which may differ from admission order).
    pub fn record_front_end(&mut self, task: TaskId, arrival: SimTime, retires_at: SimTime) {
        let pos = self.window.partition_point(|&(_, _, r)| r <= retires_at);
        self.window.insert(pos, (task, arrival, retires_at));
        self.history.push((arrival, retires_at));
    }

    /// Highest modeled occupancy reached within the simulated-time window
    /// `[from, to)`, capped at the physical depth (a stalled request waits
    /// on the control path, not in the FIFO).
    ///
    /// Answered from a prefix/range-max structure over the full residency
    /// history ([`OccupancyIndex`]): O(log m) per window after a lazy O(m
    /// log m) build amortized over all queries since the history last grew.
    /// The original O(m log m)-per-window line sweep is preserved as
    /// [`RequestFifo::occupancy_in_sweep`], the differential oracle.
    pub fn occupancy_in(&self, from: SimTime, to: SimTime) -> usize {
        if to <= from {
            return 0;
        }
        let mut index = self.occupancy_index.borrow_mut();
        if index.built_len != self.history.len() {
            index.rebuild(&self.history);
        }
        let max = index.max_occupancy_in(from.as_ps(), to.as_ps());
        (max.max(0) as usize).min(self.depth)
    }

    /// Number of requests admitted into the FIFO within the simulated-time
    /// window `[from, to)` — the per-window arrival count the open-loop
    /// driver reports as the device's offered admission rate.
    ///
    /// Answered in O(log m) from the sorted arrival-instant list of the
    /// lazily built [`OccupancyIndex`]; [`RequestFifo::admissions_in_sweep`]
    /// is the O(m) differential oracle.
    pub fn admissions_in(&self, from: SimTime, to: SimTime) -> usize {
        if to <= from {
            return 0;
        }
        let mut index = self.occupancy_index.borrow_mut();
        if index.built_len != self.history.len() {
            index.rebuild(&self.history);
        }
        index.arrivals.partition_point(|&a| a < to.as_ps())
            - index.arrivals.partition_point(|&a| a < from.as_ps())
    }

    /// O(m) scan over the residency history counting admissions in
    /// `[from, to)` — the reference oracle [`RequestFifo::admissions_in`] is
    /// differentially tested against.
    pub fn admissions_in_sweep(&self, from: SimTime, to: SimTime) -> usize {
        if to <= from {
            return 0;
        }
        self.history
            .iter()
            .filter(|&&(arrival, _)| from <= arrival && arrival < to)
            .count()
    }

    /// The original per-window line sweep over the residency history —
    /// O(m log m) per call. Kept as the reference oracle the indexed
    /// [`RequestFifo::occupancy_in`] is differentially tested against.
    pub fn occupancy_in_sweep(&self, from: SimTime, to: SimTime) -> usize {
        if to <= from {
            return 0;
        }
        let mut edges: Vec<(SimTime, i32)> = Vec::new();
        for &(arrival, retire) in &self.history {
            if arrival < to && retire > from {
                edges.push((arrival.max(from), 1));
                edges.push((retire.min(to), -1));
            }
        }
        // Retirements sort before arrivals at the same instant, matching the
        // admission model (an entry whose retire time equals an arrival no
        // longer occupies its slot at that arrival).
        edges.sort_unstable_by_key(|&(t, delta)| (t, delta));
        let mut live = 0i32;
        let mut max = 0i32;
        for (_, delta) in edges {
            live += delta;
            max = max.max(live);
        }
        (max.max(0) as usize).min(self.depth)
    }

    /// Enqueues a request, assigning it a [`RequestId`].
    pub fn push(&mut self, request: NearPmRequest) -> Result<RequestId, FifoFull> {
        if self.is_full() {
            return Err(FifoFull);
        }
        let id = RequestId(self.next_id);
        self.next_id += 1;
        self.accepted += 1;
        self.entries.push_back((id, request));
        self.high_watermark = self.high_watermark.max(self.entries.len());
        Ok(id)
    }

    /// Dequeues the oldest request.
    pub fn pop(&mut self) -> Option<(RequestId, NearPmRequest)> {
        self.entries.pop_front()
    }

    /// Peeks at the oldest request without removing it.
    pub fn peek(&self) -> Option<&(RequestId, NearPmRequest)> {
        self.entries.front()
    }

    /// Snapshot of the queued requests (persistence-domain image used by the
    /// hardware recovery procedure).
    pub fn snapshot(&self) -> Vec<(RequestId, NearPmRequest)> {
        self.entries.iter().cloned().collect()
    }

    /// Restores the FIFO from a persistence-domain snapshot. `next_id` is
    /// advanced past every restored id so that requests pushed after recovery
    /// can never be minted with a [`RequestId`] that is still in flight.
    pub fn restore(&mut self, entries: Vec<(RequestId, NearPmRequest)>) {
        self.entries = entries.into();
        if let Some(max_id) = self.entries.iter().map(|(id, _)| id.0).max() {
            self.next_id = self.next_id.max(max_id + 1);
        }
        self.high_watermark = self.high_watermark.max(self.entries.len());
    }

    /// Discards all queued requests (used to model losing state that is *not*
    /// in the persistence domain, for negative tests).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

impl Default for RequestFifo {
    fn default() -> Self {
        RequestFifo::new(DEFAULT_FIFO_DEPTH)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{NearPmOp, NearPmRequest, ThreadId};
    use nearpm_pm::{PoolId, VirtAddr};

    fn req(n: u64) -> NearPmRequest {
        NearPmRequest::new(
            PoolId(0),
            ThreadId(0),
            NearPmOp::ShadowCopy {
                src: VirtAddr(n * 4096),
                dst: VirtAddr(n * 4096 + 0x100000),
                len: 4096,
            },
        )
    }

    #[test]
    fn fifo_order_preserved() {
        let mut f = RequestFifo::new(4);
        let a = f.push(req(1)).unwrap();
        let b = f.push(req(2)).unwrap();
        assert_ne!(a, b);
        assert_eq!(f.len(), 2);
        let (id, r) = f.pop().unwrap();
        assert_eq!(id, a);
        assert_eq!(r, req(1));
        assert_eq!(f.pop().unwrap().0, b);
        assert!(f.pop().is_none());
    }

    #[test]
    fn fifo_full_rejected() {
        let mut f = RequestFifo::new(2);
        f.push(req(1)).unwrap();
        f.push(req(2)).unwrap();
        assert!(f.is_full());
        assert_eq!(f.push(req(3)), Err(FifoFull));
        f.pop();
        assert!(f.push(req(3)).is_ok());
        assert_eq!(f.accepted(), 3);
        assert_eq!(f.high_watermark(), 2);
    }

    #[test]
    fn snapshot_and_restore_roundtrip() {
        let mut f = RequestFifo::new(8);
        f.push(req(1)).unwrap();
        f.push(req(2)).unwrap();
        let snap = f.snapshot();
        f.clear();
        assert!(f.is_empty());
        f.restore(snap);
        assert_eq!(f.len(), 2);
        assert_eq!(f.peek().unwrap().1, req(1));
    }

    #[test]
    fn restore_advances_next_id_past_restored_entries() {
        // A FIFO that has already issued ids 0..3 crashes with two requests
        // still queued.
        let mut f = RequestFifo::new(8);
        for i in 0..4 {
            f.push(req(i)).unwrap();
        }
        f.pop();
        f.pop();
        let snap = f.snapshot();
        assert_eq!(
            snap.iter().map(|(id, _)| id.0).collect::<Vec<_>>(),
            vec![2, 3]
        );

        // A fresh device (next_id = 0) restores the snapshot: post-recovery
        // pushes must not collide with the replayed ids.
        let mut recovered = RequestFifo::new(8);
        recovered.restore(snap);
        let fresh = recovered.push(req(9)).unwrap();
        assert_eq!(fresh, RequestId(4));
        let ids: Vec<u64> = recovered.snapshot().iter().map(|(id, _)| id.0).collect();
        let mut deduped = ids.clone();
        deduped.dedup();
        assert_eq!(ids, deduped, "restored FIFO minted a duplicate RequestId");
    }

    #[test]
    fn restore_never_rewinds_next_id() {
        let mut f = RequestFifo::new(8);
        for i in 0..6 {
            f.push(req(i)).unwrap();
        }
        while f.pop().is_some() {}
        // Restoring an old (lower-id) snapshot must not rewind the counter.
        let mut old = RequestFifo::new(8);
        old.push(req(1)).unwrap();
        f.restore(old.snapshot());
        assert_eq!(f.push(req(7)).unwrap(), RequestId(6));
    }

    #[test]
    fn default_depth_matches_prototype() {
        let f = RequestFifo::default();
        assert_eq!(f.depth(), 32);
    }

    #[test]
    fn modeled_admission_stalls_when_the_window_fills() {
        use nearpm_sim::{Region, Resource, SimTime, TaskGraph};
        let ns = SimDuration::from_ns;
        let mut g = TaskGraph::new();
        let mut f = RequestFifo::new(2);
        let iq = Resource::IssueQueue { device: 0, unit: 0 };

        // Three requests arrive simultaneously; their front-end stages
        // serialize and retire at 10/20/30 ns.
        assert_eq!(f.admit(SimTime::ZERO), FifoAdmission::default());
        let d0 = g.add("ndp-issue", iq, ns(10.0), Region::CcOffload, &[]);
        f.record_front_end(d0, SimTime::ZERO, g.task_finish(d0));
        assert_eq!(f.admit(SimTime::ZERO), FifoAdmission::default());
        let d1 = g.add("ndp-issue", iq, ns(10.0), Region::CcOffload, &[]);
        f.record_front_end(d1, SimTime::ZERO, g.task_finish(d1));

        // The third arrival finds both slots occupied: it must wait for the
        // oldest outstanding entry and report the stall.
        let a = f.admit(SimTime::ZERO);
        assert_eq!(a.slot_dep, Some(d0));
        assert_eq!(a.stalled, ns(10.0));
        let d2 = g.add("ndp-issue", iq, ns(10.0), Region::CcOffload, &[d0]);
        f.record_front_end(d2, SimTime::ZERO, g.task_finish(d2));

        assert_eq!(f.high_watermark(), 2, "occupancy is capped at the depth");
        assert_eq!(f.stalls(), 1);
        assert_eq!(f.stall_time(), ns(10.0));

        // A request arriving after every entry retired admits cleanly.
        assert_eq!(f.admit(SimTime::from_ns(100.0)), FifoAdmission::default());
        assert_eq!(f.stalls(), 1);
    }

    #[test]
    fn modeled_admission_excludes_retired_entries() {
        use nearpm_sim::{Region, Resource, SimTime, TaskGraph};
        let ns = SimDuration::from_ns;
        let mut g = TaskGraph::new();
        let mut f = RequestFifo::new(4);
        let iq = Resource::IssueQueue { device: 0, unit: 0 };
        for _ in 0..3 {
            f.admit(SimTime::ZERO);
            let d = g.add("ndp-issue", iq, ns(10.0), Region::CcOffload, &[]);
            f.record_front_end(d, SimTime::ZERO, g.task_finish(d));
        }
        // Arriving at 15 ns: the first entry (retired at 10 ns) no longer
        // occupies a slot, so occupancy is 2 + the new request.
        assert_eq!(f.admit(SimTime::from_ns(15.0)), FifoAdmission::default());
        assert_eq!(f.high_watermark(), 3);
        assert_eq!(f.stall_time(), SimDuration::ZERO);
    }

    /// Admissions reach the FIFO in task-graph build order, which is not
    /// simulated-time order: a straggler arrival must still see the entries
    /// that occupied the FIFO at *its* time, even after a later arrival was
    /// admitted (counting is non-destructive), and entries that had not
    /// arrived yet must not count against it.
    #[test]
    fn out_of_order_arrivals_see_historical_occupancy() {
        use nearpm_sim::{Region, Resource, SimTime, TaskGraph};
        let mut g = TaskGraph::new();
        let mut f = RequestFifo::new(1);
        let iq = Resource::IssueQueue { device: 0, unit: 0 };
        // Entry A occupies the single slot from 0 to 2 us (conflict wait).
        f.admit(SimTime::ZERO);
        let a = g.add(
            "ndp-issue",
            iq,
            SimDuration::from_us(2.0),
            Region::CcOffload,
            &[],
        );
        f.record_front_end(a, SimTime::ZERO, g.task_finish(a));
        // A later-submitted request arriving at 10 us finds the FIFO empty…
        assert_eq!(
            f.admit(SimTime::from_ns(10_000.0)),
            FifoAdmission::default()
        );
        let b = g.add(
            "ndp-issue",
            iq,
            SimDuration::from_us(1.0),
            Region::CcOffload,
            &[],
        );
        f.record_front_end(b, SimTime::from_ns(10_000.0), g.task_finish(b));
        // …but a straggler arriving at 1 us (submitted afterwards) was
        // inside A's residency: it must stall until A retires at 2 us, and
        // B — which had not arrived by 1 us — must not count against it.
        let s = f.admit(SimTime::from_ns(1_000.0));
        assert_eq!(s.slot_dep, Some(a));
        assert_eq!(s.stalled, SimDuration::from_us(1.0));
        assert_eq!(f.stalls(), 1);
    }

    /// The indexed `occupancy_in` must agree with the original per-window
    /// line sweep on randomized residency histories — including interleaved
    /// queries and appends (the lazy index rebuilds when the history grows),
    /// zero-length residencies, coincident arrival/retire instants (the
    /// retire-before-arrive tie rule), windows outside the history, and the
    /// depth cap.
    #[test]
    fn indexed_occupancy_matches_sweep_oracle() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(31);
        for round in 0..40 {
            let depth = rng.gen_range(1usize..6);
            let mut f = RequestFifo::new(depth);
            let entries = rng.gen_range(0usize..120);
            for _ in 0..entries {
                let arrival = rng.gen_range(0u64..3_000);
                // Bias toward short residencies and allow coincident
                // instants (retire == another entry's arrival).
                let len = rng.gen_range(0u64..400);
                f.history
                    .push((SimTime::from_ps(arrival), SimTime::from_ps(arrival + len)));
                // Interleave queries with appends so the lazy rebuild path
                // (index stale after every push) is exercised too.
                if rng.gen_range(0..8) == 0 {
                    let from = SimTime::from_ps(rng.gen_range(0u64..4_000));
                    let to = SimTime::from_ps(rng.gen_range(0u64..4_000));
                    assert_eq!(
                        f.occupancy_in(from, to),
                        f.occupancy_in_sweep(from, to),
                        "round {round} mid-build window [{from}, {to})"
                    );
                }
            }
            for _ in 0..60 {
                let from = SimTime::from_ps(rng.gen_range(0u64..4_000));
                let to = SimTime::from_ps(rng.gen_range(0u64..4_000));
                assert_eq!(
                    f.occupancy_in(from, to),
                    f.occupancy_in_sweep(from, to),
                    "round {round} window [{from}, {to})"
                );
            }
            // Degenerate and boundary windows.
            let zero = SimTime::ZERO;
            let far = SimTime::from_ps(1 << 40);
            assert_eq!(f.occupancy_in(far, zero), 0);
            assert_eq!(
                f.occupancy_in(zero, far),
                f.occupancy_in_sweep(zero, far),
                "round {round} full-history window"
            );
        }
    }

    /// The indexed per-window admission count must agree with the O(m) scan
    /// on randomized histories, and the full-history window must count every
    /// admission exactly once.
    #[test]
    fn indexed_admissions_match_sweep_oracle() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(47);
        for round in 0..40 {
            let mut f = RequestFifo::new(rng.gen_range(1usize..6));
            let entries = rng.gen_range(0usize..120);
            for _ in 0..entries {
                let arrival = rng.gen_range(0u64..3_000);
                let len = rng.gen_range(0u64..400);
                f.history
                    .push((SimTime::from_ps(arrival), SimTime::from_ps(arrival + len)));
            }
            for _ in 0..60 {
                let from = SimTime::from_ps(rng.gen_range(0u64..4_000));
                let to = SimTime::from_ps(rng.gen_range(0u64..4_000));
                assert_eq!(
                    f.admissions_in(from, to),
                    f.admissions_in_sweep(from, to),
                    "round {round} window [{from}, {to})"
                );
            }
            assert_eq!(
                f.admissions_in(SimTime::ZERO, SimTime::from_ps(1 << 40)),
                entries,
                "round {round} full-history window"
            );
            assert_eq!(f.admissions_in(SimTime::from_ps(1 << 40), SimTime::ZERO), 0);
        }
    }
}
