//! Request FIFO of a NearPM device.
//!
//! Requests issued over the control path land in a bounded FIFO (32 entries
//! in the prototype, Table 3) that is part of the persistence domain: on a
//! failure its contents are written back to a reserved PM location by the
//! residual-capacitance mechanism and replayed during recovery.

use crate::request::{NearPmRequest, RequestId};

/// Default FIFO depth (entries), matching the prototype configuration.
pub const DEFAULT_FIFO_DEPTH: usize = 32;

/// Error returned when the FIFO is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FifoFull;

impl std::fmt::Display for FifoFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "NearPM request FIFO is full")
    }
}

impl std::error::Error for FifoFull {}

/// Bounded request FIFO.
#[derive(Debug, Clone)]
pub struct RequestFifo {
    depth: usize,
    entries: std::collections::VecDeque<(RequestId, NearPmRequest)>,
    next_id: u64,
    accepted: u64,
    high_watermark: usize,
}

impl RequestFifo {
    /// Creates a FIFO of the given depth.
    pub fn new(depth: usize) -> Self {
        RequestFifo {
            depth,
            entries: std::collections::VecDeque::with_capacity(depth),
            next_id: 0,
            accepted: 0,
            high_watermark: 0,
        }
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no requests are queued.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True if the FIFO cannot accept another request.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.depth
    }

    /// FIFO depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Total requests accepted over the FIFO's lifetime.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Maximum occupancy observed.
    pub fn high_watermark(&self) -> usize {
        self.high_watermark
    }

    /// Enqueues a request, assigning it a [`RequestId`].
    pub fn push(&mut self, request: NearPmRequest) -> Result<RequestId, FifoFull> {
        if self.is_full() {
            return Err(FifoFull);
        }
        let id = RequestId(self.next_id);
        self.next_id += 1;
        self.accepted += 1;
        self.entries.push_back((id, request));
        self.high_watermark = self.high_watermark.max(self.entries.len());
        Ok(id)
    }

    /// Dequeues the oldest request.
    pub fn pop(&mut self) -> Option<(RequestId, NearPmRequest)> {
        self.entries.pop_front()
    }

    /// Peeks at the oldest request without removing it.
    pub fn peek(&self) -> Option<&(RequestId, NearPmRequest)> {
        self.entries.front()
    }

    /// Snapshot of the queued requests (persistence-domain image used by the
    /// hardware recovery procedure).
    pub fn snapshot(&self) -> Vec<(RequestId, NearPmRequest)> {
        self.entries.iter().cloned().collect()
    }

    /// Restores the FIFO from a persistence-domain snapshot. `next_id` is
    /// advanced past every restored id so that requests pushed after recovery
    /// can never be minted with a [`RequestId`] that is still in flight.
    pub fn restore(&mut self, entries: Vec<(RequestId, NearPmRequest)>) {
        self.entries = entries.into();
        if let Some(max_id) = self.entries.iter().map(|(id, _)| id.0).max() {
            self.next_id = self.next_id.max(max_id + 1);
        }
        self.high_watermark = self.high_watermark.max(self.entries.len());
    }

    /// Discards all queued requests (used to model losing state that is *not*
    /// in the persistence domain, for negative tests).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

impl Default for RequestFifo {
    fn default() -> Self {
        RequestFifo::new(DEFAULT_FIFO_DEPTH)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{NearPmOp, NearPmRequest, ThreadId};
    use nearpm_pm::{PoolId, VirtAddr};

    fn req(n: u64) -> NearPmRequest {
        NearPmRequest::new(
            PoolId(0),
            ThreadId(0),
            NearPmOp::ShadowCopy {
                src: VirtAddr(n * 4096),
                dst: VirtAddr(n * 4096 + 0x100000),
                len: 4096,
            },
        )
    }

    #[test]
    fn fifo_order_preserved() {
        let mut f = RequestFifo::new(4);
        let a = f.push(req(1)).unwrap();
        let b = f.push(req(2)).unwrap();
        assert_ne!(a, b);
        assert_eq!(f.len(), 2);
        let (id, r) = f.pop().unwrap();
        assert_eq!(id, a);
        assert_eq!(r, req(1));
        assert_eq!(f.pop().unwrap().0, b);
        assert!(f.pop().is_none());
    }

    #[test]
    fn fifo_full_rejected() {
        let mut f = RequestFifo::new(2);
        f.push(req(1)).unwrap();
        f.push(req(2)).unwrap();
        assert!(f.is_full());
        assert_eq!(f.push(req(3)), Err(FifoFull));
        f.pop();
        assert!(f.push(req(3)).is_ok());
        assert_eq!(f.accepted(), 3);
        assert_eq!(f.high_watermark(), 2);
    }

    #[test]
    fn snapshot_and_restore_roundtrip() {
        let mut f = RequestFifo::new(8);
        f.push(req(1)).unwrap();
        f.push(req(2)).unwrap();
        let snap = f.snapshot();
        f.clear();
        assert!(f.is_empty());
        f.restore(snap);
        assert_eq!(f.len(), 2);
        assert_eq!(f.peek().unwrap().1, req(1));
    }

    #[test]
    fn restore_advances_next_id_past_restored_entries() {
        // A FIFO that has already issued ids 0..3 crashes with two requests
        // still queued.
        let mut f = RequestFifo::new(8);
        for i in 0..4 {
            f.push(req(i)).unwrap();
        }
        f.pop();
        f.pop();
        let snap = f.snapshot();
        assert_eq!(
            snap.iter().map(|(id, _)| id.0).collect::<Vec<_>>(),
            vec![2, 3]
        );

        // A fresh device (next_id = 0) restores the snapshot: post-recovery
        // pushes must not collide with the replayed ids.
        let mut recovered = RequestFifo::new(8);
        recovered.restore(snap);
        let fresh = recovered.push(req(9)).unwrap();
        assert_eq!(fresh, RequestId(4));
        let ids: Vec<u64> = recovered.snapshot().iter().map(|(id, _)| id.0).collect();
        let mut deduped = ids.clone();
        deduped.dedup();
        assert_eq!(ids, deduped, "restored FIFO minted a duplicate RequestId");
    }

    #[test]
    fn restore_never_rewinds_next_id() {
        let mut f = RequestFifo::new(8);
        for i in 0..6 {
            f.push(req(i)).unwrap();
        }
        while f.pop().is_some() {}
        // Restoring an old (lower-id) snapshot must not rewind the counter.
        let mut old = RequestFifo::new(8);
        old.push(req(1)).unwrap();
        f.restore(old.snapshot());
        assert_eq!(f.push(req(7)).unwrap(), RequestId(6));
    }

    #[test]
    fn default_depth_matches_prototype() {
        let f = RequestFifo::default();
        assert_eq!(f.depth(), 32);
    }
}
