//! NearPM execution units.
//!
//! Each device contains several units (four in the prototype); each unit has
//! a request register, a controller, a metadata generator, a load/store unit
//! for fine-grained accesses, and a DMA engine for bulk copies (Figure 9).
//! A unit executes the micro-operations of one decoded request at a time.
//!
//! Functionally a unit manipulates the [`PmSpace`] directly (the device sits
//! inside the PM controller and has no volatile write cache, so its writes
//! are persistent as soon as they complete — the basis of PPO Invariant 2's
//! treatment of NDP writes). For timing, the unit emits tasks bound to its
//! [`Resource::NdpUnit`] slot.

use nearpm_pm::{PhysAddr, PmSpace};
use nearpm_sim::{LatencyModel, Region, Resource, SimTime, TaskGraph, TaskId};

use crate::metadata::{LogEntryHeader, LOG_ENTRY_HEADER_LEN};
use crate::request::MicroOp;

/// Statistics of one NearPM unit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UnitStats {
    /// Requests executed to completion.
    pub requests: u64,
    /// Payload bytes copied by the DMA engine.
    pub bytes_copied: u64,
    /// Log/checkpoint headers generated.
    pub headers_written: u64,
    /// Log entries reset/deleted.
    pub headers_reset: u64,
}

/// One NearPM execution unit.
#[derive(Debug, Clone)]
pub struct NearPmUnit {
    device: usize,
    index: usize,
    stats: UnitStats,
}

impl NearPmUnit {
    /// Creates unit `index` of device `device`.
    pub fn new(device: usize, index: usize) -> Self {
        NearPmUnit {
            device,
            index,
            stats: UnitStats::default(),
        }
    }

    /// The unit's scheduling resource.
    pub fn resource(&self) -> Resource {
        Resource::NdpUnit {
            device: self.device,
            unit: self.index,
        }
    }

    /// The issue queue feeding this unit (the translate/conflict-check stage
    /// of the pipelined front-end runs here).
    pub fn issue_queue(&self) -> Resource {
        Resource::IssueQueue {
            device: self.device,
            unit: self.index,
        }
    }

    /// Unit statistics.
    pub fn stats(&self) -> UnitStats {
        self.stats
    }

    /// Time at which this unit finishes its last scheduled micro-operation
    /// (time zero if it has none). Read from the graph's incrementally
    /// maintained schedule; this is the availability signal
    /// earliest-available dispatch ranks units by.
    pub fn busy_until(&self, graph: &TaskGraph) -> SimTime {
        graph.resource_available(self.resource())
    }

    /// Executes a bulk copy: functionally moves the bytes, and emits a DMA
    /// task that depends on `deps`. Returns the task id of the copy.
    #[allow(clippy::too_many_arguments)]
    pub fn copy(
        &mut self,
        space: &mut PmSpace,
        graph: &mut TaskGraph,
        model: &LatencyModel,
        src: PhysAddr,
        dst: PhysAddr,
        len: u64,
        region: Region,
        deps: &[TaskId],
    ) -> TaskId {
        space.copy(src, dst, len as usize);
        self.stats.bytes_copied += len;
        graph.add_arrival_ordered(
            "ndp-copy",
            self.resource(),
            model.ndp_copy(len),
            region,
            deps,
        )
    }

    /// Generates and persists a log/checkpoint entry header.
    pub fn write_header(
        &mut self,
        space: &mut PmSpace,
        graph: &mut TaskGraph,
        model: &LatencyModel,
        dst: PhysAddr,
        header: &LogEntryHeader,
        deps: &[TaskId],
    ) -> TaskId {
        space.write(dst, &header.encode());
        self.stats.headers_written += 1;
        graph.add_arrival_ordered(
            "ndp-metadata",
            self.resource(),
            model.ndp_metadata(),
            Region::CcMetadata,
            deps,
        )
    }

    /// Resets (deletes) a log entry header.
    pub fn reset_header(
        &mut self,
        space: &mut PmSpace,
        graph: &mut TaskGraph,
        model: &LatencyModel,
        dst: PhysAddr,
        deps: &[TaskId],
    ) -> TaskId {
        space.write(dst, &LogEntryHeader::reset_image());
        self.stats.headers_reset += 1;
        graph.add_arrival_ordered(
            "ndp-log-reset",
            self.resource(),
            model.ndp_log_reset(),
            Region::CcLogReset,
            deps,
        )
    }

    /// Executes one decoded micro-operation, returning its task. This is the
    /// single functional core both device front-ends drive, so their PM
    /// effects are identical by construction.
    pub fn execute_micro(
        &mut self,
        space: &mut PmSpace,
        graph: &mut TaskGraph,
        model: &LatencyModel,
        op: &MicroOp,
        deps: &[TaskId],
    ) -> TaskId {
        match op {
            MicroOp::Copy { src, dst, len } => self.copy(
                space,
                graph,
                model,
                *src,
                *dst,
                *len,
                Region::CcDataMovement,
                deps,
            ),
            MicroOp::WriteHeader { dst, header } => {
                self.write_header(space, graph, model, *dst, header, deps)
            }
            MicroOp::ResetHeader { dst } => self.reset_header(space, graph, model, *dst, deps),
        }
    }

    /// Reads a header back (used by the hardware recovery procedure).
    pub fn read_header(&self, space: &mut PmSpace, src: PhysAddr) -> Option<LogEntryHeader> {
        let buf = space.read_vec(src, LOG_ENTRY_HEADER_LEN);
        LogEntryHeader::decode(&buf)
    }

    /// Marks a request complete (statistics only).
    pub fn complete_request(&mut self) {
        self.stats.requests += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nearpm_pm::VirtAddr;

    #[test]
    fn copy_moves_bytes_and_emits_task() {
        let mut space = PmSpace::single(1 << 16);
        let mut graph = TaskGraph::new();
        let model = LatencyModel::default();
        let mut unit = NearPmUnit::new(0, 1);

        space.write(PhysAddr(0x100), &[7; 128]);
        let t = unit.copy(
            &mut space,
            &mut graph,
            &model,
            PhysAddr(0x100),
            PhysAddr(0x4000),
            128,
            Region::CcDataMovement,
            &[],
        );
        assert_eq!(space.read_vec(PhysAddr(0x4000), 128), vec![7; 128]);
        assert_eq!(unit.stats().bytes_copied, 128);
        assert!(graph.task_finish(t).as_ns() > 0.0);
        assert_eq!(unit.resource(), Resource::NdpUnit { device: 0, unit: 1 });
    }

    #[test]
    fn header_write_read_reset_cycle() {
        let mut space = PmSpace::single(1 << 16);
        let mut graph = TaskGraph::new();
        let model = LatencyModel::default();
        let mut unit = NearPmUnit::new(0, 0);

        let header = LogEntryHeader::active(VirtAddr(0xABC0), 64, 3);
        unit.write_header(
            &mut space,
            &mut graph,
            &model,
            PhysAddr(0x2000),
            &header,
            &[],
        );
        assert_eq!(unit.read_header(&mut space, PhysAddr(0x2000)), Some(header));

        unit.reset_header(&mut space, &mut graph, &model, PhysAddr(0x2000), &[]);
        assert_eq!(unit.read_header(&mut space, PhysAddr(0x2000)), None);
        assert_eq!(unit.stats().headers_written, 1);
        assert_eq!(unit.stats().headers_reset, 1);
    }

    #[test]
    fn request_counter() {
        let mut unit = NearPmUnit::new(1, 2);
        unit.complete_request();
        unit.complete_request();
        assert_eq!(unit.stats().requests, 2);
    }
}
