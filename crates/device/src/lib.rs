//! # nearpm-device — NearPM hardware model
//!
//! A functional + timing model of the NearPM device described in Section 5 of
//! the paper. One [`NearPmDevice`] contains:
//!
//! * a bounded [`RequestFifo`] fed by the host control path,
//! * an [`AddressMappingTable`] for near-memory virtual→physical translation
//!   of command operands (one entry per pool / thread),
//! * an [`InFlightTable`] used by the dispatcher to detect conflicts between
//!   NDP procedures and incoming host accesses (PPO Invariant 1),
//! * several [`NearPmUnit`]s, each with a metadata generator, load/store
//!   unit, and DMA engine, executing the crash-consistency primitives,
//! * persistence-domain snapshot/restore of the front-end structures plus
//!   FIFO replay, modelling the hardware recovery procedure.
//!
//! Multi-device coordination (duplicated commands, the Figure-12 state
//! machine, delayed synchronization) is orchestrated by `nearpm-core` using
//! the state machines from `nearpm-ppo`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod address_map;
pub mod device;
pub mod fifo;
pub mod inflight;
pub mod metadata;
pub mod request;
pub mod unit;

pub use address_map::{AddressMappingTable, TranslateError};
pub use device::{
    DeviceConfig, DeviceError, DevicePersistentState, DeviceStats, DispatchPolicy, ExecutedRequest,
    NearPmDevice,
};
pub use fifo::{FifoFull, RequestFifo, DEFAULT_FIFO_DEPTH};
pub use inflight::{InFlightEntry, InFlightTable};
pub use metadata::{EntryState, LogEntryHeader, LOG_ENTRY_HEADER_LEN, LOG_ENTRY_MAGIC};
pub use request::{MicroOp, NearPmOp, NearPmRequest, RequestId, ThreadId};
pub use unit::{NearPmUnit, UnitStats};
