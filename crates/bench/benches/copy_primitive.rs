//! Criterion bench of the functional copy paths (CPU cache vs NearPM unit),
//! complementing the analytic Figure 17 microbenchmark.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nearpm_core::{NearPmOp, NearPmSystem, Region, SystemConfig};

fn bench_copy(c: &mut Criterion) {
    let mut group = c.benchmark_group("copy_primitive");
    for &size in &[64u64, 1024, 4096, 16384] {
        group.bench_with_input(BenchmarkId::new("cpu_copy", size), &size, |b, &size| {
            b.iter(|| {
                let mut sys = NearPmSystem::new(SystemConfig::baseline().with_capacity(4 << 20));
                let pool = sys.create_pool("p", 1 << 20).unwrap();
                let src = sys.alloc(pool, size, 4096).unwrap();
                let dst = sys.alloc(pool, size, 4096).unwrap();
                sys.cpu_copy(0, src, dst, size, Region::CcDataMovement)
                    .unwrap();
                sys.report().makespan
            })
        });
        group.bench_with_input(BenchmarkId::new("nearpm_copy", size), &size, |b, &size| {
            b.iter(|| {
                let mut sys = NearPmSystem::new(SystemConfig::nearpm_sd().with_capacity(4 << 20));
                let pool = sys.create_pool("p", 1 << 20).unwrap();
                let src = sys.alloc(pool, size, 4096).unwrap();
                let dst = sys.alloc(pool, size, 4096).unwrap();
                sys.offload(
                    0,
                    pool,
                    NearPmOp::ShadowCopy {
                        src,
                        dst,
                        len: size,
                    },
                    &[],
                )
                .unwrap();
                sys.report().makespan
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_copy);
criterion_main!(benches);
