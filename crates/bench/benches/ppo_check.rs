//! Criterion bench of the PPO checkers: indexed single-pass implementation
//! vs the naive nested-scan oracle, on fig16-shaped synthetic traces.
//!
//! The naive oracle is only run at small sizes (its cost grows
//! quadratically); the indexed checkers are benched up to fig16 scale. The
//! `ppo_check_smoke` binary performs the head-to-head ≥100k-event comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nearpm_bench::synthetic::{synthetic_undo_log_trace, SyntheticTraceSpec};
use nearpm_ppo::invariants::oracle;
use nearpm_ppo::{check_all, check_all_indexed, TraceIndex};

fn bench_ppo_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("ppo_check");
    group.sample_size(10);

    for &events in &[10_000usize, 50_000, 100_000] {
        let trace = synthetic_undo_log_trace(SyntheticTraceSpec::fig16(events));
        group.bench_with_input(BenchmarkId::new("indexed", events), &trace, |b, t| {
            b.iter(|| check_all(t).len())
        });
        group.bench_with_input(BenchmarkId::new("index_build", events), &trace, |b, t| {
            b.iter(|| TraceIndex::new(t).failure_ts())
        });
        group.bench_with_input(BenchmarkId::new("query_only", events), &trace, |b, t| {
            let idx = TraceIndex::new(t);
            b.iter(|| check_all_indexed(&idx).len())
        });
    }

    // The oracle is quadratic; keep it to sizes where one sample is < ~1 s.
    for &events in &[2_000usize, 10_000] {
        let trace = synthetic_undo_log_trace(SyntheticTraceSpec::fig16(events));
        group.bench_with_input(BenchmarkId::new("naive_oracle", events), &trace, |b, t| {
            b.iter(|| oracle::check_all(t).len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ppo_check);
criterion_main!(benches);
