//! Criterion bench of the crash-consistent key-value structures.

use criterion::{criterion_group, criterion_main, Criterion};
use nearpm_core::{NearPmSystem, SystemConfig};
use nearpm_kv::{PersistentHashMap, VALUE_SIZE};
use nearpm_pmdk::ObjPool;

fn bench_kv(c: &mut Criterion) {
    c.bench_function("hashmap_put_32", |b| {
        b.iter(|| {
            let mut sys = NearPmSystem::new(SystemConfig::nearpm_md().with_capacity(32 << 20));
            let mut pool = ObjPool::create(&mut sys, "kv", 16 << 20).unwrap();
            let mut map = PersistentHashMap::create(&mut sys, &mut pool, 128).unwrap();
            for k in 0..32u64 {
                map.put(&mut sys, &mut pool, k, &[k as u8; VALUE_SIZE])
                    .unwrap();
            }
            sys.report().makespan
        })
    });
}

criterion_group!(benches, bench_kv);
criterion_main!(benches);
