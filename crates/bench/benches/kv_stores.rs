//! Criterion bench of the crash-consistent key-value structures.
//!
//! The YCSB write-burst benchmarks compare per-key transactions against
//! [`PersistentHashMap::put_batch`], which folds a whole burst into one
//! transaction (one undo-log transaction id, one commit) — the per-request
//! batching the paper's Memcached/Redis integrations perform.

use criterion::{criterion_group, criterion_main, Criterion};
use nearpm_core::{NearPmSystem, SystemConfig};
use nearpm_kv::{PersistentHashMap, VALUE_SIZE};
use nearpm_pmdk::ObjPool;
use nearpm_workloads::{YcsbGenerator, YcsbOp};

/// One YCSB 100 %-write burst: the keys and values of `ops` requests.
fn ycsb_burst(ops: usize, seed: u64) -> Vec<(u64, Vec<u8>)> {
    let mut gen = YcsbGenerator::write_only(96, VALUE_SIZE as u64, seed);
    (0..ops)
        .map(|_| match gen.next_op() {
            YcsbOp::Update { key, .. } => (key, vec![key as u8; VALUE_SIZE]),
            YcsbOp::Read { key } => (key, vec![key as u8; VALUE_SIZE]),
        })
        .collect()
}

fn bench_kv(c: &mut Criterion) {
    c.bench_function("hashmap_put_32", |b| {
        b.iter(|| {
            let mut sys = NearPmSystem::new(SystemConfig::nearpm_md().with_capacity(32 << 20));
            let mut pool = ObjPool::create(&mut sys, "kv", 16 << 20).unwrap();
            let mut map = PersistentHashMap::create(&mut sys, &mut pool, 128).unwrap();
            for k in 0..32u64 {
                map.put(&mut sys, &mut pool, k, &[k as u8; VALUE_SIZE])
                    .unwrap();
            }
            sys.report().makespan
        })
    });

    // YCSB write burst, one transaction per key.
    c.bench_function("ycsb_burst_32_per_key_put", |b| {
        let burst = ycsb_burst(32, 9);
        b.iter(|| {
            let mut sys = NearPmSystem::new(SystemConfig::nearpm_md().with_capacity(32 << 20));
            let mut pool = ObjPool::create(&mut sys, "kv", 16 << 20).unwrap();
            let mut map = PersistentHashMap::create(&mut sys, &mut pool, 256).unwrap();
            for (k, v) in &burst {
                map.put(&mut sys, &mut pool, *k, v).unwrap();
            }
            sys.report().makespan
        })
    });

    // The same burst folded into one transaction via put_batch.
    c.bench_function("ycsb_burst_32_put_batch", |b| {
        let burst = ycsb_burst(32, 9);
        b.iter(|| {
            let mut sys = NearPmSystem::new(SystemConfig::nearpm_md().with_capacity(32 << 20));
            let mut pool = ObjPool::create(&mut sys, "kv", 16 << 20).unwrap();
            let mut map = PersistentHashMap::create(&mut sys, &mut pool, 256).unwrap();
            let entries: Vec<(u64, &[u8])> =
                burst.iter().map(|(k, v)| (*k, v.as_slice())).collect();
            map.put_batch(&mut sys, &mut pool, &entries).unwrap();
            sys.report().makespan
        })
    });
}

criterion_group!(benches, bench_kv);
criterion_main!(benches);
