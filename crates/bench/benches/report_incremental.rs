//! Criterion bench: the incremental observe path against the O(n) oracle
//! recompute, at two scales each for the two halves of the pipeline.
//!
//! * `report_incremental/*` — a live fig20-shaped system: steady-state
//!   `sample()` (aggregates maintained, checker cached, no new events
//!   between iterations — the cost a continuously self-sampling run pays
//!   per sample) vs `report_oracle()` (full re-aggregation + from-scratch
//!   trace check per call).
//! * `schedule_snapshot/*` — the scheduler half in isolation:
//!   `Schedule::compute` (a copy of the graph's incrementally maintained
//!   state) vs `schedule::oracle::aggregate` (the retained full aggregation
//!   pass re-merging every busy interval).
//!
//! Run with: `cargo bench -p nearpm-bench --bench report_incremental`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nearpm_bench::synthetic::{drive_fig20_system, synthetic_fig18_graph};
use nearpm_sim::schedule::oracle;
use nearpm_sim::Schedule;

fn report_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("report_incremental");
    group.sample_size(10);
    for &events in &[10_000usize, 40_000] {
        let mut sys = drive_fig20_system(16, events, |_, _| {});
        // Fold everything once so the timed iterations measure the
        // steady-state resample cost, not the first fold.
        let warm = sys.sample();
        assert!(warm.ppo_violations.is_empty());
        group.bench_with_input(
            BenchmarkId::new("incremental_sample", events),
            &events,
            |b, _| b.iter(|| sys.sample()),
        );
        group.bench_with_input(
            BenchmarkId::new("oracle_recompute", events),
            &events,
            |b, _| b.iter(|| sys.report_oracle()),
        );
    }
    group.finish();
}

fn schedule_snapshot(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule_snapshot");
    group.sample_size(10);
    for &tasks in &[20_000usize, 80_000] {
        let graph = synthetic_fig18_graph(tasks);
        group.bench_with_input(
            BenchmarkId::new("incremental_snapshot", tasks),
            &tasks,
            |b, _| b.iter(|| Schedule::compute(&graph)),
        );
        group.bench_with_input(
            BenchmarkId::new("oracle_aggregate", tasks),
            &tasks,
            |b, _| b.iter(|| oracle::aggregate(&graph)),
        );
    }
    group.finish();
}

criterion_group!(benches, report_paths, schedule_snapshot);
criterion_main!(benches);
