//! Criterion bench of the schedule/overlap analysis: the merged
//! busy-interval timeline built once by `Schedule::compute` vs the retained
//! rescanning oracle that re-merges intervals per query.
//!
//! Both sides answer the same fig18-style analysis battery (makespan,
//! critical path, busy/overlap totals, per-region times, per-resource
//! utilization / busy-until / idle gaps, and windowed busy queries). The
//! `schedule_smoke` binary performs the fig18-scale head-to-head with the
//! ≥10x assertion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nearpm_bench::synthetic::{
    rescanning_schedule_analysis, synthetic_fig18_graph, timeline_schedule_analysis,
};
use nearpm_sim::Schedule;

fn bench_schedule_compute(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule_compute");
    group.sample_size(10);

    for &tasks in &[10_000usize, 50_000, 120_000] {
        let graph = synthetic_fig18_graph(tasks);
        group.bench_with_input(BenchmarkId::new("timeline", tasks), &graph, |b, g| {
            b.iter(|| timeline_schedule_analysis(g))
        });
        group.bench_with_input(BenchmarkId::new("compute_only", tasks), &graph, |b, g| {
            b.iter(|| Schedule::compute(g).makespan())
        });
    }

    // The rescanning oracle pays a full task-list scan per query; keep it to
    // sizes where a sample stays affordable.
    for &tasks in &[10_000usize, 50_000] {
        let graph = synthetic_fig18_graph(tasks);
        group.bench_with_input(
            BenchmarkId::new("rescanning_oracle", tasks),
            &graph,
            |b, g| b.iter(|| rescanning_schedule_analysis(g)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_schedule_compute);
criterion_main!(benches);
