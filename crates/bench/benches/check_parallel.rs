//! Criterion bench of parallel PPO checking: `check_all_parallel` across
//! worker counts vs the serial `check_all`, on fig16-shaped synthetic
//! traces.
//!
//! Measures the end-to-end path (parallel per-category index build + the
//! three invariant passes as pool jobs), which is what the report pipeline
//! uses, plus the pool-on-prebuilt-index variant that isolates the checking
//! passes from the index build. Worker count 1 documents the degenerate
//! serial-on-calling-thread fallback's overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nearpm_bench::synthetic::{synthetic_undo_log_trace, SyntheticTraceSpec};
use nearpm_ppo::pool::WorkerPool;
use nearpm_ppo::{check_all, check_all_indexed_parallel, check_all_parallel, TraceIndex};

fn bench_check_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("check_parallel");
    group.sample_size(10);

    for &events in &[50_000usize, 200_000] {
        let trace = synthetic_undo_log_trace(SyntheticTraceSpec::fig16(events));
        group.bench_with_input(BenchmarkId::new("serial", events), &trace, |b, t| {
            b.iter(|| check_all(t).len())
        });
        for &workers in &[1usize, 2, 4, 8] {
            group.bench_with_input(
                BenchmarkId::new(format!("parallel_w{workers}"), events),
                &trace,
                |b, t| b.iter(|| check_all_parallel(t, workers).len()),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("passes_only_w{workers}"), events),
                &trace,
                |b, t| {
                    let idx = TraceIndex::new(t);
                    let pool = WorkerPool::new(workers);
                    b.iter(|| check_all_indexed_parallel(&idx, &pool).len())
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_check_parallel);
criterion_main!(benches);
