//! Criterion bench of whole transactions across mechanisms and modes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nearpm_bench::run_one;
use nearpm_cc::Mechanism;
use nearpm_core::ExecMode;
use nearpm_workloads::Workload;

fn bench_txn(c: &mut Criterion) {
    let mut group = c.benchmark_group("transactions");
    group.sample_size(10);
    for mode in [ExecMode::CpuBaseline, ExecMode::NearPmMd] {
        group.bench_with_input(
            BenchmarkId::new("tpcc_logging", format!("{mode:?}")),
            &mode,
            |b, &mode| b.iter(|| run_one(Workload::Tpcc, Mechanism::Logging, mode, 16, 1).makespan),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_txn);
criterion_main!(benches);
