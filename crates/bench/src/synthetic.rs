//! Synthetic PPO traces and task graphs at evaluation scale.
//!
//! The checker benchmarks need traces with the *shape* of a fig16 end-to-end
//! run (per-transaction offload → NDP read → NDP log write/persist → CPU
//! update/persist, with occasional multi-device syncs and a crash/recovery
//! tail) but with a controllable event count, so that the indexed checkers
//! can be compared against the naive oracles at 100k+ events. The scheduler
//! benchmarks similarly need task graphs with the shape of a fig18 run
//! (offloaded undo-log transactions overlapping CPU work across two devices)
//! at a controllable task count. Generation is fully deterministic — no RNG
//! — so benchmark runs are reproducible.

use nearpm_core::{AddrRange, ExecMode, NearPmOp, NearPmSystem, SystemConfig};
use nearpm_ppo::{Agent, EventKind, Interval, Sharing, Trace};
use nearpm_sim::schedule::oracle;
use nearpm_sim::{Region, Resource, Schedule, SimDuration, SimTime, TaskGraph};

/// Shape of a synthetic undo-log trace.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticTraceSpec {
    /// Stop once at least this many events are recorded.
    pub target_events: usize,
    /// Number of NearPM devices transactions round-robin over.
    pub devices: usize,
    /// Distinct shared objects (reuse forces interval-index collisions).
    pub objects: u64,
    /// Distinct NDP-managed log slots.
    pub log_slots: u64,
    /// Record a multi-device sync for the first `sync_txns` transactions
    /// (early syncs keep the naive oracle's cubic sync check affordable
    /// while still exercising the path at scale).
    pub sync_txns: u64,
    /// Number of recovery-read events appended (after a failure event) as
    /// the trace's recovery tail.
    pub recovery_reads: usize,
}

impl SyntheticTraceSpec {
    /// A fig16-shaped trace with the given event count.
    pub fn fig16(target_events: usize) -> Self {
        SyntheticTraceSpec {
            target_events,
            devices: 2,
            objects: 4096,
            log_slots: 1024,
            sync_txns: 32,
            recovery_reads: 512,
        }
    }
}

/// Generates a PPO-clean trace with the transaction shape of the fig16
/// end-to-end workloads. The trace verifies cleanly under both the indexed
/// checkers and the naive oracles, so benchmark comparisons measure checking
/// speed, not violation-reporting throughput.
pub fn synthetic_undo_log_trace(spec: SyntheticTraceSpec) -> Trace {
    let mut t = Trace::new(spec.devices);
    let mut ts: u64 = 100;
    let mut txn: u64 = 0;
    // Leave room for the failure/recovery tail.
    let body_events = spec.target_events.saturating_sub(spec.recovery_reads + 1);
    while t.len() < body_events {
        let obj = Interval::new(0x10_0000 + (txn % spec.objects) * 0x100, 64);
        let log = Interval::new(0x4000_0000 + (txn % spec.log_slots) * 0x100, 64);
        let dev = Agent::Ndp((txn % spec.devices as u64) as usize);
        let p = t.new_proc();

        // CPU offloads undo-log creation for this transaction.
        t.record(
            Agent::Cpu,
            EventKind::Offload,
            Interval::new(0, 0),
            Sharing::Shared,
            Some(p),
            None,
            ts,
        );
        // The device reads the shared object and persists the log copy.
        t.record(
            dev,
            EventKind::Read,
            obj,
            Sharing::Shared,
            Some(p),
            None,
            ts + 10,
        );
        t.record_write_persist(dev, log, Sharing::NdpManaged, Some(p), ts + 20);
        // The CPU then updates the object in place and persists it.
        t.record(
            Agent::Cpu,
            EventKind::Write,
            obj,
            Sharing::Shared,
            None,
            None,
            ts + 30,
        );
        t.record(
            Agent::Cpu,
            EventKind::Persist,
            obj,
            Sharing::Shared,
            None,
            None,
            ts + 40,
        );
        if txn < spec.sync_txns {
            let s = t.new_sync();
            t.record(
                dev,
                EventKind::Sync,
                Interval::new(0, 0),
                Sharing::NdpManaged,
                Some(p),
                Some(s),
                ts + 50,
            );
        }
        ts += 60;
        txn += 1;
    }

    // Crash, then a recovery pass re-reading a slice of the logs.
    t.record(
        Agent::Cpu,
        EventKind::Failure,
        Interval::new(0, 0),
        Sharing::Shared,
        None,
        None,
        ts,
    );
    for i in 0..spec.recovery_reads as u64 {
        let log = Interval::new(0x4000_0000 + (i % spec.log_slots) * 0x100, 64);
        t.record(
            Agent::Ndp((i % spec.devices as u64) as usize),
            EventKind::RecoveryRead,
            log,
            Sharing::NdpManaged,
            None,
            None,
            ts + 10 + i,
        );
    }
    t
}

/// Builds a deterministic task graph with the shape of a fig18 NearPM MD
/// run: per transaction, CPU compute overlaps an offloaded undo-log creation
/// through the pipelined device front-end (decode on the shared dispatcher →
/// issue on the unit's issue queue → metadata → DMA copy on the unit),
/// followed by the in-place CPU update/persist; every fourth transaction
/// commits with a log reset. Copy sizes alternate between small (64 B) and
/// large (16 kB) so unit assignment matters. Built with in-order `add` (one
/// producer thread, so insertion order equals arrival order), keeping the
/// graph inside `schedule::oracle`'s contract. Stops once at least
/// `target_tasks` tasks exist.
pub fn synthetic_fig18_graph(target_tasks: usize) -> TaskGraph {
    const DEVICES: usize = 2;
    const UNITS: usize = 4;
    let ns = SimDuration::from_ns;
    let mut g = TaskGraph::new();
    let mut txn = 0u64;
    let mut cpu_tail = None;
    while g.len() < target_tasks {
        let device = (txn as usize) % DEVICES;
        let unit_index = ((txn / DEVICES as u64) as usize) % UNITS;
        let unit = Resource::NdpUnit {
            device,
            unit: unit_index,
        };
        let issue_queue = Resource::IssueQueue {
            device,
            unit: unit_index,
        };
        let deps: Vec<_> = cpu_tail.into_iter().collect();
        let compute = g.add(
            "app-compute",
            Resource::Cpu(0),
            ns(600.0 + (txn % 7) as f64 * 90.0),
            Region::Application,
            &deps,
        );
        let cmd = g.add(
            "cmd-issue",
            Resource::Cpu(0),
            ns(60.0),
            Region::CcOffload,
            &[compute],
        );
        let decode = g.add(
            "ndp-decode",
            Resource::Dispatcher(device),
            ns(8.0),
            Region::CcOffload,
            &[cmd],
        );
        let issue = g.add(
            "ndp-issue",
            issue_queue,
            ns(17.0),
            Region::CcOffload,
            &[decode],
        );
        let meta = g.add("ndp-metadata", unit, ns(30.0), Region::CcMetadata, &[issue]);
        // Mixed copy sizes: mostly small log copies, every third a large one.
        let copy_ns = if txn.is_multiple_of(3) { 2_000.0 } else { 64.0 };
        let copy = g.add(
            "ndp-copy",
            unit,
            ns(copy_ns),
            Region::CcDataMovement,
            &[meta],
        );
        let update = g.add(
            "cpu-update",
            Resource::Cpu(0),
            ns(110.0),
            Region::AppPersist,
            &[copy],
        );
        let persist = g.add(
            "cpu-persist",
            Resource::Cpu(0),
            ns(140.0),
            Region::AppPersist,
            &[update],
        );
        cpu_tail = Some(persist);
        if txn % 4 == 3 {
            let reset = g.add(
                "ndp-log-reset",
                unit,
                ns(40.0),
                Region::CcLogReset,
                &[persist],
            );
            let _ = reset;
        }
        txn += 1;
    }
    g
}

/// Builds and drives a **live** fig20-shaped NearPM MD run: `threads`
/// closed-loop clients round-robin over undo-log-style transactions
/// (compute → offloaded log create → in-place update/persist, a delayed
/// multi-device sync every third transaction) until the PPO trace holds at
/// least `target_events` events. `observe(&mut sys, txn_index)` runs after
/// every transaction — the hook the `report_smoke` gate samples from.
/// Fully deterministic (no RNG), and every transaction releases its handle,
/// so the in-flight table stays bounded at any scale.
pub fn drive_fig20_system(
    threads: usize,
    target_events: usize,
    observe: impl FnMut(&mut NearPmSystem, usize),
) -> NearPmSystem {
    drive_fig20_system_configured(threads, target_events, |c| c, observe)
}

/// [`drive_fig20_system`] with a hook over the [`SystemConfig`] before the
/// system is built — how the `report_smoke` gate drives the **same**
/// deterministic run a second time with streaming trace compaction (and a
/// checker worker pool) enabled, so the two runs' final reports can be
/// compared byte for byte.
pub fn drive_fig20_system_configured(
    threads: usize,
    target_events: usize,
    configure: impl FnOnce(SystemConfig) -> SystemConfig,
    mut observe: impl FnMut(&mut NearPmSystem, usize),
) -> NearPmSystem {
    // Working-set sizing follows the fig20 workloads (hundreds of objects
    // per client): accesses rotate over enough distinct ranges that interval
    // overlap stays sparse, as it is in the real runs.
    const OBJS_PER_THREAD: u64 = 32;
    const OBJ_SIZE: u64 = 1024;
    const SLOTS_PER_THREAD: u64 = 16;
    let mut sys = NearPmSystem::new(configure(
        SystemConfig::for_mode(ExecMode::NearPmMd)
            .with_cpu_threads(threads)
            .with_capacity(64 << 20),
    ));
    let pool = sys.create_pool("fig20-shape", 32 << 20).expect("pool");
    let mut objs = Vec::with_capacity(threads);
    let mut logs = Vec::with_capacity(threads);
    for _ in 0..threads {
        objs.push(
            sys.alloc(pool, OBJS_PER_THREAD * OBJ_SIZE, 64)
                .expect("obj arena"),
        );
        let log = sys
            .alloc(pool, SLOTS_PER_THREAD * 4096, 4096)
            .expect("log area");
        sys.register_ndp_managed(AddrRange::new(log, SLOTS_PER_THREAD * 4096));
        logs.push(log);
    }

    let mut txn = 0usize;
    while sys.trace_events() < target_events {
        let t = txn % threads;
        let obj = objs[t].offset(((txn as u64 / 3) % OBJS_PER_THREAD) * OBJ_SIZE);
        let slot = logs[t].offset((txn as u64 % SLOTS_PER_THREAD) * 4096);
        sys.cpu_compute(t, 300.0 + (txn % 7) as f64 * 45.0)
            .expect("compute");
        let id = sys.next_txn_id();
        let handle = sys
            .offload(
                t,
                pool,
                NearPmOp::UndoLogCreate {
                    src: obj,
                    len: 256,
                    log_meta: slot,
                    log_data: slot.offset(64),
                    txn_id: id,
                },
                &[],
            )
            .expect("offload");
        sys.cpu_write_persist(t, obj, &[txn as u8; 256], Region::AppPersist)
            .expect("update");
        if txn % 3 == 2 {
            sys.delayed_sync(&[&handle]).expect("sync");
        }
        sys.release(&[&handle]);
        txn += 1;
        observe(&mut sys, txn);
    }
    sys
}

/// The schedule-analysis battery a figure regeneration performs: makespan,
/// critical path, CPU/NDP busy and overlap, every region's busy time, and
/// per-resource utilization, busy-until, idle gaps, and windowed busy time.
/// Answered from the merged busy-interval [`Timeline`](nearpm_sim::Timeline)
/// built once by `Schedule::compute`. Returns a picosecond checksum so
/// benchmark loops cannot be optimized away.
pub fn timeline_schedule_analysis(graph: &TaskGraph) -> u64 {
    let s = Schedule::compute(graph);
    let tl = s.timeline();
    let horizon = tl.horizon();
    let mut acc = s.makespan().as_ps() + s.critical_path().as_ps();
    acc += s.cpu_busy().as_ps() + s.ndp_busy().as_ps() + s.cpu_ndp_overlap().as_ps();
    for r in Region::all() {
        acc += s.region_time(r).as_ps();
    }
    for resource in analysis_resources() {
        acc += s.resource_time(resource).as_ps();
        acc += tl.busy_until(resource).as_ps();
        acc += (tl.utilization(resource) * 1e6) as u64;
        if let Some(set) = tl.resource(resource) {
            acc += set.longest_idle_gap(horizon).as_ps();
            for (from, to) in analysis_windows(horizon) {
                acc += set.covered_in(from, to).as_ps();
            }
        }
    }
    for (from, to) in analysis_windows(horizon) {
        acc += tl.overlap().covered_in(from, to).as_ps();
    }
    acc
}

/// The same battery answered by the retained pre-timeline implementation:
/// timings re-derived with the original recurrence, then every query a
/// rescan of the task list with per-query sort/merge.
pub fn rescanning_schedule_analysis(graph: &TaskGraph) -> u64 {
    let timings = oracle::compute_timings(graph);
    let horizon = SimTime::ZERO + oracle::makespan(&timings);
    let mut acc = oracle::makespan(&timings).as_ps() + oracle::critical_path(graph).as_ps();
    acc += oracle::cpu_busy(graph, &timings).as_ps()
        + oracle::ndp_busy(graph, &timings).as_ps()
        + oracle::cpu_ndp_overlap(graph, &timings).as_ps();
    for r in Region::all() {
        acc += oracle::region_time(graph, r).as_ps();
    }
    for resource in analysis_resources() {
        let busy = oracle::resource_time(graph, resource);
        acc += busy.as_ps();
        acc += oracle::busy_until(graph, &timings, resource).as_ps();
        acc += (busy.ratio(horizon.since(SimTime::ZERO)) * 1e6) as u64;
        if !busy.is_zero() {
            acc += oracle::resource_idle_gaps(graph, &timings, resource, horizon)
                .into_iter()
                .map(|(s, e)| (e - s).as_ps())
                .max()
                .unwrap_or(0);
            for (from, to) in analysis_windows(horizon) {
                acc += oracle::resource_busy_in_window(graph, &timings, resource, from, to).as_ps();
            }
        }
    }
    for (from, to) in analysis_windows(horizon) {
        acc += oracle::overlap_in_window(graph, &timings, from, to).as_ps();
    }
    acc
}

/// Resources the analysis battery inspects (the fig18 topology).
fn analysis_resources() -> Vec<Resource> {
    let mut out = vec![Resource::Cpu(0), Resource::ControlPath];
    for device in 0..2 {
        out.push(Resource::Dispatcher(device));
        for unit in 0..4 {
            out.push(Resource::IssueQueue { device, unit });
            out.push(Resource::NdpUnit { device, unit });
        }
    }
    out
}

/// Sixty-four deterministic query windows spanning the schedule horizon
/// (the per-window utilization sampling a figure sweep performs).
fn analysis_windows(horizon: SimTime) -> Vec<(SimTime, SimTime)> {
    let total = horizon.as_ps().max(64);
    (0..64)
        .map(|i| {
            let from = total * i / 64;
            let to = total * (i + 8).min(64) / 64;
            (SimTime::from_ps(from), SimTime::from_ps(to))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nearpm_ppo::{check_all, invariants::oracle};

    #[test]
    fn synthetic_trace_hits_target_size_and_is_clean() {
        let spec = SyntheticTraceSpec::fig16(20_000);
        let t = synthetic_undo_log_trace(spec);
        assert!(t.len() >= 20_000, "only {} events", t.len());
        assert!(t.len() < 21_000, "overshot: {} events", t.len());
        let violations = check_all(&t);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn synthetic_trace_agrees_with_oracle_at_modest_scale() {
        let t = synthetic_undo_log_trace(SyntheticTraceSpec::fig16(4_000));
        assert_eq!(check_all(&t), oracle::check_all(&t));
    }
}
