//! Synthetic PPO traces at evaluation scale.
//!
//! The checker benchmarks need traces with the *shape* of a fig16 end-to-end
//! run (per-transaction offload → NDP read → NDP log write/persist → CPU
//! update/persist, with occasional multi-device syncs and a crash/recovery
//! tail) but with a controllable event count, so that the indexed checkers
//! can be compared against the naive oracles at 100k+ events. Generation is
//! fully deterministic — no RNG — so benchmark runs are reproducible.

use nearpm_ppo::{Agent, EventKind, Interval, Sharing, Trace};

/// Shape of a synthetic undo-log trace.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticTraceSpec {
    /// Stop once at least this many events are recorded.
    pub target_events: usize,
    /// Number of NearPM devices transactions round-robin over.
    pub devices: usize,
    /// Distinct shared objects (reuse forces interval-index collisions).
    pub objects: u64,
    /// Distinct NDP-managed log slots.
    pub log_slots: u64,
    /// Record a multi-device sync for the first `sync_txns` transactions
    /// (early syncs keep the naive oracle's cubic sync check affordable
    /// while still exercising the path at scale).
    pub sync_txns: u64,
    /// Number of recovery-read events appended (after a failure event) as
    /// the trace's recovery tail.
    pub recovery_reads: usize,
}

impl SyntheticTraceSpec {
    /// A fig16-shaped trace with the given event count.
    pub fn fig16(target_events: usize) -> Self {
        SyntheticTraceSpec {
            target_events,
            devices: 2,
            objects: 4096,
            log_slots: 1024,
            sync_txns: 32,
            recovery_reads: 512,
        }
    }
}

/// Generates a PPO-clean trace with the transaction shape of the fig16
/// end-to-end workloads. The trace verifies cleanly under both the indexed
/// checkers and the naive oracles, so benchmark comparisons measure checking
/// speed, not violation-reporting throughput.
pub fn synthetic_undo_log_trace(spec: SyntheticTraceSpec) -> Trace {
    let mut t = Trace::new(spec.devices);
    let mut ts: u64 = 100;
    let mut txn: u64 = 0;
    // Leave room for the failure/recovery tail.
    let body_events = spec.target_events.saturating_sub(spec.recovery_reads + 1);
    while t.len() < body_events {
        let obj = Interval::new(0x10_0000 + (txn % spec.objects) * 0x100, 64);
        let log = Interval::new(0x4000_0000 + (txn % spec.log_slots) * 0x100, 64);
        let dev = Agent::Ndp((txn % spec.devices as u64) as usize);
        let p = t.new_proc();

        // CPU offloads undo-log creation for this transaction.
        t.record(
            Agent::Cpu,
            EventKind::Offload,
            Interval::new(0, 0),
            Sharing::Shared,
            Some(p),
            None,
            ts,
        );
        // The device reads the shared object and persists the log copy.
        t.record(
            dev,
            EventKind::Read,
            obj,
            Sharing::Shared,
            Some(p),
            None,
            ts + 10,
        );
        t.record_write_persist(dev, log, Sharing::NdpManaged, Some(p), ts + 20);
        // The CPU then updates the object in place and persists it.
        t.record(
            Agent::Cpu,
            EventKind::Write,
            obj,
            Sharing::Shared,
            None,
            None,
            ts + 30,
        );
        t.record(
            Agent::Cpu,
            EventKind::Persist,
            obj,
            Sharing::Shared,
            None,
            None,
            ts + 40,
        );
        if txn < spec.sync_txns {
            let s = t.new_sync();
            t.record(
                dev,
                EventKind::Sync,
                Interval::new(0, 0),
                Sharing::NdpManaged,
                Some(p),
                Some(s),
                ts + 50,
            );
        }
        ts += 60;
        txn += 1;
    }

    // Crash, then a recovery pass re-reading a slice of the logs.
    t.record(
        Agent::Cpu,
        EventKind::Failure,
        Interval::new(0, 0),
        Sharing::Shared,
        None,
        None,
        ts,
    );
    for i in 0..spec.recovery_reads as u64 {
        let log = Interval::new(0x4000_0000 + (i % spec.log_slots) * 0x100, 64);
        t.record(
            Agent::Ndp((i % spec.devices as u64) as usize),
            EventKind::RecoveryRead,
            log,
            Sharing::NdpManaged,
            None,
            None,
            ts + 10 + i,
        );
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use nearpm_ppo::{check_all, invariants::oracle};

    #[test]
    fn synthetic_trace_hits_target_size_and_is_clean() {
        let spec = SyntheticTraceSpec::fig16(20_000);
        let t = synthetic_undo_log_trace(spec);
        assert!(t.len() >= 20_000, "only {} events", t.len());
        assert!(t.len() < 21_000, "overshot: {} events", t.len());
        let violations = check_all(&t);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn synthetic_trace_agrees_with_oracle_at_modest_scale() {
        let t = synthetic_undo_log_trace(SyntheticTraceSpec::fig16(4_000));
        assert_eq!(check_all(&t), oracle::check_all(&t));
    }
}
