//! fig18-scale schedule-analysis smoke test: timeline vs rescanning oracle.
//!
//! Builds a synthetic task graph with the shape of a fig18 parallelism run
//! (≥100k tasks), answers the same analysis battery with the merged
//! busy-interval timeline and with the retained per-query rescanning oracle,
//! verifies both produce the identical checksum (same makespan, overlap,
//! region, utilization, idle-gap, and window answers), and asserts the
//! timeline implementation is at least 10× faster. Exits nonzero on any
//! mismatch or if the speedup target is missed.
//!
//! Run with: `cargo run --release -p nearpm-bench --bin schedule_smoke`

use std::time::{Duration, Instant};

use nearpm_bench::synthetic::{
    rescanning_schedule_analysis, synthetic_fig18_graph, timeline_schedule_analysis,
};

const TARGET_TASKS: usize = 120_000;
const REQUIRED_SPEEDUP: f64 = 10.0;

fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

fn main() {
    println!("== schedule_compute smoke test (fig18 scale) ==");
    let (graph, gen_time) = time(|| synthetic_fig18_graph(TARGET_TASKS));
    println!("graph: {} tasks (generated in {gen_time:?})", graph.len());
    assert!(
        graph.len() >= 100_000,
        "graph too small for the acceptance bar"
    );

    // Timeline: several runs, keep the fastest (steady-state figure).
    let mut timeline_best = Duration::MAX;
    let mut timeline_sum = 0u64;
    for _ in 0..5 {
        let (sum, d) = time(|| timeline_schedule_analysis(&graph));
        timeline_best = timeline_best.min(d);
        timeline_sum = sum;
    }

    // Rescanning oracle: one run (it is the slow side by construction).
    let (oracle_sum, oracle_time) = time(|| rescanning_schedule_analysis(&graph));

    println!("timeline analysis:   {timeline_best:?} (best of 5)");
    println!("rescanning analysis: {oracle_time:?}");
    assert_eq!(
        timeline_sum, oracle_sum,
        "timeline and rescanning oracle disagree at fig18 scale"
    );

    let speedup = oracle_time.as_secs_f64() / timeline_best.as_secs_f64().max(1e-9);
    println!("speedup: {speedup:.1}x (required: ≥{REQUIRED_SPEEDUP:.0}x)");
    if speedup < REQUIRED_SPEEDUP {
        eprintln!("FAIL: speedup below target");
        std::process::exit(1);
    }
    println!("OK: identical analysis answers, ≥{REQUIRED_SPEEDUP:.0}x speedup");
}
