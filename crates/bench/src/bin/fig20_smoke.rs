//! CI smoke gate for the fig20 multithread fidelity claim: a reduced sweep
//! of the Figure 20 configurations must keep NearPM MD **at or above 1.0x**
//! normalized throughput at every thread count for both workloads under all
//! three mechanisms — the paper's claim, and the regression the per-unit
//! front-end pipelining fixed (a single-stage dispatcher front-end drops to
//! ~0.2-0.8x at 8-16 threads).
//!
//! Exits non-zero (failing the CI step) on any violation. `--ops N` overrides
//! the per-thread operation count (default 32, reduced from the figure's 96
//! to keep the gate fast).

use nearpm_bench::ops_from_args;
use nearpm_cc::Mechanism;
use nearpm_core::ExecMode;
use nearpm_workloads::{MultiClientHarness, Workload};

const DEFAULT_OPS_PER_THREAD: usize = 32;
/// The paper's fig20 claim: normalized throughput never drops below 1.0x.
const BAR: f64 = 1.0;

fn main() {
    let ops_per_thread = ops_from_args(DEFAULT_OPS_PER_THREAD);
    let mut failures = 0usize;
    println!("fig20 smoke: {BAR}x bar, {ops_per_thread} ops/thread");
    for m in Mechanism::all() {
        for w in [Workload::Memcached, Workload::Redis] {
            for threads in [1usize, 2, 4, 8, 16] {
                let cmp = MultiClientHarness::new(w, m)
                    .with_clients(threads)
                    .with_ops_per_client(ops_per_thread)
                    .compare(ExecMode::NearPmMd)
                    .expect("workload run failed");
                let norm = cmp.speedup();
                let ok = norm >= BAR;
                println!(
                    "  {:<14} {:<10} {:>2} threads: {:.3}x {}",
                    m.label(),
                    w.name(),
                    threads,
                    norm,
                    if ok { "ok" } else { "BELOW BAR" }
                );
                if !ok {
                    failures += 1;
                }
            }
        }
    }
    if failures > 0 {
        eprintln!("fig20 smoke FAILED: {failures} configurations below {BAR}x");
        std::process::exit(1);
    }
    println!("fig20 smoke passed: all configurations at or above {BAR}x");
}
