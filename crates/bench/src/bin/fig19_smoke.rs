//! CI smoke gate for the fig19 unit-scaling claim: with the devices loaded
//! by concurrent closed-loop clients, the average NearPM MD speedup over the
//! equal-client CPU baseline must grow **strictly** from 1 to 2 to 4 units
//! per device — the paper's Figure 19 shape, which the seed reproduction
//! missed (a single closed-loop client never contends the units, so its
//! sweep was flat at 1.736x everywhere).
//!
//! Two assertions over the same `nearpm_bench::fig19_sweep` the figure
//! binary prints (shared code, so the gate cannot desynchronize from the
//! figure):
//!
//! 1. the combined average speedup (gmean over all workloads and the 1/4/8
//!    client counts) is strictly increasing across 1 → 2 → 4 units, with no
//!    PPO violations anywhere;
//! 2. the single-client seed-reproduction point has not regressed: at 1 unit
//!    and 256 ops the single-client average stays at or above its bar
//!    (the seed's 1.736x minus the priced-in cost of the undo log's
//!    torn-commit marker protocol — see `SEED_SINGLE_CLIENT_BAR`);
//! 3. the heaviest point of the sweep — 8 clients on 4 units, where the
//!    sweep's tail once sagged — stays at or above its measured bar. The
//!    sweep's MD devices run a **second decode lane**
//!    (`with_decode_lanes(2)`), so the front-end can never re-serialize
//!    decode under the 8-client load even if the decode stage grows; this
//!    assertion is what keeps that tail pinned.
//!
//! Exits non-zero (failing the CI step) on any violation. `--ops N`
//! overrides the per-client operation count of the multi-client sweep
//! (default 32, matching the figure).

use nearpm_bench::{fig19_single_client_avg, fig19_sweep, ops_from_args};

const DEFAULT_OPS_PER_CLIENT: usize = 32;
/// Single-client anchor bar. The seed measured 1.736x, but the undo log's
/// torn-commit fix (a durable commit marker persisted in phase 2 and
/// cleared in phase 4) added four modeled events to every transaction on
/// both the baseline and MD sides, which pulls every speedup ratio toward
/// 1: the anchor now measures 1.671x. The bar sits just under that honest
/// cost so real regressions trip while the marker protocol stays priced in.
const SEED_SINGLE_CLIENT_BAR: f64 = 1.66;
/// Operation count of the seed's single-client figure (its `DEFAULT_OPS`).
const SEED_OPS: usize = 256;
/// Regression bar for the 8-client 4-unit tail of the sweep (measured
/// 1.634x with the two-lane front-end at the default 32 ops/client; the
/// bar sits just under it so real regressions trip while simulated-time
/// jitter cannot).
const TAIL_8C_4U_BAR: f64 = 1.62;

fn main() {
    let ops = ops_from_args(DEFAULT_OPS_PER_CLIENT);
    let mut failures = 0usize;
    println!("fig19 smoke: strict unit-scaling growth, {ops} ops/client");

    let points = fig19_sweep(ops);
    for (i, point) in points.iter().enumerate() {
        let increasing = i == 0 || point.combined > points[i - 1].combined;
        let clean = point.violations == 0;
        println!(
            "  {} unit(s): avg {:.4}x {}{}",
            point.units,
            point.combined,
            if increasing { "ok" } else { "NOT INCREASING" },
            if clean {
                String::new()
            } else {
                format!(" ({} PPO VIOLATIONS)", point.violations)
            }
        );
        if !increasing || !clean {
            failures += 1;
        }
    }

    // Tail anchor: the 8-client 4-unit point (the last row's last client
    // column) must hold the bar the second decode lane was measured at.
    // Only asserted at the figure's default op count — the bar was measured
    // there, and `--ops` overrides change the operating point.
    if ops == DEFAULT_OPS_PER_CLIENT {
        let tail = points
            .last()
            .and_then(|p| p.per_clients.last().copied())
            .unwrap_or(0.0);
        let ok = tail >= TAIL_8C_4U_BAR;
        println!(
            "  8-client tail at 4 units: avg {tail:.4}x (bar {TAIL_8C_4U_BAR}x) {}",
            if ok { "ok" } else { "BELOW BAR" }
        );
        if !ok {
            failures += 1;
        }
    }

    // Seed-reproduction anchor: single client, 1 unit, the seed's op count.
    let single_avg = fig19_single_client_avg(SEED_OPS, 1);
    let ok = single_avg >= SEED_SINGLE_CLIENT_BAR;
    println!(
        "  single-client anchor at 1 unit: avg {single_avg:.4}x (bar {SEED_SINGLE_CLIENT_BAR}x) {}",
        if ok { "ok" } else { "BELOW SEED" }
    );
    if !ok {
        failures += 1;
    }

    if failures > 0 {
        eprintln!("fig19 smoke FAILED: {failures} violations");
        std::process::exit(1);
    }
    println!("fig19 smoke passed: unit scaling grows strictly and the seed point held");
}
