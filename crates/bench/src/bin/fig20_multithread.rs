//! Figure 20: multithreaded throughput of memcached and redis (NearPM MD)
//! normalized to an equal-thread CPU baseline, 1-16 threads.
//!
//! Paper reference: NearPM stays above 1.0x but its advantage shrinks as the
//! thread count grows because the prototype has only four units per device.
//! The stall column reports the backpressure the request FIFOs exerted on
//! the hosts (total stall time across devices).

use nearpm_bench::{header, ops_from_args, run_custom};
use nearpm_cc::Mechanism;
use nearpm_core::ExecMode;
use nearpm_workloads::Workload;

/// Default operations *per thread* (raised from the pre-timeline 24 now that
/// checking and schedule analysis are ~linear); override with `--ops N`.
const DEFAULT_OPS_PER_THREAD: usize = 96;

fn main() {
    let ops_per_thread = ops_from_args(DEFAULT_OPS_PER_THREAD);
    for m in [
        Mechanism::Logging,
        Mechanism::Checkpointing,
        Mechanism::ShadowPaging,
    ] {
        header(
            &format!("Figure 20: multithreaded throughput, {}", m.label()),
            &[
                "workload",
                "threads",
                "norm_throughput_x",
                "fifo_hw",
                "stall_us",
            ],
        );
        for w in [Workload::Memcached, Workload::Redis] {
            for threads in [1usize, 2, 4, 8, 16] {
                let ops = ops_per_thread * threads;
                let base = run_custom(w, m, ExecMode::CpuBaseline, ops, threads, 4, 1);
                let md = run_custom(w, m, ExecMode::NearPmMd, ops, threads, 4, 1);
                // Equal work, so normalized throughput = inverse runtime ratio.
                let norm = base.makespan.ratio(md.makespan);
                println!(
                    "{}\t{}\t{:.3}\t{}\t{:.2}",
                    w.name(),
                    threads,
                    norm,
                    md.fifo_high_watermark,
                    md.fifo_stall_time.as_us()
                );
            }
        }
    }
    println!("(paper: above 1.0x, decreasing with thread count)");
}
