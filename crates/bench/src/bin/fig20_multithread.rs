//! Figure 20: multithreaded throughput of memcached and redis (NearPM MD)
//! normalized to an equal-thread CPU baseline, 1-16 threads, driven by the
//! shared multi-client closed-loop harness.
//!
//! Paper reference: NearPM stays above 1.0x but its advantage shrinks as the
//! thread count grows because the prototype has only four units per device.
//! The stall column reports the backpressure the request FIFOs exerted on
//! the hosts (total stall time across devices).

use nearpm_bench::{header, ops_from_args};
use nearpm_cc::Mechanism;
use nearpm_core::ExecMode;
use nearpm_workloads::{MultiClientHarness, Workload};

/// Default operations *per thread* (raised from the pre-timeline 24 now that
/// checking and schedule analysis are ~linear); override with `--ops N`.
const DEFAULT_OPS_PER_THREAD: usize = 96;

fn main() {
    let ops_per_thread = ops_from_args(DEFAULT_OPS_PER_THREAD);
    for m in [
        Mechanism::Logging,
        Mechanism::Checkpointing,
        Mechanism::ShadowPaging,
    ] {
        header(
            &format!("Figure 20: multithreaded throughput, {}", m.label()),
            &[
                "workload",
                "threads",
                "norm_throughput_x",
                "fifo_hw",
                "stall_us",
                "p99_us",
            ],
        );
        for w in [Workload::Memcached, Workload::Redis] {
            for threads in [1usize, 2, 4, 8, 16] {
                let cmp = MultiClientHarness::new(w, m)
                    .with_clients(threads)
                    .with_ops_per_client(ops_per_thread)
                    .with_latency_tracking(true)
                    .compare(ExecMode::NearPmMd)
                    .expect("workload run failed");
                // Per-op service latency tail (closed loop: no queueing wait,
                // so this is the pure service-time p99).
                let p99 = cmp
                    .nearpm
                    .request_latency
                    .as_ref()
                    .map_or(0.0, |l| l.p99.as_us());
                println!(
                    "{}\t{}\t{:.3}\t{}\t{:.2}\t{:.3}",
                    w.name(),
                    threads,
                    cmp.speedup(),
                    cmp.nearpm.fifo_high_watermark,
                    cmp.nearpm.fifo_stall_time.as_us(),
                    p99
                );
            }
        }
    }
    println!("(paper: above 1.0x, decreasing with thread count)");
}
