//! CI gate: exhaustive crash-point exploration across the full mechanism
//! matrix. Enumerates every persist/offload/sync/commit-retire boundary of
//! a deterministic workload for all four crash-consistency mechanisms ×
//! both pipeline shapes × one- and two-device configurations, injects a
//! crash at each boundary, and proves the three recovery invariants
//! (committed-prefix image, PPO-clean trace, idempotent second recovery).
//!
//! Exits non-zero on any unexplored boundary or invariant failure.

use nearpm_core::ExecMode;
use nearpm_workloads::explore_matrix;

fn main() {
    println!("crash matrix smoke: 4 mechanisms x 2 pipelines x {{SD, MD}}, 3 units, no pruning");
    let reports = explore_matrix(&[ExecMode::NearPmSd, ExecMode::NearPmMd], 3, false)
        .expect("exploration failed to run");
    let mut bad = 0;
    let mut boundaries = 0;
    let mut classes = 0;
    for r in &reports {
        println!("{r}");
        boundaries += r.boundaries;
        classes += r.classes;
        if !r.ok() {
            bad += 1;
            for f in &r.failures {
                eprintln!("  FAIL {f}");
            }
        } else if r.verified != r.boundaries {
            bad += 1;
            eprintln!(
                "  FAIL {}/{}: verified {} of {} boundaries",
                r.mech, r.pipeline, r.verified, r.boundaries
            );
        }
    }
    println!(
        "total: {} cells, {} boundaries, {} equivalence classes (dedup {:.2}x), {} failing cells",
        reports.len(),
        boundaries,
        classes,
        boundaries as f64 / classes.max(1) as f64,
        bad
    );
    if bad > 0 {
        eprintln!("crash matrix smoke FAILED");
        std::process::exit(1);
    }
    println!("crash matrix smoke OK: 100% boundary coverage, zero invariant failures");
}
