//! Table 3 / Table 4: the simulated system configuration and the workload
//! inputs used by every figure.

use nearpm_bench::header;
use nearpm_core::SystemConfig;
use nearpm_workloads::Workload;

fn main() {
    let c = SystemConfig::nearpm_md();
    header("Table 3: system configuration", &["component", "value"]);
    println!("PM latency\t{} ns (emulated)", c.latency.pm_read_latency_ns);
    println!("PCIe bandwidth\t{} GB/s", c.latency.pcie_gbps);
    println!("AXI bandwidth\t{} GB/s", c.latency.axi_gbps);
    println!("NearPM devices\t{}", c.devices);
    println!(
        "NearPM units per device\t{} @ {} MHz",
        c.units_per_device, c.latency.ndp_unit_mhz
    );
    println!("Request FIFO\t{} entries", c.fifo_depth);

    header(
        "Table 4: workloads",
        &["workload", "bytes updated per op", "compute ns per op"],
    );
    for w in Workload::all() {
        let s = w.spec();
        println!("{}\t{}\t{:.0}", w.name(), s.bytes_per_op(), s.compute_ns);
    }
}
