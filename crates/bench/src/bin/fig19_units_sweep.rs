//! Figure 19: end-to-end speedup as the number of NearPM units per device
//! varies (1, 2, 4), plus the dispatch-quality columns: the min/max per-unit
//! utilization across the sweep's NearPM MD runs (balanced values mean
//! earliest-available dispatch is spreading work across the units).
//!
//! Paper reference: speedup increases with more units.

use nearpm_bench::{gmean, header, run_custom, run_one, workloads, DEFAULT_OPS};
use nearpm_cc::Mechanism;
use nearpm_core::ExecMode;

fn main() {
    header(
        "Figure 19: sensitivity to NearPM unit count (logging, NearPM MD)",
        &["units", "avg_speedup_x", "util_min", "util_max"],
    );
    for units in [1usize, 2, 4] {
        let mut speedups = Vec::new();
        let mut util_min = f64::INFINITY;
        let mut util_max = 0.0f64;
        for w in workloads() {
            let base = run_one(w, Mechanism::Logging, ExecMode::CpuBaseline, DEFAULT_OPS, 1);
            let r = run_custom(
                w,
                Mechanism::Logging,
                ExecMode::NearPmMd,
                DEFAULT_OPS,
                1,
                units,
                1,
            );
            for &(_, util) in &r.ndp_unit_utilization {
                util_min = util_min.min(util);
                util_max = util_max.max(util);
            }
            speedups.push(r.speedup_over(&base));
        }
        println!(
            "{}\t{:.3}\t{:.3}\t{:.3}",
            units,
            gmean(&speedups),
            util_min,
            util_max
        );
    }
    println!("(paper: average speedup grows monotonically from 1 to 4 units)");
}
