//! Figure 19: end-to-end speedup as the number of NearPM units per device
//! varies (1, 2, 4), driven by the shared multi-client closed-loop harness.
//!
//! One closed-loop client never keeps more than ~one request in flight, so a
//! single-client sweep cannot distinguish unit counts (the seed reproduction
//! was flat at 1.736x for every unit count). The paper's growing curve needs
//! the units to be *contended*: this sweep therefore loads the devices with
//! 1/4/8 concurrent clients per configuration (the same machinery as fig20),
//! and reports the per-client-count average speedup over an equal-client CPU
//! baseline, the combined average (the figure's headline curve), and the
//! min/max per-unit utilization across the NearPM MD runs.
//!
//! The sweep itself lives in `nearpm_bench::fig19_sweep`, shared with the
//! `fig19_smoke` CI gate.
//!
//! Paper reference: speedup increases with more units.

use nearpm_bench::{fig19_sweep, header, ops_from_args, FIG19_CLIENTS};

/// Operations per client (so heavier client counts do proportionally more
/// total work, as in fig20); override with `--ops N`.
const DEFAULT_OPS_PER_CLIENT: usize = 32;

fn main() {
    let ops = ops_from_args(DEFAULT_OPS_PER_CLIENT);
    let mut columns = vec!["units".to_string()];
    for c in FIG19_CLIENTS {
        columns.push(format!("c{c}_x"));
    }
    columns.extend(["avg_x", "util_min", "util_max"].map(String::from));
    let column_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    header(
        "Figure 19: sensitivity to NearPM unit count (logging, NearPM MD, multi-client)",
        &column_refs,
    );

    for point in fig19_sweep(ops) {
        let mut row = format!("{}", point.units);
        for s in &point.per_clients {
            row.push_str(&format!("\t{s:.3}"));
        }
        row.push_str(&format!(
            "\t{:.3}\t{:.3}\t{:.3}",
            point.combined, point.util_min, point.util_max
        ));
        println!("{row}");
    }
    println!("(paper: average speedup grows monotonically from 1 to 4 units)");
}
