//! Figure 19: end-to-end speedup as the number of NearPM units per device
//! varies (1, 2, 4).
//!
//! Paper reference: speedup increases with more units.

use nearpm_bench::{gmean, header, run_custom, run_one, workloads, DEFAULT_OPS};
use nearpm_cc::Mechanism;
use nearpm_core::ExecMode;

fn main() {
    header(
        "Figure 19: sensitivity to NearPM unit count (logging, NearPM MD)",
        &["units", "avg_speedup_x"],
    );
    for units in [1usize, 2, 4] {
        let mut speedups = Vec::new();
        for w in workloads() {
            let base = run_one(w, Mechanism::Logging, ExecMode::CpuBaseline, DEFAULT_OPS, 1);
            let r = run_custom(
                w,
                Mechanism::Logging,
                ExecMode::NearPmMd,
                DEFAULT_OPS,
                1,
                units,
                1,
            );
            speedups.push(r.speedup_over(&base));
        }
        println!("{}\t{:.3}", units, gmean(&speedups));
    }
    println!("(paper: average speedup grows monotonically from 1 to 4 units)");
}
