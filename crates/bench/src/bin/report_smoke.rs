//! Multi-sample observe-path smoke test: incremental `report()`/`sample()`
//! vs the O(n) oracle recompute path, on a live 120k-event run.
//!
//! Drives the fig20-shaped 16-thread system (`drive_fig20_system`) until its
//! PPO trace holds ≥120k events, sampling the run 128 times along the way.
//! At every sampling point it takes the report **both** ways:
//!
//! * `NearPmSystem::sample()` — the incremental path: the graph's
//!   aggregates/timeline are already maintained, the cached checker folds
//!   only the events since the previous sample;
//! * `NearPmSystem::report_oracle()` — the retained recompute path: full
//!   re-aggregation of the task list plus a from-scratch trace check.
//!
//! Every pair of reports must be equal (field for field, including the
//! violation lists), and the summed incremental sampling time must beat the
//! summed recompute time by ≥10x — without incrementality a periodically
//! self-sampling run is quadratic in its length, which is exactly what this
//! gate guards against. Exits nonzero on any mismatch or a missed speedup.
//!
//! Run with: `cargo run --release -p nearpm-bench --bin report_smoke`

use std::time::{Duration, Instant};

use nearpm_bench::synthetic::drive_fig20_system;

const THREADS: usize = 16;
const TARGET_EVENTS: usize = 120_000;
/// Continuous self-monitoring cadence: one sample every ~940 events. The
/// incremental side's total cost is ~independent of the cadence (every event
/// is folded exactly once no matter how often the run samples); the oracle
/// recompute pays the full O(n) per sample, so its cost scales with it.
const SAMPLES: usize = 128;
const REQUIRED_SPEEDUP: f64 = 10.0;

fn main() {
    println!("== incremental report smoke test (fig20 shape, {TARGET_EVENTS} events) ==");
    let build_start = Instant::now();
    let mut incremental_time = Duration::ZERO;
    let mut oracle_time = Duration::ZERO;
    let mut samples_taken = 0usize;
    let mut next_sample_at = TARGET_EVENTS / SAMPLES;
    let mut last_makespan = 0.0f64;

    let mut sys = drive_fig20_system(THREADS, TARGET_EVENTS, |sys, _txn| {
        if sys.trace_events() < next_sample_at {
            return;
        }
        next_sample_at += TARGET_EVENTS / SAMPLES;

        let t0 = Instant::now();
        let sample = sys.sample();
        incremental_time += t0.elapsed();

        let t1 = Instant::now();
        let oracle = sys.report_oracle();
        oracle_time += t1.elapsed();

        assert_eq!(
            sample, oracle,
            "incremental sample diverged from the oracle recompute at sample {samples_taken}"
        );
        assert!(
            sample.ppo_violations.is_empty(),
            "the fig20-shaped run must verify clean"
        );
        assert!(
            sample.makespan.as_us() >= last_makespan,
            "mid-run makespan series must be monotone"
        );
        last_makespan = sample.makespan.as_us();
        samples_taken += 1;
    });
    println!(
        "run: {} events, {} tasks, {samples_taken} samples (built in {:?})",
        sys.trace_events(),
        sys.task_count(),
        build_start.elapsed()
    );
    assert!(sys.trace_events() >= TARGET_EVENTS);
    assert!(samples_taken >= SAMPLES / 2, "sampling cadence broken");

    // Final end-of-run report, also both ways.
    let t1 = Instant::now();
    let final_oracle = sys.report_oracle();
    oracle_time += t1.elapsed();
    let t0 = Instant::now();
    let final_report = sys.report();
    incremental_time += t0.elapsed();
    assert_eq!(final_report, final_oracle, "final report diverged");

    println!("incremental sampling: {incremental_time:?} total over {samples_taken} samples");
    println!("oracle recompute:     {oracle_time:?} total");
    let speedup = oracle_time.as_secs_f64() / incremental_time.as_secs_f64().max(1e-9);
    println!("speedup: {speedup:.1}x (required: ≥{REQUIRED_SPEEDUP:.0}x)");
    if speedup < REQUIRED_SPEEDUP {
        eprintln!("FAIL: speedup below target");
        std::process::exit(1);
    }
    println!("OK: identical reports at every sampling point, ≥{REQUIRED_SPEEDUP:.0}x speedup");
}
