//! Multi-sample observe-path smoke test: incremental `report()`/`sample()`
//! vs the O(n) oracle recompute path, on a live run of configurable size.
//!
//! Drives the fig20-shaped 16-thread system (`drive_fig20_system`) until its
//! PPO trace holds ≥`--events` events (default 120k; CI also runs the
//! million-event gate with `--events 1000000`), sampling the run along the
//! way. At every sampling point it takes the report **both** ways:
//!
//! * `NearPmSystem::sample()` — the incremental path: the graph's
//!   aggregates/timeline are already maintained, the cached checker folds
//!   only the events since the previous sample;
//! * `NearPmSystem::report_oracle()` — the retained recompute path: full
//!   re-aggregation of the task list plus a from-scratch trace check.
//!
//! Every pair of reports must be equal (field for field, including the
//! violation lists and the incrementally maintained `relaxed_persists`
//! column), and the summed incremental sampling time must beat the summed
//! recompute time by ≥10x — without incrementality a periodically
//! self-sampling run is quadratic in its length, which is exactly what this
//! gate guards against. Because each sample checks a strict prefix of the
//! final run against an oracle that rescans that prefix from scratch, a
//! million-event invocation doubles as the prefix-replay test for the whole
//! observe path. After the run, the final trace is handed to the parallel
//! checker at several worker counts (including the degenerate 1) and every
//! violation list must be identical to the serial checker's. Exits nonzero
//! on any mismatch or a missed speedup.
//!
//! Run with: `cargo run --release -p nearpm-bench --bin report_smoke`
//! or e.g.:  `cargo run --release -p nearpm-bench --bin report_smoke -- --events 1000000`

use std::time::{Duration, Instant};

use nearpm_bench::synthetic::drive_fig20_system;
use nearpm_ppo::{check_all, check_all_parallel, relaxed_persist_count};

const THREADS: usize = 16;
const DEFAULT_TARGET_EVENTS: usize = 120_000;
/// Continuous self-monitoring cadence at the default size: one sample every
/// ~940 events. The incremental side's total cost is ~independent of the
/// cadence (every event is folded exactly once no matter how often the run
/// samples); the oracle recompute pays the full O(n) per sample, so its cost
/// scales with it — at larger `--events` the cadence is stretched (see
/// `sample_count`) to keep the oracle side's quadratic total affordable.
const BASE_SAMPLES: usize = 128;
/// Speedup demanded at the full 128-sample cadence. The incremental side
/// folds every event exactly once regardless of how often the run samples,
/// while the oracle side pays a full recompute per sample — so the
/// achievable ratio scales with the sample count and the requirement is
/// scaled down proportionally at stretched cadences (floored at 2x, which
/// still catches an accidental O(n)-per-sample regression on the
/// incremental path).
const BASE_REQUIRED_SPEEDUP: f64 = 10.0;
const PARALLEL_WORKERS: [usize; 3] = [1, 2, 4];

/// Parses `--events N` from the command line, defaulting to
/// [`DEFAULT_TARGET_EVENTS`].
fn target_events() -> usize {
    let mut events = DEFAULT_TARGET_EVENTS;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--events" => {
                let value = args.next().unwrap_or_else(|| {
                    eprintln!("--events requires a value");
                    std::process::exit(2);
                });
                events = value.parse().unwrap_or_else(|e| {
                    eprintln!("bad --events value {value:?}: {e}");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument {other:?} (supported: --events N)");
                std::process::exit(2);
            }
        }
    }
    events
}

/// Number of mid-run sampling points for a run of `events` events: the full
/// 128-sample cadence up to the default size, then scaled down so the oracle
/// side's total work (`samples × O(events)`) stays roughly constant — the
/// million-event gate takes 24 samples, not 128. The floor of 24 keeps the
/// measured speedup comfortably above the scaled-down requirement (the
/// oracle side grows with the sample count, the incremental side does not).
fn sample_count(events: usize) -> usize {
    (BASE_SAMPLES * DEFAULT_TARGET_EVENTS / events.max(1)).clamp(24, BASE_SAMPLES)
}

fn main() {
    let target_events = target_events();
    let samples = sample_count(target_events);
    let required_speedup = (BASE_REQUIRED_SPEEDUP * samples as f64 / BASE_SAMPLES as f64).max(2.0);
    println!("== incremental report smoke test (fig20 shape, {target_events} events, {samples} samples) ==");
    let build_start = Instant::now();
    let mut incremental_time = Duration::ZERO;
    let mut oracle_time = Duration::ZERO;
    let mut samples_taken = 0usize;
    let mut next_sample_at = target_events / samples;
    let mut last_makespan = 0.0f64;

    let mut sys = drive_fig20_system(THREADS, target_events, |sys, _txn| {
        if sys.trace_events() < next_sample_at {
            return;
        }
        next_sample_at += target_events / samples;

        let t0 = Instant::now();
        let sample = sys.sample();
        incremental_time += t0.elapsed();

        let t1 = Instant::now();
        let oracle = sys.report_oracle();
        oracle_time += t1.elapsed();

        assert_eq!(
            sample, oracle,
            "incremental sample diverged from the oracle recompute at sample {samples_taken}"
        );
        assert!(
            sample.ppo_violations.is_empty(),
            "the fig20-shaped run must verify clean"
        );
        assert!(
            sample.makespan.as_us() >= last_makespan,
            "mid-run makespan series must be monotone"
        );
        last_makespan = sample.makespan.as_us();
        samples_taken += 1;
    });
    println!(
        "run: {} events, {} tasks, {samples_taken} samples (built in {:?})",
        sys.trace_events(),
        sys.task_count(),
        build_start.elapsed()
    );
    assert!(sys.trace_events() >= target_events);
    assert!(samples_taken >= samples / 2, "sampling cadence broken");

    // Final end-of-run report, also both ways (keeping the trace for the
    // parallel-checker differential below).
    let t1 = Instant::now();
    let final_oracle = sys.report_oracle();
    oracle_time += t1.elapsed();
    let t0 = Instant::now();
    let (final_report, trace) = sys.report_with_trace();
    incremental_time += t0.elapsed();
    assert_eq!(final_report, final_oracle, "final report diverged");

    // The parallel checker must produce byte-identical violation lists to
    // the serial one on the full final trace, at every worker count.
    let t2 = Instant::now();
    let serial_violations = check_all(&trace);
    let serial_check = t2.elapsed();
    assert_eq!(
        serial_violations, final_report.ppo_violations,
        "standalone serial check diverged from the report"
    );
    for workers in PARALLEL_WORKERS {
        let t3 = Instant::now();
        let parallel_violations = check_all_parallel(&trace, workers);
        let par_check = t3.elapsed();
        assert_eq!(
            parallel_violations, serial_violations,
            "parallel checker ({workers} workers) diverged from serial"
        );
        println!("check_all_parallel({workers}): {par_check:?} (serial: {serial_check:?})");
    }
    assert_eq!(
        final_report.relaxed_persists,
        relaxed_persist_count(&trace),
        "incremental relaxed_persists diverged from the rescanning count"
    );

    println!("incremental sampling: {incremental_time:?} total over {samples_taken} samples");
    println!("oracle recompute:     {oracle_time:?} total");
    let speedup = oracle_time.as_secs_f64() / incremental_time.as_secs_f64().max(1e-9);
    println!("speedup: {speedup:.1}x (required: ≥{required_speedup:.1}x)");
    if speedup < required_speedup {
        eprintln!("FAIL: speedup below target");
        std::process::exit(1);
    }
    println!("OK: identical reports at every sampling point, ≥{required_speedup:.1}x speedup");
}
