//! Multi-sample observe-path smoke test: incremental `report()`/`sample()`
//! vs the O(n) oracle recompute path, on a live run of configurable size.
//!
//! Drives the fig20-shaped 16-thread system (`drive_fig20_system`) until its
//! PPO trace holds ≥`--events` events (default 120k; CI also runs the
//! million-event gate with `--events 1000000` and the ten-million-event gate
//! with `--events 10000000`), sampling the run along the way. At every
//! sampling point it takes the report **both** ways:
//!
//! * `NearPmSystem::sample()` — the incremental path: the graph's
//!   aggregates/timeline are already maintained, the cached checker folds
//!   only the events since the previous sample;
//! * `NearPmSystem::report_oracle()` — the retained recompute path: full
//!   re-aggregation of the task list plus a from-scratch trace check.
//!
//! Every pair of reports must be equal (field for field, including the
//! violation lists and the incrementally maintained `relaxed_persists`
//! column), and the summed incremental sampling time must beat the summed
//! recompute time by the scaled requirement — without incrementality a
//! periodically self-sampling run is quadratic in its length, which is
//! exactly what this gate guards against. Because each sample checks a
//! strict prefix of the final run against an oracle that rescans that
//! prefix from scratch, a large invocation doubles as the prefix-replay
//! test for the whole observe path. After the run, the final trace is
//! handed to the parallel checker at several worker counts (including the
//! degenerate 1) and every violation list must be identical to the serial
//! checker's.
//!
//! A second leg then drives the **same** deterministic run with streaming
//! trace compaction on (and the checker's worker pool engaged), sampling at
//! the same cadence: its final report must be byte-equal to the first leg's,
//! while its resident trace stays bounded far below the full event count —
//! the memory half of the ten-million-event tier.
//!
//! Exits nonzero on any mismatch or a missed speedup. `--json out.json`
//! additionally writes a flat machine-readable record (event counts, wall
//! times, speedups) so the perf trajectory can be tracked across changes.
//!
//! Run with: `cargo run --release -p nearpm-bench --bin report_smoke`
//! or e.g.:  `cargo run --release -p nearpm-bench --bin report_smoke -- --events 1000000`

use std::time::{Duration, Instant};

use nearpm_bench::json::JsonObject;
use nearpm_bench::synthetic::{drive_fig20_system, drive_fig20_system_configured};
use nearpm_ppo::{check_all, check_all_parallel, relaxed_persist_count};

const THREADS: usize = 16;
const DEFAULT_TARGET_EVENTS: usize = 120_000;
/// Continuous self-monitoring cadence at the default size: one sample every
/// ~940 events. The incremental side's total cost is ~independent of the
/// cadence (every event is folded exactly once no matter how often the run
/// samples); the oracle recompute pays the full O(n) per sample, so its cost
/// scales with it — at larger `--events` the cadence is stretched (see
/// `sample_count`) to keep the oracle side's quadratic total affordable.
const BASE_SAMPLES: usize = 128;
/// Speedup demanded at the full 128-sample cadence. The incremental side
/// folds every event exactly once regardless of how often the run samples,
/// while the oracle side pays a full recompute per sample — so the
/// achievable ratio scales with the sample count and the requirement is
/// scaled down proportionally at stretched cadences (floored at 2x, which
/// still catches an accidental O(n)-per-sample regression on the
/// incremental path).
const BASE_REQUIRED_SPEEDUP: f64 = 10.0;
const PARALLEL_WORKERS: [usize; 3] = [1, 2, 4];
/// Worker count the compaction leg hands the incremental checker — the
/// parallel fold must stay report-equal to the serial fold inside a live
/// sampled run, not just on detached traces.
const COMPACTION_LEG_WORKERS: usize = 2;
/// The compaction leg's peak post-compaction resident trace must stay below
/// this fraction of the full event count. The watermark trails the checker's
/// parked state, not the run length — and in this clean fig20-shaped run the
/// fold parks nothing across a sampling point, so the measured peak is 0 at
/// every tier. The 1/4 bar is generous headroom that still fails hard if
/// retirement silently stops (the peak would then be ~events/samples).
const RESIDENT_CEILING_FRACTION: f64 = 0.25;

/// Command-line options: `--events N [--json out.json]`.
struct Options {
    events: usize,
    json: Option<String>,
}

fn parse_args() -> Options {
    let mut opts = Options {
        events: DEFAULT_TARGET_EVENTS,
        json: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value_of = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} requires a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--events" => {
                let value = value_of("--events");
                opts.events = value.parse().unwrap_or_else(|e| {
                    eprintln!("bad --events value {value:?}: {e}");
                    std::process::exit(2);
                });
            }
            "--json" => opts.json = Some(value_of("--json")),
            other => {
                eprintln!("unknown argument {other:?} (supported: --events N, --json PATH)");
                std::process::exit(2);
            }
        }
    }
    opts
}

/// Number of mid-run sampling points for a run of `events` events: the full
/// 128-sample cadence up to the default size, then scaled down so the oracle
/// side's total work (`samples × O(events)`) stays roughly constant — the
/// million-event gate takes 24 samples. Past 2M events even that floor makes
/// the oracle side dominate wall time (24 full rescans of a 10M-event run is
/// ~10x the run itself), so the floor drops to 6: still enough points to
/// exercise prefix equality, monotonicity, and the compaction watermark.
fn sample_count(events: usize) -> usize {
    let floor = if events > 2_000_000 { 6 } else { 24 };
    (BASE_SAMPLES * DEFAULT_TARGET_EVENTS / events.max(1)).clamp(floor, BASE_SAMPLES)
}

fn main() {
    let opts = parse_args();
    let target_events = opts.events;
    let samples = sample_count(target_events);
    let required_speedup = (BASE_REQUIRED_SPEEDUP * samples as f64 / BASE_SAMPLES as f64).max(2.0);
    println!("== incremental report smoke test (fig20 shape, {target_events} events, {samples} samples) ==");
    let build_start = Instant::now();
    let mut incremental_time = Duration::ZERO;
    let mut oracle_time = Duration::ZERO;
    let mut samples_taken = 0usize;
    let mut next_sample_at = target_events / samples;
    let mut last_makespan = 0.0f64;

    let mut sys = drive_fig20_system(THREADS, target_events, |sys, _txn| {
        if sys.trace_events() < next_sample_at {
            return;
        }
        next_sample_at += target_events / samples;

        let t0 = Instant::now();
        let sample = sys.sample();
        incremental_time += t0.elapsed();

        let t1 = Instant::now();
        let oracle = sys.report_oracle();
        oracle_time += t1.elapsed();

        assert_eq!(
            sample, oracle,
            "incremental sample diverged from the oracle recompute at sample {samples_taken}"
        );
        assert!(
            sample.ppo_violations.is_empty(),
            "the fig20-shaped run must verify clean"
        );
        assert!(
            sample.makespan.as_us() >= last_makespan,
            "mid-run makespan series must be monotone"
        );
        last_makespan = sample.makespan.as_us();
        samples_taken += 1;
    });
    let build_time = build_start.elapsed();
    println!(
        "run: {} events, {} tasks, {samples_taken} samples (built in {build_time:?})",
        sys.trace_events(),
        sys.task_count(),
    );
    assert!(sys.trace_events() >= target_events);
    assert!(samples_taken >= samples / 2, "sampling cadence broken");

    // Final end-of-run report, also both ways (keeping the trace for the
    // parallel-checker differential below).
    let t1 = Instant::now();
    let final_oracle = sys.report_oracle();
    oracle_time += t1.elapsed();
    let t0 = Instant::now();
    let (final_report, trace) = sys.report_with_trace();
    incremental_time += t0.elapsed();
    assert_eq!(final_report, final_oracle, "final report diverged");
    drop(sys); // the compaction leg below builds its own 10M-event system

    // The parallel checker must produce byte-identical violation lists to
    // the serial one on the full final trace, at every worker count.
    let t2 = Instant::now();
    let serial_violations = check_all(&trace);
    let serial_check = t2.elapsed();
    assert_eq!(
        serial_violations, final_report.ppo_violations,
        "standalone serial check diverged from the report"
    );
    let mut parallel_json = JsonObject::new();
    for workers in PARALLEL_WORKERS {
        let t3 = Instant::now();
        let parallel_violations = check_all_parallel(&trace, workers);
        let par_check = t3.elapsed();
        assert_eq!(
            parallel_violations, serial_violations,
            "parallel checker ({workers} workers) diverged from serial"
        );
        println!("check_all_parallel({workers}): {par_check:?} (serial: {serial_check:?})");
        parallel_json = parallel_json.num(&workers.to_string(), par_check.as_secs_f64());
    }
    assert_eq!(
        final_report.relaxed_persists,
        relaxed_persist_count(&trace),
        "incremental relaxed_persists diverged from the rescanning count"
    );
    let total_events = trace.len();
    drop(trace);

    // Compaction leg: the same deterministic run with streaming trace
    // compaction on and the checker's worker pool engaged. Same sampling
    // cadence (each sample is a compaction point), final report byte-equal,
    // resident trace bounded far below the full event count.
    let compact_start = Instant::now();
    let mut next_sample_at = target_events / samples;
    // Peak post-compaction residency across the run: what the checker's
    // parked state pins at each sampling point, the honest memory figure
    // (end-of-run residency collapses to ~0 once every verdict is final).
    let mut peak_resident = 0usize;
    let mut sys = drive_fig20_system_configured(
        THREADS,
        target_events,
        |c| {
            c.with_trace_compaction(true)
                .with_checker_workers(COMPACTION_LEG_WORKERS)
        },
        |sys, _txn| {
            if sys.trace_events() < next_sample_at {
                return;
            }
            next_sample_at += target_events / samples;
            let sample = sys.sample();
            peak_resident = peak_resident.max(sys.resident_trace_events());
            assert!(
                sample.ppo_violations.is_empty(),
                "the compacting run must verify clean"
            );
        },
    );
    let compact_report = sys.report();
    let compact_time = compact_start.elapsed();
    let (resident, retired) = (sys.resident_trace_events(), sys.retired_trace_events());
    peak_resident = peak_resident.max(resident);
    assert_eq!(
        compact_report, final_report,
        "compacting run's final report diverged from the retaining run's"
    );
    assert_eq!(resident + retired, total_events, "compaction lost events");
    assert!(retired > 0, "compaction retired nothing");
    let resident_ceiling = ((total_events as f64) * RESIDENT_CEILING_FRACTION).max(1024.0) as usize;
    println!(
        "compaction leg: peak {peak_resident} resident at a sampling point \
         (ceiling {resident_ceiling}), final {resident} resident / {retired} retired \
         of {total_events} events, built in {compact_time:?}"
    );
    assert!(
        peak_resident <= resident_ceiling,
        "peak resident trace {peak_resident} exceeds the ceiling {resident_ceiling}"
    );

    println!("incremental sampling: {incremental_time:?} total over {samples_taken} samples");
    println!("oracle recompute:     {oracle_time:?} total");
    let speedup = oracle_time.as_secs_f64() / incremental_time.as_secs_f64().max(1e-9);
    println!("speedup: {speedup:.1}x (required: ≥{required_speedup:.1}x)");

    if let Some(path) = &opts.json {
        let record = JsonObject::new()
            .str("bench", "report_smoke")
            .int("events", total_events as u64)
            .int("samples", samples_taken as u64)
            .int("threads", THREADS as u64)
            .num("build_seconds", build_time.as_secs_f64())
            .num("incremental_seconds", incremental_time.as_secs_f64())
            .num("oracle_seconds", oracle_time.as_secs_f64())
            .num("speedup", speedup)
            .num("required_speedup", required_speedup)
            .num("serial_check_seconds", serial_check.as_secs_f64())
            .obj("parallel_check_seconds", parallel_json)
            .obj(
                "compaction",
                JsonObject::new()
                    .int("peak_resident_events", peak_resident as u64)
                    .int("resident_events", resident as u64)
                    .int("retired_events", retired as u64)
                    .int("resident_ceiling", resident_ceiling as u64)
                    .num("build_seconds", compact_time.as_secs_f64()),
            );
        record.write_to(path).unwrap_or_else(|e| {
            eprintln!("FAIL: cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!("wrote {path}");
    }

    if speedup < required_speedup {
        eprintln!("FAIL: speedup below target");
        std::process::exit(1);
    }
    println!("OK: identical reports at every sampling point, ≥{required_speedup:.1}x speedup");
}
