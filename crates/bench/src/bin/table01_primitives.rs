//! Table 1 / Table 2: crash-consistency mechanisms, their common primitive
//! operations, and the NearPM software interface that covers them.

use nearpm_bench::header;

fn main() {
    header(
        "Table 1: evaluated crash-consistency mechanisms",
        &["mechanism", "common operations"],
    );
    println!("Logging (undo)\tallocate, generate metadata, copy data, delete log, commit");
    println!("Logging (redo)\tallocate, generate metadata, copy data, delete log, commit");
    println!("Checkpointing\tallocate, generate metadata, copy data");
    println!("Shadow paging\tallocate, copy data, switch page");

    header(
        "Table 2: NearPM software interface",
        &["primitive", "rust API"],
    );
    println!("NearPM_undolg_create\tNearPmOp::UndoLogCreate / UndoLog::log_range");
    println!("NearPM_applylog\tNearPmOp::ApplyRedoLog / RedoLog::commit");
    println!("NearPM_commit_log\tNearPmOp::CommitLog / UndoLog::commit");
    println!("NearPM_ckpoint_create\tNearPmOp::CheckpointCreate / Checkpoint::touch");
    println!("NearPM_shadowcpy\tNearPmOp::ShadowCopy / ShadowPaging::update");
    println!("NearPM_init_device\tNearPmSystem::new + create_pool");
}
