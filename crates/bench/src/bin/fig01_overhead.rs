//! Figure 1: crash-consistency overhead and its breakdown on the CPU baseline.
//!
//! Paper reference: CC overhead 37.7 % (logging), 48.6 % (checkpointing),
//! 67.2 % (shadow paging); data movement is 68.9 % / 60.4 % / 70.5 % of it.

use nearpm_bench::{header, mechanisms, run_one, workloads, DEFAULT_OPS};
use nearpm_core::ExecMode;

fn main() {
    header(
        "Figure 1a: crash-consistency overhead (CPU baseline)",
        &["mechanism", "cc_share_%", "paper_%"],
    );
    let paper = [37.7, 48.6, 67.2];
    let paper_dm = [68.9, 60.4, 70.5];
    for (i, m) in mechanisms().into_iter().enumerate() {
        let mut cc = Vec::new();
        let mut dm = Vec::new();
        for w in workloads() {
            let r = run_one(w, m, ExecMode::CpuBaseline, DEFAULT_OPS, 1);
            cc.push(r.cc_fraction() * 100.0);
            let cc_total: f64 = r
                .region_time
                .iter()
                .filter(|(k, _)| **k != "application" && **k != "app-persist")
                .map(|(_, v)| v.as_ns())
                .sum();
            let data = r.region_time["data-movement"].as_ns();
            dm.push(if cc_total > 0.0 {
                data / cc_total * 100.0
            } else {
                0.0
            });
        }
        let avg_cc = cc.iter().sum::<f64>() / cc.len() as f64;
        println!("{}\t{:.1}\t{:.1}", m.label(), avg_cc, paper[i]);
        header(
            &format!("Figure 1b-d breakdown: {}", m.label()),
            &["component", "share_%", "paper_data_movement_%"],
        );
        let avg_dm = dm.iter().sum::<f64>() / dm.len() as f64;
        println!("data-movement\t{:.1}\t{:.1}", avg_dm, paper_dm[i]);
    }
}
