//! CI gate for the pluggable media backends: the storage engine must be
//! invisible to the functional model and real durability must hold across
//! an actual process death.
//!
//! Four checks, each exiting non-zero on failure:
//!
//! 1. **Backend differential** — the same seeded workload run over
//!    `HeapMedia`, `FileMedia`, and `SparseMedia` produces byte-identical
//!    device images and identical PM traffic stats.
//! 2. **File reopen round trip** — a file-backed system's image survives
//!    dropping the system and reopening the directory in a fresh instance
//!    (byte-identical devices, crashed-state entry).
//! 3. **Sparse geometry budget** — a 100-device × 1 GiB sparse space
//!    accepts scattered writes across all devices while staying under a
//!    fixed residency budget (both the backend's own accounting and the
//!    process RSS delta).
//! 4. **Kill-and-reopen restart recovery** — for every crash-consistency
//!    mechanism, a child process running over a file-backed image is
//!    killed (abort, not clean exit) at a mid-run `CrashPlan` boundary;
//!    the parent reopens the image, reattaches, recovers, and proves the
//!    committed-prefix / PPO-clean / idempotence invariants plus the
//!    durability differential against an in-process oracle.
//!
//! The binary re-executes itself as the restart child when
//! [`nearpm_workloads::restart::CHILD_ENV`] is set.
//!
//! Run with: `cargo run --release -p nearpm-bench --bin media_smoke`

use nearpm_cc::Mechanism;
use nearpm_core::{ExecMode, MediaConfig, NearPmSystem, Region, SystemConfig};
use nearpm_pm::{InterleaveConfig, PmSpace};
use nearpm_workloads::restart::{self, RestartSpec};
use nearpm_workloads::{CcMech, PipelineMode, RunOptions, Runner, Workload};
use std::path::PathBuf;
use std::process::Command;

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("nearpm-media-smoke-{tag}-{}", std::process::id()))
}

/// VmRSS of this process in bytes (0 if /proc is unavailable).
fn vm_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            let kib: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kib * 1024;
        }
    }
    0
}

/// Check 1: one seeded workload run per backend; images and traffic stats
/// must be identical.
fn backend_differential() -> Result<(), String> {
    let dir = temp_dir("differential");
    let run = |media: MediaConfig| {
        let options = RunOptions::new(ExecMode::NearPmMd, Mechanism::Logging, 24)
            .with_threads(2)
            .with_seed(13)
            .with_media(media);
        Runner::new(Workload::Hashmap, options)
            .run_with_system()
            .map_err(|e| format!("run failed: {e}"))
    };
    let (heap_report, heap_sys) = run(MediaConfig::Heap)?;
    let (file_report, file_sys) = run(MediaConfig::File { dir: dir.clone() })?;
    let (sparse_report, sparse_sys) = run(MediaConfig::Sparse)?;
    let result = (|| {
        for (name, report, sys) in [
            ("file", &file_report, &file_sys),
            ("sparse", &sparse_report, &sparse_sys),
        ] {
            if report.pm_traffic != heap_report.pm_traffic {
                return Err(format!("{name}: PM traffic diverged from heap"));
            }
            for d in 0..heap_sys.media_count() {
                if sys.device_image(d) != heap_sys.device_image(d) {
                    return Err(format!("{name}: device {d} image diverged from heap"));
                }
            }
        }
        Ok(())
    })();
    std::fs::remove_dir_all(&dir).ok();
    result?;
    println!(
        "backend differential: heap == file == sparse over {} devices, traffic {:?}",
        heap_sys.media_count(),
        heap_report.pm_traffic
    );
    Ok(())
}

/// Check 2: a file-backed image survives process-instance turnover.
fn file_reopen_round_trip() -> Result<(), String> {
    let dir = temp_dir("reopen");
    let config = || {
        SystemConfig::nearpm_md()
            .with_capacity(8 << 20)
            .with_media(MediaConfig::File { dir: dir.clone() })
    };
    let images = {
        let mut sys =
            NearPmSystem::try_new(config()).map_err(|e| format!("construction failed: {e}"))?;
        let pool = sys
            .create_pool("media-smoke", 4 << 20)
            .map_err(|e| e.to_string())?;
        let obj = sys.alloc(pool, 8192, 4096).map_err(|e| e.to_string())?;
        sys.cpu_write_persist(0, obj, &[0xC7; 8192], Region::AppPersist)
            .map_err(|e| e.to_string())?;
        sys.persist_to(&dir).map_err(|e| e.to_string())?;
        (0..sys.media_count())
            .map(|d| sys.device_image(d))
            .collect::<Vec<_>>()
    };
    let reopened = NearPmSystem::reopen_from(config(), &dir).map_err(|e| e.to_string())?;
    let result = (|| {
        if !reopened.is_crashed() {
            return Err("reopened system should start crashed".to_string());
        }
        for (d, image) in images.iter().enumerate() {
            if &reopened.device_image(d) != image {
                return Err(format!("device {d}: image changed across reopen"));
            }
        }
        Ok(())
    })();
    std::fs::remove_dir_all(&dir).ok();
    result?;
    println!(
        "file reopen round trip: {} devices byte-identical across instances",
        images.len()
    );
    Ok(())
}

/// Residency budget for check 3: the backend's own accounting must stay
/// under this, and the process RSS delta under four times it (allocator
/// slack, page tables).
const SPARSE_BUDGET: u64 = 64 << 20;

/// Check 3: 100 devices × 1 GiB, sparse, scattered writes, bounded memory.
fn sparse_geometry_budget() -> Result<(), String> {
    const DEVICES: usize = 100;
    const PER_DEVICE: u64 = 1 << 30;
    let rss_before = vm_rss_bytes();
    let mut space = PmSpace::with_media(
        DEVICES as u64 * PER_DEVICE,
        InterleaveConfig::new(DEVICES, 4096),
        &MediaConfig::Sparse,
    )
    .map_err(|e| format!("sparse construction failed: {e}"))?;
    // One 4 KiB write landing on every device, scattered through the
    // address space (stride of one interleave round plus a page so the
    // writes walk both devices and offsets).
    let stride = DEVICES as u64 * 4096 + 4096;
    let payload = [0x5A_u8; 4096];
    let mut addr = 0u64;
    let mut writes = 0usize;
    while addr + 4096 <= DEVICES as u64 * PER_DEVICE && writes < 512 {
        space.write(nearpm_pm::PhysAddr(addr), &payload);
        addr = (addr + stride) * 31 % (DEVICES as u64 * PER_DEVICE - 4096);
        addr &= !4095;
        writes += 1;
    }
    // Read one back from the far end of the space to prove zero-fill.
    let mut buf = [0u8; 64];
    space.peek(
        nearpm_pm::PhysAddr(DEVICES as u64 * PER_DEVICE - 64),
        &mut buf,
    );
    if buf != [0u8; 64] {
        return Err("untouched sparse region must read as zeros".to_string());
    }
    let resident = space.resident_bytes() as u64;
    let rss_after = vm_rss_bytes();
    let rss_delta = rss_after.saturating_sub(rss_before);
    if resident > SPARSE_BUDGET {
        return Err(format!(
            "sparse residency {resident} exceeds the {SPARSE_BUDGET}-byte budget"
        ));
    }
    if rss_before > 0 && rss_delta > 4 * SPARSE_BUDGET {
        return Err(format!(
            "process RSS grew {rss_delta} bytes, over the {} budget",
            4 * SPARSE_BUDGET
        ));
    }
    println!(
        "sparse geometry: {DEVICES} x {} GiB, {writes} scattered writes, \
         {resident} resident bytes (budget {SPARSE_BUDGET}), RSS delta {rss_delta}",
        PER_DEVICE >> 30
    );
    Ok(())
}

/// Check 4: kill a child at a mid-run boundary, reopen, recover, verify.
fn kill_and_reopen_matrix() -> Result<(), String> {
    let exe = std::env::current_exe().map_err(|e| e.to_string())?;
    for mech in CcMech::ALL {
        let mut spec = RestartSpec {
            mech,
            pipeline: PipelineMode::Serial,
            mode: ExecMode::NearPmMd,
            units: 2,
            boundary: 0,
            dir: temp_dir(&format!("restart-{}", mech.label())),
        };
        let total = restart::count_boundaries(&spec)
            .map_err(|e| format!("{mech}: boundary count failed: {e}"))?;
        spec.boundary = total / 2;
        let status = Command::new(&exe)
            .envs(spec.to_env())
            .status()
            .map_err(|e| format!("{mech}: spawning child failed: {e}"))?;
        // The child must die by abort (signal), not exit cleanly: a clean
        // exit means the boundary never fired.
        if status.success() || status.code().is_some() {
            std::fs::remove_dir_all(&spec.dir).ok();
            return Err(format!(
                "{mech}: child at boundary {} did not die by signal (status {status:?})",
                spec.boundary
            ));
        }
        let outcome = restart::verify_restarted_recovery(&spec)
            .map_err(|e| format!("{mech}: verification errored: {e}"))?;
        std::fs::remove_dir_all(&spec.dir).ok();
        if !outcome.ok() {
            return Err(format!(
                "{mech}: restarted recovery failed: {:?}",
                outcome.failures
            ));
        }
        println!(
            "kill-and-reopen {mech}: died at boundary {}/{} ({}), {} units committed, \
             recovered + idempotent in a fresh process",
            spec.boundary,
            total,
            outcome.fired.map_or("?", |k| k.label()),
            outcome.units_committed
        );
    }
    Ok(())
}

/// One named smoke check.
type Check = (&'static str, fn() -> Result<(), String>);

fn main() {
    // Re-executed as a restart child: run to the armed boundary and abort.
    if let Some(spec) = RestartSpec::from_env() {
        restart::child_main(&spec);
    }

    println!("media smoke: backend differential, reopen, sparse budget, kill-and-reopen");
    let checks: [Check; 4] = [
        ("backend differential", backend_differential),
        ("file reopen round trip", file_reopen_round_trip),
        ("sparse geometry budget", sparse_geometry_budget),
        ("kill-and-reopen restart recovery", kill_and_reopen_matrix),
    ];
    let mut failed = 0;
    for (name, check) in checks {
        if let Err(e) = check() {
            eprintln!("FAIL {name}: {e}");
            failed += 1;
        }
    }
    if failed > 0 {
        eprintln!("media smoke: {failed} checks failed");
        std::process::exit(1);
    }
    println!("media smoke: all checks passed");
}
