//! Figure 16: end-to-end application speedup for NearPM SD, NearPM MD
//! SW-sync, and NearPM MD over the CPU baseline.
//!
//! Paper reference averages: SD 1.29/1.15/1.28, MD SW-sync 1.21/1.14/1.23,
//! MD 1.35/1.22/1.33 for logging/checkpointing/shadow paging.

use nearpm_bench::{gmean, header, mechanisms, ops_from_args, run_one, workloads, DEFAULT_OPS};
use nearpm_core::ExecMode;

fn main() {
    let ops = ops_from_args(DEFAULT_OPS);
    let paper: [[f64; 3]; 3] = [[1.29, 1.21, 1.35], [1.15, 1.14, 1.22], [1.28, 1.23, 1.33]];
    for (mi, m) in mechanisms().into_iter().enumerate() {
        header(
            &format!("Figure 16: end-to-end speedup, {}", m.label()),
            &["workload", "SD_x", "MDsync_x", "MD_x"],
        );
        let mut sd_all = Vec::new();
        let mut sync_all = Vec::new();
        let mut md_all = Vec::new();
        for w in workloads() {
            let base = run_one(w, m, ExecMode::CpuBaseline, ops, 1);
            let sd = run_one(w, m, ExecMode::NearPmSd, ops, 1).speedup_over(&base);
            let sync = run_one(w, m, ExecMode::NearPmMdSync, ops, 1).speedup_over(&base);
            let md = run_one(w, m, ExecMode::NearPmMd, ops, 1).speedup_over(&base);
            println!("{}\t{:.3}\t{:.3}\t{:.3}", w.name(), sd, sync, md);
            sd_all.push(sd);
            sync_all.push(sync);
            md_all.push(md);
        }
        println!(
            "average\t{:.3}\t{:.3}\t{:.3}\t(paper: {:.2}/{:.2}/{:.2})",
            gmean(&sd_all),
            gmean(&sync_all),
            gmean(&md_all),
            paper[mi][0],
            paper[mi][1],
            paper[mi][2]
        );
    }
}
