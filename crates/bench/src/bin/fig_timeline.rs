//! In-run time-series figure (beyond the paper): per-window NDP
//! utilization, request-FIFO occupancy, and PPO-violation counts over the
//! lifetime of a fig20-shaped 16-thread run.
//!
//! This is the figure class the old O(n)-per-report path priced out: a run
//! that samples itself W times used to pay W full re-aggregations plus W
//! full trace re-walks — quadratic in the run length. With the incremental
//! observe path, the in-run samples are O(new events) each, and the
//! windowed series is read off the graph's incrementally merged timeline
//! (O(log n) per window) plus the devices' FIFO residency histories.
//!
//! Output: the mid-run sample series (makespan / trace events / cumulative
//! violations — all monotone by construction, asserted here), then the
//! windowed series over the schedule horizon. Exits nonzero if any monotone
//! invariant breaks or the run reports a violation.
//!
//! Run with: `cargo run --release -p nearpm-bench --bin fig_timeline`
//! (`--ops N` sets the per-client operation count; default 32).

use nearpm_bench::{header, ops_from_args};
use nearpm_cc::Mechanism;
use nearpm_core::ExecMode;
use nearpm_ppo::PpoViolation;
use nearpm_sim::SimTime;
use nearpm_workloads::{RunOptions, Runner, Workload};

const DEFAULT_OPS_PER_CLIENT: usize = 32;
const CLIENTS: usize = 16;
const WINDOWS: u64 = 32;
const IN_RUN_SAMPLES: usize = 8;

/// Timestamp a violation anchors to on the time axis, if it has one.
fn violation_ts(v: &PpoViolation) -> Option<u64> {
    match v {
        PpoViolation::SharedOrderViolation { cpu_ts, ndp_ts, .. } => Some(*cpu_ts.max(ndp_ts)),
        PpoViolation::UnpersistedBeforeSync { sync_ts, .. } => Some(*sync_ts),
        PpoViolation::RecoveryReadUnpersisted { .. } | PpoViolation::MissingOffload { .. } => None,
    }
}

fn main() {
    let ops = ops_from_args(DEFAULT_OPS_PER_CLIENT);
    let runner = Runner::new(
        Workload::Memcached,
        RunOptions::new(ExecMode::NearPmMd, Mechanism::Logging, ops * CLIENTS)
            .with_threads(CLIENTS),
    );
    let sample_every = (ops * CLIENTS / IN_RUN_SAMPLES).max(1);
    let (samples, report, sys) = runner
        .run_sampled(sample_every)
        .expect("fig20-shaped run failed");

    header(
        &format!("fig_timeline: in-run samples (memcached/logging, {CLIENTS} threads)"),
        &["sample", "ops", "makespan_us", "trace_events", "violations"],
    );
    let mut prev_makespan = 0.0f64;
    let mut prev_events = 0usize;
    for (i, s) in samples.iter().enumerate() {
        println!(
            "{}\t{}\t{:.2}\t{}\t{}",
            i,
            (i + 1) * sample_every,
            s.makespan.as_us(),
            s.trace_events,
            s.ppo_violations.len()
        );
        assert!(
            s.makespan.as_us() >= prev_makespan && s.trace_events >= prev_events,
            "in-run sample series must be monotone"
        );
        prev_makespan = s.makespan.as_us();
        prev_events = s.trace_events;
    }
    assert!(
        report.ppo_violations.is_empty(),
        "the run must verify clean: {:?}",
        report.ppo_violations
    );

    let timeline = sys.graph().timeline();
    let horizon = timeline.horizon();
    let horizon_ps = horizon.as_ps().max(WINDOWS);
    header(
        &format!(
            "fig_timeline: windowed series over the {:.1} us horizon",
            horizon.as_us()
        ),
        &[
            "window",
            "from_us",
            "to_us",
            "ndp_util",
            "fifo_occ_max",
            "violations",
            "cum_ndp_busy_us",
            "cum_violations",
        ],
    );
    let mut cum_busy_ps = 0u64;
    let mut cum_violations = 0usize;
    for w in 0..WINDOWS {
        let from = SimTime::from_ps(horizon_ps * w / WINDOWS);
        let to = SimTime::from_ps(horizon_ps * (w + 1) / WINDOWS);
        let busy = timeline.ndp().covered_in(from, to);
        let util = busy.as_ps() as f64 / to.since(from).as_ps().max(1) as f64;
        let fifo = sys.fifo_occupancy_in(from, to);
        let violations = report
            .ppo_violations
            .iter()
            .filter(|v| violation_ts(v).is_some_and(|ts| ts >= from.as_ps() && ts < to.as_ps()))
            .count();
        cum_busy_ps += busy.as_ps();
        cum_violations += violations;
        println!(
            "{}\t{:.2}\t{:.2}\t{:.3}\t{}\t{}\t{:.2}\t{}",
            w,
            from.as_us(),
            to.as_us(),
            util,
            fifo,
            violations,
            cum_busy_ps as f64 / 1e6,
            cum_violations
        );
        // Falsifiable window invariant: a window can never hold more busy
        // time than its own width (a `covered_in` regression would trip it).
        assert!(
            busy.as_ps() <= to.since(from).as_ps(),
            "window {w} reports more NDP busy time than its width"
        );
    }
    // Sanity: the windowed decomposition must resum to the timeline total.
    assert_eq!(
        cum_busy_ps,
        timeline.ndp().total().as_ps(),
        "windowed NDP busy must resum to the timeline total"
    );
    println!(
        "(per-window NDP utilization + FIFO occupancy + violations; cumulative columns monotone; \
         windowed busy resums to {:.2} us exactly)",
        cum_busy_ps as f64 / 1e6
    );
}
