//! Figure 21 (beyond the paper): sensitivity of multithreaded throughput to
//! the request-FIFO depth — where does the control path become the
//! bottleneck?
//!
//! The prototype's front-end has a 32-entry request FIFO per device; the
//! backpressure model surfaces its high watermark and the time hosts spend
//! stalled at a full FIFO. This sweep runs the fig20-style 16-thread
//! memcached/redis configurations (the heaviest command streams we model)
//! with depth 4/8/16/32 and reports normalized throughput next to the
//! observed occupancy and stalls: shallow FIFOs serialize the hosts against
//! the front-end, deep FIFOs absorb the bursts until the units themselves
//! saturate.
//!
//! The `metaops` rows drive the synthetic short-device-program workload
//! (pure metadata ops: 64 B updates behind ~150 ns of compute over a small
//! working set), whose command rate per byte of device work is the highest
//! we model. The long unit programs of memcached/redis made the FIFO
//! pressure look like a side effect of DMA time; metadata ops reach the
//! same near-full natural occupancy (high watermark ≈ 16 at 16 threads)
//! with an order of magnitude less data movement, so the depth-4/8 knee in
//! the occupancy and stall columns is unambiguously the *control path*:
//! commands pile up behind in-flight commit resets (whose issue stages hold
//! their slots while the delayed sync completes), not behind the DMA
//! engines. Stall *time* stays small at every depth — a stalled post only
//! waits for the oldest front-end stage to retire — which is itself the
//! figure's finding: the prototype's depth of 32 has generous headroom.

use nearpm_bench::{header, ops_from_args};
use nearpm_cc::Mechanism;
use nearpm_core::ExecMode;
use nearpm_workloads::{MultiClientHarness, Workload};

/// Operations per client; override with `--ops N`.
const DEFAULT_OPS_PER_CLIENT: usize = 32;
/// Thread count of the sweep (the fig20 maximum, where FIFO pressure peaks).
const CLIENTS: usize = 16;
/// Swept request-FIFO depths; 32 is the prototype's value.
const DEPTHS: [usize; 4] = [4, 8, 16, 32];

fn main() {
    let ops = ops_from_args(DEFAULT_OPS_PER_CLIENT);
    for m in [Mechanism::Logging, Mechanism::ShadowPaging] {
        header(
            &format!(
                "Figure 21: FIFO-depth sensitivity at {CLIENTS} threads, {}",
                m.label()
            ),
            &[
                "workload",
                "fifo_depth",
                "norm_throughput_x",
                "fifo_hw",
                "stall_us",
                "stalls",
                "p99_us",
            ],
        );
        for w in [Workload::Memcached, Workload::Redis, Workload::MetaOps] {
            // The CPU baseline has no request FIFO: one baseline serves the
            // whole depth sweep (and the cache keeps it warm across the
            // depth clones below).
            let harness = MultiClientHarness::new(w, m)
                .with_clients(CLIENTS)
                .with_ops_per_client(ops)
                .with_latency_tracking(true);
            let base = harness.baseline().expect("baseline run failed");
            for depth in DEPTHS {
                let md = harness
                    .clone()
                    .with_fifo_depth(depth)
                    .run_mode(ExecMode::NearPmMd)
                    .expect("NearPM MD run failed");
                // Per-op p99 includes any admission stall at a full FIFO, so
                // shallow depths surface in the tail as well as in stall_us.
                let p99 = md.request_latency.as_ref().map_or(0.0, |l| l.p99.as_us());
                println!(
                    "{}\t{}\t{:.3}\t{}\t{:.2}\t{}\t{:.3}",
                    w.name(),
                    depth,
                    md.speedup_over(&base),
                    md.fifo_high_watermark,
                    md.fifo_stall_time.as_us(),
                    md.fifo_stalls,
                    p99
                );
            }
        }
    }
    println!(
        "(shallow FIFOs stall the hosts; at the prototype depth the units bottleneck instead)"
    );
}
