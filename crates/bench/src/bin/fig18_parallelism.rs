//! Figure 18: fraction of execution during which the CPU and NearPM devices
//! run in parallel (NearPM MD).
//!
//! Paper reference: 20.0 % (logging), 17.3 % (checkpointing),
//! 24.7 % (shadow paging) on average.

use nearpm_bench::{header, mechanisms, run_one, workloads, DEFAULT_OPS};
use nearpm_core::ExecMode;

fn main() {
    let paper = [20.01, 17.25, 24.68];
    header(
        "Figure 18: CPU-NearPM parallel execution fraction",
        &["mechanism", "parallel_%", "paper_%"],
    );
    for (i, m) in mechanisms().into_iter().enumerate() {
        let mut fractions = Vec::new();
        for w in workloads() {
            let r = run_one(w, m, ExecMode::NearPmMd, DEFAULT_OPS, 1);
            fractions.push(r.overlap_fraction * 100.0);
        }
        let avg = fractions.iter().sum::<f64>() / fractions.len() as f64;
        println!("{}\t{:.1}\t{:.1}", m.label(), avg, paper[i]);
    }
}
