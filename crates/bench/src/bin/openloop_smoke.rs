//! CI smoke gate for the open-loop traffic driver: the knee must be where
//! queueing theory says it is, and the latency histogram must agree with the
//! exact sorted-percentile oracle on every sampled window.
//!
//! Four check groups over the same machinery the fig22 figure prints:
//!
//! 1. **Below the knee** (0.6 μ, the million-op leg): achieved throughput
//!    tracks offered load within 10 %, p99 stays bounded (≤ 20× p50 — no
//!    queueing collapse), and the run completes at ≥ 1M requests inside the
//!    gate budget using the compacting trace path (windows double as
//!    compaction points).
//! 2. **Histogram oracle**: on every sampled window of both legs, the
//!    log-bucketed histogram's p50/p99/p999/max must equal the exact
//!    sorted-latency oracle's answer (bucket-edge equality, not a tolerance
//!    band).
//! 3. **Above the knee** (4 μ): throughput saturates near μ, delivery
//!    collapses, and the per-window p99 rises monotonically — the backlog
//!    grows without bound, exactly what a closed loop can never show.
//! 4. **Figure gate**: the shared `fig22_sweep` at reduced ops for all four
//!    CC mechanisms must produce a monotone non-decreasing p99 curve and a
//!    saturating throughput knee.
//!
//! Exits non-zero on any violation. `--ops N` overrides the million-op leg's
//! request count (CI runs the full default); `--json PATH` writes the gate's
//! measurements as a machine-readable record.

use nearpm_bench::json::JsonObject;
use nearpm_bench::{
    calibrate_service_rate, fig22_sweep, ops_from_args, p99_monotone, FIG22_LOAD_FRACTIONS,
};
use nearpm_cc::Mechanism;
use nearpm_workloads::{run_open_loop, ArrivalProcess, OpenLoopOptions, OpenLoopReport, Workload};

/// Requests of the million-op below-knee leg; override with `--ops N`.
const DEFAULT_OPS: usize = 1_000_000;
/// Workload of the scale legs: metadata ops have the highest command rate
/// per unit of simulated work we model, so a million requests stay cheap.
const WORKLOAD: Workload = Workload::MetaOps;
/// Server threads of the scale legs.
const THREADS: usize = 4;
/// Closed-loop operations of the μ calibration run.
const CALIBRATION_OPS: usize = 4096;
/// Requests per point of the reduced fig22 figure gate.
const SWEEP_OPS: usize = 96;
const SEED: u64 = 1;

fn json_path() -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--json" {
            return args.next();
        }
        if let Some(p) = a.strip_prefix("--json=") {
            return Some(p.to_string());
        }
    }
    None
}

/// Checks the histogram-vs-exact-oracle differential on every window.
fn windows_match_oracle(report: &OpenLoopReport, leg: &str, failures: &mut usize) {
    let mut bad = 0usize;
    for (i, w) in report.windows.iter().enumerate() {
        match w.matches_exact_oracle() {
            Some(true) => {}
            verdict => {
                eprintln!("  {leg} window {i}: histogram/oracle differential {verdict:?}");
                bad += 1;
            }
        }
    }
    let ok = bad == 0;
    println!(
        "  {leg}: {} windows vs exact oracle {}",
        report.windows.len(),
        if ok { "ok" } else { "DIVERGED" }
    );
    if !ok {
        *failures += 1;
    }
}

fn main() {
    let ops = ops_from_args(DEFAULT_OPS);
    let mut failures = 0usize;
    println!("openloop smoke: {ops} requests below the knee, {WORKLOAD:?} × {THREADS} threads");

    let mu = calibrate_service_rate(WORKLOAD, Mechanism::Logging, CALIBRATION_OPS, THREADS, SEED);
    println!("  calibrated service rate μ = {mu:.0} op/s");

    // Leg 1: below the knee at million-op scale, compacting trace path.
    let below = run_open_loop(
        &OpenLoopOptions::new(
            WORKLOAD,
            Mechanism::Logging,
            ArrivalProcess::poisson(0.6 * mu),
            ops,
        )
        .with_threads(THREADS)
        .with_seed(SEED)
        .with_windows(16)
        .with_exact_oracle(true)
        .with_trace_compaction(true),
    )
    .expect("below-knee run failed");
    let delivery = below.delivery_ratio();
    let ok = (0.9..=1.1).contains(&delivery);
    println!(
        "  below knee (0.6×μ): delivery {delivery:.3} {}",
        if ok {
            "ok"
        } else {
            "NOT TRACKING OFFERED LOAD"
        }
    );
    if !ok {
        failures += 1;
    }
    let (p50, p99) = (below.hist.percentile(0.5).as_us(), below.p99().as_us());
    let ok = p99 <= 20.0 * p50 && below.hist.count() == ops as u64;
    println!(
        "  below knee: p50 {p50:.3} µs, p99 {p99:.3} µs, {} requests {}",
        below.hist.count(),
        if ok { "ok" } else { "UNBOUNDED TAIL" }
    );
    if !ok {
        failures += 1;
    }
    windows_match_oracle(&below, "below knee", &mut failures);

    // Leg 2: above the knee — saturation and the monotone p99 blow-up.
    let above_ops = (ops / 8).max(1024);
    let above = run_open_loop(
        &OpenLoopOptions::new(
            WORKLOAD,
            Mechanism::Logging,
            ArrivalProcess::poisson(4.0 * mu),
            above_ops,
        )
        .with_threads(THREADS)
        .with_seed(SEED)
        .with_windows(8)
        .with_exact_oracle(true)
        .with_trace_compaction(true),
    )
    .expect("above-knee run failed");
    let ok = above.achieved_ops_per_s <= 1.3 * mu && above.delivery_ratio() < 0.7;
    println!(
        "  above knee (4×μ): achieved {:.0} op/s vs μ {mu:.0}, delivery {:.3} {}",
        above.achieved_ops_per_s,
        above.delivery_ratio(),
        if ok { "ok" } else { "NOT SATURATING" }
    );
    if !ok {
        failures += 1;
    }
    let window_p99s: Vec<f64> = above.windows.iter().map(|w| w.hist.p99().as_us()).collect();
    let rising = window_p99s.windows(2).all(|w| w[1] >= w[0])
        && window_p99s.last().copied().unwrap_or(0.0)
            >= 2.0 * window_p99s.first().copied().unwrap_or(f64::INFINITY);
    println!(
        "  above knee: window p99 {:.3} → {:.3} µs across {} windows {}",
        window_p99s.first().copied().unwrap_or(0.0),
        window_p99s.last().copied().unwrap_or(0.0),
        window_p99s.len(),
        if rising { "ok" } else { "NOT RISING" }
    );
    if !rising {
        failures += 1;
    }
    windows_match_oracle(&above, "above knee", &mut failures);

    // Leg 3: the figure gate — every mechanism's sweep must show the knee.
    let mut record_mechs = JsonObject::new();
    for m in Mechanism::all_extended() {
        let (sweep_mu, points) = fig22_sweep(m, SWEEP_OPS, SEED);
        let monotone = p99_monotone(&points, 0.02);
        let low = points.first().expect("sweep is non-empty");
        let high = points.last().expect("sweep is non-empty");
        let kneed = low.delivery_ratio >= 0.9
            && high.delivery_ratio < 0.8
            && high.achieved_ops_per_s <= 1.3 * sweep_mu;
        println!(
            "  fig22 {}: p99 {:.3} → {:.3} µs over {:?}×μ, delivery {:.3} → {:.3} {}",
            m.label(),
            low.p99_us,
            high.p99_us,
            FIG22_LOAD_FRACTIONS,
            low.delivery_ratio,
            high.delivery_ratio,
            match (monotone, kneed) {
                (true, true) => "ok",
                (false, _) => "P99 NOT MONOTONE",
                (_, false) => "NO KNEE",
            }
        );
        if !monotone || !kneed {
            failures += 1;
        }
        record_mechs = record_mechs.obj(
            m.label(),
            JsonObject::new()
                .num("service_rate_ops_per_s", sweep_mu)
                .num("p99_low_us", low.p99_us)
                .num("p99_high_us", high.p99_us)
                .num("delivery_low", low.delivery_ratio)
                .num("delivery_high", high.delivery_ratio),
        );
    }

    if let Some(path) = json_path() {
        JsonObject::new()
            .str("bench", "openloop_smoke")
            .int("operations", ops as u64)
            .num("service_rate_ops_per_s", mu)
            .num("below_knee_delivery", delivery)
            .num("below_knee_p99_us", p99)
            .num("above_knee_delivery", above.delivery_ratio())
            .int("above_knee_backlog_hw", above.max_backlog as u64)
            .int("failures", failures as u64)
            .obj("fig22", record_mechs)
            .write_to(&path)
            .expect("writing JSON record failed");
        println!("  (json record written to {path})");
    }

    if failures > 0 {
        eprintln!("openloop smoke FAILED: {failures} violations");
        std::process::exit(1);
    }
    println!("openloop smoke passed: knee where queueing predicts, histogram equals the oracle");
}
