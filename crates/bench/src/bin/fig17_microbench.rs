//! Figure 17: data-movement microbenchmark — NearPM copy speedup over a
//! CPU copy as the transfer size grows from 64 B to 16 kB.
//!
//! Paper reference: 1.13x at 64 B up to 5.57x at 16 kB.

use nearpm_bench::header;
use nearpm_sim::LatencyModel;

fn main() {
    let model = LatencyModel::default();
    header(
        "Figure 17: copy microbenchmark",
        &["size_bytes", "cpu_ns", "nearpm_ns", "speedup_x"],
    );
    for shift in [6u32, 8, 10, 12, 14] {
        let bytes = 1u64 << shift;
        let cpu = model.cpu_pm_copy(bytes).as_ns();
        let ndp = (model.cmd_issue() + model.ndp_dispatch() + model.ndp_copy(bytes)).as_ns();
        println!("{}\t{:.0}\t{:.0}\t{:.2}", bytes, cpu, ndp, cpu / ndp);
    }
    println!("(paper: 1.13x @ 64 B ... 5.57x @ 16 kB)");
}
