//! fig16-scale PPO checker smoke test: indexed vs naive, head to head.
//!
//! Builds a synthetic trace with the shape of a fig16 end-to-end run
//! (≥100k events), runs the naive oracle once and the indexed checkers
//! several times, verifies both report the identical violation list, and
//! asserts the indexed implementation is at least 10× faster. Exits nonzero
//! on any mismatch or if the speedup target is missed. `--json out.json`
//! additionally writes a flat machine-readable record (event count, wall
//! times, speedup) so the perf trajectory can be tracked across changes.
//!
//! Run with: `cargo run --release -p nearpm-bench --bin ppo_check_smoke`

use std::time::{Duration, Instant};

use nearpm_bench::json::JsonObject;
use nearpm_bench::synthetic::{synthetic_undo_log_trace, SyntheticTraceSpec};
use nearpm_ppo::check_all;
use nearpm_ppo::invariants::oracle;

const TARGET_EVENTS: usize = 120_000;
const REQUIRED_SPEEDUP: f64 = 10.0;

fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Parses `--json PATH` from the command line.
fn json_path() -> Option<String> {
    let mut json = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => {
                json = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--json requires a value");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!("unknown argument {other:?} (supported: --json PATH)");
                std::process::exit(2);
            }
        }
    }
    json
}

fn main() {
    let json = json_path();
    println!("== PPO checker smoke test (fig16 scale) ==");
    let spec = SyntheticTraceSpec::fig16(TARGET_EVENTS);
    let (trace, gen_time) = time(|| synthetic_undo_log_trace(spec));
    println!("trace: {} events (generated in {gen_time:?})", trace.len());
    assert!(
        trace.len() >= 100_000,
        "trace too small for the acceptance bar"
    );

    // Indexed: several runs, keep the fastest (steady-state figure).
    let mut indexed_best = Duration::MAX;
    let mut indexed_violations = Vec::new();
    for _ in 0..5 {
        let (v, d) = time(|| check_all(&trace));
        indexed_best = indexed_best.min(d);
        indexed_violations = v;
    }

    // Naive oracle: one run (it is the slow side by construction).
    let (naive_violations, naive_time) = time(|| oracle::check_all(&trace));

    println!("indexed check_all:  {indexed_best:?} (best of 5)");
    println!("naive   check_all:  {naive_time:?}");
    assert_eq!(
        indexed_violations, naive_violations,
        "indexed and naive checkers disagree at fig16 scale"
    );
    assert!(
        indexed_violations.is_empty(),
        "synthetic trace unexpectedly has violations: {indexed_violations:?}"
    );

    let speedup = naive_time.as_secs_f64() / indexed_best.as_secs_f64().max(1e-9);
    println!("speedup: {speedup:.1}x (required: ≥{REQUIRED_SPEEDUP:.0}x)");

    if let Some(path) = &json {
        let record = JsonObject::new()
            .str("bench", "ppo_check_smoke")
            .int("events", trace.len() as u64)
            .num("generate_seconds", gen_time.as_secs_f64())
            .num("indexed_seconds", indexed_best.as_secs_f64())
            .num("naive_seconds", naive_time.as_secs_f64())
            .num("speedup", speedup)
            .num("required_speedup", REQUIRED_SPEEDUP);
        record.write_to(path).unwrap_or_else(|e| {
            eprintln!("FAIL: cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!("wrote {path}");
    }

    if speedup < REQUIRED_SPEEDUP {
        eprintln!("FAIL: speedup below target");
        std::process::exit(1);
    }
    println!("OK: identical violation output, ≥{REQUIRED_SPEEDUP:.0}x speedup");
}
