//! Figure 15: speedup inside the crash-consistency code regions
//! (NearPM MD over the CPU baseline).
//!
//! Paper reference: average 6.9x (logging), 4.3x (checkpointing),
//! 9.8x (shadow paging); TATP logging is the outlier at ~1.23x.

use nearpm_bench::{gmean, header, mechanisms, run_one, workloads, DEFAULT_OPS};
use nearpm_core::ExecMode;

fn main() {
    let paper_avg = [6.9, 4.3, 9.8];
    for (i, m) in mechanisms().into_iter().enumerate() {
        header(
            &format!("Figure 15: CC-region speedup, {}", m.label()),
            &["workload", "speedup_x"],
        );
        let mut speedups = Vec::new();
        for w in workloads() {
            let base = run_one(w, m, ExecMode::CpuBaseline, DEFAULT_OPS, 1);
            let md = run_one(w, m, ExecMode::NearPmMd, DEFAULT_OPS, 1);
            let s = md.cc_speedup_over(&base);
            println!("{}\t{:.2}", w.name(), s);
            speedups.push(s);
        }
        println!(
            "average\t{:.2}\t(paper: {:.1})",
            gmean(&speedups),
            paper_avg[i]
        );
    }
}
