//! Figure 22 (beyond the paper): open-loop offered-load sweep — the
//! throughput knee and the p99 blow-up, per crash-consistency mechanism.
//!
//! Every other figure is closed-loop: N clients issue the next request only
//! when the previous one retires, so offered load can never exceed service
//! rate and queueing collapse is invisible by construction. This sweep
//! drives the same workloads as **open-loop traffic**: request arrivals come
//! from a seeded Poisson process at a configured rate, each request is
//! admitted at its arrival time, and latency is measured from arrival to
//! commit retire — including any wait in the host backlog and any stall at a
//! full device FIFO.
//!
//! For each mechanism the sweep first calibrates the closed-loop service
//! rate μ, then offers `FIG22_LOAD_FRACTIONS × μ`. Below the knee the
//! achieved throughput tracks the offered load (delivery ≈ 1) and p99 sits
//! at the service-time tail; past the knee throughput saturates near μ while
//! p99 and the host backlog grow without bound. The knee line reports the
//! highest offered load the server still delivered at ≥ 95 %.
//!
//! A second section fixes the offered load at 0.75 μ and swaps the arrival
//! process — Poisson vs bursty on/off vs sinusoidal diurnal at the **same
//! long-run mean rate** — showing how burstiness alone moves the tail.
//!
//! `--ops N` sets the requests per point; `--json PATH` writes the sweep as
//! a machine-readable record.

use nearpm_bench::json::JsonObject;
use nearpm_bench::{
    fig22_sweep, header, open_loop_point, ops_from_args, FIG22_THREADS, FIG22_WORKLOAD,
};
use nearpm_cc::Mechanism;
use nearpm_workloads::{run_open_loop, ArrivalProcess, OpenLoopOptions};

/// Requests per offered-load point; override with `--ops N`.
const DEFAULT_OPS_PER_POINT: usize = 192;
/// Seed of the sweep (workload content and arrivals derive independent
/// streams from it).
const SEED: u64 = 1;

fn json_path() -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--json" {
            return args.next();
        }
        if let Some(p) = a.strip_prefix("--json=") {
            return Some(p.to_string());
        }
    }
    None
}

fn main() {
    let ops = ops_from_args(DEFAULT_OPS_PER_POINT);
    let mut record = JsonObject::new()
        .str("bench", "fig22_open_loop")
        .str("workload", FIG22_WORKLOAD.name())
        .int("threads", FIG22_THREADS as u64)
        .int("ops_per_point", ops as u64);

    for m in Mechanism::all_extended() {
        let (mu, points) = fig22_sweep(m, ops, SEED);
        header(
            &format!(
                "Figure 22: open-loop offered-load sweep, {} (μ = {:.0} op/s)",
                m.label(),
                mu
            ),
            &[
                "load_frac",
                "offered_kops",
                "achieved_kops",
                "delivery",
                "p50_us",
                "p99_us",
                "backlog_hw",
                "wait_us",
                "fifo_stalls",
            ],
        );
        let mut mech_obj = JsonObject::new().num("service_rate_ops_per_s", mu);
        for p in &points {
            println!(
                "{:.2}\t{:.1}\t{:.1}\t{:.3}\t{:.3}\t{:.3}\t{}\t{:.3}\t{}",
                p.fraction,
                p.offered_ops_per_s / 1e3,
                p.achieved_ops_per_s / 1e3,
                p.delivery_ratio,
                p.p50_us,
                p.p99_us,
                p.max_backlog,
                p.mean_wait_us,
                p.fifo_stalls
            );
            mech_obj = mech_obj.obj(
                &format!("{:.2}", p.fraction),
                JsonObject::new()
                    .num("offered_ops_per_s", p.offered_ops_per_s)
                    .num("achieved_ops_per_s", p.achieved_ops_per_s)
                    .num("delivery_ratio", p.delivery_ratio)
                    .num("p50_us", p.p50_us)
                    .num("p99_us", p.p99_us)
                    .int("max_backlog", p.max_backlog as u64)
                    .int("fifo_stalls", p.fifo_stalls),
            );
        }
        let knee = points
            .iter()
            .filter(|p| p.delivery_ratio >= 0.95)
            .map(|p| p.fraction)
            .fold(0.0f64, f64::max);
        println!("(knee: delivery ≥ 0.95 holds through {knee:.2}×μ; beyond it p99 blows up)");
        record = record.obj(m.label(), mech_obj.num("knee_fraction", knee));
    }

    // Same mean offered load, three arrival processes: burstiness alone
    // moves the tail even when the long-run rate is identical.
    let mu = nearpm_bench::calibrate_service_rate(
        FIG22_WORKLOAD,
        Mechanism::Logging,
        ops.max(64),
        FIG22_THREADS,
        SEED,
    );
    let rate = 0.75 * mu;
    header(
        &format!(
            "Figure 22b: arrival-process shape at 0.75×μ, {} (same mean rate)",
            Mechanism::Logging.label()
        ),
        &[
            "process",
            "delivery",
            "p50_us",
            "p99_us",
            "backlog_hw",
            "wait_us",
        ],
    );
    let mut shape_obj = JsonObject::new().num("offered_ops_per_s", rate);
    // Diurnal is parameterized by its trough rate; divide by the sinusoid's
    // mean multiplier `(1 + peak) / 2` so all three processes offer the same
    // long-run rate.
    let diurnal_peak = 3.0;
    let diurnal_trough = rate / ((1.0 + diurnal_peak) / 2.0);
    for process in [
        ArrivalProcess::poisson(rate),
        ArrivalProcess::bursty(rate, 8.0, 16.0),
        ArrivalProcess::diurnal(diurnal_trough, diurnal_peak, 1.0e-4),
    ] {
        let opts = OpenLoopOptions::new(FIG22_WORKLOAD, Mechanism::Logging, process, ops)
            .with_threads(FIG22_THREADS)
            .with_seed(SEED);
        let report = run_open_loop(&opts).expect("open-loop run failed");
        let p = open_loop_point(report.offered_ops_per_s / mu, &report);
        println!(
            "{}\t{:.3}\t{:.3}\t{:.3}\t{}\t{:.3}",
            process.label(),
            p.delivery_ratio,
            p.p50_us,
            p.p99_us,
            p.max_backlog,
            p.mean_wait_us
        );
        shape_obj = shape_obj.obj(
            process.label(),
            JsonObject::new()
                .num("delivery_ratio", p.delivery_ratio)
                .num("p50_us", p.p50_us)
                .num("p99_us", p.p99_us)
                .int("max_backlog", p.max_backlog as u64),
        );
    }
    record = record.obj("arrival_shape_at_0p75mu", shape_obj);
    println!("(open loop: throughput tracks offered load until μ, then p99 diverges)");

    if let Some(path) = json_path() {
        record.write_to(&path).expect("writing JSON record failed");
        println!("(json record written to {path})");
    }
}
