//! # nearpm-bench — figure and table regeneration harness
//!
//! One binary per figure/table of the paper's evaluation (Section 8). Each
//! binary drives the workloads in `nearpm-workloads` under the relevant
//! configurations and prints the same rows/series the paper reports, plus the
//! paper's reference numbers for comparison. Absolute values differ (the
//! substrate is a simulator, not the authors' FPGA testbed), but the shape —
//! who wins, by roughly what factor — is the reproduction target.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod synthetic;

use nearpm_cc::Mechanism;
use nearpm_core::{ExecMode, RunReport};
use nearpm_sim::stats::geomean;
use nearpm_workloads::{RunOptions, Runner, Workload};

/// Default number of operations per workload run. Raised toward paper scale
/// now that trace checking and schedule analysis are ~linear; every figure
/// still regenerates in seconds. Override per run with `--ops N`.
pub const DEFAULT_OPS: usize = 256;

/// Parses `--ops N` (or `--ops=N`) from the process arguments, falling back
/// to `default`. Figure binaries use this so sweeps can be re-run at paper
/// scale (or quickly, in CI smoke mode) without recompiling.
pub fn ops_from_args(default: usize) -> usize {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--ops" {
            if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                return n;
            }
            eprintln!("--ops expects a positive integer; using {default}");
        } else if let Some(v) = a.strip_prefix("--ops=") {
            if let Ok(n) = v.parse() {
                return n;
            }
            eprintln!("--ops expects a positive integer; using {default}");
        }
    }
    default
}

/// Runs one workload/mechanism/mode combination.
pub fn run_one(w: Workload, m: Mechanism, mode: ExecMode, ops: usize, seed: u64) -> RunReport {
    Runner::new(w, RunOptions::new(mode, m, ops).with_seed(seed))
        .run()
        .expect("workload run failed")
}

/// Runs one combination with explicit thread / unit counts.
pub fn run_custom(
    w: Workload,
    m: Mechanism,
    mode: ExecMode,
    ops: usize,
    threads: usize,
    units: usize,
    seed: u64,
) -> RunReport {
    Runner::new(
        w,
        RunOptions::new(mode, m, ops)
            .with_threads(threads)
            .with_units(units)
            .with_seed(seed),
    )
    .run()
    .expect("workload run failed")
}

/// Pretty-prints a table header.
pub fn header(title: &str, columns: &[&str]) {
    println!("\n== {title} ==");
    println!("{}", columns.join("\t"));
}

/// Geometric mean helper re-exported for the binaries.
pub fn gmean(values: &[f64]) -> f64 {
    geomean(values.iter().copied())
}

/// All (mechanism, per-mechanism paper averages) used in several figures.
pub fn mechanisms() -> [Mechanism; 3] {
    Mechanism::all()
}

/// All workloads in figure order.
pub fn workloads() -> [Workload; 9] {
    Workload::all()
}
