//! # nearpm-bench — figure and table regeneration harness
//!
//! One binary per figure/table of the paper's evaluation (Section 8). Each
//! binary drives the workloads in `nearpm-workloads` under the relevant
//! configurations and prints the same rows/series the paper reports, plus the
//! paper's reference numbers for comparison. Absolute values differ (the
//! substrate is a simulator, not the authors' FPGA testbed), but the shape —
//! who wins, by roughly what factor — is the reproduction target.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod synthetic;

use nearpm_cc::Mechanism;
use nearpm_core::{ExecMode, RunReport};
use nearpm_sim::stats::geomean;
use nearpm_workloads::{
    run_open_loop, ArrivalProcess, MultiClientHarness, OpenLoopOptions, OpenLoopReport, RunOptions,
    Runner, Workload,
};

/// Default number of operations per workload run. Raised toward paper scale
/// now that trace checking and schedule analysis are ~linear; every figure
/// still regenerates in seconds. Override per run with `--ops N`.
pub const DEFAULT_OPS: usize = 256;

/// Parses `--ops N` (or `--ops=N`) from the process arguments, falling back
/// to `default`. Figure binaries use this so sweeps can be re-run at paper
/// scale (or quickly, in CI smoke mode) without recompiling.
pub fn ops_from_args(default: usize) -> usize {
    parse_ops(std::env::args().skip(1), default)
}

/// Parses `--ops N` / `--ops=N` from an argument stream.
///
/// Zero is rejected like any other invalid value (with a warning and the
/// default): a zero-op run has a zero makespan, which used to make fig20's
/// `makespan/makespan` ratio silently report 0.0 instead of a measurement.
pub fn parse_ops<I: Iterator<Item = String>>(mut args: I, default: usize) -> usize {
    while let Some(a) = args.next() {
        let value = if a == "--ops" {
            match args.next() {
                Some(v) => v,
                None => {
                    eprintln!("--ops expects a positive integer; using {default}");
                    continue;
                }
            }
        } else if let Some(v) = a.strip_prefix("--ops=") {
            v.to_string()
        } else {
            continue;
        };
        match value.parse::<usize>() {
            Ok(n) if n > 0 => return n,
            _ => eprintln!("--ops expects a positive integer, got {value:?}; using {default}"),
        }
    }
    default
}

/// Runs one workload/mechanism/mode combination.
pub fn run_one(w: Workload, m: Mechanism, mode: ExecMode, ops: usize, seed: u64) -> RunReport {
    Runner::new(w, RunOptions::new(mode, m, ops).with_seed(seed))
        .run()
        .expect("workload run failed")
}

/// Runs one combination with explicit thread / unit counts.
pub fn run_custom(
    w: Workload,
    m: Mechanism,
    mode: ExecMode,
    ops: usize,
    threads: usize,
    units: usize,
    seed: u64,
) -> RunReport {
    Runner::new(
        w,
        RunOptions::new(mode, m, ops)
            .with_threads(threads)
            .with_units(units)
            .with_seed(seed),
    )
    .run()
    .expect("workload run failed")
}

/// Pretty-prints a table header.
pub fn header(title: &str, columns: &[&str]) {
    println!("\n== {title} ==");
    println!("{}", columns.join("\t"));
}

/// Geometric mean helper re-exported for the binaries.
pub fn gmean(values: &[f64]) -> f64 {
    geomean(values.iter().copied())
}

/// All (mechanism, per-mechanism paper averages) used in several figures.
pub fn mechanisms() -> [Mechanism; 3] {
    Mechanism::all()
}

/// All workloads in figure order.
pub fn workloads() -> [Workload; 9] {
    Workload::all()
}

/// Client counts of the fig19 units×clients sweep (and its smoke gate). One
/// closed-loop client cannot contend the units; the heavier points are what
/// let the unit count matter.
pub const FIG19_CLIENTS: [usize; 3] = [1, 4, 8];

/// Unit counts of the fig19 sweep, in the paper's order.
pub const FIG19_UNITS: [usize; 3] = [1, 2, 4];

/// One unit-count row of the fig19 units×clients sweep.
#[derive(Debug, Clone)]
pub struct Fig19Point {
    /// NearPM units per device of this row.
    pub units: usize,
    /// Per-client-count average speedup (gmean over all workloads), indexed
    /// like [`FIG19_CLIENTS`].
    pub per_clients: Vec<f64>,
    /// Combined average over workloads × client counts (the figure's
    /// headline curve, and what the smoke gate requires to grow strictly).
    pub combined: f64,
    /// Lowest per-unit utilization seen across the row's NearPM MD runs.
    pub util_min: f64,
    /// Highest per-unit utilization seen across the row's NearPM MD runs.
    pub util_max: f64,
    /// Total PPO violations across the row's NearPM MD runs (must be 0).
    pub violations: usize,
}

/// The fig19 units×clients sweep (logging, NearPM MD vs an equal-client CPU
/// baseline): one [`Fig19Point`] per entry of [`FIG19_UNITS`]. Shared by the
/// `fig19_units_sweep` figure binary and the `fig19_smoke` CI gate so the
/// gate can never desynchronize from the published figure.
pub fn fig19_sweep(ops_per_client: usize) -> Vec<Fig19Point> {
    // The equal-client baseline is independent of the unit count: one
    // baseline per (workload, clients) point serves the whole unit sweep.
    let baselines: Vec<Vec<RunReport>> = workloads()
        .iter()
        .map(|&w| {
            FIG19_CLIENTS
                .iter()
                .map(|&c| {
                    MultiClientHarness::new(w, Mechanism::Logging)
                        .with_clients(c)
                        .with_ops_per_client(ops_per_client)
                        .baseline()
                        .expect("baseline run failed")
                })
                .collect()
        })
        .collect();
    FIG19_UNITS
        .iter()
        .map(|&units| {
            let mut per_clients: Vec<Vec<f64>> = vec![Vec::new(); FIG19_CLIENTS.len()];
            let mut util_min = f64::INFINITY;
            let mut util_max = 0.0f64;
            let mut violations = 0usize;
            for (wi, &w) in workloads().iter().enumerate() {
                for (ci, &clients) in FIG19_CLIENTS.iter().enumerate() {
                    // Each MD device runs a second decode stage: with 8
                    // clients hammering 4 units, a single decode lane is the
                    // front-end bottleneck that flattened the sweep's tail.
                    let md = MultiClientHarness::new(w, Mechanism::Logging)
                        .with_clients(clients)
                        .with_ops_per_client(ops_per_client)
                        .with_units(units)
                        .with_decode_lanes(2)
                        .run_mode(ExecMode::NearPmMd)
                        .expect("NearPM MD run failed");
                    for &(_, util) in &md.ndp_unit_utilization {
                        util_min = util_min.min(util);
                        util_max = util_max.max(util);
                    }
                    violations += md.ppo_violations.len();
                    per_clients[ci].push(md.speedup_over(&baselines[wi][ci]));
                }
            }
            let all: Vec<f64> = per_clients.iter().flatten().copied().collect();
            Fig19Point {
                units,
                per_clients: per_clients.iter().map(|s| gmean(s)).collect(),
                combined: gmean(&all),
                util_min,
                util_max,
                violations,
            }
        })
        .collect()
}

/// Average single-client NearPM MD speedup over the CPU baseline (gmean over
/// all workloads) at `units` units — the seed-reproduction anchor of the
/// fig19 smoke gate.
pub fn fig19_single_client_avg(ops: usize, units: usize) -> f64 {
    let speedups: Vec<f64> = workloads()
        .iter()
        .map(|&w| {
            let h = MultiClientHarness::new(w, Mechanism::Logging).with_ops_per_client(ops);
            let base = h.baseline().expect("baseline run failed");
            let md = h
                .with_units(units)
                .run_mode(ExecMode::NearPmMd)
                .expect("NearPM MD run failed");
            md.speedup_over(&base)
        })
        .collect();
    gmean(&speedups)
}

/// Offered-load fractions (× the calibrated service rate μ) of the fig22
/// open-loop sweep. Spans well below the knee (0.25) to deep saturation
/// (4.0) so both the flat throughput-tracks-offered region and the p99
/// blow-up are on the curve.
pub const FIG22_LOAD_FRACTIONS: [f64; 7] = [0.25, 0.5, 0.75, 1.0, 1.5, 2.5, 4.0];

/// Workload of the fig22 open-loop sweep (the same YCSB-driven memcached
/// the paper's multithreaded figures lead with).
pub const FIG22_WORKLOAD: Workload = Workload::Memcached;

/// Server threads of the fig22 open-loop sweep.
pub const FIG22_THREADS: usize = 4;

/// One offered-load point of the fig22 open-loop sweep.
#[derive(Debug, Clone)]
pub struct OpenLoopPoint {
    /// Offered load as a fraction of the calibrated service rate μ.
    pub fraction: f64,
    /// Offered load (mean arrival rate, operations per second).
    pub offered_ops_per_s: f64,
    /// Achieved throughput (operations over the makespan).
    pub achieved_ops_per_s: f64,
    /// `achieved / offered` (≈ 1 below the knee, < 1 above it).
    pub delivery_ratio: f64,
    /// Median per-request latency (arrival → commit retire), microseconds.
    pub p50_us: f64,
    /// p99 per-request latency, microseconds.
    pub p99_us: f64,
    /// Host-backlog high watermark (arrived but not yet in service).
    pub max_backlog: usize,
    /// Mean arrival → service-start wait, microseconds.
    pub mean_wait_us: f64,
    /// Device request-FIFO full stalls over the run.
    pub fifo_stalls: u64,
}

/// Closed-loop service rate μ (operations per second) of one
/// workload/mechanism pair at `threads` threads — the calibration point the
/// open-loop sweep expresses its offered loads against.
pub fn calibrate_service_rate(
    w: Workload,
    m: Mechanism,
    ops: usize,
    threads: usize,
    seed: u64,
) -> f64 {
    let report = Runner::new(
        w,
        RunOptions::new(ExecMode::NearPmMd, m, ops)
            .with_threads(threads)
            .with_seed(seed),
    )
    .run()
    .expect("calibration run failed");
    ops as f64 / report.makespan.as_secs()
}

/// The fig22 offered-load sweep for one mechanism: calibrate μ closed-loop,
/// then drive Poisson open-loop traffic at every [`FIG22_LOAD_FRACTIONS`]
/// multiple of μ with `ops` requests per point. Returns `(μ, points)`.
/// Shared by the `fig22_open_loop` figure binary and the `openloop_smoke`
/// CI gate so the gate can never desynchronize from the figure.
pub fn fig22_sweep(m: Mechanism, ops: usize, seed: u64) -> (f64, Vec<OpenLoopPoint>) {
    let mu = calibrate_service_rate(FIG22_WORKLOAD, m, ops.max(64), FIG22_THREADS, seed);
    let points = FIG22_LOAD_FRACTIONS
        .iter()
        .map(|&fraction| {
            let opts = OpenLoopOptions::new(
                FIG22_WORKLOAD,
                m,
                ArrivalProcess::poisson(fraction * mu),
                ops,
            )
            .with_threads(FIG22_THREADS)
            .with_seed(seed);
            let report = run_open_loop(&opts).expect("open-loop run failed");
            open_loop_point(fraction, &report)
        })
        .collect();
    (mu, points)
}

/// Flattens one [`OpenLoopReport`] into the fig22 row shape.
pub fn open_loop_point(fraction: f64, report: &OpenLoopReport) -> OpenLoopPoint {
    OpenLoopPoint {
        fraction,
        offered_ops_per_s: report.offered_ops_per_s,
        achieved_ops_per_s: report.achieved_ops_per_s,
        delivery_ratio: report.delivery_ratio(),
        p50_us: report.hist.percentile(0.5).as_us(),
        p99_us: report.hist.p99().as_us(),
        max_backlog: report.max_backlog,
        mean_wait_us: report.mean_admission_wait.as_us(),
        fifo_stalls: report.report.fifo_stalls,
    }
}

/// Whether the sweep's p99 curve is monotone non-decreasing in offered
/// load, modulo `slack` (fractional tolerance for the histogram's ≤ 0.78 %
/// bucket quantization — below the knee consecutive points measure the same
/// service-time tail and may land one bucket apart in either direction).
pub fn p99_monotone(points: &[OpenLoopPoint], slack: f64) -> bool {
    points
        .windows(2)
        .all(|w| w[1].p99_us >= w[0].p99_us * (1.0 - slack))
}

#[cfg(test)]
mod tests {
    use super::parse_ops;

    fn args(list: &[&str]) -> impl Iterator<Item = String> {
        list.iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .into_iter()
    }

    #[test]
    fn parse_ops_accepts_both_forms() {
        assert_eq!(parse_ops(args(&["--ops", "128"]), 48), 128);
        assert_eq!(parse_ops(args(&["--ops=96"]), 48), 96);
        assert_eq!(parse_ops(args(&["--seed", "1", "--ops", "7"]), 48), 7);
        assert_eq!(parse_ops(args(&[]), 48), 48);
    }

    #[test]
    fn parse_ops_rejects_zero_and_garbage() {
        assert_eq!(parse_ops(args(&["--ops", "0"]), 48), 48);
        assert_eq!(parse_ops(args(&["--ops=0"]), 48), 48);
        assert_eq!(parse_ops(args(&["--ops", "banana"]), 48), 48);
        assert_eq!(parse_ops(args(&["--ops=-3"]), 48), 48);
        assert_eq!(parse_ops(args(&["--ops"]), 48), 48);
    }
}
