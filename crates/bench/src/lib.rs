//! # nearpm-bench — figure and table regeneration harness
//!
//! One binary per figure/table of the paper's evaluation (Section 8). Each
//! binary drives the workloads in `nearpm-workloads` under the relevant
//! configurations and prints the same rows/series the paper reports, plus the
//! paper's reference numbers for comparison. Absolute values differ (the
//! substrate is a simulator, not the authors' FPGA testbed), but the shape —
//! who wins, by roughly what factor — is the reproduction target.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod synthetic;

use nearpm_cc::Mechanism;
use nearpm_core::{ExecMode, RunReport};
use nearpm_sim::stats::geomean;
use nearpm_workloads::{RunOptions, Runner, Workload};

/// Default number of operations per workload run. Raised toward paper scale
/// now that trace checking and schedule analysis are ~linear; every figure
/// still regenerates in seconds. Override per run with `--ops N`.
pub const DEFAULT_OPS: usize = 256;

/// Parses `--ops N` (or `--ops=N`) from the process arguments, falling back
/// to `default`. Figure binaries use this so sweeps can be re-run at paper
/// scale (or quickly, in CI smoke mode) without recompiling.
pub fn ops_from_args(default: usize) -> usize {
    parse_ops(std::env::args().skip(1), default)
}

/// Parses `--ops N` / `--ops=N` from an argument stream.
///
/// Zero is rejected like any other invalid value (with a warning and the
/// default): a zero-op run has a zero makespan, which used to make fig20's
/// `makespan/makespan` ratio silently report 0.0 instead of a measurement.
pub fn parse_ops<I: Iterator<Item = String>>(mut args: I, default: usize) -> usize {
    while let Some(a) = args.next() {
        let value = if a == "--ops" {
            match args.next() {
                Some(v) => v,
                None => {
                    eprintln!("--ops expects a positive integer; using {default}");
                    continue;
                }
            }
        } else if let Some(v) = a.strip_prefix("--ops=") {
            v.to_string()
        } else {
            continue;
        };
        match value.parse::<usize>() {
            Ok(n) if n > 0 => return n,
            _ => eprintln!("--ops expects a positive integer, got {value:?}; using {default}"),
        }
    }
    default
}

/// Runs one workload/mechanism/mode combination.
pub fn run_one(w: Workload, m: Mechanism, mode: ExecMode, ops: usize, seed: u64) -> RunReport {
    Runner::new(w, RunOptions::new(mode, m, ops).with_seed(seed))
        .run()
        .expect("workload run failed")
}

/// Runs one combination with explicit thread / unit counts.
pub fn run_custom(
    w: Workload,
    m: Mechanism,
    mode: ExecMode,
    ops: usize,
    threads: usize,
    units: usize,
    seed: u64,
) -> RunReport {
    Runner::new(
        w,
        RunOptions::new(mode, m, ops)
            .with_threads(threads)
            .with_units(units)
            .with_seed(seed),
    )
    .run()
    .expect("workload run failed")
}

/// Pretty-prints a table header.
pub fn header(title: &str, columns: &[&str]) {
    println!("\n== {title} ==");
    println!("{}", columns.join("\t"));
}

/// Geometric mean helper re-exported for the binaries.
pub fn gmean(values: &[f64]) -> f64 {
    geomean(values.iter().copied())
}

/// All (mechanism, per-mechanism paper averages) used in several figures.
pub fn mechanisms() -> [Mechanism; 3] {
    Mechanism::all()
}

/// All workloads in figure order.
pub fn workloads() -> [Workload; 9] {
    Workload::all()
}

#[cfg(test)]
mod tests {
    use super::parse_ops;

    fn args(list: &[&str]) -> impl Iterator<Item = String> {
        list.iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .into_iter()
    }

    #[test]
    fn parse_ops_accepts_both_forms() {
        assert_eq!(parse_ops(args(&["--ops", "128"]), 48), 128);
        assert_eq!(parse_ops(args(&["--ops=96"]), 48), 96);
        assert_eq!(parse_ops(args(&["--seed", "1", "--ops", "7"]), 48), 7);
        assert_eq!(parse_ops(args(&[]), 48), 48);
    }

    #[test]
    fn parse_ops_rejects_zero_and_garbage() {
        assert_eq!(parse_ops(args(&["--ops", "0"]), 48), 48);
        assert_eq!(parse_ops(args(&["--ops=0"]), 48), 48);
        assert_eq!(parse_ops(args(&["--ops", "banana"]), 48), 48);
        assert_eq!(parse_ops(args(&["--ops=-3"]), 48), 48);
        assert_eq!(parse_ops(args(&["--ops"]), 48), 48);
    }
}
