//! Minimal hand-rolled JSON emission for the smoke gates' `--json` records.
//!
//! The workspace deliberately carries no serialization dependency, and the
//! records the gates write are flat benchmark summaries (`BENCH_report.json`
//! style: event counts, wall times, speedups), so a tiny order-preserving
//! object builder is all that is needed. Numbers are emitted with Rust's
//! shortest-roundtrip `{}` formatting; non-finite floats become `null`
//! (JSON has no NaN/Infinity).

use std::fmt::Write as _;

/// An insertion-ordered JSON object under construction.
#[derive(Debug, Default, Clone)]
pub struct JsonObject {
    fields: Vec<(String, String)>,
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl JsonObject {
    /// An empty object.
    pub fn new() -> Self {
        Self::default()
    }

    fn raw(mut self, key: &str, value: String) -> Self {
        self.fields.push((key.to_string(), value));
        self
    }

    /// Adds a string field.
    pub fn str(self, key: &str, value: &str) -> Self {
        let value = format!("\"{}\"", escape(value));
        self.raw(key, value)
    }

    /// Adds an integer field.
    pub fn int(self, key: &str, value: u64) -> Self {
        let value = value.to_string();
        self.raw(key, value)
    }

    /// Adds a float field (`null` when not finite).
    pub fn num(self, key: &str, value: f64) -> Self {
        let value = if value.is_finite() {
            format!("{value}")
        } else {
            "null".to_string()
        };
        self.raw(key, value)
    }

    /// Adds a nested object field.
    pub fn obj(self, key: &str, value: JsonObject) -> Self {
        let value = value.render();
        self.raw(key, value)
    }

    /// Serializes the object (no trailing newline).
    pub fn render(&self) -> String {
        let mut out = String::from("{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", escape(k), v);
        }
        out.push('}');
        out
    }

    /// Writes the object (plus a trailing newline) to `path`, creating the
    /// parent directory if needed.
    pub fn write_to(&self, path: &str) -> std::io::Result<()> {
        if let Some(parent) = std::path::Path::new(path).parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.render() + "\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_flat_and_nested_fields_in_insertion_order() {
        let j = JsonObject::new()
            .str("bench", "report_smoke")
            .int("events", 1_000_000)
            .num("speedup", 12.5)
            .obj("parallel", JsonObject::new().num("2", 0.25));
        assert_eq!(
            j.render(),
            r#"{"bench":"report_smoke","events":1000000,"speedup":12.5,"parallel":{"2":0.25}}"#
        );
    }

    #[test]
    fn escapes_strings_and_nulls_non_finite_numbers() {
        let j = JsonObject::new()
            .str("s", "a\"b\\c\nd")
            .num("nan", f64::NAN);
        assert_eq!(j.render(), r#"{"s":"a\"b\\c\nd","nan":null}"#);
    }
}
