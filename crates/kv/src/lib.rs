//! # nearpm-kv — crash-consistent key-value structures
//!
//! Persistent key-value structures of the kind the paper's workloads exercise
//! (the PMDK example stores and PmemKV's B+-tree backend), built on the
//! transactional layer of `nearpm-pmdk`, so every mutation is failure-atomic
//! and transparently accelerated when the system has NearPM devices.
//!
//! * [`PersistentHashMap`] — fixed-bucket open-addressing hash map with
//!   64-byte values (the `hashmap` workload and the Memcached/Redis value
//!   store shape).
//! * [`PersistentIndex`] — sorted persistent index with fixed-size slots (the
//!   B-tree/B+-tree workloads' leaf-update shape).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;

use nearpm_core::{NearPmSystem, Result, SystemError, VirtAddr};
use nearpm_pmdk::ObjPool;

/// Size of a stored value in bytes (the paper's workloads use 64 B values).
pub const VALUE_SIZE: usize = 64;
/// Size of one slot: 8-byte key + 8-byte state + value.
const SLOT_SIZE: u64 = 16 + VALUE_SIZE as u64;
const STATE_FULL: u64 = 1;

fn encode_slot(key: u64, value: &[u8]) -> Vec<u8> {
    let mut buf = vec![0u8; SLOT_SIZE as usize];
    buf[0..8].copy_from_slice(&key.to_le_bytes());
    buf[8..16].copy_from_slice(&STATE_FULL.to_le_bytes());
    let n = value.len().min(VALUE_SIZE);
    buf[16..16 + n].copy_from_slice(&value[..n]);
    buf
}

fn decode_slot(buf: &[u8]) -> Option<(u64, Vec<u8>)> {
    let key = u64::from_le_bytes(buf[0..8].try_into().ok()?);
    let state = u64::from_le_bytes(buf[8..16].try_into().ok()?);
    if state == STATE_FULL {
        Some((key, buf[16..16 + VALUE_SIZE].to_vec()))
    } else {
        None
    }
}

/// A crash-consistent open-addressing hash map with a fixed bucket count.
#[derive(Debug)]
pub struct PersistentHashMap {
    base: VirtAddr,
    buckets: u64,
    len: usize,
}

impl PersistentHashMap {
    /// Creates a map with `buckets` slots inside `pool`.
    pub fn create(sys: &mut NearPmSystem, pool: &mut ObjPool, buckets: u64) -> Result<Self> {
        let base = pool.alloc(sys, buckets * SLOT_SIZE)?;
        // Zero-initialize the bucket array durably.
        for b in 0..buckets {
            pool.write_persist(sys, base.offset(b * SLOT_SIZE), &[0u8; SLOT_SIZE as usize])?;
        }
        Ok(PersistentHashMap {
            base,
            buckets,
            len: 0,
        })
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn slot_addr(&self, idx: u64) -> VirtAddr {
        self.base.offset((idx % self.buckets) * SLOT_SIZE)
    }

    fn hash(&self, key: u64) -> u64 {
        key.wrapping_mul(0x9E37_79B9_7F4A_7C15) % self.buckets
    }

    /// Inserts or updates `key` with `value` failure-atomically (one
    /// transaction per key; use [`PersistentHashMap::put_batch`] to fold a
    /// write burst into a single transaction). Returns
    /// [`SystemError::MapFull`] when probing finds no slot for a new key;
    /// the map is left untouched.
    pub fn put(
        &mut self,
        sys: &mut NearPmSystem,
        pool: &mut ObjPool,
        key: u64,
        value: &[u8],
    ) -> Result<()> {
        let (addr, is_new) = self.probe_slot(sys, pool, key)?;
        let bytes = encode_slot(key, value);
        pool.tx(sys, |tx, sys| tx.write(sys, addr, &bytes))?;
        if is_new {
            self.len += 1;
        }
        Ok(())
    }

    /// Inserts or updates a whole burst of `(key, value)` pairs in **one**
    /// failure-atomic transaction: every touched slot is undo-logged under a
    /// single transaction id and released by a single commit (one commit
    /// command per device instead of one per key). This is the shape of the
    /// paper's Memcached/Redis integrations, which batch a YCSB write burst
    /// per request into one NearPM transaction.
    ///
    /// Returns [`SystemError::MapFull`] when any entry of the burst finds no
    /// slot. Slots are resolved before the transaction opens, so a full map
    /// rejects the whole burst without writing anything.
    pub fn put_batch(
        &mut self,
        sys: &mut NearPmSystem,
        pool: &mut ObjPool,
        entries: &[(u64, &[u8])],
    ) -> Result<()> {
        if entries.is_empty() {
            return Ok(());
        }
        // Resolve every key to its slot before opening the transaction (probe
        // reads stay outside the failure-atomic section, as in `put`). The
        // batch's own pending writes are not visible to those reads, so
        // probing must treat slots claimed by *earlier entries with a
        // different key* as occupied — otherwise two colliding new keys
        // would both land in the same empty slot.
        let mut claimed: HashMap<VirtAddr, u64> = HashMap::new();
        let mut writes: Vec<(VirtAddr, Vec<u8>, bool)> = Vec::with_capacity(entries.len());
        for (key, value) in entries {
            let mut idx = self.hash(*key);
            let mut slot = None;
            for _ in 0..self.buckets {
                let addr = self.slot_addr(idx);
                if let Some(owner) = claimed.get(&addr) {
                    if owner == key {
                        // Duplicate key inside the batch: the later value
                        // overwrites, and the key counts as new only once.
                        slot = Some((addr, false));
                        break;
                    }
                    idx += 1;
                    continue;
                }
                let existing = pool.read(sys, addr, SLOT_SIZE as usize)?;
                match decode_slot(&existing) {
                    Some((k, _)) if k != *key => idx += 1,
                    existing_entry => {
                        slot = Some((addr, existing_entry.is_none()));
                        break;
                    }
                }
            }
            let Some((addr, is_new)) = slot else {
                // Probing exhausted every bucket before any slot was logged:
                // the map state is untouched, so the caller can recover (drop
                // entries, grow into a new map, …).
                return Err(SystemError::MapFull {
                    buckets: self.buckets,
                });
            };
            claimed.insert(addr, *key);
            writes.push((addr, encode_slot(*key, value), is_new));
        }
        pool.tx(sys, |tx, sys| {
            for (addr, bytes, _) in &writes {
                tx.write(sys, *addr, bytes)?;
            }
            Ok(())
        })?;
        self.len += writes.iter().filter(|(_, _, is_new)| *is_new).count();
        Ok(())
    }

    /// Probes for `key`'s slot, returning its address and whether the slot is
    /// currently empty (a new insertion).
    fn probe_slot(
        &mut self,
        sys: &mut NearPmSystem,
        pool: &mut ObjPool,
        key: u64,
    ) -> Result<(VirtAddr, bool)> {
        let mut idx = self.hash(key);
        for _ in 0..self.buckets {
            let addr = self.slot_addr(idx);
            let existing = pool.read(sys, addr, SLOT_SIZE as usize)?;
            match decode_slot(&existing) {
                Some((k, _)) if k != key => idx += 1,
                existing_entry => return Ok((addr, existing_entry.is_none())),
            }
        }
        Err(SystemError::MapFull {
            buckets: self.buckets,
        })
    }

    /// Looks up `key`.
    pub fn get(
        &mut self,
        sys: &mut NearPmSystem,
        pool: &mut ObjPool,
        key: u64,
    ) -> Result<Option<Vec<u8>>> {
        let mut idx = self.hash(key);
        for _ in 0..self.buckets {
            let addr = self.slot_addr(idx);
            let raw = pool.read(sys, addr, SLOT_SIZE as usize)?;
            match decode_slot(&raw) {
                Some((k, v)) if k == key => return Ok(Some(v)),
                Some(_) => idx += 1,
                None => return Ok(None),
            }
        }
        Ok(None)
    }

    /// Re-reads an entry from the persistent image (used by recovery tests).
    pub fn get_persistent(&self, sys: &mut NearPmSystem, key: u64) -> Result<Option<Vec<u8>>> {
        let mut idx = self.hash(key);
        for _ in 0..self.buckets {
            let addr = self.slot_addr(idx);
            let raw = sys.persistent_read(addr, SLOT_SIZE as usize)?;
            match decode_slot(&raw) {
                Some((k, v)) if k == key => return Ok(Some(v)),
                Some(_) => idx += 1,
                None => return Ok(None),
            }
        }
        Ok(None)
    }
}

/// A crash-consistent sorted index with fixed-size slots (insertion shifts
/// within a leaf region, like a B+-tree leaf).
#[derive(Debug)]
pub struct PersistentIndex {
    base: VirtAddr,
    capacity: u64,
    keys: Vec<u64>,
}

impl PersistentIndex {
    /// Creates an index with room for `capacity` entries.
    pub fn create(sys: &mut NearPmSystem, pool: &mut ObjPool, capacity: u64) -> Result<Self> {
        let base = pool.alloc(sys, capacity * SLOT_SIZE)?;
        Ok(PersistentIndex {
            base,
            capacity,
            keys: Vec::new(),
        })
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True if the index is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Inserts `key` with `value`, keeping entries sorted by key.
    pub fn insert(
        &mut self,
        sys: &mut NearPmSystem,
        pool: &mut ObjPool,
        key: u64,
        value: &[u8],
    ) -> Result<()> {
        assert!((self.keys.len() as u64) < self.capacity, "index full");
        let pos = self.keys.partition_point(|&k| k < key);
        let bytes = encode_slot(key, value);
        // Shift the tail within one transaction, then write the new slot —
        // the write amplification pattern of a sorted leaf.
        pool.tx(sys, |tx, sys| {
            for i in (pos..self.keys.len()).rev() {
                let from = self.base.offset(i as u64 * SLOT_SIZE);
                let to = self.base.offset((i as u64 + 1) * SLOT_SIZE);
                let data = tx.read(sys, from, SLOT_SIZE as usize)?;
                tx.write(sys, to, &data)?;
            }
            tx.write(sys, self.base.offset(pos as u64 * SLOT_SIZE), &bytes)
        })?;
        self.keys.insert(pos, key);
        Ok(())
    }

    /// Looks up `key`.
    pub fn get(
        &mut self,
        sys: &mut NearPmSystem,
        pool: &mut ObjPool,
        key: u64,
    ) -> Result<Option<Vec<u8>>> {
        match self.keys.binary_search(&key) {
            Ok(pos) => {
                let raw = pool.read(
                    sys,
                    self.base.offset(pos as u64 * SLOT_SIZE),
                    SLOT_SIZE as usize,
                )?;
                Ok(decode_slot(&raw).map(|(_, v)| v))
            }
            Err(_) => Ok(None),
        }
    }

    /// Keys in sorted order.
    pub fn keys(&self) -> &[u64] {
        &self.keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nearpm_core::{ExecMode, SystemConfig};

    fn setup() -> (NearPmSystem, ObjPool) {
        let mut sys = NearPmSystem::new(SystemConfig::nearpm_md().with_capacity(32 << 20));
        let pool = ObjPool::create(&mut sys, "kv", 16 << 20).unwrap();
        (sys, pool)
    }

    #[test]
    fn hashmap_put_get_update() {
        let (mut sys, mut pool) = setup();
        let mut map = PersistentHashMap::create(&mut sys, &mut pool, 128).unwrap();
        assert!(map.is_empty());
        for k in 0..32u64 {
            map.put(&mut sys, &mut pool, k, &[k as u8; VALUE_SIZE])
                .unwrap();
        }
        assert_eq!(map.len(), 32);
        for k in 0..32u64 {
            assert_eq!(
                map.get(&mut sys, &mut pool, k).unwrap(),
                Some(vec![k as u8; VALUE_SIZE])
            );
        }
        assert_eq!(map.get(&mut sys, &mut pool, 999).unwrap(), None);
        // Update in place does not grow the map.
        map.put(&mut sys, &mut pool, 5, &[0xFF; VALUE_SIZE])
            .unwrap();
        assert_eq!(map.len(), 32);
        assert_eq!(
            map.get(&mut sys, &mut pool, 5).unwrap(),
            Some(vec![0xFF; VALUE_SIZE])
        );
        assert!(sys.report().ppo_violations.is_empty());
    }

    #[test]
    fn hashmap_matches_model_under_random_ops() {
        use rand::{Rng, SeedableRng};
        let (mut sys, mut pool) = setup();
        let mut map = PersistentHashMap::create(&mut sys, &mut pool, 256).unwrap();
        let mut model = std::collections::HashMap::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..60 {
            let k = rng.gen_range(0..40u64);
            let v = vec![rng.gen::<u8>(); VALUE_SIZE];
            map.put(&mut sys, &mut pool, k, &v).unwrap();
            model.insert(k, v);
        }
        for (k, v) in &model {
            assert_eq!(map.get(&mut sys, &mut pool, *k).unwrap().as_ref(), Some(v));
        }
        assert_eq!(map.len(), model.len());
    }

    #[test]
    fn put_batch_matches_per_key_puts_and_commits_once() {
        let (mut sys, mut pool) = setup();
        let mut map = PersistentHashMap::create(&mut sys, &mut pool, 128).unwrap();
        let values: Vec<(u64, Vec<u8>)> =
            (0..16u64).map(|k| (k, vec![k as u8; VALUE_SIZE])).collect();
        let entries: Vec<(u64, &[u8])> = values.iter().map(|(k, v)| (*k, v.as_slice())).collect();
        let before = pool.committed();
        map.put_batch(&mut sys, &mut pool, &entries).unwrap();
        // One transaction for the whole burst.
        assert_eq!(pool.committed(), before + 1);
        assert_eq!(map.len(), 16);
        for k in 0..16u64 {
            assert_eq!(
                map.get(&mut sys, &mut pool, k).unwrap(),
                Some(vec![k as u8; VALUE_SIZE])
            );
        }
        // Updates through a batch do not grow the map; duplicates inside one
        // batch resolve to the last write and count once.
        let update = vec![0xEE; VALUE_SIZE];
        let fresh_a = vec![0x01; VALUE_SIZE];
        let fresh_b = vec![0x02; VALUE_SIZE];
        map.put_batch(
            &mut sys,
            &mut pool,
            &[(3, &update), (99, &fresh_a), (99, &fresh_b)],
        )
        .unwrap();
        assert_eq!(map.len(), 17);
        assert_eq!(map.get(&mut sys, &mut pool, 3).unwrap(), Some(update));
        assert_eq!(map.get(&mut sys, &mut pool, 99).unwrap(), Some(fresh_b));
        // Two *distinct* fresh keys that hash to the same bucket (k and
        // k + buckets collide) inside one batch must linear-probe into
        // separate slots, exactly as sequential puts would.
        let va = vec![0x51; VALUE_SIZE];
        let vb = vec![0x52; VALUE_SIZE];
        map.put_batch(&mut sys, &mut pool, &[(100, &va), (100 + 128, &vb)])
            .unwrap();
        assert_eq!(map.len(), 19);
        assert_eq!(map.get(&mut sys, &mut pool, 100).unwrap(), Some(va));
        assert_eq!(map.get(&mut sys, &mut pool, 100 + 128).unwrap(), Some(vb));
        // Empty bursts are a no-op.
        map.put_batch(&mut sys, &mut pool, &[]).unwrap();
        assert_eq!(pool.committed(), before + 3);
        assert!(sys.report().ppo_violations.is_empty());
    }

    #[test]
    fn put_batch_is_cheaper_than_per_key_puts() {
        let run = |batched: bool| {
            let (mut sys, mut pool) = setup();
            let mut map = PersistentHashMap::create(&mut sys, &mut pool, 256).unwrap();
            let values: Vec<(u64, Vec<u8>)> =
                (0..24u64).map(|k| (k, vec![k as u8; VALUE_SIZE])).collect();
            let entries: Vec<(u64, &[u8])> =
                values.iter().map(|(k, v)| (*k, v.as_slice())).collect();
            if batched {
                map.put_batch(&mut sys, &mut pool, &entries).unwrap();
            } else {
                for (k, v) in &entries {
                    map.put(&mut sys, &mut pool, *k, v).unwrap();
                }
            }
            sys.report()
        };
        let batched = run(true);
        let per_key = run(false);
        assert!(batched.ppo_violations.is_empty());
        // One commit for the burst removes per-key commit latency from the
        // critical path.
        assert!(
            batched.makespan < per_key.makespan,
            "batched {} vs per-key {}",
            batched.makespan,
            per_key.makespan
        );
    }

    #[test]
    fn full_map_returns_typed_error_instead_of_panicking() {
        let (mut sys, mut pool) = setup();
        let mut map = PersistentHashMap::create(&mut sys, &mut pool, 4).unwrap();
        for k in 0..4u64 {
            map.put(&mut sys, &mut pool, k, &[k as u8; VALUE_SIZE])
                .unwrap();
        }
        assert_eq!(map.len(), 4);
        // A fifth distinct key has no slot: typed error, map untouched.
        let err = map
            .put(&mut sys, &mut pool, 99, &[9; VALUE_SIZE])
            .unwrap_err();
        assert_eq!(err, SystemError::MapFull { buckets: 4 });
        assert_eq!(map.len(), 4);
        // Updates of existing keys still succeed on a full map.
        map.put(&mut sys, &mut pool, 2, &[0xAB; VALUE_SIZE])
            .unwrap();
        assert_eq!(
            map.get(&mut sys, &mut pool, 2).unwrap(),
            Some(vec![0xAB; VALUE_SIZE])
        );
        // A burst containing any non-fitting key is rejected wholesale:
        // slots resolve before the transaction opens, so nothing is written.
        let update = vec![0xCD; VALUE_SIZE];
        let err = map
            .put_batch(&mut sys, &mut pool, &[(1, &update), (77, &update)])
            .unwrap_err();
        assert_eq!(err, SystemError::MapFull { buckets: 4 });
        assert_eq!(map.len(), 4);
        assert_eq!(
            map.get(&mut sys, &mut pool, 1).unwrap(),
            Some(vec![1u8; VALUE_SIZE]),
            "a rejected burst must not write any of its entries"
        );
    }

    #[test]
    fn committed_batch_survives_crash() {
        let (mut sys, mut pool) = setup();
        let mut map = PersistentHashMap::create(&mut sys, &mut pool, 64).unwrap();
        let a = vec![0xAA; VALUE_SIZE];
        let b = vec![0xBB; VALUE_SIZE];
        map.put_batch(&mut sys, &mut pool, &[(1, &a), (2, &b)])
            .unwrap();
        sys.crash();
        pool.recover(&mut sys).unwrap();
        assert_eq!(map.get_persistent(&mut sys, 1).unwrap(), Some(a));
        assert_eq!(map.get_persistent(&mut sys, 2).unwrap(), Some(b));
    }

    #[test]
    fn committed_hashmap_updates_survive_crash() {
        let (mut sys, mut pool) = setup();
        let mut map = PersistentHashMap::create(&mut sys, &mut pool, 64).unwrap();
        map.put(&mut sys, &mut pool, 42, &[0xAA; VALUE_SIZE])
            .unwrap();
        sys.crash();
        pool.recover(&mut sys).unwrap();
        assert_eq!(
            map.get_persistent(&mut sys, 42).unwrap(),
            Some(vec![0xAA; VALUE_SIZE])
        );
    }

    #[test]
    fn index_insert_sorted_and_lookup() {
        let (mut sys, mut pool) = setup();
        let mut idx = PersistentIndex::create(&mut sys, &mut pool, 64).unwrap();
        for k in [5u64, 1, 9, 3, 7] {
            idx.insert(&mut sys, &mut pool, k, &[k as u8; VALUE_SIZE])
                .unwrap();
        }
        assert_eq!(idx.keys(), &[1, 3, 5, 7, 9]);
        assert_eq!(idx.len(), 5);
        assert_eq!(
            idx.get(&mut sys, &mut pool, 7).unwrap(),
            Some(vec![7; VALUE_SIZE])
        );
        assert_eq!(idx.get(&mut sys, &mut pool, 4).unwrap(), None);
    }

    #[test]
    fn kv_works_in_baseline_mode_too() {
        let mut sys = NearPmSystem::new(
            SystemConfig::for_mode(ExecMode::CpuBaseline).with_capacity(16 << 20),
        );
        let mut pool = ObjPool::create(&mut sys, "kv", 8 << 20).unwrap();
        let mut map = PersistentHashMap::create(&mut sys, &mut pool, 32).unwrap();
        map.put(&mut sys, &mut pool, 1, &[1; VALUE_SIZE]).unwrap();
        assert_eq!(
            map.get(&mut sys, &mut pool, 1).unwrap(),
            Some(vec![1; VALUE_SIZE])
        );
    }
}
